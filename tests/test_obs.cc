/**
 * @file
 * Observability-layer suite: QueryTracer span recording and JSONL
 * output, MetricsRegistry counters/histograms/window series, the
 * reconciliation contract (span timings vs. measured latency, span
 * energies vs. the cluster meter), and regression coverage for the
 * latent-bug sweep that rode along with the layer (ClusterSim
 * pinning, conservative-prediction headroom, trace/train seed flags,
 * JSON string escaping).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "harness/experiment.h"
#include "obs/metrics_registry.h"
#include "obs/query_tracer.h"
#include "policy/policy.h"
#include "predict/latency_predictor.h"
#include "util/string_util.h"

namespace cottage {
namespace {

// ---------------------------------------------------------------------
// Regression: ClusterSim hands each IsnServerSim pointers into its own
// ladder_/power_ members, so any copy or move would leave every server
// dangling into the source object. The type must be pinned.
static_assert(!std::is_copy_constructible_v<ClusterSim>);
static_assert(!std::is_copy_assignable_v<ClusterSim>);
static_assert(!std::is_move_constructible_v<ClusterSim>);
static_assert(!std::is_move_assignable_v<ClusterSim>);

// ---------------------------------------------------------------------
// Regression: the conservative cycle prediction is the upper edge of
// the *predicted* bucket — exactly one log-bucket of headroom over the
// bucket's lower edge, not two (the old code returned the upper edge
// of the bucket above, double-counting the slack CottageConfig already
// applies).

TEST(ConservativePrediction, ExactlyOneBucketOfHeadroom)
{
    const CycleBuckets buckets(1e6, 1e9, 12);
    const LatencyPredictor predictor(buckets, {4}, /*seed=*/99);
    const std::vector<double> features(numLatencyFeatures, 0.5);

    const uint32_t bucket = predictor.predictBucket(features);
    const double conservative =
        predictor.predictCyclesConservative(features);

    EXPECT_DOUBLE_EQ(conservative, buckets.upperCycles(bucket));

    // One log-bucket of headroom over the bucket's lower edge: the
    // log-width of [lower, conservative] equals one bucket width.
    const double width =
        (std::log(buckets.maxCycles()) - std::log(buckets.minCycles())) /
        static_cast<double>(buckets.count());
    const double lower = bucket == 0
                             ? buckets.minCycles()
                             : buckets.upperCycles(bucket - 1);
    EXPECT_NEAR(std::log(conservative) - std::log(lower), width,
                1e-12);

    // Still conservative relative to the point prediction (the
    // bucket's geometric center).
    EXPECT_GT(conservative, predictor.predictCycles(features));
}

TEST(ConservativePrediction, TopBucketStaysInsideRange)
{
    const CycleBuckets buckets(1e6, 1e9, 8);
    // The top bucket's upper edge is the range maximum; the old
    // bucket+1 arithmetic relied on a clamp to avoid running off the
    // end. The edge of the last bucket must still be exactly the max.
    EXPECT_NEAR(buckets.upperCycles(
                    static_cast<uint32_t>(buckets.count() - 1)),
                buckets.maxCycles(), buckets.maxCycles() * 1e-12);
}

// ---------------------------------------------------------------------
// Regression: --trace-seed/--train-seed were reported by print() but
// never wired, so replay traces could not be varied from the CLI.

TEST(ExperimentFlags, TraceAndTrainSeedsRoundTrip)
{
    const char *argv[] = {"prog",
                          "--seed=11",
                          "--trace-seed=2222",
                          "--train-seed=3333",
                          "--trace-out=/tmp/t.jsonl",
                          "--metrics-out=/tmp/m.json",
                          "--power-window-ms=250"};
    const CliFlags flags(7, argv);
    const ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    EXPECT_EQ(config.corpus.seed, 11u);
    EXPECT_EQ(config.traceSeed, 2222u);
    EXPECT_EQ(config.trainSeed, 3333u);
    EXPECT_EQ(config.traceOut, "/tmp/t.jsonl");
    EXPECT_EQ(config.metricsOut, "/tmp/m.json");
    EXPECT_DOUBLE_EQ(config.powerWindowSeconds, 0.25);
}

TEST(ExperimentFlags, TraceSeedActuallyChangesTheTrace)
{
    ExperimentConfig a;
    a.corpus.numDocs = 500;
    a.corpus.vocabSize = 2000;
    a.shards.numShards = 2;
    a.traceQueries = 20;
    ExperimentConfig b = a;
    b.traceSeed = a.traceSeed + 1;

    Experiment ea(std::move(a));
    Experiment eb(std::move(b));
    std::ostringstream ta;
    std::ostringstream tb;
    ea.trace(TraceFlavor::Wikipedia).save(ta);
    eb.trace(TraceFlavor::Wikipedia).save(tb);
    EXPECT_NE(ta.str(), tb.str());
}

// ---------------------------------------------------------------------
// Regression: toJson emitted string fields raw, so a policy or trace
// name containing '"' or '\' produced invalid JSON.

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
    EXPECT_EQ(jsonQuote("x\"y"), "\"x\\\"y\"");
}

TEST(RunSummaryJson, HostileNamesStayValidJson)
{
    RunSummary summary;
    summary.policy = "evil\"policy\\";
    summary.trace = "tab\there\nline";
    const std::string json = toJson(summary);
    EXPECT_NE(json.find("\"policy\":\"evil\\\"policy\\\\\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"trace\":\"tab\\there\\nline\""),
              std::string::npos)
        << json;
    // No raw control characters and balanced quoting: every '"' is
    // either a delimiter or escaped.
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.find('\t'), std::string::npos);
}

// ---------------------------------------------------------------------
// MetricsRegistry unit tests.

TEST(MetricsRegistry, CountersAndHistograms)
{
    MetricsRegistry metrics;
    EXPECT_EQ(metrics.counter("missing"), 0u);
    metrics.incr("queries");
    metrics.incr("queries", 4);
    EXPECT_EQ(metrics.counter("queries"), 5u);

    Histogram &h = metrics.histogram("latency_s", 1e-3, 10.0, 8);
    h.add(0.02);
    h.add(0.02);
    h.add(5.0);
    // Same name returns the same histogram regardless of shape args.
    EXPECT_EQ(&metrics.histogram("latency_s", 1.0, 2.0, 3), &h);
    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_EQ(h.count(h.binIndex(0.02)), 2u);
    ASSERT_NE(metrics.findHistogram("latency_s"), nullptr);
    EXPECT_EQ(metrics.findHistogram("nope"), nullptr);
}

TEST(MetricsRegistry, WindowSeriesAccumulatesAndConvertsToPower)
{
    MetricsRegistry metrics;
    metrics.configureWindows(0.5, /*idleWatts=*/10.0);
    metrics.addWindowSample(0.1, 2.0);
    metrics.addWindowSample(0.4, 3.0);
    metrics.addWindowSample(1.9, 1.0);
    ASSERT_EQ(metrics.windows().size(), 4u);
    EXPECT_DOUBLE_EQ(metrics.windows()[0].energyJoules, 5.0);
    EXPECT_EQ(metrics.windows()[0].queries, 2u);
    EXPECT_EQ(metrics.windows()[1].queries, 0u);
    EXPECT_EQ(metrics.windows()[3].queries, 1u);
    // 5 J over 0.5 s on top of the 10 W idle floor.
    EXPECT_DOUBLE_EQ(metrics.windowPowerWatts(0), 20.0);
    EXPECT_DOUBLE_EQ(metrics.windowPowerWatts(1), 10.0);
}

TEST(MetricsRegistry, JsonAndAsciiAreDeterministic)
{
    MetricsRegistry metrics;
    metrics.incr("zebra");
    metrics.incr("alpha", 2);
    metrics.histogram("h", 1.0, 100.0, 4).add(10.0);
    metrics.configureWindows(1.0, 14.53);
    metrics.addWindowSample(0.5, 7.0);

    const std::string json = metrics.toJson("p", "t");
    // Ordered names: alpha before zebra.
    EXPECT_LT(json.find("\"alpha\":2"), json.find("\"zebra\":1"));
    EXPECT_NE(json.find("\"window_s\":1"), std::string::npos);
    EXPECT_NE(json.find("\"power_w\":[21.53]"), std::string::npos)
        << json;

    const std::string report = metrics.toAsciiReport();
    EXPECT_NE(report.find("alpha"), std::string::npos);
    EXPECT_NE(report.find("histogram h"), std::string::npos);
    EXPECT_NE(report.find("power/qps series"), std::string::npos);
}

// ---------------------------------------------------------------------
// QueryTracer unit tests.

/** A hand-built record: the JSONL encoding is pure formatting, so the
 *  line is golden (no simulation floating point involved). */
TEST(QueryTracer, JsonlGoldenLine)
{
    QueryTraceRecord record;
    record.id = 7;
    record.tenant = 2;
    record.arrivalSeconds = 1.5;
    record.dispatchSeconds = 1.625;
    record.budgetSeconds = 0.02;
    record.decisionOverheadSeconds = 0.125;
    record.rttSeconds = 2e-05;
    record.waitedSeconds = 0.01;
    record.mergeSeconds = 5e-05;
    record.latencySeconds = 0.13507;
    IsnSpan span;
    span.isn = 3;
    span.queueWaitSeconds = 0.25;
    span.serviceStartSeconds = 1.875;
    span.serviceFinishSeconds = 1.9375;
    span.busySeconds = 0.0625;
    span.cycles = 1048576;
    span.freqGhz = 2.1;
    span.cores = 2;
    span.boosted = false;
    span.energyJoules = 0.1675;
    span.completed = false;
    span.completedFraction = 0.5;
    span.docsScored = 42;
    span.docsSkipped = 1900;
    span.blocksDecoded = 11;
    span.blocksSkipped = 15;
    span.partial = true;
    record.isns.push_back(span);

    const std::string line =
        QueryTracer::toJsonLine(record, "a\"b", "wikipedia");
    EXPECT_EQ(
        line,
        "{\"query\":7,\"tenant\":2,\"policy\":\"a\\\"b\","
        "\"trace\":\"wikipedia\","
        "\"arrival_s\":1.5,\"dispatch_s\":1.625,\"budget_s\":0.02,"
        "\"decision_s\":0.125,\"rtt_s\":2e-05,\"waited_s\":0.01,"
        "\"merge_s\":5e-05,\"latency_s\":0.13507,\"isns\":[{\"isn\":3,"
        "\"queue_wait_s\":0.25,\"start_s\":1.875,\"finish_s\":1.9375,"
        "\"busy_s\":0.0625,\"cycles\":1048576,\"freq_ghz\":2.1,"
        "\"cores\":2,"
        "\"boosted\":false,\"energy_j\":0.1675,\"completed\":false,"
        "\"fraction\":0.5,\"docs\":42,\"docs_skipped\":1900,"
        "\"blocks_decoded\":11,\"blocks_skipped\":15,"
        "\"partial\":true}]}");
}

TEST(QueryTracer, NoBudgetSerializesAsNull)
{
    QueryTraceRecord record;
    record.budgetSeconds = -1.0;
    const std::string line = QueryTracer::toJsonLine(record, "p", "t");
    EXPECT_NE(line.find("\"budget_s\":null"), std::string::npos);
}

// ---------------------------------------------------------------------
// Engine/harness integration: spans reconcile with the measurement
// stream and the cluster energy meter, and span ordering is fixed.

/** Every ISN, one fixed relative budget (exercises truncation). */
class FixedBudgetPolicy : public Policy
{
  public:
    explicit FixedBudgetPolicy(double budgetSeconds)
        : budget_(budgetSeconds)
    {
    }

    const char *name() const override { return "fixed-budget"; }

    QueryPlan
    plan(const Query &, const DistributedEngine &engine) override
    {
        QueryPlan plan = QueryPlan::allIsns(engine.index().numShards());
        plan.budgetSeconds = budget_;
        return plan;
    }

  private:
    double budget_;
};

ExperimentConfig
obsConfig()
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 6000;
    config.corpus.meanDocLength = 90.0;
    config.shards.numShards = 8;
    config.traceQueries = 120;
    config.arrivalQps = 40.0;
    config.work.baseCycles = 5e4;
    return config;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

TEST(ObsIntegration, SpansReconcileWithMeasurementsAndEnergy)
{
    ExperimentConfig config = obsConfig();
    config.traceOut = tempPath("obs_reconcile.jsonl");
    config.metricsOut = tempPath("obs_reconcile_metrics.json");
    Experiment experiment(std::move(config));

    // Calibrate a budget tight enough that some responses truncate:
    // a fraction of the unbudgeted run's average service span.
    FixedBudgetPolicy unbudgeted(noBudget);
    const RunResult full =
        experiment.run(unbudgeted, TraceFlavor::Wikipedia);
    const NetworkModel &network = experiment.cluster().network();
    const double scale = full.summary.avgLatencySeconds -
                         network.rttSeconds - network.mergeSeconds;
    ASSERT_GT(scale, 0.0);

    FixedBudgetPolicy policy(0.3 * scale);
    const RunResult result =
        experiment.run(policy, TraceFlavor::Wikipedia);
    ASSERT_NE(result.trace, nullptr);
    ASSERT_NE(result.metrics, nullptr);

    const auto &records = result.trace->records();
    ASSERT_EQ(records.size(), result.measurements.size());

    double spanEnergy = 0.0;
    bool sawTruncated = false;
    for (std::size_t q = 0; q < records.size(); ++q) {
        const QueryTraceRecord &record = records[q];
        const QueryMeasurement &m = result.measurements[q];
        EXPECT_EQ(record.id, m.id);
        EXPECT_DOUBLE_EQ(record.arrivalSeconds, m.arrivalSeconds);

        // The aggregator timeline reconciles with the measured
        // latency: decision + rtt + wait + merge.
        EXPECT_NEAR(record.decisionOverheadSeconds + record.rttSeconds +
                        record.waitedSeconds + record.mergeSeconds,
                    m.latencySeconds, 1e-9);
        EXPECT_NEAR(record.latencySeconds, m.latencySeconds, 1e-9);

        // Spans in ascending shard order, one per used ISN; work
        // accounting matches the measurement exactly.
        EXPECT_EQ(record.isns.size(), m.isnsUsed);
        uint64_t docs = 0;
        uint32_t completedSpans = 0;
        uint32_t partialSpans = 0;
        for (std::size_t i = 0; i < record.isns.size(); ++i) {
            const IsnSpan &span = record.isns[i];
            if (i > 0)
                EXPECT_GT(span.isn, record.isns[i - 1].isn);
            EXPECT_GE(span.serviceStartSeconds, record.dispatchSeconds);
            EXPECT_NEAR(span.queueWaitSeconds,
                        span.serviceStartSeconds - record.dispatchSeconds,
                        1e-12);
            EXPECT_GE(span.serviceFinishSeconds,
                      span.serviceStartSeconds);
            EXPECT_NEAR(span.busySeconds,
                        span.serviceFinishSeconds -
                            span.serviceStartSeconds,
                        1e-12);
            docs += span.docsScored;
            completedSpans += span.completed;
            partialSpans += span.partial;
            spanEnergy += span.energyJoules;
            if (!span.completed) {
                sawTruncated = true;
                EXPECT_LT(span.completedFraction, 1.0);
            }
        }
        EXPECT_EQ(docs, m.docsSearched);
        EXPECT_EQ(completedSpans, m.isnsCompleted);
        EXPECT_EQ(partialSpans, m.partialResponses);
    }
    EXPECT_TRUE(sawTruncated) << "budget did not truncate anything; "
                                 "the partial path went untested";

    // Per-span energies sum to the cluster meter (only the addition
    // order differs).
    EXPECT_NEAR(spanEnergy, result.summary.energyJoules,
                1e-9 * std::max(1.0, result.summary.energyJoules));

    // Engine-side metrics agree with the aggregate measurement stream.
    const MetricsRegistry &metrics = *result.metrics;
    EXPECT_EQ(metrics.counter("queries"), result.measurements.size());
    uint64_t used = 0;
    uint64_t boosted = 0;
    for (const QueryMeasurement &m : result.measurements) {
        used += m.isnsUsed;
        boosted += m.isnsBoosted;
    }
    EXPECT_EQ(metrics.counter("isns_dispatched"), used);
    EXPECT_EQ(metrics.counter("isns_boosted"), boosted);
    EXPECT_EQ(metrics.counter("responses_truncated"),
              result.summary.truncatedResponses);
    EXPECT_EQ(metrics.counter("partial_responses"),
              result.summary.partialResponses);

    const Histogram *latency = metrics.findHistogram("latency_s");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->totalCount(), result.measurements.size());
    const Histogram *backlog =
        metrics.findHistogram("backlog_at_dispatch_s");
    ASSERT_NE(backlog, nullptr);
    EXPECT_EQ(backlog->totalCount(), used);
    const Histogram *utilisation =
        metrics.findHistogram("isn_utilization");
    ASSERT_NE(utilisation, nullptr);
    EXPECT_EQ(utilisation->totalCount(),
              experiment.cluster().numIsns());

    // The window series telescopes to the run's total energy and
    // query count.
    double windowEnergy = 0.0;
    uint64_t windowQueries = 0;
    for (const MetricsWindow &w : metrics.windows()) {
        windowEnergy += w.energyJoules;
        windowQueries += w.queries;
    }
    EXPECT_EQ(windowQueries, result.measurements.size());
    EXPECT_NEAR(windowEnergy, result.summary.energyJoules,
                1e-9 * std::max(1.0, result.summary.energyJoules));
}

TEST(ObsIntegration, JsonlFileMatchesInMemoryRecords)
{
    ExperimentConfig config = obsConfig();
    config.traceQueries = 30;
    config.traceOut = tempPath("obs_file.jsonl");
    const std::string path = config.traceOut;
    Experiment experiment(std::move(config));
    const RunResult result =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    ASSERT_NE(result.trace, nullptr);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream content;
    content << in.rdbuf();

    std::ostringstream expected;
    result.trace->writeJsonl(expected, result.summary.policy,
                             result.summary.trace);
    EXPECT_EQ(content.str(), expected.str());

    // One line per query, each a JSON object.
    std::istringstream lines(content.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++count;
    }
    EXPECT_EQ(count, result.measurements.size());
}

TEST(ObsIntegration, MetricsFileHoldsOneJsonObjectPerRun)
{
    ExperimentConfig config = obsConfig();
    config.traceQueries = 30;
    config.metricsOut = tempPath("obs_metrics_runs.json");
    const std::string path = config.metricsOut;
    Experiment experiment(std::move(config));
    experiment.run("exhaustive", TraceFlavor::Wikipedia);
    experiment.run("taily", TraceFlavor::Wikipedia);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t count = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

// ---------------------------------------------------------------------
// Streaming sink: with streamTo attached the tracer writes each JSONL
// line as it is recorded and flushes every batch, so a mid-run abort
// keeps everything up to the last flushed batch on disk instead of
// losing the whole buffered tail.

QueryTraceRecord
streamRecord(QueryId id)
{
    QueryTraceRecord record;
    record.id = id;
    record.arrivalSeconds = 0.001 * static_cast<double>(id);
    record.latencySeconds = 0.002;
    IsnSpan span;
    span.isn = static_cast<ShardId>(id % 4);
    span.busySeconds = 0.0005;
    record.isns.push_back(span);
    return record;
}

TEST(QueryTracerStreaming, SinkBytesMatchWriteJsonl)
{
    QueryTracer streamed;
    std::ostringstream sink;
    streamed.streamTo(&sink, "pol", "tr", 2);
    QueryTracer buffered;
    for (QueryId id = 0; id < 5; ++id) {
        streamed.record(streamRecord(id));
        buffered.record(streamRecord(id));
    }
    streamed.flushSink();

    std::ostringstream expected;
    buffered.writeJsonl(expected, "pol", "tr");
    EXPECT_EQ(sink.str(), expected.str());
    // The in-memory list still accumulates exactly as without a sink.
    EXPECT_EQ(streamed.records().size(), 5u);

    // Detach: later records stay in memory only, the sink is final.
    streamed.streamTo(nullptr, "", "");
    streamed.record(streamRecord(99));
    EXPECT_EQ(streamed.records().size(), 6u);
    EXPECT_EQ(sink.str(), expected.str());
}

TEST(QueryTracerStreamingDeathTest, StreamedLinesSurviveAMidRunAbort)
{
    // The child records three lines through a per-record flush, then
    // dies without unwinding (no destructors, no stream teardown). The
    // parent must find all three lines intact on disk — the regression
    // was a tracer that buffered everything until writeJsonl at end of
    // run, so any abort threw away the entire trace.
    const std::string path = tempPath("obs_stream_abort.jsonl");
    std::remove(path.c_str());
    EXPECT_DEATH(
        {
            std::ofstream out(path);
            QueryTracer tracer;
            tracer.streamTo(&out, "pol", "tr", 1);
            for (QueryId id = 0; id < 3; ++id)
                tracer.record(streamRecord(id));
            std::abort();
        },
        "");

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    for (QueryId id = 0; id < 3; ++id)
        EXPECT_EQ(lines[id],
                  QueryTracer::toJsonLine(streamRecord(id), "pol", "tr"));
}

} // namespace
} // namespace cottage
