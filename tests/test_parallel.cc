/**
 * @file
 * Determinism regression suite for the parallel shard fan-out: the
 * same seed must produce byte-identical measurement streams and run
 * summaries at --threads 1 (strictly sequential inline execution) and
 * --threads 8 (oversubscribed work-stealing pool), for every
 * evaluator and for policies covering full fan-out, selective
 * participation and the oracle's batch paths.
 *
 * "Byte-identical" is literal: every double is compared by its bit
 * pattern, not by tolerance. The parallel code paths are only allowed
 * to reorder *scheduling*, never arithmetic.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/distributed_engine.h"
#include "engine/parallel_search.h"
#include "harness/experiment.h"
#include "metrics/run_stats.h"
#include "predict/training.h"
#include "util/thread_pool.h"

namespace cottage {
namespace {

/** Append a value's raw bytes to a buffer. */
template <typename T>
void
appendBytes(std::string &buffer, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char *raw = reinterpret_cast<const char *>(&value);
    buffer.append(raw, sizeof(T));
}

/** Bitwise serialization of a full measurement stream. */
std::string
serializeMeasurements(const std::vector<QueryMeasurement> &measurements)
{
    std::string buffer;
    for (const QueryMeasurement &m : measurements) {
        appendBytes(buffer, m.id);
        appendBytes(buffer, m.tenant);
        appendBytes(buffer, m.arrivalSeconds);
        appendBytes(buffer, m.latencySeconds);
        appendBytes(buffer, m.budgetSeconds);
        appendBytes(buffer, m.isnsUsed);
        appendBytes(buffer, m.isnsCompleted);
        appendBytes(buffer, m.isnsBoosted);
        appendBytes(buffer, m.docsSearched);
        appendBytes(buffer, m.docsSkipped);
        appendBytes(buffer, m.blocksDecoded);
        appendBytes(buffer, m.blocksSkipped);
        appendBytes(buffer, m.partialResponses);
        appendBytes(buffer, m.completedFraction);
        appendBytes(buffer, m.precisionAtK);
        appendBytes(buffer, m.ndcgAtK);
        for (const ScoredDoc &hit : m.results) {
            appendBytes(buffer, hit.doc);
            appendBytes(buffer, hit.score);
        }
    }
    return buffer;
}

ExperimentConfig
smallConfig(const std::string &evaluator, uint32_t blockSize = 128)
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 6000;
    config.corpus.meanDocLength = 90.0;
    config.shards.numShards = 8;
    config.shards.blockSize = blockSize;
    config.traceQueries = 200;
    config.evaluator = evaluator;
    return config;
}

/**
 * Replay @p policy twice — sequentially and on an oversubscribed
 * 8-thread pool — and demand bitwise-equal results.
 */
void
expectDeterministicReplay(Experiment &experiment,
                          const std::string &policy)
{
    ThreadPool::setGlobalThreads(1);
    const RunResult sequential =
        experiment.run(policy, TraceFlavor::Wikipedia);

    ThreadPool::setGlobalThreads(8);
    const RunResult parallel =
        experiment.run(policy, TraceFlavor::Wikipedia);
    ThreadPool::setGlobalThreads(1);

    ASSERT_EQ(sequential.measurements.size(),
              parallel.measurements.size());
    EXPECT_EQ(serializeMeasurements(sequential.measurements),
              serializeMeasurements(parallel.measurements))
        << policy << ": measurement streams diverge across thread counts";
    EXPECT_EQ(toJson(sequential.summary), toJson(parallel.summary))
        << policy << ": run summaries diverge across thread counts";
}

/**
 * One determinism-matrix cell: an evaluator at a block size. The flat
 * evaluators ignore the block layer, so they appear once (at the
 * default size); the block-max evaluators run at every production
 * block size because the codec's decode path — group boundaries,
 * padding reads, skip charging — differs per size and each variant
 * must replay byte-identically on its own.
 */
struct MatrixCell
{
    const char *evaluator;
    uint32_t blockSize;
};

std::string
cellName(const ::testing::TestParamInfo<MatrixCell> &info)
{
    return std::string(info.param.evaluator) + "_" +
           std::to_string(info.param.blockSize);
}

class ParallelDeterminism : public ::testing::TestWithParam<MatrixCell>
{
};

TEST_P(ParallelDeterminism, ReplayIsBitExactAcrossThreadCounts)
{
    Experiment experiment(
        smallConfig(GetParam().evaluator, GetParam().blockSize));
    // Full fan-out and selective participation both cross the
    // parallel execute() path; taily additionally plans from index
    // statistics so some ISNs sit out each query.
    expectDeterministicReplay(experiment, "exhaustive");
    expectDeterministicReplay(experiment, "taily");
}

INSTANTIATE_TEST_SUITE_P(
    Evaluators, ParallelDeterminism,
    ::testing::Values(MatrixCell{"exhaustive", 128},
                      MatrixCell{"maxscore", 128},
                      MatrixCell{"wand", 128}, MatrixCell{"bmw", 64},
                      MatrixCell{"bmw", 128}, MatrixCell{"bmw", 256},
                      MatrixCell{"bmm", 64}, MatrixCell{"bmm", 128},
                      MatrixCell{"bmm", 256}),
    cellName);

TEST(ParallelDeterminismOracle, BatchShardWorkPathIsBitExact)
{
    // The oracle exercises globalTopK() and shardWorkAll() inside its
    // per-query planning, on top of the engine's execute() fan-out.
    ExperimentConfig config = smallConfig("maxscore");
    config.traceQueries = 100;
    Experiment experiment(config);
    expectDeterministicReplay(experiment, "oracle");
}

TEST(ParallelDeterminismGroundTruth, GlobalTopKMatchesSequential)
{
    Experiment experiment(smallConfig("maxscore"));
    const QueryTrace &trace = experiment.trace(TraceFlavor::Lucene);
    const std::size_t probe = std::min<std::size_t>(trace.size(), 100);

    ThreadPool::setGlobalThreads(1);
    std::vector<std::vector<ScoredDoc>> sequential;
    for (std::size_t q = 0; q < probe; ++q)
        sequential.push_back(experiment.engine().globalTopK(trace.query(q)));

    ThreadPool::setGlobalThreads(8);
    std::vector<std::vector<ScoredDoc>> parallel;
    for (std::size_t q = 0; q < probe; ++q)
        parallel.push_back(experiment.engine().globalTopK(trace.query(q)));
    ThreadPool::setGlobalThreads(1);

    for (std::size_t q = 0; q < probe; ++q) {
        ASSERT_EQ(sequential[q].size(), parallel[q].size()) << "query " << q;
        for (std::size_t i = 0; i < sequential[q].size(); ++i) {
            ASSERT_EQ(sequential[q][i].doc, parallel[q][i].doc)
                << "query " << q << " rank " << i;
            // Bitwise: the merge order is fixed, so not even the
            // floating-point representation may drift.
            double a = sequential[q][i].score;
            double b = parallel[q][i].score;
            ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0)
                << "query " << q << " rank " << i;
        }
    }
}

TEST(ParallelDeterminismObservability, TracingNeverPerturbsMeasurements)
{
    // The observability contract, half one: with tracing and metrics
    // attached, every measured byte is identical to the
    // uninstrumented replay — the hooks only read what the simulation
    // already computed.
    ExperimentConfig plain = smallConfig("maxscore");
    ExperimentConfig instrumented = smallConfig("maxscore");
    instrumented.traceOut =
        ::testing::TempDir() + "parallel_obs_trace.jsonl";
    instrumented.metricsOut =
        ::testing::TempDir() + "parallel_obs_metrics.json";

    Experiment plainExperiment(std::move(plain));
    Experiment instrumentedExperiment(std::move(instrumented));
    for (const char *policy : {"exhaustive", "taily"}) {
        const RunResult off =
            plainExperiment.run(policy, TraceFlavor::Wikipedia);
        const RunResult on =
            instrumentedExperiment.run(policy, TraceFlavor::Wikipedia);
        EXPECT_EQ(serializeMeasurements(off.measurements),
                  serializeMeasurements(on.measurements))
            << policy << ": tracing perturbed the measurement stream";
        EXPECT_EQ(toJson(off.summary), toJson(on.summary))
            << policy << ": tracing perturbed the run summary";
    }
}

TEST(ParallelDeterminismObservability, TraceStreamIsBitExactAcrossThreads)
{
    // Half two: the recorded span stream itself is deterministic at
    // any host thread count (spans are collected during the
    // sequential cluster advance, in fixed shard order).
    ExperimentConfig config = smallConfig("maxscore");
    config.traceOut = ::testing::TempDir() + "parallel_obs_threads.jsonl";
    config.metricsOut =
        ::testing::TempDir() + "parallel_obs_threads_metrics.json";
    Experiment experiment(std::move(config));

    const auto replayJsonl = [&experiment](const std::string &policy) {
        const RunResult result =
            experiment.run(policy, TraceFlavor::Wikipedia);
        std::ostringstream trace;
        result.trace->writeJsonl(trace, result.summary.policy,
                                 result.summary.trace);
        return std::make_pair(trace.str(),
                              result.metrics->toJson(
                                  result.summary.policy,
                                  result.summary.trace));
    };

    for (const char *policy : {"exhaustive", "taily"}) {
        ThreadPool::setGlobalThreads(1);
        const auto sequential = replayJsonl(policy);
        ThreadPool::setGlobalThreads(8);
        const auto parallel = replayJsonl(policy);
        ThreadPool::setGlobalThreads(1);
        EXPECT_EQ(sequential.first, parallel.first)
            << policy << ": JSONL trace streams diverge across threads";
        EXPECT_EQ(sequential.second, parallel.second)
            << policy << ": metrics JSON diverges across threads";
    }
}

/** Bitwise serialization of a serving-mode measurement stream. */
std::string
serializeServing(const std::vector<ServingMeasurement> &measurements)
{
    std::string buffer;
    std::vector<QueryMeasurement> inner;
    inner.reserve(measurements.size());
    for (const ServingMeasurement &record : measurements) {
        appendBytes(buffer, record.outcome);
        appendBytes(buffer, record.worstBacklogSeconds);
        appendBytes(buffer, record.isnsShed);
        appendBytes(buffer, record.isnsUnavailable);
        inner.push_back(record.measurement);
    }
    return buffer + serializeMeasurements(inner);
}

TEST(ParallelDeterminismScenario, ScenarioServeIsBitExactAcrossThreadCounts)
{
    // The scenario layer composes every new moving part — shaped
    // multi-tenant arrivals, the merged stream, hostile cluster
    // shapes, per-tenant SLO budgets — on top of the serving loop.
    // All of it must stay a pure function of seeds and simulated
    // time: byte-identical at any host thread count.
    ExperimentConfig config = smallConfig("maxscore");
    config.serving.resultCacheCapacity = 128;
    config.serving.statsCacheCapacity = 512;
    Experiment experiment(std::move(config));

    for (const char *name : {"flash_crowd", "straggler_isn"}) {
        const ScenarioConfig scenario = scenarioByName(name, 4.0);

        ThreadPool::setGlobalThreads(1);
        const ScenarioRunResult sequential =
            experiment.runScenario("taily", scenario);
        ThreadPool::setGlobalThreads(8);
        const ScenarioRunResult parallel =
            experiment.runScenario("taily", scenario);
        ThreadPool::setGlobalThreads(1);

        ASSERT_EQ(sequential.measurements.size(),
                  parallel.measurements.size());
        EXPECT_EQ(serializeServing(sequential.measurements),
                  serializeServing(parallel.measurements))
            << name
            << ": scenario streams diverge across thread counts";
        EXPECT_EQ(toJson(sequential.summary), toJson(parallel.summary))
            << name
            << ": scenario summaries (incl. per-tenant rollups) "
               "diverge across thread counts";
    }
}

/**
 * The intra-query driver's whole contract in one property: the merged
 * top-K of a range-partitioned traversal is bit-identical to the
 * sequential evaluation — for every evaluator, at every gang width,
 * including demoting (negative) term weights. Work counters are NOT
 * compared: slices warm their pruning thresholds independently, so a
 * gang legitimately scores more docs; only the ranking is invariant.
 */
TEST(ParallelSearchProperty, MergedTopKIsBitIdenticalToSequentialAtAnyWidth)
{
    CorpusConfig corpusConfig;
    corpusConfig.numDocs = 3000;
    corpusConfig.vocabSize = 6000;
    const Corpus corpus = Corpus::generate(corpusConfig);
    ShardedIndexConfig shardConfig;
    shardConfig.numShards = 1;
    const ShardedIndex index(corpus, shardConfig);

    TraceConfig traceConfig;
    traceConfig.flavor = TraceFlavor::Wikipedia;
    traceConfig.numQueries = 40;
    traceConfig.vocabSize = corpusConfig.vocabSize;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    ThreadPool::setGlobalThreads(8);
    for (const char *name :
         {"exhaustive", "taat", "maxscore", "wand", "bmw", "bmm"}) {
        const std::unique_ptr<Evaluator> evaluator =
            Experiment::makeEvaluator(name);
        for (std::size_t q = 0; q < trace.size(); ++q) {
            std::vector<WeightedTerm> terms =
                DistributedEngine::weightedTerms(trace.query(q));
            // Odd queries demote their first term: pruning bounds
            // must stay rank-safe on every slice for negative weights
            // too.
            if (q % 2 == 1 && !terms.empty())
                terms.front().weight = -0.5;
            const SearchResult sequential = parallelShardSearch(
                *evaluator, index.shard(0), terms, index.topK(),
                noDocCap, 1);
            for (const uint32_t cores : {2u, 4u, 8u}) {
                const SearchResult parallel = parallelShardSearch(
                    *evaluator, index.shard(0), terms, index.topK(),
                    noDocCap, cores);
                ASSERT_EQ(sequential.topK.size(), parallel.topK.size())
                    << name << " query " << q << " cores " << cores;
                for (std::size_t i = 0; i < sequential.topK.size(); ++i) {
                    ASSERT_EQ(sequential.topK[i].doc,
                              parallel.topK[i].doc)
                        << name << " query " << q << " cores " << cores
                        << " rank " << i;
                    double a = sequential.topK[i].score;
                    double b = parallel.topK[i].score;
                    ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0)
                        << name << " query " << q << " cores " << cores
                        << " rank " << i;
                }
            }
        }
    }
    ThreadPool::setGlobalThreads(1);
}

/**
 * One gang-matrix cell: an evaluator at a planned gang width. Cottage
 * with maxCoresPerQuery > 1 crosses every new moving part — the joint
 * (cores x frequency) grid, gang dispatch in the simulator, and the
 * parallel traversal driver on the measurement path.
 */
struct GangCell
{
    const char *evaluator;
    uint32_t isnCores;
};

std::string
gangCellName(const ::testing::TestParamInfo<GangCell> &info)
{
    return std::string(info.param.evaluator) + "_cores" +
           std::to_string(info.param.isnCores);
}

class ParallelDeterminismGangs : public ::testing::TestWithParam<GangCell>
{
};

TEST_P(ParallelDeterminismGangs, CottageReplayIsBitExactAcrossThreadCounts)
{
    ExperimentConfig config = smallConfig(GetParam().evaluator);
    config.coresPerIsn = 4;
    config.isnCores = GetParam().isnCores;
    config.cottage.maxCoresPerQuery = GetParam().isnCores;
    config.trainQueries = 120;
    config.train.iterations = 60;
    Experiment experiment(std::move(config));
    expectDeterministicReplay(experiment, "cottage");
}

INSTANTIATE_TEST_SUITE_P(
    Evaluators, ParallelDeterminismGangs,
    ::testing::Values(GangCell{"wand", 1}, GangCell{"wand", 2},
                      GangCell{"wand", 4}, GangCell{"bmw", 1},
                      GangCell{"bmw", 2}, GangCell{"bmw", 4}),
    gangCellName);

TEST(ParallelDeterminismGangs, TraceStreamIsBitExactAcrossThreadsWithGangs)
{
    // The recorded span stream — including each span's gang width
    // ("cores") — must itself replay byte-identically at any host
    // thread count when gangs are in play.
    ExperimentConfig config = smallConfig("wand");
    config.coresPerIsn = 4;
    config.isnCores = 4;
    config.cottage.maxCoresPerQuery = 4;
    config.trainQueries = 120;
    config.train.iterations = 60;
    config.traceOut = ::testing::TempDir() + "parallel_gang_trace.jsonl";
    config.metricsOut =
        ::testing::TempDir() + "parallel_gang_metrics.json";
    Experiment experiment(std::move(config));

    const auto replayJsonl = [&experiment]() {
        const RunResult result =
            experiment.run("cottage", TraceFlavor::Wikipedia);
        std::ostringstream trace;
        result.trace->writeJsonl(trace, result.summary.policy,
                                 result.summary.trace);
        return std::make_pair(trace.str(),
                              result.metrics->toJson(
                                  result.summary.policy,
                                  result.summary.trace));
    };

    ThreadPool::setGlobalThreads(1);
    const auto sequential = replayJsonl();
    ThreadPool::setGlobalThreads(8);
    const auto parallel = replayJsonl();
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(sequential.first, parallel.first)
        << "gang JSONL trace streams diverge across threads";
    EXPECT_EQ(sequential.second, parallel.second)
        << "gang metrics JSON diverges across threads";
    EXPECT_NE(sequential.first.find("\"cores\":"), std::string::npos)
        << "gang trace never recorded a span gang width";
}

TEST(ParallelDeterminismTraining, TrainingSetsMatchSequential)
{
    ExperimentConfig config = smallConfig("maxscore");
    Experiment experiment(config);

    TraceConfig tc;
    tc.numQueries = 60;
    tc.vocabSize = config.corpus.vocabSize;
    tc.seed = 4021;
    const QueryTrace trace = QueryTrace::generate(tc);

    ThreadPool::setGlobalThreads(1);
    const TrainingSets sequential =
        buildTrainingSets(experiment.index(), experiment.evaluator(),
                          config.work, trace, config.train.numBuckets);
    ThreadPool::setGlobalThreads(8);
    const TrainingSets parallel =
        buildTrainingSets(experiment.index(), experiment.evaluator(),
                          config.work, trace, config.train.numBuckets);
    ThreadPool::setGlobalThreads(1);

    ASSERT_EQ(sequential.shards.size(), parallel.shards.size());
    for (std::size_t s = 0; s < sequential.shards.size(); ++s) {
        const ShardDatasets &a = sequential.shards[s];
        const ShardDatasets &b = parallel.shards[s];
        auto expectDatasetsEqual = [s](const Dataset &lhs,
                                       const Dataset &rhs,
                                       const char *which) {
            ASSERT_EQ(lhs.size(), rhs.size()) << which << " shard " << s;
            for (std::size_t i = 0; i < lhs.size(); ++i) {
                ASSERT_EQ(lhs.label(i), rhs.label(i))
                    << which << " shard " << s << " sample " << i;
                ASSERT_EQ(std::memcmp(lhs.features(i), rhs.features(i),
                                      lhs.numFeatures() * sizeof(double)),
                          0)
                    << which << " shard " << s << " sample " << i;
            }
        };
        expectDatasetsEqual(a.qualityK, b.qualityK, "qualityK");
        expectDatasetsEqual(a.qualityHalf, b.qualityHalf, "qualityHalf");
        expectDatasetsEqual(a.latency, b.latency, "latency");
    }
}

} // namespace
} // namespace cottage
