/**
 * @file
 * Block-max layer tests: structural invariants of BlockMaxPostingList,
 * cursor deep/shallow seek semantics and I/O accounting, the *bitwise*
 * rank-safety property of the BMW/BMM evaluators against exhaustive
 * over randomized corpora (ties, negative weights, single-term and
 * all-stopword queries), work-saving assertions, and the truncated
 * VByte-stream death tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "index/block_codec.h"
#include "index/block_max.h"
#include "index/bmm_evaluator.h"
#include "index/bmw_evaluator.h"
#include "index/collection_stats.h"
#include "index/exhaustive_evaluator.h"
#include "index/inverted_index.h"
#include "index/maxscore_evaluator.h"
#include "index/varbyte.h"
#include "index/wand_evaluator.h"
#include "text/corpus.h"
#include "text/trace.h"
#include "util/rng.h"

namespace cottage {
namespace {

/** Build an index over a whole corpus with a given block size. */
std::unique_ptr<InvertedIndex>
wholeCorpusIndex(const Corpus &corpus, uint32_t blockSize)
{
    std::vector<DocId> allDocs(corpus.numDocs());
    for (DocId d = 0; d < corpus.numDocs(); ++d)
        allDocs[d] = d;
    return std::make_unique<InvertedIndex>(
        corpus, allDocs, std::make_shared<CollectionStats>(corpus),
        Bm25Params{}, blockSize);
}

/** Bitwise score equality: rank-safety here means identical doubles. */
void
expectBitIdentical(const SearchResult &result, const SearchResult &base,
                   const char *name, QueryId query)
{
    ASSERT_EQ(result.topK.size(), base.topK.size())
        << name << " query " << query;
    for (std::size_t i = 0; i < base.topK.size(); ++i) {
        ASSERT_EQ(result.topK[i].doc, base.topK[i].doc)
            << name << " rank " << i << " query " << query;
        const double a = result.topK[i].score;
        const double b = base.topK[i].score;
        ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0)
            << name << " rank " << i << " query " << query
            << ": scores differ in bits (" << a << " vs " << b << ")";
    }
}

class BlockMaxFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CorpusConfig config;
        config.numDocs = 800;
        config.vocabSize = 3000;
        config.meanDocLength = 80.0;
        config.numTopics = 12;
        config.seed = 77;
        corpus_ = std::make_unique<Corpus>(Corpus::generate(config));
        index_ = wholeCorpusIndex(*corpus_, 64);
    }

    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<InvertedIndex> index_;
};

TEST_F(BlockMaxFixture, BlocksPartitionEveryList)
{
    for (const PostingList &list : index_->allPostings()) {
        const BlockMaxPostingList *bm = index_->blockMax(list.term);
        ASSERT_NE(bm, nullptr);
        EXPECT_EQ(bm->term(), list.term);
        EXPECT_EQ(bm->size(), list.size());
        ASSERT_GT(bm->numBlocks(), 0u);

        const double idf = index_->idf(list.term);
        uint64_t covered = 0;
        for (std::size_t b = 0; b < bm->numBlocks(); ++b) {
            const auto &block = bm->block(b);
            // Exact per-block bound: the max over exactly the block's
            // postings, and lastDoc is the block's final document.
            double expectedMax = 0.0;
            for (uint32_t i = 0; i < block.count; ++i) {
                const Posting &posting = list.postings[covered + i];
                expectedMax = std::max(
                    expectedMax, index_->scorePosting(idf, posting));
            }
            EXPECT_DOUBLE_EQ(block.maxScore, expectedMax)
                << "term " << list.term << " block " << b;
            EXPECT_EQ(block.lastDoc,
                      list.postings[covered + block.count - 1].doc);
            if (b + 1 < bm->numBlocks())
                EXPECT_EQ(block.count, bm->blockSize());
            covered += block.count;
        }
        EXPECT_EQ(covered, list.size());
        EXPECT_DOUBLE_EQ(bm->maxScore(), index_->maxScore(list.term));
    }
}

TEST_F(BlockMaxFixture, DecodeBlockRoundTripsAtAnyBlockSize)
{
    // The gap chain restarts per block, so every block must decode
    // standalone to exactly the flat postings it covers.
    for (uint32_t blockSize : {1u, 3u, 7u, 128u, 100000u}) {
        const auto index = wholeCorpusIndex(*corpus_, blockSize);
        for (const PostingList &list : index->allPostings()) {
            const BlockMaxPostingList *bm = index->blockMax(list.term);
            std::vector<Posting> decoded;
            std::size_t at = 0;
            for (std::size_t b = 0; b < bm->numBlocks(); ++b) {
                bm->decodeBlock(b, decoded);
                ASSERT_EQ(decoded.size(), bm->block(b).count);
                for (const Posting &posting : decoded) {
                    ASSERT_EQ(posting.doc, list.postings[at].doc)
                        << "term " << list.term << " posting " << at;
                    ASSERT_EQ(posting.freq, list.postings[at].freq);
                    ++at;
                }
            }
            ASSERT_EQ(at, list.size());
        }
    }
}

TEST_F(BlockMaxFixture, CursorWalkMatchesFlatList)
{
    for (const PostingList &list : index_->allPostings()) {
        BlockIo io;
        BlockMaxCursor cursor(*index_->blockMax(list.term), &io);
        for (const Posting &expected : list.postings) {
            ASSERT_FALSE(cursor.exhausted());
            EXPECT_EQ(cursor.doc(), expected.doc);
            EXPECT_EQ(cursor.posting().freq, expected.freq);
            cursor.advance();
        }
        EXPECT_TRUE(cursor.exhausted());
        // A full walk decodes every block and skips nothing.
        EXPECT_EQ(io.blocksDecoded,
                  index_->blockMax(list.term)->numBlocks());
        EXPECT_EQ(io.blocksSkipped, 0u);
        EXPECT_EQ(io.docsSkipped, 0u);
    }
}

TEST_F(BlockMaxFixture, SeekLandsOnLowerBoundAndCountsSkips)
{
    // Pick a reasonably long list so seeks cross block boundaries.
    const PostingList *longest = nullptr;
    for (const PostingList &list : index_->allPostings()) {
        if (longest == nullptr || list.size() > longest->size())
            longest = &list;
    }
    ASSERT_NE(longest, nullptr);
    ASSERT_GT(longest->size(), 128u);
    const BlockMaxPostingList *bm = index_->blockMax(longest->term);

    Rng rng(31337);
    for (int round = 0; round < 200; ++round) {
        const LocalDocId target = static_cast<LocalDocId>(
            rng.uniformInt(0, static_cast<int64_t>(index_->numDocs())));
        BlockIo io;
        BlockMaxCursor cursor(*bm, &io);
        cursor.seek(target);

        const auto it = std::lower_bound(
            longest->postings.begin(), longest->postings.end(), target,
            [](const Posting &p, LocalDocId d) { return p.doc < d; });
        if (it == longest->postings.end()) {
            EXPECT_TRUE(cursor.exhausted()) << "target " << target;
        } else {
            ASSERT_FALSE(cursor.exhausted()) << "target " << target;
            EXPECT_EQ(cursor.doc(), it->doc) << "target " << target;
        }
        // Everything before the landing point was skipped, and the
        // cursor decoded at most one block to get there.
        EXPECT_EQ(io.docsSkipped,
                  static_cast<uint64_t>(it - longest->postings.begin()));
        EXPECT_LE(io.blocksDecoded, 1u);
    }
}

TEST_F(BlockMaxFixture, ShallowSeekNeverDecodes)
{
    const PostingList *longest = nullptr;
    for (const PostingList &list : index_->allPostings()) {
        if (longest == nullptr || list.size() > longest->size())
            longest = &list;
    }
    const BlockMaxPostingList *bm = index_->blockMax(longest->term);
    ASSERT_GT(bm->numBlocks(), 2u);

    BlockIo io;
    BlockMaxCursor cursor(*bm, &io);
    const LocalDocId target = bm->block(1).lastDoc;
    cursor.shallowSeek(target);
    EXPECT_EQ(io.blocksDecoded, 0u);
    EXPECT_EQ(io.blocksSkipped, 1u);
    EXPECT_EQ(io.docsSkipped,
              static_cast<uint64_t>(bm->block(0).count));
    EXPECT_EQ(cursor.blockLastDoc(), bm->block(1).lastDoc);
    EXPECT_DOUBLE_EQ(cursor.blockMaxScore(), bm->block(1).maxScore);
    // The follow-up deep seek decodes exactly the one block it needs.
    cursor.seek(target);
    EXPECT_EQ(io.blocksDecoded, 1u);
    EXPECT_EQ(cursor.doc(), target);
}

/**
 * The tentpole property, strengthened to the bit level: BMW and BMM
 * must return the *bit-identical* top-K (ids and score doubles) the
 * exhaustive evaluator returns — over regenerated random corpora,
 * random block sizes and result depths, with plain, weighted and
 * mixed-sign (demoting) queries, plus the degenerate shapes that break
 * naive pruning: single-term queries and all-stopword (highest
 * document frequency) queries full of score ties.
 */
TEST(BlockMaxProperty, BmwAndBmmAreBitIdenticalToExhaustive)
{
    const ExhaustiveEvaluator exhaustive;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;
    Rng rng(0xB10CBA5Eu);

    for (int round = 0; round < 5; ++round) {
        CorpusConfig config;
        config.numDocs =
            300 + static_cast<uint32_t>(rng.uniformInt(0, 699));
        config.vocabSize =
            800 + static_cast<uint32_t>(rng.uniformInt(0, 2199));
        config.meanDocLength = 40.0 + 80.0 * rng.uniform();
        config.numTopics = 4 + static_cast<uint32_t>(rng.uniformInt(0, 15));
        config.seed = rng.next();
        const Corpus corpus = Corpus::generate(config);
        const uint32_t blockSize =
            static_cast<uint32_t>(rng.uniformInt(1, 256));
        const auto index = wholeCorpusIndex(corpus, blockSize);
        const std::size_t k =
            static_cast<std::size_t>(rng.uniformInt(1, 20));

        // All-stopword query: the highest-df terms produce long lists
        // with tiny idf and massive tie plateaus.
        std::vector<std::pair<std::size_t, TermId>> byDf;
        for (const PostingList &list : index->allPostings())
            byDf.push_back({list.size(), list.term});
        std::sort(byDf.begin(), byDf.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        std::vector<TermId> stopwords;
        for (std::size_t i = 0; i < std::min<std::size_t>(4, byDf.size());
             ++i)
            stopwords.push_back(byDf[i].second);

        TraceConfig traceConfig;
        traceConfig.numQueries = 30;
        traceConfig.vocabSize = config.vocabSize;
        traceConfig.seed = rng.next();
        const QueryTrace trace = QueryTrace::generate(traceConfig);

        std::vector<std::vector<WeightedTerm>> queries;
        for (const Query &query : trace.queries()) {
            // Plain, then mixed-sign weighted variant of each query.
            queries.push_back(toWeighted(query.terms));
            std::vector<WeightedTerm> weighted;
            for (std::size_t i = 0; i < query.terms.size(); ++i) {
                const double magnitude = rng.uniform(0.25, 3.0);
                const bool demote = i > 0 && rng.uniform() < 0.5;
                weighted.push_back({query.terms[i],
                                    demote ? -magnitude : magnitude});
            }
            queries.push_back(weighted);
            // Single-term query from the same draw.
            queries.push_back(toWeighted({query.terms[0]}));
        }
        queries.push_back(toWeighted(stopwords));

        for (std::size_t q = 0; q < queries.size(); ++q) {
            const SearchResult base =
                exhaustive.search(*index, queries[q], k);
            expectBitIdentical(bmw.search(*index, queries[q], k), base,
                               "bmw", static_cast<QueryId>(q));
            expectBitIdentical(bmm.search(*index, queries[q], k), base,
                               "bmm", static_cast<QueryId>(q));
        }
    }
}

/**
 * Determinism matrix over the production block sizes: at {64, 128,
 * 256}, bmw and bmm must (a) return the bit-identical top-K the
 * exhaustive evaluator returns, and (b) produce a byte-identical
 * per-query work-counter stream (docsSkipped / blocksDecoded /
 * blocksSkipped included) when the same trace is replayed — the
 * codec's group decode and skip charging differ per block size, so
 * each size is its own replay contract. test_parallel.cc runs the
 * same matrix across thread counts; this one pins the single-threaded
 * baseline the parallel runs are compared against.
 */
TEST_F(BlockMaxFixture, WorkCountersReplayByteIdenticalPerBlockSize)
{
    const ExhaustiveEvaluator exhaustive;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;

    TraceConfig traceConfig;
    traceConfig.numQueries = 120;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 99;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    const auto serializeWork = [](const SearchWork &work) {
        std::string bytes;
        for (uint64_t field :
             {work.postingsScored, work.docsScored, work.heapInsertions,
              work.postingsSkipped, work.docsSkipped, work.blocksDecoded,
              work.blocksSkipped}) {
            bytes.append(reinterpret_cast<const char *>(&field),
                         sizeof field);
        }
        return bytes;
    };

    for (const uint32_t blockSize : {64u, 128u, 256u}) {
        const auto index = wholeCorpusIndex(*corpus_, blockSize);
        for (const Evaluator *evaluator :
             {static_cast<const Evaluator *>(&bmw),
              static_cast<const Evaluator *>(&bmm)}) {
            const char *name = evaluator == &bmw ? "bmw" : "bmm";
            std::string first, second;
            for (const Query &query : trace.queries()) {
                const SearchResult a =
                    evaluator->search(*index, query.terms, 10);
                first += serializeWork(a.work);
                expectBitIdentical(
                    a, exhaustive.search(*index, query.terms, 10), name,
                    query.id);
            }
            for (const Query &query : trace.queries()) {
                second += serializeWork(
                    evaluator->search(*index, query.terms, 10).work);
            }
            EXPECT_EQ(first, second)
                << name << " at block size " << blockSize
                << ": work-counter stream not replay-stable";
        }
    }
}

/**
 * The evaluators' scratch-slab stack/heap boundary, pinned on both
 * sides: a query whose cursors' combined scratch demand lands EXACTLY
 * on kEvaluatorStackSlabSlots must take the stack path (the boundary
 * is inclusive — `slabSlots > kEvaluatorStackSlabSlots` spills), and
 * one term more must take the heap path, with bit-identical rankings
 * either way. At block size 128 each cursor wants
 * 2 * streamVByteDecodeCapacity(128) = 256 slots, so 8 terms fill the
 * 2048-slot slab exactly and 9 overflow it. An off-by-one in the spill
 * comparison (>=) would send the exact-fit query through an
 * uninitialized or undersized path; this test is the tripwire.
 */
TEST(BlockMaxSlab, StackHeapBoundaryIsExactAndRankSafe)
{
    CorpusConfig config;
    config.numDocs = 800;
    config.vocabSize = 3000;
    config.meanDocLength = 80.0;
    config.numTopics = 12;
    config.seed = 77;
    const Corpus corpus = Corpus::generate(config);
    const uint32_t blockSize = 128;
    const auto index = wholeCorpusIndex(corpus, blockSize);

    const std::size_t slotsPerTerm =
        2 * streamVByteDecodeCapacity(blockSize);
    const std::size_t exactTerms = kEvaluatorStackSlabSlots / slotsPerTerm;
    ASSERT_EQ(exactTerms * slotsPerTerm, kEvaluatorStackSlabSlots)
        << "block size no longer divides the slab evenly; pick another";

    // The highest-df terms: long multi-block lists, so every cursor
    // really decodes through its scratch half.
    std::vector<std::pair<std::size_t, TermId>> byDf;
    for (const PostingList &list : index->allPostings())
        byDf.push_back({list.size(), list.term});
    std::sort(byDf.begin(), byDf.end(), [](const auto &a, const auto &b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;
    });
    ASSERT_GT(byDf.size(), exactTerms);

    std::vector<TermId> terms;
    for (std::size_t i = 0; i <= exactTerms; ++i)
        terms.push_back(byDf[i].second);
    const std::vector<TermId> exactFit(terms.begin(),
                                       terms.begin() + exactTerms);
    const std::vector<TermId> oneOver = terms;

    std::size_t demand = 0;
    for (const TermId term : exactFit)
        demand += BlockMaxCursor::scratchSlots(*index->blockMax(term));
    ASSERT_EQ(demand, kEvaluatorStackSlabSlots);

    const ExhaustiveEvaluator exhaustive;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;
    for (const std::vector<TermId> &query : {exactFit, oneOver}) {
        const auto weighted = toWeighted(query);
        for (const std::size_t k : {1u, 10u, 50u}) {
            const SearchResult base =
                exhaustive.search(*index, weighted, k);
            ASSERT_FALSE(base.topK.empty());
            expectBitIdentical(bmw.search(*index, weighted, k), base,
                               "bmw", static_cast<QueryId>(query.size()));
            expectBitIdentical(bmm.search(*index, weighted, k), base,
                               "bmm", static_cast<QueryId>(query.size()));
        }
    }
}

TEST_F(BlockMaxFixture, BlockPruningBeatsFlatPruning)
{
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;

    TraceConfig traceConfig;
    traceConfig.numQueries = 100;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 6;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    SearchWork wandWork, maxscoreWork, bmwWork, bmmWork;
    for (const Query &query : trace.queries()) {
        wandWork += wand.search(*index_, query.terms, 10).work;
        maxscoreWork += maxscore.search(*index_, query.terms, 10).work;
        bmwWork += bmw.search(*index_, query.terms, 10).work;
        bmmWork += bmm.search(*index_, query.terms, 10).work;
    }
    // The acceptance property: the shallow block-max check rejects
    // candidates WAND would have scored.
    EXPECT_LT(bmwWork.docsScored, wandWork.docsScored);
    EXPECT_LE(bmmWork.docsScored, maxscoreWork.docsScored);
    // And the skip machinery actually engages.
    EXPECT_GT(bmwWork.blocksSkipped, 0u);
    EXPECT_GT(bmwWork.blocksDecoded, 0u);
    EXPECT_GT(bmwWork.docsSkipped, 0u);
    EXPECT_GT(bmmWork.blocksSkipped, 0u);
    // Flat evaluators now surface their seek savings uniformly.
    EXPECT_GT(wandWork.docsSkipped, 0u);
    EXPECT_GT(maxscoreWork.docsSkipped, 0u);
    EXPECT_EQ(wandWork.blocksDecoded, 0u);
    EXPECT_EQ(maxscoreWork.blocksDecoded, 0u);
}

// ---------------------------------------------------------------------
// Satellite: the VByte decoder's truncated-input contract is a hard
// CHECK (every build type), not undefined behaviour.

TEST(VByteDeathTest, TruncatedStreamFailsTheBoundsCheck)
{
    std::vector<uint8_t> bytes;
    vbyteEncode(300, bytes); // two bytes: continuation + terminator
    bytes.pop_back();        // chop the terminator mid-value
    std::size_t offset = 0;
    EXPECT_DEATH((void)vbyteDecode(bytes, offset),
                 "truncated vbyte stream");
}

TEST(VByteDeathTest, OffsetPastTheEndFailsTheBoundsCheck)
{
    std::vector<uint8_t> bytes;
    vbyteEncode(7, bytes);
    std::size_t offset = bytes.size();
    EXPECT_DEATH((void)vbyteDecode(bytes, offset),
                 "truncated vbyte stream");
}

TEST(VByteDeathTest, CursorPastTheEndFailsTheCheck)
{
    PostingList list;
    list.term = 1;
    list.postings = {{3, 2}, {9, 1}};
    const CompressedPostingList compressed(list);
    CompressedPostingList::Cursor cursor = compressed.cursor();
    (void)cursor.next();
    (void)cursor.next();
    EXPECT_FALSE(cursor.hasNext());
    EXPECT_DEATH((void)cursor.next(), "cursor exhausted");
}

} // namespace
} // namespace cottage
