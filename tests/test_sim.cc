/**
 * @file
 * Tests for the cluster simulator: frequency ladder, power model,
 * FIFO queueing arithmetic, deadline truncation and energy accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/cluster.h"
#include "sim/frequency.h"
#include "sim/isn_server.h"
#include "sim/power_model.h"
#include "sim/work_model.h"

namespace cottage {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FrequencyLadder, DefaultMatchesPaperRange)
{
    const FrequencyLadder ladder;
    EXPECT_DOUBLE_EQ(ladder.minGhz(), 1.2);
    EXPECT_DOUBLE_EQ(ladder.maxGhz(), 2.7);
    EXPECT_DOUBLE_EQ(ladder.defaultGhz(), 2.1);
    EXPECT_EQ(ladder.steps().size(), 16u);
    EXPECT_TRUE(ladder.contains(1.5));
    EXPECT_FALSE(ladder.contains(1.55));
}

TEST(FrequencyLadder, AtLeastRoundsUpAndSaturates)
{
    const FrequencyLadder ladder;
    EXPECT_DOUBLE_EQ(ladder.atLeast(0.3), 1.2);
    EXPECT_DOUBLE_EQ(ladder.atLeast(1.21), 1.3);
    EXPECT_DOUBLE_EQ(ladder.atLeast(1.3), 1.3);
    EXPECT_DOUBLE_EQ(ladder.atLeast(5.0), 2.7);
}

TEST(WorkModel, CyclesAreLinearInWork)
{
    const WorkModel model;
    SearchWork work;
    work.postingsScored = 1000;
    work.docsScored = 400;
    work.postingsSkipped = 2000;
    const double cycles = model.cycles(work);
    EXPECT_DOUBLE_EQ(cycles, model.baseCycles +
                                 model.cyclesPerPosting * 1000 +
                                 model.cyclesPerDoc * 400 +
                                 model.cyclesPerSkip * 2000);
    // Doubling frequency halves service time.
    EXPECT_NEAR(model.serviceSeconds(work, 1.2),
                2.0 * model.serviceSeconds(work, 2.4), 1e-15);
}

TEST(PowerModel, FrequencyCubeScaling)
{
    const PowerModel power;
    EXPECT_NEAR(power.busyWatts(2.1), power.busyWattsAtReference, 1e-12);
    const double ratio = power.busyWatts(2.7) / power.busyWatts(2.1);
    EXPECT_NEAR(ratio, std::pow(2.7 / 2.1, 3.0), 1e-12);
    // Slowing down saves power.
    EXPECT_LT(power.busyWatts(1.2), power.busyWatts(2.1));
}

TEST(PowerModel, CalibrationMatchesFig14OperatingPoints)
{
    // The default experiment's exhaustive replay keeps ~8 of 16 ISNs
    // busy on average; that operating point should land near the
    // paper's 36 W exhaustive-search package power.
    const PowerModel power;
    const double seconds = 100.0;
    const double busyEnergy = 8.0 * power.busyWatts(2.1) * seconds;
    const double watts = power.averagePowerWatts(busyEnergy, seconds);
    EXPECT_NEAR(watts, 36.0, 0.75);
    EXPECT_NEAR(power.averagePowerWatts(0.0, seconds), 14.53, 1e-9);
}

TEST(IsnServer, IdleServerStartsImmediately)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    // 2.1e9 cycles at 2.1 GHz = 1 second.
    const IsnExecution exec = server.execute(5.0, 2.1e9, 2.1, kInf);
    EXPECT_DOUBLE_EQ(exec.startSeconds, 5.0);
    EXPECT_NEAR(exec.finishSeconds, 6.0, 1e-12);
    EXPECT_TRUE(exec.completed);
    EXPECT_NEAR(server.busySeconds(), 1.0, 1e-12);
}

TEST(IsnServer, FifoQueueingDelaysSecondRequest)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    server.execute(0.0, 2.1e9, 2.1, kInf); // busy until t=1
    const IsnExecution second = server.execute(0.2, 1.05e9, 2.1, kInf);
    EXPECT_NEAR(second.startSeconds, 1.0, 1e-12);
    EXPECT_NEAR(second.finishSeconds, 1.5, 1e-12);
    EXPECT_NEAR(server.backlogSeconds(1.2), 0.3, 1e-12);
    EXPECT_DOUBLE_EQ(server.backlogSeconds(9.9), 0.0);
}

TEST(IsnServer, BoostShortensService)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    const IsnExecution slow = server.execute(0.0, 2.7e9, 1.2, kInf);
    server.reset();
    const IsnExecution fast = server.execute(0.0, 2.7e9, 2.7, kInf);
    EXPECT_NEAR(slow.busySeconds / fast.busySeconds, 2.7 / 1.2, 1e-9);
}

TEST(IsnServer, DeadlineTruncatesWork)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    // Needs 1s, deadline at 0.4s.
    const IsnExecution exec = server.execute(0.0, 2.1e9, 2.1, 0.4);
    EXPECT_FALSE(exec.completed);
    EXPECT_NEAR(exec.finishSeconds, 0.4, 1e-12);
    EXPECT_NEAR(exec.busySeconds, 0.4, 1e-12);
    EXPECT_EQ(server.requestsTruncated(), 1u);
    // A deadline already passed at queue head: no work at all.
    const IsnExecution dead = server.execute(0.0, 2.1e9, 2.1, 0.2);
    EXPECT_FALSE(dead.completed);
    EXPECT_DOUBLE_EQ(dead.busySeconds, 0.0);
}

TEST(IsnServer, DeadlineBeforeQueueDrainsDoesNoWork)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    server.execute(0.0, 4.2e9, 2.1, kInf); // busy until t=2
    // Second request's deadline passes while it is still queued: the
    // worker never touches it — zero busy-seconds, zero fraction.
    const IsnExecution starved = server.execute(0.1, 2.1e9, 2.1, 1.5);
    EXPECT_FALSE(starved.completed);
    EXPECT_DOUBLE_EQ(starved.busySeconds, 0.0);
    EXPECT_DOUBLE_EQ(starved.completedFraction, 0.0);
    EXPECT_NEAR(starved.startSeconds, 2.0, 1e-12);
    EXPECT_NEAR(starved.finishSeconds, 2.0, 1e-12);
    EXPECT_EQ(server.requestsTruncated(), 1u);
    // Energy was only charged for actual busy intervals.
    EXPECT_NEAR(server.busySeconds(), 2.0, 1e-12);
}

TEST(IsnServer, FinishExactlyAtDeadlineCompletes)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    // 2.1e9 cycles at 2.1 GHz = 1 s; deadline exactly at the finish.
    const IsnExecution exec = server.execute(0.0, 2.1e9, 2.1, 1.0);
    EXPECT_TRUE(exec.completed);
    EXPECT_DOUBLE_EQ(exec.completedFraction, 1.0);
    EXPECT_NEAR(exec.finishSeconds, 1.0, 1e-12);
    EXPECT_EQ(server.requestsTruncated(), 0u);
}

TEST(IsnServer, ZeroCycleRequests)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    // Zero work on an idle server completes instantly, even with a
    // deadline at the arrival instant.
    const IsnExecution instant = server.execute(1.0, 0.0, 2.1, 1.0);
    EXPECT_TRUE(instant.completed);
    EXPECT_DOUBLE_EQ(instant.busySeconds, 0.0);
    EXPECT_DOUBLE_EQ(instant.completedFraction, 1.0);
    EXPECT_DOUBLE_EQ(instant.finishSeconds, 1.0);

    // Zero work behind a backlog that outlives the deadline: truncated
    // with fraction 0 (not a 0/0 NaN).
    server.execute(1.0, 4.2e9, 2.1, kInf); // busy until t=3
    const IsnExecution starved = server.execute(1.0, 0.0, 2.1, 2.0);
    EXPECT_FALSE(starved.completed);
    EXPECT_DOUBLE_EQ(starved.busySeconds, 0.0);
    EXPECT_DOUBLE_EQ(starved.completedFraction, 0.0);
    EXPECT_EQ(server.requestsTruncated(), 1u);
}

TEST(IsnServer, TruncatedCounterAccumulatesAndFractionIsProportional)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    // Needs 1 s, cut off at 0.25 s: a quarter of the service fit.
    const IsnExecution quarter = server.execute(0.0, 2.1e9, 2.1, 0.25);
    EXPECT_FALSE(quarter.completed);
    EXPECT_NEAR(quarter.completedFraction, 0.25, 1e-12);
    server.reset();
    EXPECT_EQ(server.requestsTruncated(), 0u);
    // Three consecutive misses count individually.
    server.execute(0.0, 2.1e9, 2.1, 0.5);
    server.execute(0.0, 2.1e9, 2.1, 0.6);
    server.execute(0.0, 2.1e9, 2.1, 0.7);
    EXPECT_EQ(server.requestsTruncated(), 3u);
    EXPECT_EQ(server.requestsServed(), 3u);
}

TEST(IsnServer, ZeroProgressIsCountedApartFromMidServiceTruncation)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);

    // Mid-service truncation: the worker started but was cut off.
    // Truncated, yes — but it made progress, so not zero-progress.
    server.execute(0.0, 2.1e9, 2.1, 0.4);
    EXPECT_EQ(server.requestsTruncated(), 1u);
    EXPECT_EQ(server.requestsZeroProgress(), 0u);

    // Starved in the queue: the deadline expired before the worker
    // freed up (the long request ahead holds the core until t=2.4).
    server.execute(0.0, 4.2e9, 2.1, kInf); // busy until 2.4
    const IsnExecution starved = server.execute(0.5, 2.1e9, 2.1, 1.0);
    EXPECT_DOUBLE_EQ(starved.busySeconds, 0.0);
    EXPECT_EQ(server.requestsTruncated(), 2u);
    EXPECT_EQ(server.requestsZeroProgress(), 1u);

    // A completed request moves neither counter; reset clears both.
    server.execute(10.0, 2.1e9, 2.1, kInf);
    EXPECT_EQ(server.requestsTruncated(), 2u);
    EXPECT_EQ(server.requestsZeroProgress(), 1u);
    server.reset();
    EXPECT_EQ(server.requestsZeroProgress(), 0u);
    EXPECT_EQ(server.requestsTruncated(), 0u);
}

TEST(WorkModel, DocsCapRoundsHalfToEven)
{
    const WorkModel model;
    SearchWork work;

    // Exact halves break toward the even neighbor, not always up.
    work.docsScored = 5;
    EXPECT_EQ(model.docsCapForFraction(work, 0.5), 2u); // 2.5 -> 2
    work.docsScored = 7;
    EXPECT_EQ(model.docsCapForFraction(work, 0.5), 4u); // 3.5 -> 4
    work.docsScored = 8;
    EXPECT_EQ(model.docsCapForFraction(work, 0.5), 4u); // exact

    // Off-half remainders round to nearest as usual.
    work.docsScored = 1000;
    EXPECT_EQ(model.docsCapForFraction(work, 0.2501), 250u);
    EXPECT_EQ(model.docsCapForFraction(work, 0.2499), 250u);
}

TEST(WorkModel, DocsCapRecoversFullPrefixNearFractionOne)
{
    // The regression this rounding fixes: a completedFraction of
    // 1 - epsilon (float division when the deadline lands a hair
    // before the finish) must not cap a fully scored list one short.
    const WorkModel model;
    SearchWork work;
    work.docsScored = 1000;
    EXPECT_EQ(model.docsCapForFraction(work, 1.0 - 1e-12), 1000u);
    EXPECT_EQ(model.docsCapForFraction(work, 1.0), 1000u);
    EXPECT_EQ(model.docsCapForFraction(work, 2.0), 1000u);
    EXPECT_EQ(model.docsCapForFraction(work, 0.0), 0u);
    EXPECT_EQ(model.docsCapForFraction(work, -0.5), 0u);
}

TEST(IsnServer, EnergyMatchesBusyIntervalsTimesPower)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    server.execute(0.0, 2.1e9, 2.1, kInf); // 1 s at reference power
    server.execute(0.0, 2.7e9, 2.7, kInf); // 1 s at boosted power
    const double expected =
        1.0 * power.busyWatts(2.1) + 1.0 * power.busyWatts(2.7);
    EXPECT_NEAR(server.energyJoules(), expected, 1e-9);
}

TEST(IsnServer, ResetClearsEverything)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    server.execute(0.0, 1e9, 2.1, 0.1);
    server.setCurrentFreqGhz(2.7);
    server.reset();
    EXPECT_DOUBLE_EQ(server.busyUntilSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(server.energyJoules(), 0.0);
    EXPECT_EQ(server.requestsServed(), 0u);
    EXPECT_EQ(server.requestsTruncated(), 0u);
    EXPECT_DOUBLE_EQ(server.currentFreqGhz(), 2.1);
}

TEST(IsnServer, MultipleWorkersServeInParallel)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim single(ladder, power, 1);
    IsnServerSim dual(ladder, power, 2);
    EXPECT_EQ(dual.workers(), 2u);

    // Two 1-second requests arriving together: the dual-worker server
    // finishes both at t=1, the single-worker at t=2.
    for (IsnServerSim *server : {&single, &dual}) {
        server->execute(0.0, 2.1e9, 2.1, kInf);
        server->execute(0.0, 2.1e9, 2.1, kInf);
    }
    EXPECT_NEAR(single.busyUntilSeconds(), 2.0, 1e-12);
    EXPECT_NEAR(dual.busyUntilSeconds(), 1.0, 1e-12);
    // Same total energy either way (same work).
    EXPECT_NEAR(single.energyJoules(), dual.energyJoules(), 1e-9);
    // Backlog: a request arriving now at the dual server waits for the
    // earliest worker.
    EXPECT_NEAR(dual.backlogSeconds(0.5), 0.5, 1e-12);
    EXPECT_NEAR(single.backlogSeconds(0.5), 1.5, 1e-12);
}

TEST(IsnServer, WorkersResetTogether)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power, 3);
    server.execute(0.0, 1e9, 2.1, kInf);
    server.execute(0.0, 1e9, 2.1, kInf);
    server.reset();
    EXPECT_DOUBLE_EQ(server.busyUntilSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(server.backlogSeconds(0.0), 0.0);
}

TEST(IsnServerGangs, GangBacklogStartsAtCthEarliestWorker)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power, 4);
    // Two single-core requests occupy two workers until t=1; the
    // other two sit idle.
    server.execute(0.0, 2.1e9, 2.1, kInf);
    server.execute(0.0, 2.1e9, 2.1, kInf);
    EXPECT_DOUBLE_EQ(server.backlogSeconds(0.0, 1), 0.0);
    EXPECT_DOUBLE_EQ(server.backlogSeconds(0.0, 2), 0.0);
    // A 3-gang needs a third worker, which only frees at t=1 — the
    // single-core backlog (0) would underestimate its queueing.
    EXPECT_NEAR(server.backlogSeconds(0.0, 3), 1.0, 1e-12);
    EXPECT_NEAR(server.backlogSeconds(0.0, 4), 1.0, 1e-12);
    // The scalar overload stays the cores=1 case.
    EXPECT_DOUBLE_EQ(server.backlogSeconds(0.0),
                     server.backlogSeconds(0.0, 1));
}

TEST(IsnServerGangs, GangSpeedsUpServiceAndSplitsPower)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power, 4);
    // 2.1e9 cycles at 2.1 GHz = 1 s on one core; a 4-gang divides by
    // the sublinear S(4), occupies 4 workers, and draws the
    // McPAT-style split P_uncore + 4 * P_dyn(f) for its busy window.
    const double s4 = server.speedupCurve().speedup(4);
    const IsnExecution exec = server.execute(0.0, 2.1e9, 2.1, kInf, 4);
    EXPECT_EQ(exec.cores, 4u);
    EXPECT_TRUE(exec.completed);
    EXPECT_NEAR(exec.busySeconds, 1.0 / s4, 1e-12);
    EXPECT_NEAR(exec.energyJoules,
                exec.busySeconds * power.activePowerWatts(2.1, 4),
                1e-9);
    // Core-busy-seconds charge all four workers...
    EXPECT_NEAR(server.busySeconds(), 4.0 / s4, 1e-12);
    // ...and a single-core request arriving mid-gang finds NO idle
    // worker: the gang really spans the node.
    EXPECT_NEAR(server.backlogSeconds(0.0, 1), exec.finishSeconds,
                1e-12);
    EXPECT_NEAR(server.energyJoules(), exec.energyJoules, 1e-12);
}

TEST(IsnServerGangs, SingleCoreGangIsByteIdenticalToScalarPath)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim scalar(ladder, power, 2);
    IsnServerSim gang(ladder, power, 2);
    const IsnExecution a = scalar.execute(0.5, 1.3e9, 1.8, 2.0);
    const IsnExecution b = gang.execute(0.5, 1.3e9, 1.8, 2.0, 1);
    EXPECT_EQ(a.startSeconds, b.startSeconds);
    EXPECT_EQ(a.finishSeconds, b.finishSeconds);
    EXPECT_EQ(a.busySeconds, b.busySeconds);
    EXPECT_EQ(a.completedFraction, b.completedFraction);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.cores, b.cores);
}

TEST(Cluster, AggregatesAcrossIsns)
{
    ClusterSim cluster(4, FrequencyLadder(), PowerModel());
    EXPECT_EQ(cluster.numIsns(), 4u);
    cluster.isn(0).execute(0.0, 2.1e9, 2.1, kInf);
    cluster.isn(3).execute(0.0, 2.1e9, 2.1, kInf);
    EXPECT_NEAR(cluster.totalBusySeconds(), 2.0, 1e-12);
    const double expectedPower =
        14.53 + 2.0 * cluster.power().busyWatts(2.1) / 10.0;
    EXPECT_NEAR(cluster.averagePowerWatts(10.0), expectedPower, 1e-9);
    cluster.reset();
    EXPECT_DOUBLE_EQ(cluster.totalEnergyJoules(), 0.0);
}

TEST(Cluster, NetworkDefaultsAreMicroseconds)
{
    const ClusterSim cluster(2, FrequencyLadder(), PowerModel());
    EXPECT_LT(cluster.network().rttSeconds, 1e-3);
    EXPECT_GT(cluster.network().rttSeconds, 0.0);
}

} // namespace
} // namespace cottage
