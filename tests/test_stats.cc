/**
 * @file
 * Unit tests for the stats module: running summaries, percentiles,
 * histograms, the Gamma distribution (pdf/cdf/quantile/fits) and the
 * Kolmogorov-Smirnov distance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/gamma.h"
#include "stats/histogram.h"
#include "stats/ks.h"
#include "stats/summary.h"
#include "util/rng.h"

namespace cottage {
namespace {

TEST(RunningStat, MatchesDirectComputation)
{
    const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStat stat;
    for (double v : data)
        stat.add(v);
    EXPECT_EQ(stat.count(), data.size());
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential)
{
    Rng rng(21);
    RunningStat whole;
    RunningStat partA;
    RunningStat partB;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(3.0, 2.0);
        whole.add(v);
        (i % 2 == 0 ? partA : partB).add(v);
    }
    partA.merge(partB);
    EXPECT_EQ(partA.count(), whole.count());
    EXPECT_NEAR(partA.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(partA.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(partA.min(), whole.min());
    EXPECT_DOUBLE_EQ(partA.max(), whole.max());
}

TEST(Percentile, InterpolatesBetweenRanks)
{
    const std::vector<double> data = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(data, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(data, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(data, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(percentile(data, 0.25), 17.5);
}

TEST(Percentile, HandlesDegenerateInputs)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({3.0}, 0.95), 3.0);
}

TEST(Means, ArithmeticGeometricHarmonicOrdering)
{
    const std::vector<double> data = {1.0, 2.0, 4.0, 8.0};
    const double a = mean(data);
    const double g = geometricMean(data);
    const double h = harmonicMean(data);
    EXPECT_DOUBLE_EQ(a, 3.75);
    EXPECT_NEAR(g, std::pow(64.0, 0.25), 1e-12);
    EXPECT_NEAR(h, 4.0 / (1.0 + 0.5 + 0.25 + 0.125), 1e-12);
    EXPECT_GT(a, g);
    EXPECT_GT(g, h);
}

TEST(Means, NonPositiveInputsYieldZero)
{
    EXPECT_DOUBLE_EQ(geometricMean({1.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, -1.0}), 0.0);
}

TEST(Histogram, LinearBinningAndSaturation)
{
    Histogram hist = Histogram::linear(0.0, 10.0, 5);
    hist.add(-5.0);  // below range -> first bin
    hist.add(0.0);
    hist.add(3.9);
    hist.add(9.99);
    hist.add(10.0);  // at hi -> last bin
    hist.add(100.0); // above range -> last bin
    EXPECT_EQ(hist.totalCount(), 6u);
    EXPECT_EQ(hist.count(0), 2u);
    EXPECT_EQ(hist.count(1), 1u);
    EXPECT_EQ(hist.count(4), 3u);
    EXPECT_DOUBLE_EQ(hist.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(hist.binHigh(1), 4.0);
    EXPECT_DOUBLE_EQ(hist.binCenter(1), 3.0);
    EXPECT_NEAR(hist.fraction(4), 0.5, 1e-12);
}

TEST(Histogram, LogBinningEdgesGrowGeometrically)
{
    Histogram hist = Histogram::logarithmic(1.0, 100.0, 2);
    EXPECT_NEAR(hist.binHigh(0), 10.0, 1e-9);
    EXPECT_NEAR(hist.binLow(1), 10.0, 1e-9);
    hist.add(5.0);
    hist.add(50.0);
    hist.add(0.5); // below lo -> first bin
    EXPECT_EQ(hist.count(0), 2u);
    EXPECT_EQ(hist.count(1), 1u);
}

TEST(Histogram, AsciiRenderingContainsBars)
{
    Histogram hist = Histogram::linear(0.0, 2.0, 2);
    for (int i = 0; i < 10; ++i)
        hist.add(0.5);
    hist.add(1.5);
    const std::string ascii = hist.toAscii(10);
    EXPECT_NE(ascii.find("##########"), std::string::npos);
}

TEST(Gamma, RegularizedGammaKnownValues)
{
    // P(1, x) = 1 - exp(-x).
    for (double x : {0.1, 1.0, 3.0, 10.0})
        EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
    // Q + P = 1.
    EXPECT_NEAR(regularizedGammaP(2.5, 3.0) + regularizedGammaQ(2.5, 3.0),
                1.0, 1e-12);
    EXPECT_DOUBLE_EQ(regularizedGammaP(2.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(regularizedGammaQ(2.0, 0.0), 1.0);
}

TEST(Gamma, DigammaKnownValues)
{
    const double eulerGamma = 0.5772156649015329;
    EXPECT_NEAR(digamma(1.0), -eulerGamma, 1e-9);
    // psi(x + 1) = psi(x) + 1/x.
    EXPECT_NEAR(digamma(2.0), -eulerGamma + 1.0, 1e-9);
    EXPECT_NEAR(digamma(0.5), -eulerGamma - 2.0 * std::log(2.0), 1e-8);
}

TEST(Gamma, PdfIntegratesToCdf)
{
    const GammaDistribution dist(3.0, 2.0);
    // Trapezoidal integral of the pdf vs the analytic cdf.
    const double upper = 10.0;
    const int steps = 20000;
    double integral = 0.0;
    for (int i = 0; i < steps; ++i) {
        const double x0 = upper * i / steps;
        const double x1 = upper * (i + 1) / steps;
        integral += 0.5 * (dist.pdf(x0) + dist.pdf(x1)) * (x1 - x0);
    }
    EXPECT_NEAR(integral, dist.cdf(upper), 1e-6);
}

TEST(Gamma, ShapeOneIsExponential)
{
    const GammaDistribution dist(1.0, 4.0);
    for (double x : {0.5, 2.0, 8.0}) {
        EXPECT_NEAR(dist.cdf(x), 1.0 - std::exp(-x / 4.0), 1e-10);
        EXPECT_NEAR(dist.survival(x), std::exp(-x / 4.0), 1e-10);
    }
}

TEST(Gamma, MomentsAndQuantileInverse)
{
    const GammaDistribution dist(5.0, 1.5);
    EXPECT_DOUBLE_EQ(dist.mean(), 7.5);
    EXPECT_DOUBLE_EQ(dist.variance(), 11.25);
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
        const double x = dist.quantile(p);
        EXPECT_NEAR(dist.cdf(x), p, 1e-8) << "p " << p;
    }
}

TEST(Gamma, FitMomentsRecoversParameters)
{
    const GammaDistribution fit = GammaDistribution::fitMoments(6.0, 12.0);
    EXPECT_NEAR(fit.shape(), 3.0, 1e-12);
    EXPECT_NEAR(fit.scale(), 2.0, 1e-12);
}

TEST(Gamma, FitMomentsDegenerateInputs)
{
    // Must not crash; must produce a valid distribution.
    const GammaDistribution a = GammaDistribution::fitMoments(0.0, 0.0);
    EXPECT_GT(a.shape(), 0.0);
    const GammaDistribution b = GammaDistribution::fitMoments(5.0, 0.0);
    EXPECT_NEAR(b.mean(), 5.0, 1e-6);
}

TEST(Gamma, FitMleOnSampledData)
{
    Rng rng(22);
    // Sample Gamma(4, 2) as a sum of 4 exponentials of scale 2.
    std::vector<double> sample;
    for (int i = 0; i < 20000; ++i) {
        double x = 0.0;
        for (int j = 0; j < 4; ++j)
            x += rng.exponential(0.5);
        sample.push_back(x);
    }
    const GammaDistribution fit = GammaDistribution::fitMle(sample);
    EXPECT_NEAR(fit.shape(), 4.0, 0.2);
    EXPECT_NEAR(fit.scale(), 2.0, 0.12);
}

TEST(Gamma, FitMleFallsBackOnDegenerateData)
{
    const GammaDistribution fit =
        GammaDistribution::fitMle({3.0, 3.0, 3.0, 3.0});
    EXPECT_NEAR(fit.mean(), 3.0, 1e-3);
}

TEST(Ks, ZeroForPerfectFit)
{
    // Empirical CDF of a sample against its own empirical CDF must be
    // within 1/n.
    const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0};
    const double d = ksDistance(sample, [](double x) {
        if (x < 1.0) return 0.0;
        if (x >= 4.0) return 1.0;
        return (x - 0.0) / 4.0; // crude but close
    });
    EXPECT_LE(d, 0.26);
}

TEST(Ks, DetectsGrossMisfit)
{
    std::vector<double> sample(100, 10.0); // point mass at 10
    const double d =
        ksDistance(sample, [](double x) { return x < 100.0 ? 0.0 : 1.0; });
    EXPECT_GT(d, 0.9);
}

TEST(Ks, EmptySampleIsZero)
{
    EXPECT_DOUBLE_EQ(ksDistance({}, [](double) { return 0.5; }), 0.0);
}

TEST(Ks, GammaSampleMatchesItsOwnCdf)
{
    Rng rng(23);
    std::vector<double> sample;
    for (int i = 0; i < 5000; ++i) {
        double x = 0.0;
        for (int j = 0; j < 3; ++j)
            x += rng.exponential(1.0);
        sample.push_back(x);
    }
    const GammaDistribution dist(3.0, 1.0);
    const double d =
        ksDistance(sample, [&](double x) { return dist.cdf(x); });
    EXPECT_LT(d, 0.03); // n = 5000 -> KS stat ~ 1.36/sqrt(n) ~ 0.02
}

} // namespace
} // namespace cottage
