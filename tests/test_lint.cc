/**
 * @file
 * cottage_lint contract tests.
 *
 * Drives the checker library against the known-bad fixtures under
 * tools/cottage_lint/fixtures/ — one per rule, each of which must
 * produce exactly the documented diagnostic — plus a known-good file
 * that must pass and the suppression-policy fixtures. Inline-content
 * cases pin the tokenizer edge cases the rules depend on (strings and
 * comments never match, `= delete` is not a raw delete, test files are
 * exempt from the non-test rules, headers feed the project-wide D1
 * name set).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli.h"
#include "lexer.h"
#include "lint.h"
#include "symbol_index.h"

using cottage::lint::Diagnostic;
using cottage::lint::lintContent;
using cottage::lint::Linter;

namespace {

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(COTTAGE_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
rulesOf(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> rules;
    rules.reserve(diags.size());
    for (const Diagnostic &d : diags)
        rules.push_back(d.rule);
    return rules;
}

// --- Fixture contract: one documented diagnostic per bad fixture ----

TEST(LintFixtures, D1HashIterationFlagged)
{
    const auto diags =
        lintContent("src/fixture/d1_bad.cc", readFixture("d1_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_NE(diags[0].message.find("hash container"), std::string::npos);
}

TEST(LintFixtures, D2WallClockFlagged)
{
    const auto diags =
        lintContent("src/fixture/d2_bad.cc", readFixture("d2_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
    EXPECT_EQ(diags[0].line, 8);
}

TEST(LintFixtures, D3FloatInScorePathFlagged)
{
    // Rule scoping comes from the virtual path: the same content under
    // src/index/ is a finding, under src/text/ it is not.
    const auto content = readFixture("d3_bad.cc");
    const auto inIndex = lintContent("src/index/d3_bad.cc", content);
    ASSERT_EQ(inIndex.size(), 1u);
    EXPECT_EQ(inIndex[0].rule, "D3");
    EXPECT_EQ(inIndex[0].line, 7);

    EXPECT_TRUE(lintContent("src/text/d3_bad.cc", content).empty());
}

TEST(LintFixtures, D4AssertFlagged)
{
    const auto diags =
        lintContent("src/fixture/d4_bad.cc", readFixture("d4_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D4");
    EXPECT_EQ(diags[0].line, 8);
    EXPECT_NE(diags[0].message.find("COTTAGE_CHECK"), std::string::npos);
}

TEST(LintFixtures, D5DefaultComparatorFlagged)
{
    const auto diags =
        lintContent("src/fixture/d5_bad.cc", readFixture("d5_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D5");
    EXPECT_EQ(diags[0].line, 9);
}

TEST(LintFixtures, D6IntrinsicOutsideCodecDirFlagged)
{
    const auto diags =
        lintContent("src/fixture/d6_bad.cc", readFixture("d6_bad.cc"));
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "D6");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_EQ(diags[1].rule, "D6");
    EXPECT_EQ(diags[1].line, 9);
}

TEST(LintFixtures, D6IntrinsicInsideCodecDirAllowed)
{
    // The identical content under src/index/ is the sanctioned home
    // for vector kernels — no finding.
    const auto diags =
        lintContent("src/index/block_codec.cc", readFixture("d6_bad.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, GoodFilePasses)
{
    const auto diags =
        lintContent("src/fixture/good.cc", readFixture("good.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, UnjustifiedSuppressionIsItselfAnError)
{
    const auto diags = lintContent("src/fixture/suppress_nojust.cc",
                                   readFixture("suppress_nojust.cc"));
    // The bad allow() is reported AND the underlying finding stays.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "SUP");
    EXPECT_EQ(diags[0].line, 10);
    EXPECT_EQ(diags[1].rule, "D1");
    EXPECT_EQ(diags[1].line, 11);
}

TEST(LintFixtures, JustifiedSuppressionSilencesTheFinding)
{
    const auto diags = lintContent("src/fixture/suppress_ok.cc",
                                   readFixture("suppress_ok.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

// --- Tokenizer edge cases the rules depend on -----------------------

TEST(LintTokenizer, StringsAndCommentsNeverMatch)
{
    const char *src = R"(
const char *msg = "assert(x) and rand() and steady_clock";
// a comment mentioning assert(x >= 0) and new int[3]
/* block comment: for (auto &e : someUnorderedMap) {} */
int x = 0;
)";
    EXPECT_TRUE(lintContent("src/a/strings.cc", src).empty());
}

TEST(LintTokenizer, RawStringLiteralIsOpaque)
{
    const char *src = "const char *json = R\"({\"clock\": "
                      "\"steady_clock\", \"call\": \"rand()\"})\";\n";
    EXPECT_TRUE(lintContent("src/a/raw.cc", src).empty());
}

TEST(LintTokenizer, PreprocessorLinesAreSkipped)
{
    const char *src = "#include <unordered_map>\n"
                      "#define TICK() time(nullptr)\n"
                      "int y = 1;\n";
    EXPECT_TRUE(lintContent("src/a/pp.cc", src).empty());
}

TEST(LintTokenizer, DigitSeparatorDoesNotOpenCharLiteral)
{
    const char *src = "const long big = 1'000'000; int z = 2;\n";
    EXPECT_TRUE(lintContent("src/a/sep.cc", src).empty());
}

// --- Rule-specific semantics ----------------------------------------

TEST(LintRules, ClassicForOverMapIsNotRangeIteration)
{
    // Classic for with iterators is still iteration, but the rule
    // targets range-for (the idiom the codebase uses); a classic
    // three-clause loop over indices must not trip on the map name.
    const char *src = R"(
#include <unordered_map>
int count(const std::unordered_map<int, int> &m)
{
    int n = 0;
    for (int i = 0; i < 3; ++i)
        n += static_cast<int>(m.count(i));
    return n;
}
)";
    EXPECT_TRUE(lintContent("src/a/classic.cc", src).empty());
}

TEST(LintRules, HeaderDeclarationFlagsIterationInOtherFile)
{
    Linter linter;
    linter.addFile("src/a/store.h",
                   "#include <unordered_map>\n"
                   "struct Store { std::unordered_map<int, int> "
                   "byId_; };\n");
    linter.addFile("src/a/store.cc",
                   "#include \"store.h\"\n"
                   "int sum(const Store &s)\n"
                   "{\n"
                   "    int t = 0;\n"
                   "    for (const auto &e : s.byId_)\n"
                   "        t += e.second;\n"
                   "    return t;\n"
                   "}\n");
    const auto diags = linter.run();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].file, "src/a/store.cc");
    EXPECT_EQ(diags[0].line, 5);
}

TEST(LintRules, TestFilesExemptFromNonTestRules)
{
    const char *src = R"(
#include <algorithm>
#include <unordered_map>
#include <vector>
void f(std::unordered_map<int, int> &m, std::vector<int *> &v)
{
    for (const auto &e : m)
        (void)e;
    std::sort(v.begin(), v.end());
    int *p = new int(3);
    delete p;
}
)";
    EXPECT_TRUE(lintContent("tests/test_sample.cc", src).empty());
    // The same content in src/ carries D1 + D5 + two D4s.
    const auto rules = rulesOf(lintContent("src/a/sample.cc", src));
    EXPECT_EQ(rules, (std::vector<std::string>{"D1", "D5", "D4", "D4"}));
}

TEST(LintRules, D2AllowlistedFilesAreExempt)
{
    const char *src = "#include <chrono>\n"
                      "using Clock = std::chrono::steady_clock;\n";
    EXPECT_TRUE(lintContent("src/util/stopwatch.h", src).empty());
    EXPECT_FALSE(lintContent("src/sim/clock.h", src).empty());

    const char *rng = "#include <random>\n"
                      "std::random_device seedSource;\n";
    EXPECT_TRUE(lintContent("src/util/rng.cc", rng).empty());
    EXPECT_FALSE(lintContent("src/util/zipf.cc", rng).empty());
}

TEST(LintRules, DeletedSpecialMembersAreNotRawDelete)
{
    const char *src = R"(
struct NoCopy
{
    NoCopy(const NoCopy &) = delete;
    NoCopy &operator=(const NoCopy &) = delete;
};
)";
    EXPECT_TRUE(lintContent("src/a/nocopy.cc", src).empty());
}

TEST(LintRules, StaticAssertAndCottageCheckAreFine)
{
    const char *src = "static_assert(sizeof(int) == 4);\n"
                      "void g(int x) { COTTAGE_CHECK(x >= 0); }\n";
    EXPECT_TRUE(lintContent("src/a/checks.cc", src).empty());
}

TEST(LintRules, SortWithComparatorPasses)
{
    const char *src = R"(
#include <algorithm>
#include <functional>
#include <vector>
void h(std::vector<double> &v)
{
    std::sort(v.begin(), v.end(), std::less<double>());
    std::stable_sort(v.begin(), v.end(),
                     [](double a, double b) { return a < b; });
}
)";
    EXPECT_TRUE(lintContent("src/a/sorts.cc", src).empty());
}

TEST(LintRules, StableSortWithoutComparatorFlagged)
{
    const char *src = "#include <algorithm>\n"
                      "#include <vector>\n"
                      "void h(std::vector<int> &v)\n"
                      "{ std::stable_sort(v.begin(), v.end()); }\n";
    const auto diags = lintContent("src/a/ss.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D5");
}

TEST(LintRules, MemberSortIsNotStdSort)
{
    // list.sort() (e.g. std::list) only matches when qualified std::.
    const char *src = "#include <list>\n"
                      "void h(std::list<int> &l) { l.sort(); }\n";
    EXPECT_TRUE(lintContent("src/a/memsort.cc", src).empty());
}

// --- Suppression policy ---------------------------------------------

TEST(LintSuppressions, TrailingCommentGuardsItsOwnLine)
{
    const char *src =
        "#include <unordered_map>\n"
        "int f(const std::unordered_map<int, int> &m)\n"
        "{\n"
        "    int t = 0;\n"
        "    for (const auto &e : m) // cottage-lint: allow(D1): "
        "commutative sum over values\n"
        "        t += e.second;\n"
        "    return t;\n"
        "}\n";
    EXPECT_TRUE(lintContent("src/a/trail.cc", src).empty());
}

TEST(LintSuppressions, UnknownRuleIdIsAnError)
{
    const char *src = "// cottage-lint: allow(D42): not a real rule id\n"
                      "int x = 0;\n";
    const auto diags = lintContent("src/a/unknown.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "SUP");
    EXPECT_NE(diags[0].message.find("D42"), std::string::npos);
}

TEST(LintSuppressions, AllowOnlySilencesTheNamedRule)
{
    // A D1 allow must not hide the D5 on the same line.
    const char *src =
        "#include <algorithm>\n"
        "#include <vector>\n"
        "void f(std::vector<int *> &v)\n"
        "{\n"
        "    // cottage-lint: allow(D1): wrong rule for the line below\n"
        "    std::sort(v.begin(), v.end());\n"
        "}\n";
    const auto diags = lintContent("src/a/wrongrule.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D5");
}


// --- Flow-rule fixtures (D7-D9) -------------------------------------

TEST(LintFixtures, D7MeasuredWriteInsideHookGuardFlagged)
{
    const auto diags =
        lintContent("src/engine/d7_bad.cc", readFixture("d7_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D7");
    EXPECT_EQ(diags[0].line, 13);
    EXPECT_NE(diags[0].message.find("hook guard"), std::string::npos);
}

TEST(LintFixtures, D7GuardedReadsAndLocalsPass)
{
    const auto diags =
        lintContent("src/engine/d7_good.cc", readFixture("d7_good.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, D7JustifiedSuppressionSilences)
{
    const auto diags = lintContent("src/engine/d7_suppressed.cc",
                                   readFixture("d7_suppressed.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, D8RefCapturedAccumulatorFlagged)
{
    const auto diags =
        lintContent("src/harness/d8_bad.cc", readFixture("d8_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D8");
    EXPECT_EQ(diags[0].line, 10);
    EXPECT_NE(diags[0].message.find("gang-shared"), std::string::npos);
}

TEST(LintFixtures, D8IndexedSlotWritePasses)
{
    const auto diags =
        lintContent("src/harness/d8_good.cc", readFixture("d8_good.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, D8JustifiedSuppressionSilences)
{
    const auto diags = lintContent("src/harness/d8_suppressed.cc",
                                   readFixture("d8_suppressed.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, D9DefaultSeedFlagged)
{
    const auto diags =
        lintContent("src/policy/d9_bad.cc", readFixture("d9_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D9");
    EXPECT_EQ(diags[0].line, 7);
    EXPECT_NE(diags[0].message.find("seed"), std::string::npos);
}

TEST(LintFixtures, D9ExplicitSeedParameterPasses)
{
    const auto diags =
        lintContent("src/policy/d9_good.cc", readFixture("d9_good.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, D9JustifiedSuppressionSilences)
{
    const auto diags = lintContent("src/policy/d9_suppressed.cc",
                                   readFixture("d9_suppressed.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, D9TestFilesExempt)
{
    // Tests seed ad hoc all the time; the provenance rule is for
    // src/ and bench/ only.
    const auto diags =
        lintContent("tests/d9_bad.cc", readFixture("d9_bad.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintRules, D7HookEntryReachingMeasuredWriteFlagged)
{
    // The measured class lives in src/engine; a QueryTracer method in
    // another TU writing it through a pointer is a hook-purity break.
    Linter linter;
    linter.addFile("src/engine/counters.h",
                   "class Counters { public: long scored_ = 0; };\n");
    linter.addFile("src/obs/tracer_ext.cc",
                   "#include \"counters.h\"\n"
                   "class QueryTracer\n"
                   "{\n"
                   "  public:\n"
                   "    void bump(Counters *c) "
                   "{ c->scored_ = c->scored_ + 1; }\n"
                   "};\n");
    const auto diags = linter.run();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D7");
    EXPECT_EQ(diags[0].file, "src/obs/tracer_ext.cc");
    EXPECT_NE(diags[0].message.find("hook entry point"),
              std::string::npos);
}

TEST(LintRules, D7TransitiveCallFromGuardFlagged)
{
    // The guarded region itself only calls a helper; the helper writes
    // measured state, and the call graph carries the evidence across.
    Linter linter;
    linter.addFile(
        "src/engine/eng.cc",
        "class QueryTracer;\n"
        "class Eng\n"
        "{\n"
        "  public:\n"
        "    void touch() { docs_ = docs_ + 1; }\n"
        "    void go(QueryTracer *tracer)\n"
        "    {\n"
        "        if (tracer) {\n"
        "            touch();\n"
        "        }\n"
        "    }\n"
        "  private:\n"
        "    long docs_ = 0;\n"
        "};\n");
    const auto diags = linter.run();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D7");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_NE(diags[0].message.find("touch"), std::string::npos);
}

TEST(LintRules, D8GuardedMemberWritePasses)
{
    // A COTTAGE_GUARDED_BY member is the sanctioned mutex-protected
    // escape hatch, even through a captured this.
    Linter linter;
    linter.addFile(
        "src/harness/agg.cc",
        "struct ThreadPool;\n"
        "class Agg\n"
        "{\n"
        "  public:\n"
        "    void run(ThreadPool &pool)\n"
        "    {\n"
        "        pool.submit([this] { total_ = total_ + 1.0; });\n"
        "    }\n"
        "  private:\n"
        "    double total_ COTTAGE_GUARDED_BY(mutex_) = 0.0;\n"
        "};\n");
    const auto diags = linter.run();
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

// --- Symbol-index structure -----------------------------------------

TEST(SymbolIndexStructure, ForwardDeclMergesWithDefinition)
{
    cottage::lint::SymbolIndex idx;
    idx.addFile("src/engine/widget.h",
                cottage::lint::lex(
                    "class Widget;\n"
                    "class Widget\n"
                    "{\n"
                    "  public:\n"
                    "    void poke();\n"
                    "    long count_ = 0;\n"
                    "};\n"));
    idx.addFile("src/engine/widget.cc",
                cottage::lint::lex(
                    "void Widget::poke() { count_ = count_ + 1; }\n"));
    idx.finalize();
    const auto &c = idx.classes().at("Widget");
    EXPECT_TRUE(c.defined);
    EXPECT_EQ(c.file, "src/engine/widget.h");
    EXPECT_EQ(c.members.count("count_"), 1u);
    EXPECT_TRUE(idx.isMeasuredMember("count_"));
}

TEST(SymbolIndexStructure, OutOfLineMethodCarriesClassAndWrites)
{
    cottage::lint::SymbolIndex idx;
    idx.addFile("src/engine/widget.h",
                cottage::lint::lex(
                    "class Widget { public: void poke(); long count_ = "
                    "0; };\n"));
    idx.addFile("src/engine/widget.cc",
                cottage::lint::lex(
                    "void Widget::poke() { count_ = count_ + 1; }\n"));
    idx.finalize();
    bool found = false;
    for (const auto &fn : idx.functions()) {
        if (fn.name != "Widget::poke" || !fn.defined())
            continue;
        found = true;
        EXPECT_EQ(fn.klass, "Widget");
        EXPECT_EQ(fn.bare, "poke");
        EXPECT_EQ(fn.file, "src/engine/widget.cc");
        EXPECT_TRUE(fn.writesMeasured);
    }
    EXPECT_TRUE(found);
}

TEST(SymbolIndexStructure, NestedClassesKeepSeparateMemberSets)
{
    cottage::lint::SymbolIndex idx;
    idx.addFile("src/engine/outer.h",
                cottage::lint::lex(
                    "class Outer\n"
                    "{\n"
                    "    class Inner { long x_ = 0; };\n"
                    "    long y_ = 0;\n"
                    "};\n"));
    idx.finalize();
    const auto &outer = idx.classes().at("Outer");
    const auto &inner = idx.classes().at("Outer::Inner");
    EXPECT_EQ(outer.members.count("y_"), 1u);
    EXPECT_EQ(outer.members.count("x_"), 0u);
    EXPECT_EQ(inner.members.count("x_"), 1u);
}

TEST(SymbolIndexStructure, TemplateClassMembersAreIndexed)
{
    cottage::lint::SymbolIndex idx;
    idx.addFile("src/engine/box.h",
                cottage::lint::lex(
                    "template <typename T>\n"
                    "class Box\n"
                    "{\n"
                    "  public:\n"
                    "    T value_;\n"
                    "    long uses_ = 0;\n"
                    "};\n"));
    idx.finalize();
    const auto &box = idx.classes().at("Box");
    EXPECT_TRUE(box.defined);
    EXPECT_EQ(box.members.count("value_"), 1u);
    EXPECT_EQ(box.members.count("uses_"), 1u);
}

TEST(SymbolIndexStructure, NonMeasuredPathMembersAreNotMeasured)
{
    cottage::lint::SymbolIndex idx;
    idx.addFile("src/obs/gauge.h",
                cottage::lint::lex(
                    "class Gauge { public: long ticks_ = 0; };\n"));
    idx.finalize();
    EXPECT_TRUE(idx.isAnyMember("ticks_"));
    EXPECT_FALSE(idx.isMeasuredMember("ticks_"));
}

// --- CLI exit semantics ---------------------------------------------

namespace cli_test {

int
runWith(const std::vector<std::string> &args, std::string *outText,
        std::string *errText)
{
    std::vector<const char *> argv;
    argv.push_back("cottage_lint");
    for (const std::string &a : args)
        argv.push_back(a.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int rc = cottage::lint::runCli(
        static_cast<int>(argv.size()), argv.data(), out, err);
    if (outText)
        *outText = out.str();
    if (errText)
        *errText = err.str();
    return rc;
}

} // namespace cli_test

TEST(LintCli, CleanFileExitsZero)
{
    std::string out;
    const int rc = cli_test::runWith(
        {"--root", COTTAGE_LINT_FIXTURE_DIR, "--as",
         "src/fixture/good.cc", "good.cc"},
        &out, nullptr);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.find("0 finding(s)"), std::string::npos);
}

TEST(LintCli, FindingsExitOne)
{
    std::string out;
    const int rc = cli_test::runWith(
        {"--root", COTTAGE_LINT_FIXTURE_DIR, "--as",
         "src/fixture/d1_bad.cc", "d1_bad.cc"},
        &out, nullptr);
    EXPECT_EQ(rc, 1);
    EXPECT_NE(out.find("[D1]"), std::string::npos);
}

TEST(LintCli, NonexistentPathExitsBadInput)
{
    std::string err;
    const int rc = cli_test::runWith(
        {"--root", COTTAGE_LINT_FIXTURE_DIR, "no/such/file.cc"},
        nullptr, &err);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(err.find("does not exist"), std::string::npos);
}

TEST(LintCli, PathMatchingNoSourcesExitsBadInput)
{
    // An existing directory with no .h/.cc/.cpp under it is a typo'd
    // input, not a vacuously clean scan.
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "cottage_lint_empty";
    fs::create_directories(dir);
    std::ofstream(dir / "notes.txt") << "not a source file\n";

    std::string err;
    const int rc =
        cli_test::runWith({dir.string()}, nullptr, &err);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(err.find("matched no source files"), std::string::npos);
}

TEST(LintCli, UnknownFlagExitsBadInput)
{
    std::string err;
    const int rc = cli_test::runWith({"--frobnicate"}, nullptr, &err);
    EXPECT_EQ(rc, 2);
    EXPECT_NE(err.find("unknown flag"), std::string::npos);
}

TEST(LintCliDeathTest, BadInputDiesWithExitTwo)
{
    // The full-process contract CI relies on: a typo'd path must kill
    // the run with exit code 2 and a diagnostic on stderr.
    const char *argv[] = {"cottage_lint", "--root",
                          COTTAGE_LINT_FIXTURE_DIR, "no/such/file.cc"};
    EXPECT_EXIT(std::exit(cottage::lint::runCli(4, argv, std::cout,
                                                std::cerr)),
                ::testing::ExitedWithCode(2), "does not exist");
}

TEST(LintCli, JsonModeEmitsDeterministicArray)
{
    std::string out;
    const int rc = cli_test::runWith(
        {"--root", COTTAGE_LINT_FIXTURE_DIR, "--as",
         "src/fixture/d1_bad.cc", "--json", "d1_bad.cc"},
        &out, nullptr);
    EXPECT_EQ(rc, 1);
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("\"rule\": \"D1\""), std::string::npos);
    EXPECT_NE(out.find("\"line\": 9"), std::string::npos);

    std::string clean;
    cli_test::runWith({"--root", COTTAGE_LINT_FIXTURE_DIR, "--as",
                       "src/fixture/good.cc", "--json", "good.cc"},
                      &clean, nullptr);
    EXPECT_EQ(clean, "[]\n");
}

// --- Lexer regressions ----------------------------------------------

TEST(LintTokenizer, RawStringInsideContinuedPreprocessorLine)
{
    // The '//' lives in a raw string inside a #define whose backslash
    // continuation moves it to the next physical line; neither a
    // comment nor a token may leak out of the directive.
    const std::string src = "#define MSG \\\n"
                            "    R\"(see // http://example.com)\"\n"
                            "const char *m = MSG;\n"
                            "int after = 1;\n";
    const auto lexed = cottage::lint::lex(src);
    EXPECT_TRUE(lexed.comments.empty());
    bool sawAfter = false;
    for (const auto &t : lexed.tokens)
        sawAfter = sawAfter || t.text == "after";
    EXPECT_TRUE(sawAfter);
    EXPECT_TRUE(lintContent("src/a/rawpp.cc", src).empty());
}

TEST(LintTokenizer, MultiLineRawStringHidesCommentMarkers)
{
    const std::string src = "const char *u = R\"(one // not a comment\n"
                            "two /* still raw */)\";\n"
                            "int tail = 2;\n";
    const auto lexed = cottage::lint::lex(src);
    EXPECT_TRUE(lexed.comments.empty());
    bool sawTail = false;
    for (const auto &t : lexed.tokens)
        sawTail = sawTail || t.text == "tail";
    EXPECT_TRUE(sawTail);
    EXPECT_TRUE(lintContent("src/a/rawml.cc", src).empty());
}

// --- The repo itself stays clean ------------------------------------

TEST(LintRepo, DiagnosticFormatIsStable)
{
    Diagnostic d{"src/a/b.cc", 12, "D3", "message text"};
    EXPECT_EQ(d.format(), "src/a/b.cc:12: [D3] message text");
}

} // namespace
