/**
 * @file
 * cottage_lint contract tests.
 *
 * Drives the checker library against the known-bad fixtures under
 * tools/cottage_lint/fixtures/ — one per rule, each of which must
 * produce exactly the documented diagnostic — plus a known-good file
 * that must pass and the suppression-policy fixtures. Inline-content
 * cases pin the tokenizer edge cases the rules depend on (strings and
 * comments never match, `= delete` is not a raw delete, test files are
 * exempt from the non-test rules, headers feed the project-wide D1
 * name set).
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

using cottage::lint::Diagnostic;
using cottage::lint::lintContent;
using cottage::lint::Linter;

namespace {

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(COTTAGE_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
rulesOf(const std::vector<Diagnostic> &diags)
{
    std::vector<std::string> rules;
    rules.reserve(diags.size());
    for (const Diagnostic &d : diags)
        rules.push_back(d.rule);
    return rules;
}

// --- Fixture contract: one documented diagnostic per bad fixture ----

TEST(LintFixtures, D1HashIterationFlagged)
{
    const auto diags =
        lintContent("src/fixture/d1_bad.cc", readFixture("d1_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_NE(diags[0].message.find("hash container"), std::string::npos);
}

TEST(LintFixtures, D2WallClockFlagged)
{
    const auto diags =
        lintContent("src/fixture/d2_bad.cc", readFixture("d2_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
    EXPECT_EQ(diags[0].line, 8);
}

TEST(LintFixtures, D3FloatInScorePathFlagged)
{
    // Rule scoping comes from the virtual path: the same content under
    // src/index/ is a finding, under src/text/ it is not.
    const auto content = readFixture("d3_bad.cc");
    const auto inIndex = lintContent("src/index/d3_bad.cc", content);
    ASSERT_EQ(inIndex.size(), 1u);
    EXPECT_EQ(inIndex[0].rule, "D3");
    EXPECT_EQ(inIndex[0].line, 7);

    EXPECT_TRUE(lintContent("src/text/d3_bad.cc", content).empty());
}

TEST(LintFixtures, D4AssertFlagged)
{
    const auto diags =
        lintContent("src/fixture/d4_bad.cc", readFixture("d4_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D4");
    EXPECT_EQ(diags[0].line, 8);
    EXPECT_NE(diags[0].message.find("COTTAGE_CHECK"), std::string::npos);
}

TEST(LintFixtures, D5DefaultComparatorFlagged)
{
    const auto diags =
        lintContent("src/fixture/d5_bad.cc", readFixture("d5_bad.cc"));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D5");
    EXPECT_EQ(diags[0].line, 9);
}

TEST(LintFixtures, D6IntrinsicOutsideCodecDirFlagged)
{
    const auto diags =
        lintContent("src/fixture/d6_bad.cc", readFixture("d6_bad.cc"));
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "D6");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_EQ(diags[1].rule, "D6");
    EXPECT_EQ(diags[1].line, 9);
}

TEST(LintFixtures, D6IntrinsicInsideCodecDirAllowed)
{
    // The identical content under src/index/ is the sanctioned home
    // for vector kernels — no finding.
    const auto diags =
        lintContent("src/index/block_codec.cc", readFixture("d6_bad.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, GoodFilePasses)
{
    const auto diags =
        lintContent("src/fixture/good.cc", readFixture("good.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintFixtures, UnjustifiedSuppressionIsItselfAnError)
{
    const auto diags = lintContent("src/fixture/suppress_nojust.cc",
                                   readFixture("suppress_nojust.cc"));
    // The bad allow() is reported AND the underlying finding stays.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "SUP");
    EXPECT_EQ(diags[0].line, 10);
    EXPECT_EQ(diags[1].rule, "D1");
    EXPECT_EQ(diags[1].line, 11);
}

TEST(LintFixtures, JustifiedSuppressionSilencesTheFinding)
{
    const auto diags = lintContent("src/fixture/suppress_ok.cc",
                                   readFixture("suppress_ok.cc"));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
}

// --- Tokenizer edge cases the rules depend on -----------------------

TEST(LintTokenizer, StringsAndCommentsNeverMatch)
{
    const char *src = R"(
const char *msg = "assert(x) and rand() and steady_clock";
// a comment mentioning assert(x >= 0) and new int[3]
/* block comment: for (auto &e : someUnorderedMap) {} */
int x = 0;
)";
    EXPECT_TRUE(lintContent("src/a/strings.cc", src).empty());
}

TEST(LintTokenizer, RawStringLiteralIsOpaque)
{
    const char *src = "const char *json = R\"({\"clock\": "
                      "\"steady_clock\", \"call\": \"rand()\"})\";\n";
    EXPECT_TRUE(lintContent("src/a/raw.cc", src).empty());
}

TEST(LintTokenizer, PreprocessorLinesAreSkipped)
{
    const char *src = "#include <unordered_map>\n"
                      "#define TICK() time(nullptr)\n"
                      "int y = 1;\n";
    EXPECT_TRUE(lintContent("src/a/pp.cc", src).empty());
}

TEST(LintTokenizer, DigitSeparatorDoesNotOpenCharLiteral)
{
    const char *src = "const long big = 1'000'000; int z = 2;\n";
    EXPECT_TRUE(lintContent("src/a/sep.cc", src).empty());
}

// --- Rule-specific semantics ----------------------------------------

TEST(LintRules, ClassicForOverMapIsNotRangeIteration)
{
    // Classic for with iterators is still iteration, but the rule
    // targets range-for (the idiom the codebase uses); a classic
    // three-clause loop over indices must not trip on the map name.
    const char *src = R"(
#include <unordered_map>
int count(const std::unordered_map<int, int> &m)
{
    int n = 0;
    for (int i = 0; i < 3; ++i)
        n += static_cast<int>(m.count(i));
    return n;
}
)";
    EXPECT_TRUE(lintContent("src/a/classic.cc", src).empty());
}

TEST(LintRules, HeaderDeclarationFlagsIterationInOtherFile)
{
    Linter linter;
    linter.addFile("src/a/store.h",
                   "#include <unordered_map>\n"
                   "struct Store { std::unordered_map<int, int> "
                   "byId_; };\n");
    linter.addFile("src/a/store.cc",
                   "#include \"store.h\"\n"
                   "int sum(const Store &s)\n"
                   "{\n"
                   "    int t = 0;\n"
                   "    for (const auto &e : s.byId_)\n"
                   "        t += e.second;\n"
                   "    return t;\n"
                   "}\n");
    const auto diags = linter.run();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].file, "src/a/store.cc");
    EXPECT_EQ(diags[0].line, 5);
}

TEST(LintRules, TestFilesExemptFromNonTestRules)
{
    const char *src = R"(
#include <algorithm>
#include <unordered_map>
#include <vector>
void f(std::unordered_map<int, int> &m, std::vector<int *> &v)
{
    for (const auto &e : m)
        (void)e;
    std::sort(v.begin(), v.end());
    int *p = new int(3);
    delete p;
}
)";
    EXPECT_TRUE(lintContent("tests/test_sample.cc", src).empty());
    // The same content in src/ carries D1 + D5 + two D4s.
    const auto rules = rulesOf(lintContent("src/a/sample.cc", src));
    EXPECT_EQ(rules, (std::vector<std::string>{"D1", "D5", "D4", "D4"}));
}

TEST(LintRules, D2AllowlistedFilesAreExempt)
{
    const char *src = "#include <chrono>\n"
                      "using Clock = std::chrono::steady_clock;\n";
    EXPECT_TRUE(lintContent("src/util/stopwatch.h", src).empty());
    EXPECT_FALSE(lintContent("src/sim/clock.h", src).empty());

    const char *rng = "#include <random>\n"
                      "std::random_device seedSource;\n";
    EXPECT_TRUE(lintContent("src/util/rng.cc", rng).empty());
    EXPECT_FALSE(lintContent("src/util/zipf.cc", rng).empty());
}

TEST(LintRules, DeletedSpecialMembersAreNotRawDelete)
{
    const char *src = R"(
struct NoCopy
{
    NoCopy(const NoCopy &) = delete;
    NoCopy &operator=(const NoCopy &) = delete;
};
)";
    EXPECT_TRUE(lintContent("src/a/nocopy.cc", src).empty());
}

TEST(LintRules, StaticAssertAndCottageCheckAreFine)
{
    const char *src = "static_assert(sizeof(int) == 4);\n"
                      "void g(int x) { COTTAGE_CHECK(x >= 0); }\n";
    EXPECT_TRUE(lintContent("src/a/checks.cc", src).empty());
}

TEST(LintRules, SortWithComparatorPasses)
{
    const char *src = R"(
#include <algorithm>
#include <functional>
#include <vector>
void h(std::vector<double> &v)
{
    std::sort(v.begin(), v.end(), std::less<double>());
    std::stable_sort(v.begin(), v.end(),
                     [](double a, double b) { return a < b; });
}
)";
    EXPECT_TRUE(lintContent("src/a/sorts.cc", src).empty());
}

TEST(LintRules, StableSortWithoutComparatorFlagged)
{
    const char *src = "#include <algorithm>\n"
                      "#include <vector>\n"
                      "void h(std::vector<int> &v)\n"
                      "{ std::stable_sort(v.begin(), v.end()); }\n";
    const auto diags = lintContent("src/a/ss.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D5");
}

TEST(LintRules, MemberSortIsNotStdSort)
{
    // list.sort() (e.g. std::list) only matches when qualified std::.
    const char *src = "#include <list>\n"
                      "void h(std::list<int> &l) { l.sort(); }\n";
    EXPECT_TRUE(lintContent("src/a/memsort.cc", src).empty());
}

// --- Suppression policy ---------------------------------------------

TEST(LintSuppressions, TrailingCommentGuardsItsOwnLine)
{
    const char *src =
        "#include <unordered_map>\n"
        "int f(const std::unordered_map<int, int> &m)\n"
        "{\n"
        "    int t = 0;\n"
        "    for (const auto &e : m) // cottage-lint: allow(D1): "
        "commutative sum over values\n"
        "        t += e.second;\n"
        "    return t;\n"
        "}\n";
    EXPECT_TRUE(lintContent("src/a/trail.cc", src).empty());
}

TEST(LintSuppressions, UnknownRuleIdIsAnError)
{
    const char *src = "// cottage-lint: allow(D9): not a real rule id\n"
                      "int x = 0;\n";
    const auto diags = lintContent("src/a/unknown.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "SUP");
    EXPECT_NE(diags[0].message.find("D9"), std::string::npos);
}

TEST(LintSuppressions, AllowOnlySilencesTheNamedRule)
{
    // A D1 allow must not hide the D5 on the same line.
    const char *src =
        "#include <algorithm>\n"
        "#include <vector>\n"
        "void f(std::vector<int *> &v)\n"
        "{\n"
        "    // cottage-lint: allow(D1): wrong rule for the line below\n"
        "    std::sort(v.begin(), v.end());\n"
        "}\n";
    const auto diags = lintContent("src/a/wrongrule.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D5");
}

// --- The repo itself stays clean ------------------------------------

TEST(LintRepo, DiagnosticFormatIsStable)
{
    Diagnostic d{"src/a/b.cc", 12, "D3", "message text"};
    EXPECT_EQ(d.format(), "src/a/b.cc:12: [D3] message text");
}

} // namespace
