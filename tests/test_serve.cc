/**
 * @file
 * Serving front-end suite: LRU cache mechanics, Poisson re-timing,
 * the admission shed/degrade ladder, and the serving loop's contracts
 * — determinism across host thread counts, byte-identity of the
 * replay path with serving off, cache-hit identity with the uncached
 * ranking, shed engagement under overload, and cache hit rates
 * flowing into MetricsRegistry.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "serve/admission.h"
#include "serve/arrivals.h"
#include "serve/lru_cache.h"
#include "serve/result_cache.h"
#include "serve/serving.h"
#include "util/thread_pool.h"

namespace cottage {
namespace {

// ---------------------------------------------------------------- LRU

TEST(LruCache, ZeroCapacityIsDisabledAndCountsNothing)
{
    LruCache<int, int> cache(0);
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.find(1), nullptr);
    cache.insert(1, 10);
    EXPECT_EQ(cache.find(1), nullptr);
    // A disabled cache must not accumulate phantom misses: its hit
    // rate reads 0 because nothing was ever counted.
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.0);
}

TEST(LruCache, CountsHitsMissesAndEvictsLeastRecent)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);

    const int *one = cache.find(1); // hit, promotes 1 over 2
    ASSERT_NE(one, nullptr);
    EXPECT_EQ(*one, 10);

    cache.insert(3, 30); // evicts 2 (least recent), not 1
    EXPECT_EQ(cache.find(2), nullptr);
    ASSERT_NE(cache.find(1), nullptr);
    ASSERT_NE(cache.find(3), nullptr);

    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}

TEST(LruCache, OverwritePromotesWithoutEvicting)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.insert(1, 11); // overwrite: promotes 1, size stays 2
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);

    cache.insert(3, 30); // now 2 is the least recent
    EXPECT_EQ(cache.find(2), nullptr);
    const int *one = cache.find(1);
    ASSERT_NE(one, nullptr);
    EXPECT_EQ(*one, 11);
}

TEST(LruCache, PeekNeverCountsOrPromotes)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    ASSERT_NE(cache.peek(1), nullptr); // no promotion...
    EXPECT_EQ(cache.peek(9), nullptr); // ...and no miss counted
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);

    cache.insert(3, 30); // 1 is still least recent despite the peek
    EXPECT_EQ(cache.peek(1), nullptr);
    EXPECT_NE(cache.peek(2), nullptr);
}

TEST(LruCache, CapacityOneEvictsOnEveryNewKey)
{
    LruCache<int, int> cache(1);
    EXPECT_TRUE(cache.enabled());
    cache.insert(1, 10);
    ASSERT_NE(cache.find(1), nullptr);

    cache.insert(2, 20); // evicts 1, the only resident
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.find(1), nullptr);
    const int *two = cache.find(2);
    ASSERT_NE(two, nullptr);
    EXPECT_EQ(*two, 20);

    // Overwriting the sole resident is not an eviction.
    cache.insert(2, 21);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(*cache.find(2), 21);
}

TEST(LruCache, OverwriteAtCapacityKeepsEvictionOrder)
{
    LruCache<int, int> cache(3);
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.insert(3, 30);

    // Overwrite the oldest key at full capacity: size must not grow,
    // nothing is evicted, and the overwrite promotes 1 to most recent
    // so the next eviction takes 2, then 3, then 1.
    cache.insert(1, 11);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 0u);

    cache.insert(4, 40);
    EXPECT_EQ(cache.peek(2), nullptr);
    cache.insert(5, 50);
    EXPECT_EQ(cache.peek(3), nullptr);
    cache.insert(6, 60);
    EXPECT_EQ(cache.peek(1), nullptr);
    EXPECT_NE(cache.peek(4), nullptr);
    EXPECT_EQ(cache.evictions(), 3u);
}

TEST(LruCache, ClearKeepsCountersResetDropsThem)
{
    LruCache<int, int> cache(2);
    cache.insert(1, 10);
    (void)cache.find(1);
    (void)cache.find(2);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.reset();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

// ------------------------------------------------------- result keys

TEST(ResultCacheKey, DistinguishesTermBoundariesAndWeights)
{
    Query a;
    a.terms = {12, 3};
    Query b;
    b.terms = {1, 23};
    EXPECT_NE(resultCacheKey(a), resultCacheKey(b));

    Query plain;
    plain.terms = {5, 7};
    Query weighted = plain;
    weighted.weights = {1.0, 1.0};
    // Uniform explicit weights still differ from the unweighted form:
    // the engine treats personalization as a distinct retrieval mode.
    EXPECT_NE(resultCacheKey(plain), resultCacheKey(weighted));

    Query reweighted = weighted;
    reweighted.weights = {1.0, 1.5};
    EXPECT_NE(resultCacheKey(weighted), resultCacheKey(reweighted));
    EXPECT_EQ(resultCacheKey(plain), resultCacheKey(plain));
}

// --------------------------------------------------------- re-timing

TEST(RetimeTrace, KeepsContentReplacesArrivals)
{
    TraceConfig tc;
    tc.numQueries = 200;
    tc.vocabSize = 5000;
    tc.arrivalQps = 50.0;
    tc.seed = 11;
    const QueryTrace base = QueryTrace::generate(tc);

    const QueryTrace retimed = retimeTrace(base, 500.0, 99);
    ASSERT_EQ(retimed.size(), base.size());
    EXPECT_EQ(retimed.name(), base.name());
    double previous = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const Query &was = base.query(i);
        const Query &now = retimed.query(i);
        EXPECT_EQ(now.id, was.id);
        EXPECT_EQ(now.terms, was.terms);
        EXPECT_EQ(now.weights, was.weights);
        EXPECT_GT(now.arrivalSeconds, previous);
        previous = now.arrivalSeconds;
    }
    // 10x the rate compresses the span roughly 10x.
    EXPECT_LT(retimed.durationSeconds(), base.durationSeconds());
}

TEST(RetimeTrace, SeededAndRateFaithful)
{
    TraceConfig tc;
    tc.numQueries = 2000;
    tc.vocabSize = 5000;
    tc.seed = 11;
    const QueryTrace base = QueryTrace::generate(tc);

    const QueryTrace a = retimeTrace(base, 400.0, 7);
    const QueryTrace b = retimeTrace(base, 400.0, 7);
    const QueryTrace c = retimeTrace(base, 400.0, 8);
    for (std::size_t i = 0; i < base.size(); ++i)
        ASSERT_EQ(a.query(i).arrivalSeconds, b.query(i).arrivalSeconds);
    EXPECT_NE(a.query(0).arrivalSeconds, c.query(0).arrivalSeconds);

    // Mean inter-arrival gap over 2000 draws sits near 1/400 s.
    const double meanGap =
        a.durationSeconds() / static_cast<double>(a.size());
    EXPECT_NEAR(meanGap, 1.0 / 400.0, 0.15 / 400.0);
}

// --------------------------------------------------------- admission

class AdmissionTest : public ::testing::Test
{
  protected:
    AdmissionTest() : cluster_(2, FrequencyLadder(), PowerModel()) {}

    /** Occupy an ISN's core for @p seconds starting at time 0. */
    void
    occupy(ShardId id, double seconds)
    {
        const double freq = cluster_.ladder().defaultGhz();
        const double cycles = seconds * freq * 1e9;
        cluster_.isn(id).execute(0.0, cycles, freq,
                                 std::numeric_limits<double>::infinity());
    }

    ClusterSim cluster_;
    AdmissionConfig config_;
};

TEST_F(AdmissionTest, IdleClusterPassesPlansThrough)
{
    QueryPlan plan = QueryPlan::allIsns(2);
    const AdmissionDecision decision =
        applyAdmission(plan, cluster_, 0.0, config_);
    EXPECT_FALSE(decision.shedQuery);
    EXPECT_FALSE(decision.degraded);
    EXPECT_EQ(decision.isnsShed, 0u);
    EXPECT_EQ(plan.participants(), 2u);
    EXPECT_EQ(plan.budgetSeconds, noBudget);
}

TEST_F(AdmissionTest, ShedsIsnsPastTheBacklogLineThenTheQuery)
{
    occupy(0, config_.shedBacklogSeconds * 2.0);
    QueryPlan plan = QueryPlan::allIsns(2);
    const AdmissionDecision decision =
        applyAdmission(plan, cluster_, 0.0, config_);
    EXPECT_FALSE(decision.shedQuery);
    EXPECT_EQ(decision.isnsShed, 1u);
    EXPECT_FALSE(plan.isns[0].participate);
    EXPECT_TRUE(plan.isns[1].participate);

    occupy(1, config_.shedBacklogSeconds * 2.0);
    QueryPlan doomed = QueryPlan::allIsns(2);
    const AdmissionDecision rejected =
        applyAdmission(doomed, cluster_, 0.0, config_);
    EXPECT_TRUE(rejected.shedQuery);
    EXPECT_EQ(rejected.isnsShed, 2u);
}

TEST_F(AdmissionTest, DegradationTightensBudgetsWithBacklogDepth)
{
    // An overload budget that outlives any in-band backlog, so the
    // zero-progress cut stays out of this test's way (the default
    // 50 ms budget would shed a 150 ms-backlogged ISN outright —
    // ZeroProgressCutShedsIsnsThatCannotStart covers that rung).
    config_.overloadBudgetSeconds = 1.0;
    // Halfway into the degrade band on both ISNs.
    const double mid = (config_.degradeBacklogSeconds +
                        config_.shedBacklogSeconds) /
                       2.0;
    occupy(0, mid);
    occupy(1, mid);

    QueryPlan open = QueryPlan::allIsns(2); // no deadline
    const AdmissionDecision decision =
        applyAdmission(open, cluster_, 0.0, config_);
    EXPECT_TRUE(decision.degraded);
    EXPECT_FALSE(decision.shedQuery);
    // The imposed budget starts from overloadBudgetSeconds and sits
    // strictly inside (floor * base, base) mid-band.
    EXPECT_LT(open.budgetSeconds, config_.overloadBudgetSeconds);
    EXPECT_GT(open.budgetSeconds,
              config_.degradeFloor * config_.overloadBudgetSeconds);

    // Deeper backlog tightens further (monotone ladder).
    ClusterSim deeper(2, FrequencyLadder(), PowerModel());
    const double deep = config_.shedBacklogSeconds * 0.95;
    const double freq = deeper.ladder().defaultGhz();
    deeper.isn(0).execute(0.0, deep * freq * 1e9, freq,
                          std::numeric_limits<double>::infinity());
    deeper.isn(1).execute(0.0, deep * freq * 1e9, freq,
                          std::numeric_limits<double>::infinity());
    QueryPlan deepPlan = QueryPlan::allIsns(2);
    const AdmissionDecision deepDecision =
        applyAdmission(deepPlan, deeper, 0.0, config_);
    EXPECT_TRUE(deepDecision.degraded);
    EXPECT_LT(deepPlan.budgetSeconds, open.budgetSeconds);
}

TEST_F(AdmissionTest, ZeroProgressCutShedsIsnsThatCannotStart)
{
    // Backlog below the absolute shed line but beyond the plan's own
    // budget: dispatching would produce a zero-progress truncation,
    // so admission sheds the ISN instead.
    const double backlog = config_.degradeBacklogSeconds / 2.0;
    occupy(0, backlog);
    QueryPlan plan = QueryPlan::allIsns(2);
    plan.budgetSeconds = backlog / 2.0;
    const AdmissionDecision decision =
        applyAdmission(plan, cluster_, 0.0, config_);
    EXPECT_FALSE(decision.degraded);
    EXPECT_EQ(decision.isnsShed, 1u);
    EXPECT_FALSE(plan.isns[0].participate);
    EXPECT_TRUE(plan.isns[1].participate);
}

// Regression: --shed-backlog-ms == --degrade-backlog-ms is a legal CLI
// combination. The degrade band collapses to nothing — budgets jump
// straight to the floor at the threshold — and must not abort.
TEST_F(AdmissionTest, EqualThresholdsCollapseTheDegradeBand)
{
    config_.degradeBacklogSeconds = config_.shedBacklogSeconds;

    // Below the collapsed line: healthy, untouched.
    occupy(0, config_.shedBacklogSeconds / 2.0);
    QueryPlan healthy = QueryPlan::allIsns(2);
    const AdmissionDecision pass =
        applyAdmission(healthy, cluster_, 0.0, config_);
    EXPECT_FALSE(pass.shedQuery);
    EXPECT_FALSE(pass.degraded);
    EXPECT_EQ(pass.isnsShed, 0u);
    EXPECT_EQ(healthy.budgetSeconds, noBudget);

    // Past the line: shed outright, no degrade rung in between.
    occupy(0, config_.shedBacklogSeconds);
    QueryPlan loaded = QueryPlan::allIsns(2);
    const AdmissionDecision shed =
        applyAdmission(loaded, cluster_, 0.0, config_);
    EXPECT_EQ(shed.isnsShed, 1u);
    EXPECT_FALSE(loaded.isns[0].participate);
    EXPECT_TRUE(loaded.isns[1].participate);
    EXPECT_FALSE(shed.degraded);
}

// Regression: the degrade depth must be recomputed over the post-cut
// participant set. ISN 0's backlog lands deep in the degrade band but
// also beyond the plan's budget, so the zero-progress cut sheds it —
// the surviving ISN 1 is nearly idle and its budget must NOT stay
// tightened by the backlog of an ISN that is no longer dispatched to.
TEST_F(AdmissionTest, DegradeDepthRecomputedOverPostCutParticipants)
{
    const double deep = config_.shedBacklogSeconds * 0.8; // in band
    const double idle = config_.degradeBacklogSeconds / 5.0;
    occupy(0, deep);
    occupy(1, idle);

    QueryPlan plan = QueryPlan::allIsns(2);
    plan.budgetSeconds = deep / 2.0; // cut sheds ISN 0
    const double original = plan.budgetSeconds;
    const AdmissionDecision decision =
        applyAdmission(plan, cluster_, 0.0, config_);

    EXPECT_FALSE(decision.shedQuery);
    EXPECT_EQ(decision.isnsShed, 1u);
    EXPECT_FALSE(plan.isns[0].participate);
    EXPECT_TRUE(plan.isns[1].participate);
    // The survivor sits below the degrade threshold: not degraded,
    // budget untouched, and the reported worst backlog is its own.
    EXPECT_FALSE(decision.degraded);
    EXPECT_EQ(plan.budgetSeconds, original);
    EXPECT_DOUBLE_EQ(decision.worstBacklogSeconds, idle);
}

// Regression: overloadBudgetSeconds is only consulted when a
// no-deadline plan enters the degrade band, so it must only be
// validated on that path. A scenario config that omits it (0) is fine
// as long as every plan carries its own budget.
TEST_F(AdmissionTest, OverloadBudgetOnlyValidatedWhenConsulted)
{
    config_.overloadBudgetSeconds = 0.0;

    // Finite-budget plan on a loaded cluster: never consults the
    // overload budget, must not abort.
    const double mid = (config_.degradeBacklogSeconds +
                        config_.shedBacklogSeconds) /
                       2.0;
    occupy(0, mid);
    QueryPlan plan = QueryPlan::allIsns(2);
    plan.budgetSeconds = 1.0;
    const AdmissionDecision decision =
        applyAdmission(plan, cluster_, 0.0, config_);
    EXPECT_TRUE(decision.degraded);
    EXPECT_LT(plan.budgetSeconds, 1.0);

    // A no-deadline plan degrading with no overload budget to impose
    // is a genuine config error on the path that reads the knob.
    QueryPlan open = QueryPlan::allIsns(2);
    EXPECT_DEATH((void)applyAdmission(open, cluster_, 0.0, config_),
                 "overload budget");
}

TEST_F(AdmissionTest, RejectsGenuinelyInvalidConfigs)
{
    AdmissionConfig inverted;
    inverted.shedBacklogSeconds = inverted.degradeBacklogSeconds / 2.0;
    QueryPlan plan = QueryPlan::allIsns(2);
    EXPECT_DEATH((void)applyAdmission(plan, cluster_, 0.0, inverted),
                 "shed threshold");

    AdmissionConfig zeroFloor;
    zeroFloor.degradeFloor = 0.0;
    EXPECT_DEATH((void)applyAdmission(plan, cluster_, 0.0, zeroFloor),
                 "degrade floor");

    AdmissionConfig bigFloor;
    bigFloor.degradeFloor = 1.5;
    EXPECT_DEATH((void)applyAdmission(plan, cluster_, 0.0, bigFloor),
                 "degrade floor");
}

// Boundary equality: the shed line is strict (> sheds), the
// zero-progress cut is inclusive (>= sheds) — a queue that drains
// exactly at the deadline leaves zero seconds to run.
TEST_F(AdmissionTest, BoundaryEqualityAtShedLineAndAtBudget)
{
    // Backlog exactly equal to the shed threshold survives the shed
    // rung and lands exactly on the floor fraction of the imposed
    // budget. The overload budget is chosen large enough that the
    // floored budget still exceeds the backlog, keeping the
    // zero-progress cut out of this half of the test.
    config_.overloadBudgetSeconds = 2.0;
    occupy(0, config_.shedBacklogSeconds);
    QueryPlan plan = QueryPlan::allIsns(2);
    const AdmissionDecision decision =
        applyAdmission(plan, cluster_, 0.0, config_);
    EXPECT_EQ(decision.isnsShed, 0u);
    EXPECT_TRUE(plan.isns[0].participate);
    EXPECT_TRUE(decision.degraded);
    EXPECT_DOUBLE_EQ(plan.budgetSeconds,
                     config_.degradeFloor * config_.overloadBudgetSeconds);

    // Backlog exactly equal to the budget is cut: equality means the
    // ISN could start only at the deadline itself.
    ClusterSim exact(2, FrequencyLadder(), PowerModel());
    const double freq = exact.ladder().defaultGhz();
    const double budget = config_.degradeBacklogSeconds / 2.0;
    exact.isn(0).execute(0.0, budget * freq * 1e9, freq,
                         std::numeric_limits<double>::infinity());
    ASSERT_DOUBLE_EQ(exact.isn(0).backlogSeconds(0.0), budget);
    QueryPlan capped = QueryPlan::allIsns(2);
    capped.budgetSeconds = budget;
    const AdmissionDecision cut =
        applyAdmission(capped, exact, 0.0, config_);
    EXPECT_EQ(cut.isnsShed, 1u);
    EXPECT_FALSE(capped.isns[0].participate);
    EXPECT_TRUE(capped.isns[1].participate);
}

// ------------------------------------------------- serving contracts

template <typename T>
void
appendBytes(std::string &buffer, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char *raw = reinterpret_cast<const char *>(&value);
    buffer.append(raw, sizeof(T));
}

std::string
serializeMeasurements(const std::vector<QueryMeasurement> &measurements)
{
    std::string buffer;
    for (const QueryMeasurement &m : measurements) {
        appendBytes(buffer, m.id);
        appendBytes(buffer, m.tenant);
        appendBytes(buffer, m.arrivalSeconds);
        appendBytes(buffer, m.latencySeconds);
        appendBytes(buffer, m.budgetSeconds);
        appendBytes(buffer, m.isnsUsed);
        appendBytes(buffer, m.isnsCompleted);
        appendBytes(buffer, m.isnsBoosted);
        appendBytes(buffer, m.docsSearched);
        appendBytes(buffer, m.docsSkipped);
        appendBytes(buffer, m.blocksDecoded);
        appendBytes(buffer, m.blocksSkipped);
        appendBytes(buffer, m.partialResponses);
        appendBytes(buffer, m.completedFraction);
        appendBytes(buffer, m.precisionAtK);
        appendBytes(buffer, m.ndcgAtK);
        for (const ScoredDoc &hit : m.results) {
            appendBytes(buffer, hit.doc);
            appendBytes(buffer, hit.score);
        }
    }
    return buffer;
}

std::string
serializeServing(const std::vector<ServingMeasurement> &measurements)
{
    std::string buffer;
    for (const ServingMeasurement &record : measurements) {
        appendBytes(buffer, record.outcome);
        appendBytes(buffer, record.worstBacklogSeconds);
        appendBytes(buffer, record.isnsShed);
        appendBytes(buffer, record.isnsUnavailable);
    }
    std::vector<QueryMeasurement> inner;
    inner.reserve(measurements.size());
    for (const ServingMeasurement &record : measurements)
        inner.push_back(record.measurement);
    return buffer + serializeMeasurements(inner);
}

ExperimentConfig
servingConfig(std::size_t resultCache = 256,
              std::size_t statsCache = 1024)
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 6000;
    config.corpus.meanDocLength = 90.0;
    config.shards.numShards = 8;
    config.traceQueries = 200;
    config.serving.enabled = true;
    config.serving.resultCacheCapacity = resultCache;
    config.serving.statsCacheCapacity = statsCache;
    return config;
}

TEST(ServingDeterminism, ServeIsBitExactAcrossThreadCounts)
{
    Experiment experiment(servingConfig());
    // A rate deep enough into overload that degradation and shedding
    // both engage, so the comparison covers every outcome path.
    const double qps = 4000.0;
    for (const char *policy : {"exhaustive", "taily"}) {
        ThreadPool::setGlobalThreads(1);
        const ServingRunResult sequential =
            experiment.runServing(policy, TraceFlavor::Wikipedia, qps);
        ThreadPool::setGlobalThreads(8);
        const ServingRunResult parallel =
            experiment.runServing(policy, TraceFlavor::Wikipedia, qps);
        ThreadPool::setGlobalThreads(1);

        ASSERT_EQ(sequential.measurements.size(),
                  parallel.measurements.size());
        EXPECT_EQ(serializeServing(sequential.measurements),
                  serializeServing(parallel.measurements))
            << policy
            << ": serving streams diverge across thread counts";
        EXPECT_EQ(toJson(sequential.summary), toJson(parallel.summary))
            << policy
            << ": serving summaries diverge across thread counts";
    }
}

TEST(ServingOff, ReplayIgnoresServingKnobsByteForByte)
{
    // The hard contract: with serving off, run() must produce the
    // exact bytes it produced before the serving subsystem existed —
    // whatever the serving knobs are set to. The front-end only runs
    // inside runServing().
    ExperimentConfig plain;
    plain.corpus.numDocs = 2000;
    plain.corpus.vocabSize = 6000;
    plain.corpus.meanDocLength = 90.0;
    plain.shards.numShards = 8;
    plain.traceQueries = 200;

    ExperimentConfig knobbed = plain;
    knobbed.serving.enabled = true;
    knobbed.serving.resultCacheCapacity = 64;
    knobbed.serving.statsCacheCapacity = 64;
    knobbed.serving.admission.shedBacklogSeconds = 1e-6;

    Experiment a(std::move(plain));
    Experiment b(std::move(knobbed));
    for (const char *policy : {"exhaustive", "taily"}) {
        const RunResult off = a.run(policy, TraceFlavor::Wikipedia);
        const RunResult on = b.run(policy, TraceFlavor::Wikipedia);
        EXPECT_EQ(serializeMeasurements(off.measurements),
                  serializeMeasurements(on.measurements))
            << policy << ": serving knobs perturbed the replay path";
        EXPECT_EQ(toJson(off.summary), toJson(on.summary));
    }
}

TEST(ServingCaches, CachedRankingsMatchUncachedByteForByte)
{
    // At a rate the cluster absorbs without degradation, a run with
    // the result cache on must return, query for query, the same
    // ranking as a run with it off: only fully-completed responses
    // are cached, so a hit is the response the engine would recompute.
    Experiment cached(servingConfig(512, 0));
    Experiment uncached(servingConfig(0, 0));
    const double qps = 100.0;

    const ServingRunResult with =
        cached.runServing("exhaustive", TraceFlavor::Wikipedia, qps);
    const ServingRunResult without =
        uncached.runServing("exhaustive", TraceFlavor::Wikipedia, qps);

    ASSERT_EQ(with.measurements.size(), without.measurements.size());
    EXPECT_GT(with.summary.cacheHits, 0u)
        << "trace has no repeated queries; the identity check is vacuous";
    EXPECT_EQ(without.summary.cacheHits, 0u);
    for (std::size_t i = 0; i < with.measurements.size(); ++i) {
        const QueryMeasurement &a = with.measurements[i].measurement;
        const QueryMeasurement &b = without.measurements[i].measurement;
        ASSERT_EQ(a.results.size(), b.results.size()) << "query " << i;
        for (std::size_t r = 0; r < a.results.size(); ++r) {
            ASSERT_EQ(a.results[r].doc, b.results[r].doc)
                << "query " << i << " rank " << r;
            double x = a.results[r].score;
            double y = b.results[r].score;
            ASSERT_EQ(std::memcmp(&x, &y, sizeof x), 0)
                << "query " << i << " rank " << r;
        }
        ASSERT_EQ(a.precisionAtK, b.precisionAtK) << "query " << i;
        ASSERT_EQ(a.ndcgAtK, b.ndcgAtK) << "query " << i;
    }
}

TEST(ServingOverload, ShedsUnderOverloadNeverWhenUnloaded)
{
    Experiment experiment(servingConfig());
    const ServingRunResult calm =
        experiment.runServing("exhaustive", TraceFlavor::Wikipedia, 50.0);
    EXPECT_EQ(calm.summary.shedQueries, 0u);
    EXPECT_EQ(calm.summary.degraded, 0u);
    EXPECT_DOUBLE_EQ(calm.summary.shedRate, 0.0);

    const ServingRunResult swamped = experiment.runServing(
        "exhaustive", TraceFlavor::Wikipedia, 20000.0);
    EXPECT_GT(swamped.summary.shedQueries, 0u);
    EXPECT_GT(swamped.summary.degraded, 0u);
    EXPECT_GT(swamped.summary.shedRate, 0.0);
    EXPECT_LT(swamped.summary.achievedQps, swamped.summary.offeredQps);
    // Degradation leans on the anytime path before shedding: some
    // responses must have been truncated rather than rejected.
    EXPECT_GT(swamped.summary.run.truncatedResponses, 0u);
}

TEST(ServingMetrics, CacheHitRatesFlowIntoRegistry)
{
    Experiment experiment(servingConfig());
    MetricsRegistry metrics;
    ServingFrontEnd frontEnd(experiment.engine(),
                             experiment.config().serving);
    const QueryTrace &base = experiment.trace(TraceFlavor::Wikipedia);
    const QueryTrace served = retimeTrace(base, 200.0, 5);
    const auto &truth = experiment.groundTruth(TraceFlavor::Wikipedia);
    const std::unique_ptr<Policy> policy =
        experiment.makePolicy("exhaustive");

    const ServingSummary summary =
        frontEnd.serve(*policy, served, truth, &metrics);

    EXPECT_EQ(metrics.counter("serve_offered"), summary.offered);
    EXPECT_EQ(metrics.counter("serve_result_cache_hits"),
              summary.resultCacheHits);
    EXPECT_EQ(metrics.counter("serve_result_cache_misses"),
              summary.resultCacheMisses);
    EXPECT_EQ(metrics.counter("serve_stats_cache_hits"),
              summary.statsCacheHits);
    EXPECT_EQ(metrics.counter("serve_stats_cache_misses"),
              summary.statsCacheMisses);
    EXPECT_GT(summary.resultCacheHits + summary.resultCacheMisses, 0u);
    EXPECT_GT(summary.statsCacheHits, 0u);
    EXPECT_GT(summary.statsCacheHitRate, 0.0);
    // The registry export carries the serving section for dashboards.
    const std::string json = metrics.toJson("exhaustive", "wikipedia");
    EXPECT_NE(json.find("serve_offered"), std::string::npos);
    EXPECT_NE(json.find("serve_stats_cache_hits"), std::string::npos);
    // The engine's own hooks must be restored afterwards.
    EXPECT_EQ(experiment.engine().metrics(), nullptr);
}

TEST(ServingSummaryJson, CarriesTheGateFields)
{
    Experiment experiment(servingConfig());
    const ServingRunResult result = experiment.runServing(
        "exhaustive", TraceFlavor::Wikipedia, 100.0);
    const std::string json = toJson(result.summary);
    for (const char *key :
         {"\"offered_qps\":", "\"achieved_qps\":", "\"shed_rate\":",
          "\"p95_latency_s\":", "\"result_cache_hit_rate\":",
          "\"stats_cache_hit_rate\":", "\"zero_progress_responses\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

} // namespace
} // namespace cottage
