/**
 * @file
 * Unit and property tests for the index module: BM25, inverted index
 * construction, term statistics, and the three evaluators (including
 * the rank-safety equivalence property: MaxScore and WAND must return
 * exactly the exhaustive top-K).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "index/bm25.h"
#include "index/bmm_evaluator.h"
#include "index/bmw_evaluator.h"
#include "index/collection_stats.h"
#include "index/exhaustive_evaluator.h"
#include "index/inverted_index.h"
#include "index/maxscore_evaluator.h"
#include "index/taat_evaluator.h"
#include "index/term_stats.h"
#include "index/top_k.h"
#include "index/varbyte.h"
#include "index/wand_evaluator.h"
#include "text/corpus.h"
#include "text/trace.h"
#include "util/rng.h"

namespace cottage {
namespace {

TEST(Bm25, IdfDecreasesWithDocFreq)
{
    const Bm25 bm25(1000, 100.0);
    EXPECT_GT(bm25.idf(1), bm25.idf(10));
    EXPECT_GT(bm25.idf(10), bm25.idf(500));
    EXPECT_GT(bm25.idf(1000), 0.0); // Lucene-style IDF stays positive
}

TEST(Bm25, ScoreSaturatesWithTermFreq)
{
    const Bm25 bm25(1000, 100.0);
    const double idf = bm25.idf(10);
    const double s1 = bm25.score(idf, 1, 100);
    const double s2 = bm25.score(idf, 2, 100);
    const double s100 = bm25.score(idf, 100, 100);
    EXPECT_GT(s2, s1);
    EXPECT_GT(s100, s2);
    // Diminishing returns; never exceeds the static upper bound.
    EXPECT_LT(s2 - s1, s1);
    EXPECT_LT(s100, bm25.staticUpperBound(idf));
}

TEST(Bm25, LongerDocumentsScoreLower)
{
    const Bm25 bm25(1000, 100.0);
    const double idf = bm25.idf(10);
    EXPECT_GT(bm25.score(idf, 2, 50), bm25.score(idf, 2, 200));
}

TEST(TopKHeap, KeepsBestKWithDeterministicTies)
{
    TopKHeap heap(3);
    EXPECT_TRUE(heap.push({5, 1.0}));
    EXPECT_TRUE(heap.push({4, 2.0}));
    EXPECT_TRUE(heap.push({9, 1.0}));
    EXPECT_TRUE(heap.full());
    // Equal score, smaller doc id: must displace doc 9.
    EXPECT_TRUE(heap.push({2, 1.0}));
    // Equal score, larger doc id than current worst (5 @ 1.0): rejected.
    EXPECT_FALSE(heap.push({7, 1.0}));
    const auto ranked = heap.extractSorted();
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].doc, 4u);
    EXPECT_EQ(ranked[1].doc, 2u);
    EXPECT_EQ(ranked[2].doc, 5u);
}

TEST(TopKHeap, ZeroCapacityRejectsEverything)
{
    TopKHeap heap(0);
    EXPECT_FALSE(heap.push({1, 5.0}));
    EXPECT_TRUE(heap.extractSorted().empty());
}

TEST(TopKHeap, ThresholdIsMinusInfinityUntilFull)
{
    TopKHeap heap(2);
    // Not full: any score must beat the threshold, including negative
    // ones (a -1.0 sentinel would wrongly prune scores below -1).
    EXPECT_EQ(heap.threshold(),
              -std::numeric_limits<double>::infinity());
    EXPECT_TRUE(heap.push({1, -5.0}));
    EXPECT_EQ(heap.threshold(),
              -std::numeric_limits<double>::infinity());
    EXPECT_TRUE(heap.push({2, -3.0}));
    // Full: threshold is the current worst score.
    EXPECT_DOUBLE_EQ(heap.threshold(), -5.0);
    EXPECT_TRUE(heap.push({3, -4.0}));
    EXPECT_DOUBLE_EQ(heap.threshold(), -4.0);
}

class IndexFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CorpusConfig config;
        config.numDocs = 800;
        config.vocabSize = 3000;
        config.meanDocLength = 80.0;
        config.numTopics = 12;
        config.seed = 77;
        corpus_ = std::make_unique<Corpus>(Corpus::generate(config));
        stats_ = std::make_shared<CollectionStats>(*corpus_);

        allDocs_.resize(corpus_->numDocs());
        for (DocId d = 0; d < corpus_->numDocs(); ++d)
            allDocs_[d] = d;
        index_ = std::make_unique<InvertedIndex>(*corpus_, allDocs_, stats_);
    }

    std::unique_ptr<Corpus> corpus_;
    std::shared_ptr<CollectionStats> stats_;
    std::vector<DocId> allDocs_;
    std::unique_ptr<InvertedIndex> index_;
};

TEST_F(IndexFixture, CollectionStatsMatchCorpus)
{
    EXPECT_EQ(stats_->numDocs(), corpus_->numDocs());
    EXPECT_NEAR(stats_->avgDocLength(), corpus_->averageDocLength(), 1e-9);
    // df of a term equals the number of documents containing it.
    uint64_t df0 = 0;
    for (const Document &doc : corpus_->documents()) {
        for (const TermFreq &tf : doc.terms) {
            if (tf.term == 0) {
                ++df0;
                break;
            }
        }
    }
    EXPECT_EQ(stats_->docFreq(0), df0);
    EXPECT_GE(stats_->collectionFreq(0), stats_->docFreq(0));
    EXPECT_EQ(stats_->docFreq(999999), 0u);
}

TEST_F(IndexFixture, PostingsAreSortedAndComplete)
{
    uint64_t totalPostings = 0;
    for (const PostingList &list : index_->allPostings()) {
        EXPECT_FALSE(list.empty());
        for (std::size_t i = 1; i < list.size(); ++i)
            EXPECT_LT(list.postings[i - 1].doc, list.postings[i].doc);
        totalPostings += list.size();
    }
    EXPECT_EQ(totalPostings, index_->totalPostings());

    uint64_t expected = 0;
    for (const Document &doc : corpus_->documents())
        expected += doc.terms.size();
    EXPECT_EQ(totalPostings, expected);
}

TEST_F(IndexFixture, PostingFrequenciesMatchDocuments)
{
    const PostingList *list = index_->postings(0);
    ASSERT_NE(list, nullptr);
    for (const Posting &posting : list->postings) {
        const Document &doc =
            corpus_->document(index_->globalDoc(posting.doc));
        const auto it = std::find_if(
            doc.terms.begin(), doc.terms.end(),
            [](const TermFreq &tf) { return tf.term == 0; });
        ASSERT_NE(it, doc.terms.end());
        EXPECT_EQ(it->freq, posting.freq);
    }
}

TEST_F(IndexFixture, MaxScoreBoundIsTightAndExact)
{
    const PostingList *list = index_->postings(0);
    ASSERT_NE(list, nullptr);
    const double idf = index_->idf(0);
    double best = 0.0;
    for (const Posting &posting : list->postings)
        best = std::max(best, index_->scorePosting(idf, posting));
    EXPECT_DOUBLE_EQ(index_->maxScore(0), best);
    // The static bound dominates the exact bound.
    EXPECT_GE(index_->scorer().staticUpperBound(idf), best);
    // Absent term -> zero bound.
    EXPECT_DOUBLE_EQ(index_->maxScore(2999999), 0.0);
}

TEST_F(IndexFixture, EvaluatorsAgreeWithExhaustive)
{
    // The core rank-safety property: identical top-K from all four
    // strategies across many random queries.
    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const TaatEvaluator taat;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;

    TraceConfig traceConfig;
    traceConfig.numQueries = 150;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 5;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    for (const Query &query : trace.queries()) {
        const SearchResult base = exhaustive.search(*index_, query.terms, 10);
        for (const Evaluator *other :
             {static_cast<const Evaluator *>(&maxscore),
              static_cast<const Evaluator *>(&wand),
              static_cast<const Evaluator *>(&taat),
              static_cast<const Evaluator *>(&bmw),
              static_cast<const Evaluator *>(&bmm)}) {
            const SearchResult result =
                other->search(*index_, query.terms, 10);
            ASSERT_EQ(result.topK.size(), base.topK.size())
                << other->name() << " query " << query.id;
            for (std::size_t i = 0; i < base.topK.size(); ++i) {
                EXPECT_EQ(result.topK[i].doc, base.topK[i].doc)
                    << other->name() << " rank " << i << " query "
                    << query.id;
                EXPECT_NEAR(result.topK[i].score, base.topK[i].score,
                            1e-9);
            }
        }
    }
}

/**
 * The rank-safety property over *randomized* corpora: regenerate the
 * whole collection (size, vocabulary, document length, topic mix) from
 * a derived seed each round and re-assert MaxScore/WAND == exhaustive.
 * Guards against pruning bugs that only fire under score distributions
 * the one fixed fixture corpus happens not to produce.
 */
TEST(EvaluatorProperty, PruningMatchesExhaustiveOnRandomCorpora)
{
    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    Rng rng(0xC0774u);

    for (int round = 0; round < 5; ++round) {
        CorpusConfig config;
        config.numDocs = 300 + static_cast<uint32_t>(rng.uniformInt(0, 699));
        config.vocabSize = 800 + static_cast<uint32_t>(rng.uniformInt(0, 2199));
        config.meanDocLength = 40.0 + 80.0 * rng.uniform();
        config.numTopics = 4 + static_cast<uint32_t>(rng.uniformInt(0, 15));
        config.seed = rng.next();
        const Corpus corpus = Corpus::generate(config);
        auto stats = std::make_shared<CollectionStats>(corpus);
        std::vector<DocId> allDocs(corpus.numDocs());
        for (DocId d = 0; d < corpus.numDocs(); ++d)
            allDocs[d] = d;
        const InvertedIndex index(corpus, allDocs, stats);

        TraceConfig traceConfig;
        traceConfig.numQueries = 40;
        traceConfig.vocabSize = config.vocabSize;
        traceConfig.seed = rng.next();
        const QueryTrace trace = QueryTrace::generate(traceConfig);
        const std::size_t k = static_cast<std::size_t>(rng.uniformInt(1, 20));

        for (const Query &query : trace.queries()) {
            const SearchResult base =
                exhaustive.search(index, query.terms, k);
            for (const Evaluator *other :
                 {static_cast<const Evaluator *>(&maxscore),
                  static_cast<const Evaluator *>(&wand)}) {
                const SearchResult result =
                    other->search(index, query.terms, k);
                ASSERT_EQ(result.topK.size(), base.topK.size())
                    << other->name() << " round " << round << " query "
                    << query.id;
                for (std::size_t i = 0; i < base.topK.size(); ++i) {
                    ASSERT_EQ(result.topK[i].doc, base.topK[i].doc)
                        << other->name() << " round " << round
                        << " rank " << i << " query " << query.id;
                    ASSERT_NEAR(result.topK[i].score,
                                base.topK[i].score, 1e-9);
                }
            }
        }
    }
}

/**
 * The merged top-K must not depend on the order shard results arrive
 * in: with the strict (score, doc) total order, the best K of a
 * multi-set is unique, so pushing per-shard rankings into a TopKHeap
 * in any permutation must extract the identical sorted ranking. This
 * is what makes the parallel fan-out's merge deterministic.
 */
TEST(TopKHeap, MergeIsOrderInvariantUnderShuffledArrival)
{
    Rng rng(4242);
    for (int round = 0; round < 20; ++round) {
        // Synthesize per-shard rankings with colliding scores.
        std::vector<std::vector<ScoredDoc>> shardResults(8);
        DocId nextDoc = 0;
        for (auto &shard : shardResults) {
            const std::size_t n =
                static_cast<std::size_t>(rng.uniformInt(0, 12));
            for (std::size_t i = 0; i < n; ++i)
                shard.push_back(
                    {nextDoc++, static_cast<double>(rng.uniformInt(0, 5))});
        }

        TopKHeap reference(10);
        for (const auto &shard : shardResults)
            for (const ScoredDoc &hit : shard)
                reference.push(hit);
        const std::vector<ScoredDoc> expected = reference.extractSorted();

        std::vector<std::size_t> order(shardResults.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        for (int shuffle = 0; shuffle < 10; ++shuffle) {
            rng.shuffle(order);
            TopKHeap merged(10);
            for (std::size_t s : order)
                for (const ScoredDoc &hit : shardResults[s])
                    merged.push(hit);
            const std::vector<ScoredDoc> got = merged.extractSorted();
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < expected.size(); ++i) {
                ASSERT_EQ(got[i].doc, expected[i].doc) << "rank " << i;
                ASSERT_EQ(got[i].score, expected[i].score);
            }
        }
    }
}

/**
 * The same equivalence property swept over result depths K — the
 * pruning thresholds behave differently at each depth.
 */
class EvaluatorDepthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EvaluatorDepthSweep, RankSafetyHoldsAtEveryDepth)
{
    CorpusConfig config;
    config.numDocs = 600;
    config.vocabSize = 2500;
    config.seed = 55;
    const Corpus corpus = Corpus::generate(config);
    std::vector<DocId> allDocs(corpus.numDocs());
    for (DocId d = 0; d < corpus.numDocs(); ++d)
        allDocs[d] = d;
    const InvertedIndex index(
        corpus, allDocs, std::make_shared<CollectionStats>(corpus));

    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const std::size_t k = GetParam();

    TraceConfig traceConfig;
    traceConfig.numQueries = 60;
    traceConfig.vocabSize = 2500;
    traceConfig.seed = 56;
    const QueryTrace trace = QueryTrace::generate(traceConfig);
    for (const Query &query : trace.queries()) {
        const SearchResult base = exhaustive.search(index, query.terms, k);
        const SearchResult ms = maxscore.search(index, query.terms, k);
        const SearchResult wd = wand.search(index, query.terms, k);
        ASSERT_EQ(ms.topK.size(), base.topK.size());
        ASSERT_EQ(wd.topK.size(), base.topK.size());
        for (std::size_t i = 0; i < base.topK.size(); ++i) {
            EXPECT_EQ(ms.topK[i].doc, base.topK[i].doc) << "k=" << k;
            EXPECT_EQ(wd.topK[i].doc, base.topK[i].doc) << "k=" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, EvaluatorDepthSweep,
                         ::testing::Values(1u, 3u, 10u, 50u, 500u));

TEST_F(IndexFixture, WeightedQueriesStayRankSafe)
{
    // Personalization weights must not break pruning: all evaluators
    // agree on weighted queries too.
    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const TaatEvaluator taat;

    Rng rng(99);
    TraceConfig traceConfig;
    traceConfig.numQueries = 80;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 7;
    const QueryTrace trace = QueryTrace::generate(traceConfig);
    for (const Query &query : trace.queries()) {
        std::vector<WeightedTerm> weighted;
        for (TermId term : query.terms)
            weighted.push_back({term, rng.uniform(0.25, 3.0)});

        const SearchResult base = exhaustive.search(*index_, weighted, 10);
        for (const Evaluator *other :
             {static_cast<const Evaluator *>(&maxscore),
              static_cast<const Evaluator *>(&wand),
              static_cast<const Evaluator *>(&taat)}) {
            const SearchResult result =
                other->search(*index_, weighted, 10);
            ASSERT_EQ(result.topK.size(), base.topK.size())
                << other->name();
            for (std::size_t i = 0; i < base.topK.size(); ++i) {
                EXPECT_EQ(result.topK[i].doc, base.topK[i].doc)
                    << other->name() << " rank " << i;
            }
        }
    }
}

TEST_F(IndexFixture, UnitWeightsEqualUnweightedSearch)
{
    const MaxScoreEvaluator maxscore;
    const std::vector<TermId> terms = {30, 200};
    const SearchResult plain = maxscore.search(*index_, terms, 10);
    const SearchResult unit = maxscore.search(*index_, toWeighted(terms), 10);
    ASSERT_EQ(plain.topK.size(), unit.topK.size());
    for (std::size_t i = 0; i < plain.topK.size(); ++i) {
        EXPECT_EQ(plain.topK[i].doc, unit.topK[i].doc);
        EXPECT_DOUBLE_EQ(plain.topK[i].score, unit.topK[i].score);
    }
}

TEST_F(IndexFixture, UpweightingATermScalesItsContribution)
{
    const ExhaustiveEvaluator exhaustive;
    // Single-term query: doubling the weight doubles every score and
    // preserves the ranking exactly.
    const SearchResult base =
        exhaustive.search(*index_, std::vector<TermId>{30}, 10);
    const SearchResult boosted =
        exhaustive.search(*index_, std::vector<WeightedTerm>{{30, 2.0}}, 10);
    ASSERT_EQ(base.topK.size(), boosted.topK.size());
    for (std::size_t i = 0; i < base.topK.size(); ++i) {
        EXPECT_EQ(boosted.topK[i].doc, base.topK[i].doc);
        EXPECT_NEAR(boosted.topK[i].score, 2.0 * base.topK[i].score,
                    1e-9);
    }
}

/**
 * The anytime contract every evaluator must honor: a maxScoredDocs cap
 * stops the evaluation after that many candidates, returns the
 * best-so-far top-K, and reports truncation. Because evaluation is
 * deterministic, a capped run is a pure prefix replay — the engine
 * relies on this to rebuild a deadline-missing ISN's exact partial
 * ranking from its completed service fraction.
 */
class EvaluatorAnytimeCap : public IndexFixture
{
  protected:
    static std::vector<const Evaluator *>
    all()
    {
        static const ExhaustiveEvaluator exhaustive;
        static const TaatEvaluator taat;
        static const MaxScoreEvaluator maxscore;
        static const WandEvaluator wand;
        static const BmwEvaluator bmw;
        static const BmmEvaluator bmm;
        return {&exhaustive, &taat, &maxscore, &wand, &bmw, &bmm};
    }
};

TEST_F(EvaluatorAnytimeCap, ZeroCapReturnsEmptyAndTruncated)
{
    const std::vector<TermId> terms = {0, 5};
    for (const Evaluator *evaluator : all()) {
        const SearchResult result =
            evaluator->search(*index_, terms, 10, 0);
        EXPECT_TRUE(result.topK.empty()) << evaluator->name();
        EXPECT_TRUE(result.work.truncated) << evaluator->name();
        EXPECT_EQ(result.work.docsScored, 0u) << evaluator->name();
    }
}

TEST_F(EvaluatorAnytimeCap, LooseCapIsIdenticalToUncapped)
{
    const std::vector<TermId> terms = {0, 5, 30};
    for (const Evaluator *evaluator : all()) {
        const SearchResult full = evaluator->search(*index_, terms, 10);
        ASSERT_FALSE(full.work.truncated) << evaluator->name();
        for (uint64_t cap :
             {full.work.docsScored, full.work.docsScored + 1, noDocCap}) {
            const SearchResult capped =
                evaluator->search(*index_, terms, 10, cap);
            EXPECT_FALSE(capped.work.truncated)
                << evaluator->name() << " cap " << cap;
            EXPECT_EQ(capped.work.docsScored, full.work.docsScored)
                << evaluator->name();
            ASSERT_EQ(capped.topK.size(), full.topK.size())
                << evaluator->name();
            for (std::size_t i = 0; i < full.topK.size(); ++i) {
                EXPECT_EQ(capped.topK[i].doc, full.topK[i].doc)
                    << evaluator->name() << " rank " << i;
                EXPECT_DOUBLE_EQ(capped.topK[i].score, full.topK[i].score)
                    << evaluator->name() << " rank " << i;
            }
        }
    }
}

TEST_F(EvaluatorAnytimeCap, TightCapScoresExactlyCapDocsDeterministically)
{
    TraceConfig traceConfig;
    traceConfig.numQueries = 50;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 17;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    for (const Evaluator *evaluator : all()) {
        for (const Query &query : trace.queries()) {
            const SearchResult full =
                evaluator->search(*index_, query.terms, 10);
            if (full.work.docsScored < 2)
                continue;
            const uint64_t cap = full.work.docsScored / 2;
            const SearchResult a =
                evaluator->search(*index_, query.terms, 10, cap);
            // A tight cap stops the scan at exactly `cap` scored docs,
            // with a scoreable candidate left behind.
            EXPECT_TRUE(a.work.truncated)
                << evaluator->name() << " query " << query.id;
            EXPECT_EQ(a.work.docsScored, cap)
                << evaluator->name() << " query " << query.id;
            EXPECT_LE(a.work.postingsScored, full.work.postingsScored)
                << evaluator->name();
            // Prefix replay: the same cap reproduces the identical
            // partial ranking, bit for bit.
            const SearchResult b =
                evaluator->search(*index_, query.terms, 10, cap);
            ASSERT_EQ(a.topK.size(), b.topK.size()) << evaluator->name();
            for (std::size_t i = 0; i < a.topK.size(); ++i) {
                ASSERT_EQ(a.topK[i].doc, b.topK[i].doc)
                    << evaluator->name() << " rank " << i;
                ASSERT_EQ(a.topK[i].score, b.topK[i].score)
                    << evaluator->name() << " rank " << i;
            }
        }
    }
}

TEST_F(EvaluatorAnytimeCap, CappedWorkNeverExceedsCap)
{
    TraceConfig traceConfig;
    traceConfig.numQueries = 30;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 23;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    for (const Evaluator *evaluator : all()) {
        for (const Query &query : trace.queries()) {
            for (uint64_t cap : {1u, 7u, 50u, 400u}) {
                const SearchResult result =
                    evaluator->search(*index_, query.terms, 10, cap);
                EXPECT_LE(result.work.docsScored, cap)
                    << evaluator->name() << " query " << query.id;
                EXPECT_LE(result.topK.size(),
                          std::min<std::size_t>(10, cap))
                    << evaluator->name();
            }
        }
    }
}

/**
 * Regression for the negative-weight pruning bug: with a demoting
 * (negative-weight) term, a list's score upper bound is 0 — using
 * maxScore * weight (a *lower* bound there) let MaxScore and WAND skip
 * documents that actually belonged in the top-K. All evaluators must
 * match exhaustive under mixed-sign weights.
 */
TEST_F(IndexFixture, NegativeWeightsStayRankSafe)
{
    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const TaatEvaluator taat;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;

    Rng rng(0x9E6);
    TraceConfig traceConfig;
    traceConfig.numQueries = 120;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 11;
    const QueryTrace trace = QueryTrace::generate(traceConfig);
    for (const Query &query : trace.queries()) {
        std::vector<WeightedTerm> weighted;
        for (std::size_t i = 0; i < query.terms.size(); ++i) {
            // Flip signs aggressively; keep at least one promoting
            // term so the top-K is non-trivial.
            const double magnitude = rng.uniform(0.25, 3.0);
            const bool demote = i > 0 && rng.uniform() < 0.5;
            weighted.push_back(
                {query.terms[i], demote ? -magnitude : magnitude});
        }

        const SearchResult base = exhaustive.search(*index_, weighted, 10);
        for (const Evaluator *other :
             {static_cast<const Evaluator *>(&maxscore),
              static_cast<const Evaluator *>(&wand),
              static_cast<const Evaluator *>(&taat),
              static_cast<const Evaluator *>(&bmw),
              static_cast<const Evaluator *>(&bmm)}) {
            const SearchResult result =
                other->search(*index_, weighted, 10);
            ASSERT_EQ(result.topK.size(), base.topK.size())
                << other->name() << " query " << query.id;
            for (std::size_t i = 0; i < base.topK.size(); ++i) {
                ASSERT_EQ(result.topK[i].doc, base.topK[i].doc)
                    << other->name() << " rank " << i << " query "
                    << query.id;
                ASSERT_NEAR(result.topK[i].score, base.topK[i].score,
                            1e-9);
            }
        }
    }
}

TEST(VByte, EncodeDecodeRoundTripAllMagnitudes)
{
    std::vector<uint8_t> bytes;
    const std::vector<uint32_t> values = {0,    1,     127,        128,
                                          300,  16383, 16384,      1u << 20,
                                          1u << 28, 0xffffffffu};
    for (uint32_t v : values)
        vbyteEncode(v, bytes);
    std::size_t offset = 0;
    for (uint32_t v : values)
        EXPECT_EQ(vbyteDecode(bytes, offset), v);
    EXPECT_EQ(offset, bytes.size());
}

TEST(VByte, SmallValuesTakeOneByte)
{
    std::vector<uint8_t> bytes;
    vbyteEncode(127, bytes);
    EXPECT_EQ(bytes.size(), 1u);
    vbyteEncode(128, bytes);
    EXPECT_EQ(bytes.size(), 3u); // 128 needs two bytes
}

TEST_F(IndexFixture, CompressedPostingListRoundTrip)
{
    for (const PostingList &list : index_->allPostings()) {
        const CompressedPostingList compressed(list);
        EXPECT_EQ(compressed.size(), list.size());
        EXPECT_EQ(compressed.term(), list.term);
        const PostingList restored = compressed.decompress();
        ASSERT_EQ(restored.postings.size(), list.postings.size());
        for (std::size_t i = 0; i < list.size(); ++i) {
            EXPECT_EQ(restored.postings[i].doc, list.postings[i].doc);
            EXPECT_EQ(restored.postings[i].freq, list.postings[i].freq);
        }
    }
}

TEST_F(IndexFixture, CompressionShrinksTheIndex)
{
    const InvertedIndex::Footprint fp = index_->footprint();
    EXPECT_GT(fp.rawPostingBytes, 0u);
    EXPECT_GT(fp.compressedPostingBytes, 0u);
    // Delta-gap VByte should at least halve 8-byte flat postings.
    EXPECT_LT(fp.compressedPostingBytes, fp.rawPostingBytes / 2);
    EXPECT_GT(fp.docTableBytes, 0u);
    // The block-max skip layer is accounted too: at least the stream
    // (its per-block gap restarts can only widen it), plus metadata.
    EXPECT_GE(fp.blockMaxBytes, fp.compressedPostingBytes);
    std::size_t expectedBlockMax = 0;
    for (const PostingList &list : index_->allPostings())
        expectedBlockMax += index_->blockMax(list.term)->bytes();
    EXPECT_EQ(fp.blockMaxBytes, expectedBlockMax);
}

TEST_F(IndexFixture, PruningReducesWork)
{
    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;

    TraceConfig traceConfig;
    traceConfig.numQueries = 100;
    traceConfig.vocabSize = 3000;
    traceConfig.seed = 6;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    uint64_t exhaustiveDocs = 0;
    uint64_t maxscoreDocs = 0;
    uint64_t wandDocs = 0;
    for (const Query &query : trace.queries()) {
        exhaustiveDocs +=
            exhaustive.search(*index_, query.terms, 10).work.docsScored;
        maxscoreDocs +=
            maxscore.search(*index_, query.terms, 10).work.docsScored;
        wandDocs += wand.search(*index_, query.terms, 10).work.docsScored;
    }
    EXPECT_LT(maxscoreDocs, exhaustiveDocs);
    EXPECT_LT(wandDocs, exhaustiveDocs);
}

TEST_F(IndexFixture, ResultsSortedBestFirst)
{
    const ExhaustiveEvaluator exhaustive;
    const std::vector<TermId> terms = {0, 5};
    const SearchResult result = exhaustive.search(*index_, terms, 10);
    ASSERT_FALSE(result.topK.empty());
    for (std::size_t i = 1; i < result.topK.size(); ++i)
        EXPECT_TRUE(ranksBetter(result.topK[i - 1], result.topK[i]) ||
                    (result.topK[i - 1].score == result.topK[i].score &&
                     result.topK[i - 1].doc == result.topK[i].doc));
}

TEST_F(IndexFixture, MissingTermsYieldEmptyResult)
{
    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const std::vector<TermId> terms = {2999999};
    EXPECT_TRUE(exhaustive.search(*index_, terms, 10).topK.empty());
    EXPECT_TRUE(maxscore.search(*index_, terms, 10).topK.empty());
}

TEST_F(IndexFixture, TermStatsBasicInvariants)
{
    const TermStatsStore store(*index_, 10);
    EXPECT_EQ(store.size(), index_->numTerms());
    const TermStats *ts = store.get(0);
    ASSERT_NE(ts, nullptr);

    const PostingList *list = index_->postings(0);
    EXPECT_DOUBLE_EQ(ts->postingLength, static_cast<double>(list->size()));
    EXPECT_DOUBLE_EQ(ts->maxScore, index_->maxScore(0));
    EXPECT_DOUBLE_EQ(ts->idf, index_->idf(0));

    // Percentile ordering.
    EXPECT_LE(ts->firstQuartile, ts->median);
    EXPECT_LE(ts->median, ts->thirdQuartile);
    EXPECT_LE(ts->thirdQuartile, ts->maxScore);
    EXPECT_LE(ts->kthScore, ts->maxScore);

    // Mean inequalities (harmonic <= geometric <= arithmetic).
    EXPECT_LE(ts->harmMeanScore, ts->geoMeanScore + 1e-9);
    EXPECT_LE(ts->geoMeanScore, ts->meanScore + 1e-9);

    // Count features are bounded by the posting length.
    EXPECT_GE(ts->numMaxScore, 1.0);
    EXPECT_LE(ts->docsNearMax, ts->postingLength);
    EXPECT_LE(ts->docsNearKth, ts->postingLength);
    EXPECT_LE(ts->localMaximaAboveMean, ts->localMaxima);
    EXPECT_LE(ts->localMaxima, ts->postingLength);

    // Heap-insertion feature: at least min(K, df), at most df.
    EXPECT_GE(ts->docsEverInTopK,
              std::min<double>(10.0, ts->postingLength));
    EXPECT_LE(ts->docsEverInTopK, ts->postingLength);

    // The static bound dominates the exact max.
    EXPECT_GE(ts->estimatedMaxScore, ts->maxScore);

    EXPECT_EQ(store.get(2999999), nullptr);
}

TEST_F(IndexFixture, TermStatsKthScoreMatchesSortedScores)
{
    const TermStatsStore store(*index_, 10);
    const PostingList *list = index_->postings(2);
    ASSERT_NE(list, nullptr);
    const double idf = index_->idf(2);
    std::vector<double> scores;
    for (const Posting &posting : list->postings)
        scores.push_back(index_->scorePosting(idf, posting));
    std::sort(scores.begin(), scores.end(), std::greater<double>());
    const TermStats *ts = store.get(2);
    ASSERT_NE(ts, nullptr);
    const double expected =
        scores.size() >= 10 ? scores[9] : scores.back();
    EXPECT_NEAR(ts->kthScore, expected, 1e-12);
}

} // namespace
} // namespace cottage
