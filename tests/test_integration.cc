/**
 * @file
 * Cross-module integration and property tests: a miniature end-to-end
 * experiment replayed under every policy, plus parameterized property
 * sweeps over seeds and shard counts.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.h"

namespace cottage {
namespace {

ExperimentConfig
miniConfig(uint64_t seed = 42, ShardId shards = 4)
{
    ExperimentConfig config;
    config.corpus.numDocs = 4000;
    config.corpus.vocabSize = 8000;
    config.corpus.seed = seed;
    config.shards.numShards = shards;
    config.traceQueries = 200;
    config.trainQueries = 300;
    config.train.hiddenLayers = {16, 16};
    config.train.iterations = 200;
    config.arrivalQps = 200.0;
    return config;
}

class MiniExperiment : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        experiment_ = new Experiment(miniConfig());
    }

    static void
    TearDownTestSuite()
    {
        delete experiment_;
        experiment_ = nullptr;
    }

    static Experiment *experiment_;
};

Experiment *MiniExperiment::experiment_ = nullptr;

TEST_F(MiniExperiment, EveryPolicyProducesSaneSummaries)
{
    for (const char *name :
         {"exhaustive", "aggregation", "rank-s", "taily", "cottage",
          "cottage-isn", "cottage-without-ml", "oracle", "slo-dvfs"}) {
        const RunResult result =
            experiment_->run(name, TraceFlavor::Wikipedia);
        const RunSummary &s = result.summary;
        EXPECT_EQ(s.queries, 200u) << name;
        EXPECT_GT(s.avgLatencySeconds, 0.0) << name;
        EXPECT_GE(s.p95LatencySeconds, s.p50LatencySeconds) << name;
        EXPECT_GE(s.maxLatencySeconds, s.p99LatencySeconds) << name;
        EXPECT_GT(s.avgPrecision, 0.4) << name;
        EXPECT_LE(s.avgPrecision, 1.0 + 1e-12) << name;
        EXPECT_GE(s.avgIsnsUsed, 1.0) << name;
        EXPECT_LE(s.avgIsnsUsed, 4.0) << name;
        EXPECT_GT(s.avgPowerWatts, experiment_->config().power.idleWatts)
            << name;
        EXPECT_GT(s.durationSeconds, 0.0) << name;
    }
}

TEST_F(MiniExperiment, ExhaustiveIsPerfectAndCottageCheaper)
{
    const RunResult exhaustive =
        experiment_->run("exhaustive", TraceFlavor::Wikipedia);
    const RunResult cottage =
        experiment_->run("cottage", TraceFlavor::Wikipedia);

    EXPECT_DOUBLE_EQ(exhaustive.summary.avgPrecision, 1.0);
    EXPECT_DOUBLE_EQ(exhaustive.summary.avgIsnsUsed, 4.0);

    EXPECT_LT(cottage.summary.avgIsnsUsed,
              exhaustive.summary.avgIsnsUsed);
    EXPECT_LT(cottage.summary.avgDocsSearched,
              exhaustive.summary.avgDocsSearched);
    EXPECT_LT(cottage.summary.avgPowerWatts,
              exhaustive.summary.avgPowerWatts);
    // No latency assertion here: at this miniature scale the
    // coordination overhead dominates; the latency win is the subject
    // of the paper-scale Fig. 10 bench.
    EXPECT_GT(cottage.summary.avgPrecision, 0.75);
}

TEST_F(MiniExperiment, RunsAreDeterministic)
{
    const RunResult a = experiment_->run("taily", TraceFlavor::Wikipedia);
    const RunResult b = experiment_->run("taily", TraceFlavor::Wikipedia);
    ASSERT_EQ(a.measurements.size(), b.measurements.size());
    for (std::size_t i = 0; i < a.measurements.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.measurements[i].latencySeconds,
                         b.measurements[i].latencySeconds);
        EXPECT_DOUBLE_EQ(a.measurements[i].precisionAtK,
                         b.measurements[i].precisionAtK);
    }
    EXPECT_DOUBLE_EQ(a.summary.energyJoules, b.summary.energyJoules);
}

TEST_F(MiniExperiment, MeasurementInvariantsHold)
{
    const RunResult result =
        experiment_->run("cottage", TraceFlavor::Lucene);
    for (const QueryMeasurement &m : result.measurements) {
        EXPECT_LE(m.isnsCompleted, m.isnsUsed);
        EXPECT_LE(m.isnsBoosted, m.isnsUsed);
        EXPECT_GE(m.latencySeconds,
                  experiment_->cluster().network().rttSeconds);
        EXPECT_LE(m.results.size(), experiment_->index().topK());
        EXPECT_GE(m.precisionAtK, 0.0);
        EXPECT_LE(m.precisionAtK, 1.0 + 1e-12);
    }
}

TEST_F(MiniExperiment, TracesAreCachedAndFlavorsDiffer)
{
    const QueryTrace &wiki = experiment_->trace(TraceFlavor::Wikipedia);
    const QueryTrace &wiki2 = experiment_->trace(TraceFlavor::Wikipedia);
    EXPECT_EQ(&wiki, &wiki2);
    const QueryTrace &lucene = experiment_->trace(TraceFlavor::Lucene);
    EXPECT_NE(wiki.name(), lucene.name());
}

TEST_F(MiniExperiment, UnknownPolicyIsFatal)
{
    EXPECT_DEATH((void)experiment_->makePolicy("not-a-policy"),
                 "unknown policy");
}

/** Property sweep: the core comparative invariants hold across seeds. */
class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, CottageInvariantsAcrossSeeds)
{
    ExperimentConfig config = miniConfig(GetParam());
    config.traceQueries = 120;
    config.trainQueries = 250;
    Experiment experiment(std::move(config));

    const RunResult exhaustive =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    const RunResult cottage =
        experiment.run("cottage", TraceFlavor::Wikipedia);

    EXPECT_DOUBLE_EQ(exhaustive.summary.avgPrecision, 1.0);
    EXPECT_LT(cottage.summary.avgIsnsUsed,
              exhaustive.summary.avgIsnsUsed);
    EXPECT_LT(cottage.summary.energyJoules,
              exhaustive.summary.energyJoules);
    EXPECT_GT(cottage.summary.avgPrecision, 0.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 1234u));

/** Property sweep: shard-count independence of engine invariants. */
class ShardSweep : public ::testing::TestWithParam<ShardId>
{
};

TEST_P(ShardSweep, ExhaustiveQualityIsExactForAnyShardCount)
{
    ExperimentConfig config = miniConfig(42, GetParam());
    config.traceQueries = 80;
    Experiment experiment(std::move(config));
    const RunResult result =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    EXPECT_DOUBLE_EQ(result.summary.avgPrecision, 1.0);
    EXPECT_DOUBLE_EQ(result.summary.avgIsnsUsed,
                     static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardSweep,
                         ::testing::Values(2u, 5u, 8u));

} // namespace
} // namespace cottage
