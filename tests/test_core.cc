/**
 * @file
 * Tests for the paper's contribution: Algorithm 1 (including the
 * worked Fig. 9 example) and the Cottage policy family.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "core/budget_algorithm.h"
#include "core/cottage_isn_policy.h"
#include "core/cottage_policy.h"
#include "core/cottage_without_ml_policy.h"
#include "core/oracle_policy.h"
#include "core/slo_policy.h"
#include "engine/distributed_engine.h"
#include "index/maxscore_evaluator.h"
#include "text/trace.h"

namespace cottage {
namespace {

IsnPrediction
pred(ShardId isn, uint32_t qK, uint32_t qHalf, double boostedMs)
{
    IsnPrediction p;
    p.isn = isn;
    p.qualityK = qK;
    p.qualityHalf = qHalf;
    p.latencyBoosted = boostedMs * 1e-3;
    p.latencyCurrent = p.latencyBoosted * 2.7 / 2.1;
    p.serviceCycles = p.latencyBoosted * 2.7e9;
    return p;
}

bool
contains(const std::vector<ShardId> &set, ShardId isn)
{
    return std::find(set.begin(), set.end(), isn) != set.end();
}

// ------------------------------------------------------------------
// Step 6 extended: the joint (cores x frequency) grid.

/** Grid call with the common defaults; tests override what they probe. */
CoreFreqChoice
grid(const std::vector<double> &backlogByCores, double serviceCycles,
     double budgetSeconds, uint32_t maxCores,
     double powerCapWatts = std::numeric_limits<double>::infinity(),
     const std::vector<double> &coreCycleFactors = {},
     bool dvfsPowerSaving = true)
{
    const FrequencyLadder ladder;
    const SpeedupCurve speedup;
    const PowerModel power;
    return chooseCoresAndFrequency(backlogByCores, serviceCycles,
                                   budgetSeconds, ladder, speedup, power,
                                   maxCores, powerCapWatts,
                                   coreCycleFactors, dvfsPowerSaving);
}

TEST(CoreFreqGrid, GangMeetsADeadlineSingleCoreCannot)
{
    // 2.7e9 cycles = 1 s even at the ladder top on one core; a 0.5 s
    // budget therefore needs a gang (S(4) ~ 3.2x on the default
    // curve). All workers idle, so the work-conserving rule is moot.
    const CoreFreqChoice choice =
        grid({0.0, 0.0, 0.0, 0.0}, 2.7e9, 0.5, 4);
    EXPECT_TRUE(choice.meetsBudget);
    EXPECT_GT(choice.cores, 1u);
    EXPECT_LE(choice.latencySeconds, 0.5);
}

TEST(CoreFreqGrid, WorkConservingRuleRefusesQueuedGangs)
{
    // Same deadline pressure, but now a gang would have to WAIT for
    // its width (gang backlog > single-core backlog): the rule skips
    // every multi-core candidate, the budget becomes infeasible, and
    // the fallback is the fastest single-core point.
    const CoreFreqChoice choice =
        grid({0.0, 0.2, 0.2, 0.2}, 2.7e9, 0.5, 4);
    EXPECT_FALSE(choice.meetsBudget);
    EXPECT_EQ(choice.cores, 1u);
    EXPECT_DOUBLE_EQ(choice.freqGhz, FrequencyLadder().maxGhz());
}

TEST(CoreFreqGrid, CoreCycleFactorPricesParallelOverheadIn)
{
    // A calibrated 100x work inflation at every gang width makes
    // ganging useless: the grid must fall back to one core rather
    // than trust the uninflated speedup.
    const CoreFreqChoice choice = grid(
        {0.0, 0.0, 0.0, 0.0}, 2.7e9, 0.5, 4,
        std::numeric_limits<double>::infinity(), {1.0, 100.0, 100.0,
                                                  100.0});
    EXPECT_FALSE(choice.meetsBudget);
    EXPECT_EQ(choice.cores, 1u);
}

TEST(CoreFreqGrid, ImpossiblePowerCapDegeneratesToBoostedSingleCore)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    // Cap below even (min frequency, one core): the whole grid is
    // excluded and the pre-parallel fallback stands — one boosted
    // core, backlog included in the predicted latency.
    const double cap =
        power.activePowerWatts(ladder.minGhz(), 1) - 1e-6;
    const CoreFreqChoice choice =
        grid({0.3, 0.3, 0.3, 0.3}, 2.7e9, 0.5, 4, cap);
    EXPECT_FALSE(choice.meetsBudget);
    EXPECT_EQ(choice.cores, 1u);
    EXPECT_DOUBLE_EQ(choice.freqGhz, ladder.maxGhz());
    EXPECT_NEAR(choice.latencySeconds,
                0.3 + 2.7e9 / (ladder.maxGhz() * 1e9), 1e-12);
}

TEST(CoreFreqGrid, ShortBacklogVectorSaturates)
{
    // A single-entry backlog vector must behave exactly like the same
    // value replicated across every core count (the saturating-index
    // contract); feeding it keeps gangs admissible on an idle node.
    const CoreFreqChoice shorthand = grid({0.0}, 2.7e9, 0.5, 4);
    const CoreFreqChoice longhand =
        grid({0.0, 0.0, 0.0, 0.0}, 2.7e9, 0.5, 4);
    EXPECT_EQ(shorthand.cores, longhand.cores);
    EXPECT_DOUBLE_EQ(shorthand.freqGhz, longhand.freqGhz);
    EXPECT_DOUBLE_EQ(shorthand.latencySeconds, longhand.latencySeconds);
    EXPECT_DOUBLE_EQ(shorthand.energyJoules, longhand.energyJoules);
    EXPECT_EQ(shorthand.meetsBudget, longhand.meetsBudget);
}

TEST(CoreFreqGrid, DvfsDisabledFloorsFrequencyAtDefault)
{
    // Without DVFS power saving the grid may only boost, never slow
    // down — the chosen step sits at or above the default frequency
    // even when a slower one would meet the budget more cheaply.
    const CoreFreqChoice choice = grid(
        {0.0, 0.0, 0.0, 0.0}, 2.1e8, 10.0, 4,
        std::numeric_limits<double>::infinity(), {}, false);
    EXPECT_TRUE(choice.meetsBudget);
    EXPECT_GE(choice.freqGhz, FrequencyLadder().defaultGhz() - 1e-12);
}

TEST(BudgetAlgorithm, ReproducesFig9Example)
{
    // The paper's worked example (K = 20): ISNs 4, 9, 12, 14 predict
    // zero Quality-K and are cut; the descending-boosted-latency walk
    // visits <7, 1, 13, ...>; ISN-7 contributes nothing to the top-K/2
    // so the budget lands on ISN-1's boosted latency of 16 ms and
    // ISN-7 is sacrificed.
    std::vector<IsnPrediction> predictions = {
        pred(7, 2, 0, 18.0),  pred(1, 3, 1, 16.0),  pred(13, 4, 2, 15.0),
        pred(2, 2, 1, 14.0),  pred(6, 1, 0, 12.0),  pred(5, 2, 1, 11.0),
        pred(15, 1, 0, 10.0), pred(16, 1, 1, 9.0),  pred(3, 3, 2, 8.0),
        pred(8, 2, 1, 7.0),   pred(10, 1, 0, 6.0),  pred(11, 1, 2, 5.0),
        pred(4, 0, 0, 13.0),  pred(9, 0, 0, 4.0),   pred(12, 0, 0, 20.0),
        pred(14, 0, 0, 3.0),
    };

    const BudgetDecision decision =
        determineTimeBudget(std::move(predictions));

    EXPECT_NEAR(decision.budgetSeconds, 16e-3, 1e-12);

    ASSERT_EQ(decision.droppedZeroQuality.size(), 4u);
    for (ShardId isn : {4, 9, 12, 14})
        EXPECT_TRUE(contains(decision.droppedZeroQuality, isn))
            << "ISN " << isn;

    ASSERT_EQ(decision.droppedOverBudget.size(), 1u);
    EXPECT_EQ(decision.droppedOverBudget[0], 7u);

    EXPECT_EQ(decision.selected.size(), 11u);
    for (ShardId isn : {1, 13, 2, 6, 5, 15, 16, 3, 8, 10, 11})
        EXPECT_TRUE(contains(decision.selected, isn)) << "ISN " << isn;
}

TEST(BudgetAlgorithm, EmptyInputYieldsEmptyDecision)
{
    const BudgetDecision decision = determineTimeBudget({});
    EXPECT_TRUE(decision.selected.empty());
    EXPECT_DOUBLE_EQ(decision.budgetSeconds, 0.0);
}

TEST(BudgetAlgorithm, AllZeroQualityDropsEverything)
{
    const BudgetDecision decision = determineTimeBudget(
        {pred(0, 0, 0, 5.0), pred(1, 0, 0, 8.0), pred(2, 0, 0, 2.0)});
    EXPECT_TRUE(decision.selected.empty());
    EXPECT_EQ(decision.droppedZeroQuality.size(), 3u);
}

TEST(BudgetAlgorithm, NoHalfContributorShrinksToFastest)
{
    // Nobody contributes to the top-K/2: the walk runs to the fastest
    // ISN (the pseudocode's loop leaves T at the last boosted latency).
    const BudgetDecision decision = determineTimeBudget(
        {pred(0, 1, 0, 12.0), pred(1, 2, 0, 6.0), pred(2, 1, 0, 3.0)});
    EXPECT_NEAR(decision.budgetSeconds, 3e-3, 1e-12);
    ASSERT_EQ(decision.selected.size(), 1u);
    EXPECT_EQ(decision.selected[0], 2u);
    EXPECT_EQ(decision.droppedOverBudget.size(), 2u);
}

TEST(BudgetAlgorithm, SlowestIsHalfContributorKeepsEveryone)
{
    const BudgetDecision decision = determineTimeBudget(
        {pred(0, 2, 1, 15.0), pred(1, 1, 0, 8.0), pred(2, 1, 1, 4.0)});
    EXPECT_NEAR(decision.budgetSeconds, 15e-3, 1e-12);
    EXPECT_EQ(decision.selected.size(), 3u);
    EXPECT_TRUE(decision.droppedOverBudget.empty());
}

TEST(BudgetAlgorithm, EqualBoostedLatenciesAllSelected)
{
    const BudgetDecision decision = determineTimeBudget(
        {pred(0, 1, 0, 7.0), pred(1, 1, 1, 7.0), pred(2, 2, 1, 7.0)});
    EXPECT_NEAR(decision.budgetSeconds, 7e-3, 1e-12);
    EXPECT_EQ(decision.selected.size(), 3u);
}

/** Small end-to-end stack with a quickly-trained bank. */
class CottageFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CorpusConfig corpusConfig;
        corpusConfig.numDocs = 3000;
        corpusConfig.vocabSize = 6000;
        corpusConfig.seed = 14;
        corpus_ = std::make_unique<Corpus>(Corpus::generate(corpusConfig));

        ShardedIndexConfig shardConfig;
        shardConfig.numShards = 4;
        shardConfig.topK = 10;
        // Topical shards (the default experiment layout): quality
        // contributions concentrate, so selection is meaningful.
        shardConfig.partition = PartitionPolicy::Topical;
        index_ = std::make_unique<ShardedIndex>(*corpus_, shardConfig);
        cluster_ = std::make_unique<ClusterSim>(4, FrequencyLadder(),
                                                PowerModel());
        engine_ = std::make_unique<DistributedEngine>(*index_, *cluster_,
                                                      evaluator_);

        TraceConfig traceConfig;
        traceConfig.numQueries = 300;
        traceConfig.vocabSize = corpusConfig.vocabSize;
        traceConfig.seed = 91;
        trainTrace_ = QueryTrace::generate(traceConfig);

        PredictorTrainConfig trainConfig;
        trainConfig.hiddenLayers = {16, 16};
        trainConfig.iterations = 200;
        bank_ = std::make_unique<PredictorBank>(*index_, evaluator_,
                                                WorkModel(), trainTrace_,
                                                trainConfig);

        query_.terms = {40, 700};
        query_.arrivalSeconds = 0.0;
    }

    MaxScoreEvaluator evaluator_;
    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<ShardedIndex> index_;
    std::unique_ptr<ClusterSim> cluster_;
    std::unique_ptr<DistributedEngine> engine_;
    QueryTrace trainTrace_;
    std::unique_ptr<PredictorBank> bank_;
    Query query_;
};

TEST_F(CottageFixture, PredictionsAreWellFormed)
{
    CottagePolicy policy(*bank_);
    const std::vector<IsnPrediction> predictions =
        policy.predictions(query_, *engine_);
    ASSERT_EQ(predictions.size(), 4u);
    for (const IsnPrediction &p : predictions) {
        EXPECT_GT(p.latencyCurrent, 0.0);
        // Boosting cannot be slower than the current frequency.
        EXPECT_LE(p.latencyBoosted, p.latencyCurrent + 1e-12);
        EXPECT_DOUBLE_EQ(p.backlogSeconds, 0.0); // idle cluster
        EXPECT_LE(p.qualityK, 10u);
        EXPECT_LE(p.qualityHalf, 5u);
    }
}

TEST_F(CottageFixture, PlanRespectsLadderAndBudget)
{
    CottagePolicy policy(*bank_);
    const QueryPlan plan = policy.plan(query_, *engine_);
    ASSERT_EQ(plan.isns.size(), 4u);
    EXPECT_GE(plan.participants(), 1u);
    if (plan.budgetSeconds != noBudget) {
        EXPECT_GT(plan.budgetSeconds, 0.0);
        for (const IsnDirective &directive : plan.isns) {
            if (!directive.participate)
                continue;
            EXPECT_TRUE(engine_->cluster().ladder().contains(
                directive.freqGhz))
                << directive.freqGhz;
        }
    }
    EXPECT_GT(plan.decisionOverheadSeconds, 0.0);
}

TEST_F(CottageFixture, BacklogRaisesEquivalentLatency)
{
    // Saturate ISN 0, then check the prediction includes the backlog.
    cluster_->isn(0).execute(0.0, 2.1e9, 2.1,
                             std::numeric_limits<double>::infinity());
    CottagePolicy policy(*bank_);
    const std::vector<IsnPrediction> predictions =
        policy.predictions(query_, *engine_);
    EXPECT_NEAR(predictions[0].backlogSeconds, 1.0, 1e-9);
    EXPECT_GT(predictions[0].latencyBoosted, 0.9);
    cluster_->reset();
}

TEST_F(CottageFixture, CottageUsesFewerIsnsThanExhaustive)
{
    CottagePolicy policy(*bank_);
    uint32_t total = 0;
    for (const Query &query : trainTrace_.queries()) {
        const QueryPlan plan = policy.plan(query, *engine_);
        total += plan.participants();
    }
    const double average =
        static_cast<double>(total) /
        static_cast<double>(trainTrace_.size());
    EXPECT_LT(average, 4.0);
    EXPECT_GE(average, 1.0);
}

TEST_F(CottageFixture, IsnVariantHasNoBudgetOrBoost)
{
    CottageIsnPolicy policy(*bank_);
    const QueryPlan plan = policy.plan(query_, *engine_);
    EXPECT_EQ(plan.budgetSeconds, noBudget);
    for (const IsnDirective &directive : plan.isns)
        EXPECT_DOUBLE_EQ(directive.freqGhz, 0.0);
    // Local decision: cheaper than the coordinated round.
    CottagePolicy full(*bank_);
    EXPECT_LT(plan.decisionOverheadSeconds,
              full.plan(query_, *engine_).decisionOverheadSeconds);
}

TEST_F(CottageFixture, WithoutMlVariantProducesValidPlans)
{
    CottageWithoutMlPolicy policy(*bank_, *index_);
    EXPECT_STREQ(policy.name(), "cottage-without-ml");
    const QueryPlan plan = policy.plan(query_, *engine_);
    EXPECT_GE(plan.participants(), 1u);
    EXPECT_EQ(plan.isns.size(), 4u);
}

TEST_F(CottageFixture, OracleSelectsExactlyTheContributors)
{
    OraclePolicy policy;
    const auto truth = engine_->globalTopK(query_.terms);
    const auto contributions = engine_->shardContributions(truth);

    const QueryPlan plan = policy.plan(query_, *engine_);
    // Participants must be a subset of true contributors; any true
    // contributor left out was sacrificed by the budget walk (and must
    // then be slower than the budget when boosted).
    for (ShardId s = 0; s < 4; ++s) {
        if (plan.isns[s].participate) {
            EXPECT_GT(contributions[s], 0u) << "ISN " << s;
        }
    }
    EXPECT_GE(plan.participants(), 1u);
    EXPECT_DOUBLE_EQ(plan.decisionOverheadSeconds, 0.0);
}

TEST_F(CottageFixture, OracleExecutionMeetsItsOwnBudget)
{
    OraclePolicy policy;
    cluster_->reset();
    const auto truth = engine_->globalTopK(query_.terms);
    const QueryPlan plan = policy.plan(query_, *engine_);
    const QueryMeasurement m = engine_->execute(query_, plan, truth);
    // Exact cycle knowledge: every dispatched ISN completes.
    EXPECT_EQ(m.isnsCompleted, m.isnsUsed);
}

TEST_F(CottageFixture, OracleQualityDominatesCottage)
{
    OraclePolicy oracle;
    CottagePolicy cottage(*bank_);
    double oraclePrecision = 0.0;
    double cottagePrecision = 0.0;
    for (std::size_t q = 0; q < 60; ++q) {
        const Query &query = trainTrace_.query(q);
        const auto truth = engine_->globalTopK(query.terms);
        cluster_->reset();
        oraclePrecision +=
            engine_->execute(query, oracle.plan(query, *engine_), truth)
                .precisionAtK;
        cluster_->reset();
        cottagePrecision +=
            engine_->execute(query, cottage.plan(query, *engine_), truth)
                .precisionAtK;
    }
    // With anytime partial results, Cottage's budgeted-but-
    // participating ISNs recover their truncated contributions, so
    // budget conservatism no longer costs quality and Cottage can
    // legitimately edge past the oracle's participation-only plans.
    // The oracle's exact cycle knowledge still keeps it near-perfect.
    EXPECT_GE(oraclePrecision, cottagePrecision - 2.5);
    EXPECT_GT(oraclePrecision / 60.0, 0.9);
    cluster_->reset();
}

TEST_F(CottageFixture, SloDvfsServesEveryoneAtFixedDeadline)
{
    SloDvfsPolicy policy(*bank_, 50e-3);
    const QueryPlan plan = policy.plan(query_, *engine_);
    EXPECT_EQ(plan.participants(), 4u);
    EXPECT_DOUBLE_EQ(plan.budgetSeconds, 50e-3);
    // A generous SLO lets every ISN run below the default frequency.
    for (const IsnDirective &directive : plan.isns) {
        EXPECT_TRUE(engine_->cluster().ladder().contains(
            directive.freqGhz));
        EXPECT_LE(directive.freqGhz,
                  engine_->cluster().ladder().defaultGhz() + 1e-12);
    }
    // A hopeless SLO forces max frequency everywhere.
    SloDvfsPolicy tight(*bank_, 1e-6);
    const QueryPlan tightPlan = tight.plan(query_, *engine_);
    for (const IsnDirective &directive : tightPlan.isns)
        EXPECT_DOUBLE_EQ(directive.freqGhz,
                         engine_->cluster().ladder().maxGhz());
}

TEST_F(CottageFixture, BudgetSlackOnlyWidensDeadline)
{
    CottageConfig tight;
    tight.budgetSlack = 1.0;
    CottageConfig loose;
    loose.budgetSlack = 2.0;
    CottagePolicy tightPolicy(*bank_, tight);
    CottagePolicy loosePolicy(*bank_, loose);
    const QueryPlan a = tightPolicy.plan(query_, *engine_);
    const QueryPlan b = loosePolicy.plan(query_, *engine_);
    if (a.budgetSeconds != noBudget && b.budgetSeconds != noBudget) {
        EXPECT_NEAR(b.budgetSeconds, 2.0 * a.budgetSeconds,
                    1e-9 * a.budgetSeconds);
        // Same participants either way: slack is margin, not policy.
        EXPECT_EQ(a.participants(), b.participants());
    }
}

} // namespace
} // namespace cottage
