/**
 * @file
 * Unit tests for the util module: RNG determinism and distribution
 * sanity, Zipf sampling, string helpers, CLI flag parsing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/cli.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace cottage {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(99);
    Rng childA = parent.split();
    Rng childB = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += childA.next() == childB.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(8);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(10);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sumSq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(12);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.exponential(4.0);
    EXPECT_NEAR(total / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(13);
    for (double mean : {0.5, 3.0, 80.0}) {
        double total = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            total += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(total / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
    }
}

TEST(Rng, DiscretePicksProportionally)
{
    Rng rng(14);
    const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.015);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(15);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Zipf, PmfSumsToOne)
{
    const ZipfSampler zipf(100, 1.1);
    double total = 0.0;
    for (uint64_t k = 1; k <= 100; ++k)
        total += zipf.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotoneDecreasing)
{
    const ZipfSampler zipf(1000, 0.9);
    for (uint64_t k = 1; k < 1000; ++k)
        EXPECT_GT(zipf.pmf(k), zipf.pmf(k + 1));
}

TEST(Zipf, SamplesWithinRange)
{
    Rng rng(16);
    const ZipfSampler zipf(50, 1.3);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t k = zipf.sample(rng);
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, 50u);
    }
}

TEST(Zipf, EmpiricalMatchesPmf)
{
    Rng rng(17);
    const ZipfSampler zipf(20, 1.0);
    std::vector<int> counts(21, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (uint64_t k = 1; k <= 20; ++k) {
        const double expected = zipf.pmf(k);
        const double observed = counts[k] / double(n);
        EXPECT_NEAR(observed, expected, 0.15 * expected + 0.002)
            << "rank " << k;
    }
}

TEST(Zipf, SingletonAlwaysReturnsOne)
{
    Rng rng(18);
    const ZipfSampler zipf(1, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(Zipf, NonUnitExponent)
{
    Rng rng(19);
    const ZipfSampler zipf(100, 0.5);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(zipf.sample(rng));
    double expectedMean = 0.0;
    for (uint64_t k = 1; k <= 100; ++k)
        expectedMean += static_cast<double>(k) * zipf.pmf(k);
    EXPECT_NEAR(total / n, expectedMean, expectedMean * 0.03);
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty)
{
    const auto parts = splitWhitespace("  canada   maple\tsyrup \n");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "canada");
    EXPECT_EQ(parts[1], "maple");
    EXPECT_EQ(parts[2], "syrup");
}

TEST(StringUtil, JoinRoundTrip)
{
    const std::vector<std::string> parts = {"a", "b", "c"};
    EXPECT_EQ(join(parts, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, TrimAndLower)
{
    EXPECT_EQ(trim("  Hello \t"), "Hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("ToKyO"), "tokyo");
}

TEST(StringUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-f", "--"));
    EXPECT_FALSE(startsWith("", "--"));
}

TEST(StringUtil, Strformat)
{
    EXPECT_EQ(strformat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Cli, ParsesAllFlagForms)
{
    const char *argv[] = {"prog", "--alpha=3", "--beta=4.5", "--verbose",
                          "positional", "--name=wiki"};
    const CliFlags flags(6, argv);
    EXPECT_EQ(flags.getInt("alpha", 0), 3);
    EXPECT_DOUBLE_EQ(flags.getDouble("beta", 0.0), 4.5);
    EXPECT_TRUE(flags.getBool("verbose", false));
    EXPECT_EQ(flags.getString("name", ""), "wiki");
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent)
{
    const char *argv[] = {"prog"};
    const CliFlags flags(1, argv);
    EXPECT_EQ(flags.getInt("x", -2), -2);
    EXPECT_DOUBLE_EQ(flags.getDouble("y", 2.5), 2.5);
    EXPECT_FALSE(flags.getBool("z", false));
    EXPECT_EQ(flags.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(flags.has("x"));
}

TEST(Cli, TrailingBooleanFlag)
{
    const char *argv[] = {"prog", "--go"};
    const CliFlags flags(2, argv);
    EXPECT_TRUE(flags.getBool("go", false));
}

} // namespace
} // namespace cottage
