/**
 * @file
 * Unit tests for the util module: RNG determinism and distribution
 * sanity, Zipf sampling, string helpers, CLI flag parsing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/cli.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/zipf.h"

namespace cottage {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(99);
    Rng childA = parent.split();
    Rng childB = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += childA.next() == childB.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(8);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(10);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sumSq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(12);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.exponential(4.0);
    EXPECT_NEAR(total / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(13);
    for (double mean : {0.5, 3.0, 80.0}) {
        double total = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            total += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(total / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
    }
}

TEST(Rng, DiscretePicksProportionally)
{
    Rng rng(14);
    const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.015);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(15);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Zipf, PmfSumsToOne)
{
    const ZipfSampler zipf(100, 1.1);
    double total = 0.0;
    for (uint64_t k = 1; k <= 100; ++k)
        total += zipf.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotoneDecreasing)
{
    const ZipfSampler zipf(1000, 0.9);
    for (uint64_t k = 1; k < 1000; ++k)
        EXPECT_GT(zipf.pmf(k), zipf.pmf(k + 1));
}

TEST(Zipf, SamplesWithinRange)
{
    Rng rng(16);
    const ZipfSampler zipf(50, 1.3);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t k = zipf.sample(rng);
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, 50u);
    }
}

TEST(Zipf, EmpiricalMatchesPmf)
{
    Rng rng(17);
    const ZipfSampler zipf(20, 1.0);
    std::vector<int> counts(21, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (uint64_t k = 1; k <= 20; ++k) {
        const double expected = zipf.pmf(k);
        const double observed = counts[k] / double(n);
        EXPECT_NEAR(observed, expected, 0.15 * expected + 0.002)
            << "rank " << k;
    }
}

TEST(Zipf, SingletonAlwaysReturnsOne)
{
    Rng rng(18);
    const ZipfSampler zipf(1, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(Zipf, NonUnitExponent)
{
    Rng rng(19);
    const ZipfSampler zipf(100, 0.5);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(zipf.sample(rng));
    double expectedMean = 0.0;
    for (uint64_t k = 1; k <= 100; ++k)
        expectedMean += static_cast<double>(k) * zipf.pmf(k);
    EXPECT_NEAR(total / n, expectedMean, expectedMean * 0.03);
}

TEST(StringUtil, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty)
{
    const auto parts = splitWhitespace("  canada   maple\tsyrup \n");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "canada");
    EXPECT_EQ(parts[1], "maple");
    EXPECT_EQ(parts[2], "syrup");
}

TEST(StringUtil, JoinRoundTrip)
{
    const std::vector<std::string> parts = {"a", "b", "c"};
    EXPECT_EQ(join(parts, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, TrimAndLower)
{
    EXPECT_EQ(trim("  Hello \t"), "Hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("ToKyO"), "tokyo");
}

TEST(StringUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-f", "--"));
    EXPECT_FALSE(startsWith("", "--"));
}

TEST(StringUtil, Strformat)
{
    EXPECT_EQ(strformat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
    EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Cli, ParsesAllFlagForms)
{
    const char *argv[] = {"prog", "--alpha=3", "--beta=4.5", "--verbose",
                          "positional", "--name=wiki"};
    const CliFlags flags(6, argv);
    EXPECT_EQ(flags.getInt("alpha", 0), 3);
    EXPECT_DOUBLE_EQ(flags.getDouble("beta", 0.0), 4.5);
    EXPECT_TRUE(flags.getBool("verbose", false));
    EXPECT_EQ(flags.getString("name", ""), "wiki");
    ASSERT_EQ(flags.positional().size(), 1u);
    EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent)
{
    const char *argv[] = {"prog"};
    const CliFlags flags(1, argv);
    EXPECT_EQ(flags.getInt("x", -2), -2);
    EXPECT_DOUBLE_EQ(flags.getDouble("y", 2.5), 2.5);
    EXPECT_FALSE(flags.getBool("z", false));
    EXPECT_EQ(flags.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(flags.has("x"));
}

TEST(Cli, TrailingBooleanFlag)
{
    const char *argv[] = {"prog", "--go"};
    const CliFlags flags(2, argv);
    EXPECT_TRUE(flags.getBool("go", false));
}

TEST(CliValidationDeathTest, BadFlagValuesExitTwoWithUsageHint)
{
    // Operator typos get a usage message and the conventional "bad
    // invocation" exit code 2 — not an assertion abort. Exit 2 is
    // also what scripts/check_bench.py reserves for unusable input,
    // so the whole toolchain means the same thing by it.
    const char *argv[] = {"prog", "--isn-cores=0", "--qps-scale=-1"};
    const CliFlags flags(3, argv);
    EXPECT_EXIT(getIntAtLeast(flags, "isn-cores", 1, 1),
                ::testing::ExitedWithCode(2), "isn-cores.*>= 1");
    EXPECT_EXIT(getPositiveDouble(flags, "qps-scale", 4.0),
                ::testing::ExitedWithCode(2),
                "qps-scale.*strictly positive");
    EXPECT_EXIT(cliError("boom", "--flag=N"),
                ::testing::ExitedWithCode(2), "error: boom");
}

TEST(CliValidation, InRangeAndAbsentFlagsPassThrough)
{
    const char *argv[] = {"prog", "--isn-cores=4", "--qps-scale=2.5"};
    const CliFlags flags(3, argv);
    // Present and valid: the parsed value.
    EXPECT_EQ(getIntAtLeast(flags, "isn-cores", 1, 1), 4);
    EXPECT_DOUBLE_EQ(getPositiveDouble(flags, "qps-scale", 4.0), 2.5);
    // Absent: the compiled-in fallback is trusted, NOT validated —
    // even one that violates the bound (callers own their defaults).
    EXPECT_EQ(getIntAtLeast(flags, "cores", -7, 1), -7);
    EXPECT_DOUBLE_EQ(getPositiveDouble(flags, "scale", 4.0), 4.0);
}

TEST(ThreadPool, ZeroTaskParallelForReturnsImmediately)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 0, [&](std::size_t) { ++calls; });
    pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
    pool.parallelFor(7, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(pool.waitFor(std::move(future)), 42);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ranOn;
    auto future = pool.submit([&] { ranOn = std::this_thread::get_id(); });
    future.get();
    EXPECT_EQ(ranOn, caller);
    pool.parallelFor(0, 8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    EXPECT_FALSE(pool.tryRunOne());
}

TEST(ThreadPool, ExceptionPropagatesThroughSubmit)
{
    ThreadPool pool(2);
    auto future =
        pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.waitFor(std::move(future)), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexedFailure)
{
    for (const unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        try {
            pool.parallelFor(0, 64, [&](std::size_t i) {
                // Several chunks fail; the surfaced message must be
                // the lowest failing chunk's regardless of schedule.
                if (i % 16 == 0)
                    throw std::runtime_error("chunk@" +
                                             std::to_string(i / 16));
            });
            FAIL() << "expected an exception (threads=" << threads << ")";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "chunk@0");
        }
    }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    constexpr std::size_t outer = 16;
    constexpr std::size_t inner = 64;
    std::vector<std::atomic<uint64_t>> sums(outer);
    pool.parallelFor(0, outer, [&](std::size_t o) {
        pool.parallelFor(0, inner, [&](std::size_t i) {
            sums[o].fetch_add(i + 1, std::memory_order_relaxed);
        });
    });
    for (std::size_t o = 0; o < outer; ++o)
        ASSERT_EQ(sums[o].load(), inner * (inner + 1) / 2);
}

TEST(ThreadPool, NestedSubmitWaitedInsideATaskCompletes)
{
    ThreadPool pool(2);
    auto outerFuture = pool.submit([&] {
        auto innerFuture = pool.submit([] { return 19; });
        // waitFor() helps drain the queues, so waiting on pool work
        // from inside a pool task cannot deadlock even with every
        // worker occupied by an outer task.
        return pool.waitFor(std::move(innerFuture)) + 23;
    });
    EXPECT_EQ(pool.waitFor(std::move(outerFuture)), 42);
}

TEST(ThreadPool, OversubscriptionStress)
{
    // Far more workers than this machine has cores, far more tasks
    // than workers, with mixed submit/parallelFor traffic.
    ThreadPool pool(16);
    std::atomic<uint64_t> total{0};
    std::vector<std::future<void>> futures;
    futures.reserve(200);
    for (int t = 0; t < 200; ++t) {
        futures.push_back(pool.submit([&total, t] {
            total.fetch_add(static_cast<uint64_t>(t),
                            std::memory_order_relaxed);
        }));
    }
    pool.parallelFor(0, 1000, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
    });
    for (auto &future : futures)
        pool.waitFor(std::move(future));
    EXPECT_EQ(total.load(), 200ull * 199 / 2 + 1000);
}

TEST(ThreadPool, GlobalPoolHonorsThreadKnob)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().threads(), 3u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().threads(), 1u);
    ThreadPool::setGlobalThreads(0); // restore the default
    EXPECT_EQ(ThreadPool::global().threads(),
              ThreadPool::defaultThreads());
}

} // namespace
} // namespace cottage
