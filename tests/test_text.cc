/**
 * @file
 * Unit tests for the text module: vocabulary, synthetic corpus
 * generation and query traces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "text/corpus.h"
#include "text/trace.h"
#include "text/vocabulary.h"

#include "stats/summary.h"

namespace cottage {
namespace {

TEST(Vocabulary, SeedWordsAndSyntheticTerms)
{
    const Vocabulary vocab(2000);
    EXPECT_EQ(vocab.size(), 2000u);
    EXPECT_EQ(vocab.term(0), "the");
    // The paper's example queries are present, in the content area
    // (past the stopword/head zone) where query generation draws its
    // mandatory content term.
    for (const char *word : {"canada", "tokyo", "toyota"}) {
        const TermId id = vocab.lookup(word);
        ASSERT_NE(id, invalidTerm) << word;
        EXPECT_GE(id, 256u) << word;
    }
    // High ranks use the synthetic form.
    EXPECT_EQ(vocab.term(1999), "term_001999");
    EXPECT_EQ(vocab.lookup("term_001999"), 1999u);
}

TEST(Vocabulary, LookupIsCaseInsensitive)
{
    const Vocabulary vocab(2000);
    EXPECT_EQ(vocab.lookup("Canada"), vocab.lookup("canada"));
    EXPECT_EQ(vocab.lookup("never-a-term"), invalidTerm);
}

TEST(Vocabulary, TokenizeDropsUnknown)
{
    const Vocabulary vocab(2000);
    const auto ids = vocab.tokenize("canada xyzzy-unknown tokyo");
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], vocab.lookup("canada"));
    EXPECT_EQ(ids[1], vocab.lookup("tokyo"));
}

CorpusConfig
smallCorpusConfig()
{
    CorpusConfig config;
    config.numDocs = 500;
    config.vocabSize = 2000;
    config.meanDocLength = 60.0;
    config.numTopics = 8;
    config.seed = 123;
    return config;
}

TEST(Corpus, GeneratesRequestedShape)
{
    const Corpus corpus = Corpus::generate(smallCorpusConfig());
    EXPECT_EQ(corpus.numDocs(), 500u);
    EXPECT_EQ(corpus.vocabulary().size(), 2000u);
    EXPECT_NEAR(corpus.averageDocLength(), 60.0, 10.0);
}

TEST(Corpus, DocumentsAreWellFormed)
{
    const Corpus corpus = Corpus::generate(smallCorpusConfig());
    for (const Document &doc : corpus.documents()) {
        EXPECT_FALSE(doc.terms.empty());
        uint32_t total = 0;
        for (std::size_t i = 0; i < doc.terms.size(); ++i) {
            EXPECT_LT(doc.terms[i].term, corpus.vocabulary().size());
            EXPECT_GE(doc.terms[i].freq, 1u);
            if (i > 0) { // sorted ascending, no duplicates
                EXPECT_LT(doc.terms[i - 1].term, doc.terms[i].term);
            }
            total += doc.terms[i].freq;
        }
        EXPECT_EQ(total, doc.length);
    }
}

TEST(Corpus, DeterministicForSameSeed)
{
    const Corpus a = Corpus::generate(smallCorpusConfig());
    const Corpus b = Corpus::generate(smallCorpusConfig());
    ASSERT_EQ(a.numDocs(), b.numDocs());
    for (uint32_t d = 0; d < a.numDocs(); ++d) {
        ASSERT_EQ(a.document(d).terms.size(), b.document(d).terms.size());
        for (std::size_t i = 0; i < a.document(d).terms.size(); ++i) {
            EXPECT_EQ(a.document(d).terms[i].term,
                      b.document(d).terms[i].term);
            EXPECT_EQ(a.document(d).terms[i].freq,
                      b.document(d).terms[i].freq);
        }
    }
}

TEST(Corpus, SeedChangesOutput)
{
    CorpusConfig config = smallCorpusConfig();
    const Corpus a = Corpus::generate(config);
    config.seed = 124;
    const Corpus b = Corpus::generate(config);
    bool differs = false;
    for (uint32_t d = 0; d < a.numDocs() && !differs; ++d)
        differs = a.document(d).length != b.document(d).length;
    EXPECT_TRUE(differs);
}

TEST(Corpus, PopularTermsHaveLargerDocFrequency)
{
    const Corpus corpus = Corpus::generate(smallCorpusConfig());
    std::unordered_map<TermId, uint32_t> df;
    for (const Document &doc : corpus.documents())
        for (const TermFreq &tf : doc.terms)
            ++df[tf.term];
    // Rank 0 must be much more common than rank 1500.
    EXPECT_GT(df[0], df[1500] + 20);
    // Zipf head: rank 0 appears in a large share of documents.
    EXPECT_GT(df[0], corpus.numDocs() / 4);
}

TEST(Trace, GeneratesTimedQueries)
{
    TraceConfig config;
    config.numQueries = 200;
    config.vocabSize = 2000;
    config.arrivalQps = 50.0;
    const QueryTrace trace = QueryTrace::generate(config);
    ASSERT_EQ(trace.size(), 200u);
    double last = 0.0;
    for (const Query &query : trace.queries()) {
        EXPECT_GE(query.arrivalSeconds, last);
        last = query.arrivalSeconds;
        EXPECT_GE(query.terms.size(), 1u);
        EXPECT_LE(query.terms.size(), 4u);
        for (TermId term : query.terms)
            EXPECT_LT(term, config.vocabSize);
        // No duplicate terms within a query.
        auto sorted = query.terms;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end());
    }
    // Mean inter-arrival should match 1/qps.
    EXPECT_NEAR(trace.durationSeconds() / 200.0, 1.0 / 50.0, 0.01);
}

TEST(Trace, FlavorsDiffer)
{
    TraceConfig config;
    config.numQueries = 2000;
    config.vocabSize = 10000;
    config.flavor = TraceFlavor::Wikipedia;
    const QueryTrace wiki = QueryTrace::generate(config);
    config.flavor = TraceFlavor::Lucene;
    const QueryTrace lucene = QueryTrace::generate(config);

    const auto avgLen = [](const QueryTrace &trace) {
        double total = 0.0;
        for (const Query &query : trace.queries())
            total += static_cast<double>(query.terms.size());
        return total / static_cast<double>(trace.size());
    };
    // Lucene-flavor queries are longer on average by construction.
    EXPECT_GT(avgLen(lucene), avgLen(wiki) + 0.2);
    EXPECT_EQ(wiki.name(), "wikipedia");
    EXPECT_EQ(lucene.name(), "lucene");
}

TEST(Trace, BurstinessClustersArrivals)
{
    TraceConfig config;
    config.numQueries = 4000;
    config.vocabSize = 2000;
    config.arrivalQps = 100.0;
    config.burstPeriodSeconds = 10.0;

    const auto windowVariance = [](const QueryTrace &trace) {
        // Count arrivals per 1-second window; return the count
        // variance (a Poisson process has variance ~= mean).
        std::vector<double> counts(
            static_cast<std::size_t>(trace.durationSeconds()) + 1, 0.0);
        for (const Query &query : trace.queries())
            counts[static_cast<std::size_t>(query.arrivalSeconds)] += 1.0;
        return variance(counts);
    };

    config.burstiness = 0.0;
    const double smooth = windowVariance(QueryTrace::generate(config));
    config.burstiness = 0.8;
    const double bursty = windowVariance(QueryTrace::generate(config));
    EXPECT_GT(bursty, smooth * 2.0);
}

TEST(Trace, PersonalizedFractionAttachesWeights)
{
    TraceConfig config;
    config.numQueries = 400;
    config.vocabSize = 2000;
    config.personalizedFraction = 0.5;
    const QueryTrace trace = QueryTrace::generate(config);
    std::size_t weighted = 0;
    for (const Query &query : trace.queries()) {
        if (query.personalized()) {
            ++weighted;
            ASSERT_EQ(query.weights.size(), query.terms.size());
            for (double w : query.weights) {
                EXPECT_GE(w, config.minTermWeight);
                EXPECT_LE(w, config.maxTermWeight);
            }
        }
    }
    EXPECT_GT(weighted, 120u);
    EXPECT_LT(weighted, 280u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    TraceConfig config;
    config.numQueries = 50;
    config.vocabSize = 500;
    const QueryTrace trace = QueryTrace::generate(config);

    std::stringstream buffer;
    trace.save(buffer);
    const QueryTrace loaded = QueryTrace::load(buffer);

    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_NEAR(loaded.query(i).arrivalSeconds,
                    trace.query(i).arrivalSeconds, 1e-6);
        EXPECT_EQ(loaded.query(i).terms, trace.query(i).terms);
    }
}

TEST(Trace, AppendAssignsSequentialIds)
{
    QueryTrace trace;
    Query q;
    q.terms = {1, 2};
    trace.append(q);
    trace.append(q);
    EXPECT_EQ(trace.query(0).id, 0u);
    EXPECT_EQ(trace.query(1).id, 1u);
}

TEST(Trace, QueryTextUsesVocabulary)
{
    const Vocabulary vocab(2000);
    Query query;
    query.terms = {vocab.lookup("canada"), vocab.lookup("tokyo")};
    EXPECT_EQ(query.text(vocab), "canada tokyo");
}

} // namespace
} // namespace cottage
