/**
 * @file
 * Tests for feature extraction (Tables I/II), cycle buckets, the
 * quality and latency predictors, and the training pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "index/maxscore_evaluator.h"
#include "predict/features.h"
#include "predict/latency_predictor.h"
#include "predict/quality_predictor.h"
#include "predict/training.h"
#include "shard/sharded_index.h"
#include "text/trace.h"
#include "util/rng.h"

namespace cottage {
namespace {

class PredictFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CorpusConfig corpusConfig;
        corpusConfig.numDocs = 4000;
        corpusConfig.vocabSize = 8000;
        corpusConfig.meanDocLength = 100.0;
        corpusConfig.seed = 12;
        corpus_ = std::make_unique<Corpus>(Corpus::generate(corpusConfig));

        ShardedIndexConfig shardConfig;
        shardConfig.numShards = 4;
        shardConfig.topK = 10;
        index_ = std::make_unique<ShardedIndex>(*corpus_, shardConfig);

        TraceConfig traceConfig;
        traceConfig.numQueries = 400;
        traceConfig.vocabSize = corpusConfig.vocabSize;
        traceConfig.seed = 90;
        trainTrace_ = QueryTrace::generate(traceConfig);
    }

    MaxScoreEvaluator evaluator_;
    WorkModel work_;
    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<ShardedIndex> index_;
    QueryTrace trainTrace_;
};

TEST_F(PredictFixture, FeatureNamesAreDistinct)
{
    for (std::size_t i = 0; i < numQualityFeatures; ++i)
        for (std::size_t j = i + 1; j < numQualityFeatures; ++j)
            EXPECT_STRNE(qualityFeatureName(i), qualityFeatureName(j));
    for (std::size_t i = 0; i < numLatencyFeatures; ++i)
        for (std::size_t j = i + 1; j < numLatencyFeatures; ++j)
            EXPECT_STRNE(latencyFeatureName(i), latencyFeatureName(j));
}

TEST_F(PredictFixture, QualityFeaturesMatchTermStats)
{
    const TermStatsStore &stats = index_->termStats(0);
    const TermId term = 30;
    const TermStats *ts = stats.get(term);
    ASSERT_NE(ts, nullptr);
    const std::vector<double> features = qualityFeatures(stats, std::vector<TermId>{term});
    ASSERT_EQ(features.size(), numQualityFeatures);
    EXPECT_DOUBLE_EQ(features[0], ts->firstQuartile);
    EXPECT_DOUBLE_EQ(features[1], ts->meanScore);
    EXPECT_DOUBLE_EQ(features[7], ts->maxScore);
    // Posting length is log-compressed.
    EXPECT_DOUBLE_EQ(features[9], std::log1p(ts->postingLength));
}

TEST_F(PredictFixture, MultiTermFeaturesUseMaxAggregation)
{
    const TermStatsStore &stats = index_->termStats(0);
    const std::vector<double> a = qualityFeatures(stats, std::vector<TermId>{30});
    const std::vector<double> b = qualityFeatures(stats, std::vector<TermId>{200});
    const std::vector<double> both = qualityFeatures(stats, std::vector<TermId>{30, 200});
    for (std::size_t f = 0; f < numQualityFeatures; ++f)
        EXPECT_DOUBLE_EQ(both[f], std::max(a[f], b[f])) << "feature " << f;
}

TEST_F(PredictFixture, MissingTermsContributeZeros)
{
    const TermStatsStore &stats = index_->termStats(0);
    const std::vector<double> features =
        qualityFeatures(stats, std::vector<TermId>{7999999});
    for (double f : features)
        EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST_F(PredictFixture, LatencyFeaturesIncludeQueryLength)
{
    const TermStatsStore &stats = index_->termStats(0);
    const std::vector<double> one = latencyFeatures(stats, std::vector<TermId>{30});
    const std::vector<double> three = latencyFeatures(stats, std::vector<TermId>{30, 40, 50});
    EXPECT_DOUBLE_EQ(one[5], 1.0);
    EXPECT_DOUBLE_EQ(three[5], 3.0);
}

TEST_F(PredictFixture, WeightedFeaturesScaleScoreStatistics)
{
    const TermStatsStore &stats = index_->termStats(0);
    const std::vector<double> unit =
        qualityFeatures(stats, std::vector<TermId>{30});
    const std::vector<double> doubled =
        qualityFeatures(stats, std::vector<WeightedTerm>{{30, 2.0}});
    // Score-valued features scale by w, variance by w^2, posting
    // length not at all.
    for (std::size_t f = 0; f <= 7; ++f)
        EXPECT_NEAR(doubled[f], 2.0 * unit[f], 1e-12) << "feature " << f;
    EXPECT_NEAR(doubled[8], 4.0 * unit[8], 1e-12);
    EXPECT_DOUBLE_EQ(doubled[9], unit[9]);

    const std::vector<double> latUnit =
        latencyFeatures(stats, std::vector<TermId>{30});
    const std::vector<double> latDoubled =
        latencyFeatures(stats, std::vector<WeightedTerm>{{30, 2.0}});
    for (std::size_t f = 0; f <= 4; ++f)
        EXPECT_DOUBLE_EQ(latDoubled[f], latUnit[f]) << "count feature " << f;
    EXPECT_NEAR(latDoubled[11], 2.0 * latUnit[11], 1e-12); // max score
    EXPECT_NEAR(latDoubled[13], 4.0 * latUnit[13], 1e-12); // variance
    EXPECT_NEAR(latDoubled[14], 2.0 * latUnit[14], 1e-12); // idf
}

TEST(CycleBuckets, RoundTripAndSaturation)
{
    const CycleBuckets buckets(1e4, 1e8, 16);
    EXPECT_EQ(buckets.bucketOf(1e3), 0u);
    EXPECT_EQ(buckets.bucketOf(1e4), 0u);
    EXPECT_EQ(buckets.bucketOf(2e8), 15u);
    for (uint32_t b = 0; b < 16; ++b) {
        EXPECT_EQ(buckets.bucketOf(buckets.representativeCycles(b)), b);
        EXPECT_GT(buckets.upperCycles(b), buckets.representativeCycles(b));
    }
    // Buckets grow geometrically.
    const double ratio0 =
        buckets.representativeCycles(1) / buckets.representativeCycles(0);
    const double ratio1 =
        buckets.representativeCycles(9) / buckets.representativeCycles(8);
    EXPECT_NEAR(ratio0, ratio1, 1e-9);
}

TEST_F(PredictFixture, TrainingSetsAreConsistent)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    ASSERT_EQ(sets.shards.size(), 4u);
    for (const ShardDatasets &shard : sets.shards) {
        EXPECT_EQ(shard.qualityK.size(), trainTrace_.size());
        EXPECT_EQ(shard.qualityHalf.size(), trainTrace_.size());
        EXPECT_EQ(shard.latency.size(), trainTrace_.size());
        for (std::size_t i = 0; i < shard.qualityK.size(); ++i) {
            EXPECT_LE(shard.qualityK.label(i), 10u);
            EXPECT_LE(shard.qualityHalf.label(i),
                      shard.qualityK.label(i));
            EXPECT_LT(shard.latency.label(i), 12u);
        }
    }
    // Across shards, top-K labels of one query sum to the result size.
    for (std::size_t q = 0; q < trainTrace_.size(); ++q) {
        uint32_t total = 0;
        for (const ShardDatasets &shard : sets.shards)
            total += shard.qualityK.label(q);
        EXPECT_LE(total, 10u);
        uint32_t half = 0;
        for (const ShardDatasets &shard : sets.shards)
            half += shard.qualityHalf.label(q);
        EXPECT_LE(half, 5u);
    }
}

TEST_F(PredictFixture, QualityPredictorLearnsAboveMajorityBaseline)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    QualityPredictor predictor(10, {32, 32}, 5);
    predictor.train(sets.shards[0].qualityK, sets.shards[0].qualityHalf,
                    600);

    // Modal-label baseline: always answering the most common count.
    std::vector<std::size_t> counts(11, 0);
    for (std::size_t i = 0; i < sets.shards[0].qualityK.size(); ++i)
        ++counts[sets.shards[0].qualityK.label(i)];
    const double modal =
        static_cast<double>(
            *std::max_element(counts.begin(), counts.end())) /
        static_cast<double>(sets.shards[0].qualityK.size());

    EXPECT_GT(predictor.accuracyTopK(sets.shards[0].qualityK),
              modal + 0.02);
}

TEST_F(PredictFixture, QualityPredictorProbabilitiesAreCalibratedish)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    QualityPredictor predictor(10, {32, 32}, 6);
    predictor.train(sets.shards[1].qualityK, sets.shards[1].qualityHalf,
                    600);
    const Dataset &data = sets.shards[1].qualityK;
    for (std::size_t i = 0; i < 20; ++i) {
        const std::vector<double> features(
            data.features(i), data.features(i) + data.numFeatures());
        const double p = predictor.probNonzeroTopK(features);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST_F(PredictFixture, QualityPredictorSaveLoadRoundTrip)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    QualityPredictor predictor(10, {16, 16}, 7);
    predictor.train(sets.shards[0].qualityK, sets.shards[0].qualityHalf,
                    200);
    std::stringstream buffer;
    predictor.save(buffer);
    const QualityPredictor restored = QualityPredictor::load(buffer);
    const Dataset &data = sets.shards[0].qualityK;
    for (std::size_t i = 0; i < 30; ++i) {
        const std::vector<double> features(
            data.features(i), data.features(i) + data.numFeatures());
        EXPECT_EQ(restored.predictTopK(features),
                  predictor.predictTopK(features));
        EXPECT_EQ(restored.predictTopHalf(features),
                  predictor.predictTopHalf(features));
    }
}

TEST_F(PredictFixture, LatencyPredictorBeatsUniformGuessing)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    LatencyPredictor predictor(sets.buckets, {32, 32}, 8);
    predictor.train(sets.shards[0].latency, 800);
    const double exact = predictor.accuracyWithin(sets.shards[0].latency, 0);
    EXPECT_GT(exact, 2.0 / 12.0); // far above uniform over 12 buckets
    const double within1 =
        predictor.accuracyWithin(sets.shards[0].latency, 1);
    EXPECT_GE(within1, exact);
}

TEST_F(PredictFixture, LatencyPredictorConservativeDominates)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    LatencyPredictor predictor(sets.buckets, {16}, 9);
    predictor.train(sets.shards[0].latency, 200);
    const Dataset &data = sets.shards[0].latency;
    for (std::size_t i = 0; i < 30; ++i) {
        const std::vector<double> features(
            data.features(i), data.features(i) + data.numFeatures());
        EXPECT_GT(predictor.predictCyclesConservative(features),
                  predictor.predictCycles(features));
        EXPECT_GT(predictor.expectedCycles(features), 0.0);
    }
}

TEST_F(PredictFixture, LatencyPredictorSaveLoadRoundTrip)
{
    const TrainingSets sets =
        buildTrainingSets(*index_, evaluator_, work_, trainTrace_, 12);
    LatencyPredictor predictor(sets.buckets, {16}, 10);
    predictor.train(sets.shards[2].latency, 200);
    std::stringstream buffer;
    predictor.save(buffer);
    const LatencyPredictor restored = LatencyPredictor::load(buffer);
    EXPECT_EQ(restored.buckets().count(), predictor.buckets().count());
    const Dataset &data = sets.shards[2].latency;
    for (std::size_t i = 0; i < 30; ++i) {
        const std::vector<double> features(
            data.features(i), data.features(i) + data.numFeatures());
        EXPECT_EQ(restored.predictBucket(features),
                  predictor.predictBucket(features));
    }
}

TEST_F(PredictFixture, PredictorBankSaveLoadRoundTrip)
{
    PredictorTrainConfig config;
    config.hiddenLayers = {16};
    config.iterations = 100;
    const PredictorBank bank(*index_, evaluator_, work_, trainTrace_,
                             config);
    const std::string dir = "/tmp/cottage-test-bank";
    bank.save(dir);
    const PredictorBank restored = PredictorBank::load(dir);

    ASSERT_EQ(restored.numShards(), bank.numShards());
    EXPECT_DOUBLE_EQ(restored.inferenceOverheadSeconds(),
                     bank.inferenceOverheadSeconds());
    EXPECT_EQ(restored.buckets().count(), bank.buckets().count());
    for (ShardId s = 0; s < bank.numShards(); ++s) {
        for (const Query &query : trainTrace_.queries()) {
            const std::vector<double> qf =
                qualityFeatures(index_->termStats(s), query.terms);
            ASSERT_EQ(restored.quality(s).predictTopK(qf),
                      bank.quality(s).predictTopK(qf));
            const std::vector<double> lf =
                latencyFeatures(index_->termStats(s), query.terms);
            ASSERT_EQ(restored.latency(s).predictBucket(lf),
                      bank.latency(s).predictBucket(lf));
            if (query.id > 40)
                break; // spot check is enough per shard
        }
    }
}

TEST(Adam, WeightDecayShrinksWeightNorm)
{
    // Same data, same seed; the decayed model must end with a smaller
    // weight norm (and still learn).
    Dataset data(2);
    Rng rng(5);
    for (int i = 0; i < 400; ++i) {
        const double x = rng.uniform(-2, 2);
        const double y = rng.uniform(-2, 2);
        data.add({x, y}, x + y > 0.0 ? 1u : 0u);
    }
    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 2;
    config.hiddenLayers = {16};
    config.seed = 9;

    const auto weightScale = [&](double decay) {
        MlpClassifier model(config);
        model.fitNormalization(data);
        AdamConfig adam;
        adam.weightDecay = decay;
        model.train(data, 600, adam);
        // Probe the logit magnitude as a norm proxy.
        const std::vector<double> probe = {1.5, 1.5};
        const auto probs = model.probabilities(probe.data());
        EXPECT_GT(model.accuracy(data), 0.9) << "decay " << decay;
        return std::abs(std::log(probs[1] / probs[0]));
    };
    EXPECT_LT(weightScale(0.05), weightScale(0.0));
}

TEST_F(PredictFixture, PredictorBankTrainsEveryShard)
{
    PredictorTrainConfig config;
    config.hiddenLayers = {16, 16};
    config.iterations = 150;
    const PredictorBank bank(*index_, evaluator_, work_, trainTrace_,
                             config);
    EXPECT_EQ(bank.numShards(), 4u);
    for (ShardId s = 0; s < 4; ++s) {
        const std::vector<double> qf =
            qualityFeatures(index_->termStats(s), std::vector<TermId>{30});
        EXPECT_LE(bank.quality(s).predictTopK(qf), 10u);
        const std::vector<double> lf =
            latencyFeatures(index_->termStats(s), std::vector<TermId>{30});
        EXPECT_GT(bank.latency(s).predictCycles(lf), 0.0);
    }
    EXPECT_GT(bank.inferenceOverheadSeconds(), 0.0);
}

} // namespace
} // namespace cottage
