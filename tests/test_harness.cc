/**
 * @file
 * Tests for the experiment harness: configuration flag overrides and
 * experiment-stack accessors.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"

namespace cottage {
namespace {

TEST(ExperimentConfig, DefaultsMatchPaperSetup)
{
    const ExperimentConfig config;
    EXPECT_EQ(config.shards.numShards, 16u);
    EXPECT_EQ(config.shards.topK, 10u);
    EXPECT_EQ(config.traceQueries, 10000u);
    EXPECT_DOUBLE_EQ(config.power.idleWatts, 14.53);
}

TEST(ExperimentConfig, FlagsOverrideDefaults)
{
    const char *argv[] = {"prog",           "--docs=1234",
                          "--shards=5",     "--queries=99",
                          "--qps=12.5",     "--train-queries=55",
                          "--iterations=7", "--budget-slack=2.5",
                          "--k=20"};
    const CliFlags flags(9, argv);
    const ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    EXPECT_EQ(config.corpus.numDocs, 1234u);
    EXPECT_EQ(config.shards.numShards, 5u);
    EXPECT_EQ(config.shards.topK, 20u);
    EXPECT_EQ(config.traceQueries, 99u);
    EXPECT_DOUBLE_EQ(config.arrivalQps, 12.5);
    EXPECT_EQ(config.trainQueries, 55u);
    EXPECT_EQ(config.train.iterations, 7u);
    EXPECT_DOUBLE_EQ(config.cottage.budgetSlack, 2.5);
}

TEST(ExperimentConfig, PrintEchoesKeyKnobs)
{
    ExperimentConfig config;
    config.corpus.numDocs = 777;
    std::ostringstream out;
    config.print(out);
    EXPECT_NE(out.str().find("docs=777"), std::string::npos);
    EXPECT_NE(out.str().find("shards=16"), std::string::npos);
}

TEST(Experiment, StackAccessorsAreConsistent)
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 4000;
    config.shards.numShards = 3;
    config.traceQueries = 40;
    config.trainQueries = 60;
    config.train.hiddenLayers = {8};
    config.train.iterations = 40;
    Experiment experiment(std::move(config));

    EXPECT_EQ(experiment.corpus().numDocs(), 2000u);
    EXPECT_EQ(experiment.index().numShards(), 3u);
    EXPECT_EQ(experiment.cluster().numIsns(), 3u);
    EXPECT_EQ(experiment.trace(TraceFlavor::Wikipedia).size(), 40u);
    EXPECT_EQ(experiment.trainTrace().size(), 60u);
    EXPECT_EQ(experiment.groundTruth(TraceFlavor::Wikipedia).size(), 40u);
    EXPECT_EQ(experiment.bank().numShards(), 3u);
}

TEST(Experiment, GroundTruthMatchesEngineGlobalTopK)
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 4000;
    config.shards.numShards = 3;
    config.traceQueries = 20;
    Experiment experiment(std::move(config));

    const auto &truth = experiment.groundTruth(TraceFlavor::Wikipedia);
    const QueryTrace &trace = experiment.trace(TraceFlavor::Wikipedia);
    for (std::size_t q = 0; q < trace.size(); ++q) {
        const auto expected =
            experiment.engine().globalTopK(trace.query(q).terms);
        ASSERT_EQ(truth[q].size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(truth[q][i].doc, expected[i].doc);
    }
}

} // namespace
} // namespace cottage
