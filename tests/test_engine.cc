/**
 * @file
 * Tests for the distributed engine: plan semantics (participation,
 * budgets, frequencies), latency composition, quality measurement and
 * work accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "engine/distributed_engine.h"
#include "index/maxscore_evaluator.h"
#include "index/top_k.h"
#include "shard/sharded_index.h"
#include "text/trace.h"
#include "util/rng.h"

namespace cottage {
namespace {

class EngineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CorpusConfig corpusConfig;
        corpusConfig.numDocs = 2000;
        corpusConfig.vocabSize = 5000;
        corpusConfig.meanDocLength = 80.0;
        corpusConfig.seed = 11;
        corpus_ = std::make_unique<Corpus>(Corpus::generate(corpusConfig));

        ShardedIndexConfig shardConfig;
        shardConfig.numShards = 4;
        shardConfig.topK = 10;
        index_ = std::make_unique<ShardedIndex>(*corpus_, shardConfig);

        cluster_ = std::make_unique<ClusterSim>(4, FrequencyLadder(),
                                                PowerModel());
        engine_ = std::make_unique<DistributedEngine>(*index_, *cluster_,
                                                      evaluator_);

        query_.id = 0;
        query_.terms = {30, 200};
        query_.arrivalSeconds = 0.0;
        truth_ = engine_->globalTopK(query_.terms);
        ASSERT_FALSE(truth_.empty());
    }

    MaxScoreEvaluator evaluator_;
    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<ShardedIndex> index_;
    std::unique_ptr<ClusterSim> cluster_;
    std::unique_ptr<DistributedEngine> engine_;
    Query query_;
    std::vector<ScoredDoc> truth_;
};

TEST_F(EngineFixture, ExhaustivePlanIsPerfect)
{
    const QueryPlan plan = QueryPlan::allIsns(4);
    const QueryMeasurement m = engine_->execute(query_, plan, truth_);
    EXPECT_EQ(m.isnsUsed, 4u);
    EXPECT_EQ(m.isnsCompleted, 4u);
    EXPECT_DOUBLE_EQ(m.precisionAtK, 1.0);
    EXPECT_EQ(m.results.size(), truth_.size());
    for (std::size_t i = 0; i < truth_.size(); ++i)
        EXPECT_EQ(m.results[i].doc, truth_[i].doc);
    EXPECT_GT(m.latencySeconds, 0.0);
    EXPECT_EQ(m.isnsBoosted, 0u);
}

TEST_F(EngineFixture, NonParticipantsContributeNothing)
{
    QueryPlan plan = QueryPlan::allIsns(4);
    plan.isns[0].participate = false;
    plan.isns[2].participate = false;
    cluster_->reset();
    const QueryMeasurement m = engine_->execute(query_, plan, truth_);
    EXPECT_EQ(m.isnsUsed, 2u);
    // Every returned doc must belong to a participating shard.
    for (const ScoredDoc &hit : m.results) {
        const ShardId owner = index_->shardOf(hit.doc);
        EXPECT_TRUE(owner == 1 || owner == 3);
    }
    // Quality can only drop.
    EXPECT_LE(m.precisionAtK, 1.0);
}

TEST_F(EngineFixture, TightBudgetDropsResponsesAndCapsLatency)
{
    QueryPlan plan = QueryPlan::allIsns(4);
    plan.budgetSeconds = 1e-7; // impossibly tight
    cluster_->reset();
    const QueryMeasurement m = engine_->execute(query_, plan, truth_);
    EXPECT_EQ(m.isnsCompleted, 0u);
    EXPECT_DOUBLE_EQ(m.precisionAtK, 0.0);
    // Latency collapses to roughly budget + network + merge.
    const double expected = cluster_->network().rttSeconds +
                            plan.budgetSeconds +
                            cluster_->network().mergeSeconds;
    EXPECT_NEAR(m.latencySeconds, expected, 1e-9);
}

TEST_F(EngineFixture, GenerousBudgetBehavesLikeNoBudget)
{
    QueryPlan noBudgetPlan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement a =
        engine_->execute(query_, noBudgetPlan, truth_);

    QueryPlan budgetPlan = QueryPlan::allIsns(4);
    budgetPlan.budgetSeconds = 10.0;
    cluster_->reset();
    const QueryMeasurement b = engine_->execute(query_, budgetPlan, truth_);

    EXPECT_NEAR(a.latencySeconds, b.latencySeconds, 1e-12);
    EXPECT_DOUBLE_EQ(b.precisionAtK, 1.0);
}

TEST_F(EngineFixture, BoostedFrequencyShortensLatencyAndIsCounted)
{
    QueryPlan defaultPlan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement slow =
        engine_->execute(query_, defaultPlan, truth_);

    QueryPlan boostPlan = QueryPlan::allIsns(4);
    for (IsnDirective &directive : boostPlan.isns)
        directive.freqGhz = 2.7;
    cluster_->reset();
    const QueryMeasurement fast =
        engine_->execute(query_, boostPlan, truth_);

    EXPECT_EQ(fast.isnsBoosted, 4u);
    EXPECT_LT(fast.latencySeconds, slow.latencySeconds);
    EXPECT_DOUBLE_EQ(fast.precisionAtK, 1.0);
}

TEST_F(EngineFixture, DecisionOverheadAddsToLatency)
{
    QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement base = engine_->execute(query_, plan, truth_);

    plan.decisionOverheadSeconds = 5e-3;
    cluster_->reset();
    const QueryMeasurement delayed = engine_->execute(query_, plan, truth_);
    EXPECT_NEAR(delayed.latencySeconds - base.latencySeconds, 5e-3, 1e-9);
}

TEST_F(EngineFixture, NdcgPenalizesLosingTopRanks)
{
    // Exhaustive: perfect NDCG.
    QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement full = engine_->execute(query_, plan, truth_);
    EXPECT_DOUBLE_EQ(full.ndcgAtK, 1.0);

    // Drop the shard owning the rank-1 document: both quality metrics
    // fall below perfect, and NDCG stays a valid fraction. (NDCG can
    // exceed P@K here because surviving hits close ranks upward.)
    const ShardId topOwner = index_->shardOf(truth_[0].doc);
    plan.isns[topOwner].participate = false;
    cluster_->reset();
    const QueryMeasurement cut = engine_->execute(query_, plan, truth_);
    EXPECT_LT(cut.ndcgAtK, 1.0);
    EXPECT_LT(cut.precisionAtK, 1.0);
    EXPECT_GT(cut.ndcgAtK, 0.0);
}

TEST_F(EngineFixture, DocsSearchedSumsParticipatingWork)
{
    QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement m = engine_->execute(query_, plan, truth_);
    uint64_t expected = 0;
    for (ShardId s = 0; s < 4; ++s)
        expected += engine_->shardWork(s, query_.terms).docsScored;
    EXPECT_EQ(m.docsSearched, expected);
}

TEST_F(EngineFixture, ShardContributionsMatchOwnership)
{
    const std::vector<uint32_t> contributions =
        engine_->shardContributions(truth_);
    uint32_t total = 0;
    for (uint32_t c : contributions)
        total += c;
    EXPECT_EQ(total, truth_.size());
    for (const ScoredDoc &hit : truth_)
        EXPECT_GT(contributions[index_->shardOf(hit.doc)], 0u);
}

TEST_F(EngineFixture, QueueingCouplesConsecutiveQueries)
{
    // Two identical queries back to back: the second waits behind the
    // first on every ISN, so its latency must be strictly larger.
    QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    Query first = query_;
    Query second = query_;
    second.id = 1;
    second.arrivalSeconds = 1e-6;
    const QueryMeasurement a = engine_->execute(first, plan, truth_);
    const QueryMeasurement b = engine_->execute(second, plan, truth_);
    EXPECT_GT(b.latencySeconds, a.latencySeconds * 1.5);
    // The extra wait is (up to arrival offset) one full service time.
    EXPECT_NEAR(b.latencySeconds - a.latencySeconds + second.arrivalSeconds,
                a.latencySeconds - cluster_->network().rttSeconds -
                    cluster_->network().mergeSeconds,
                2e-5);
}

/**
 * globalTopK must be invariant to the order shard responses arrive
 * in. The engine merges in ascending shard order; here we replay the
 * same per-shard results through a TopKHeap in shuffled "completion"
 * orders and demand the identical ranking — the property that lets
 * the parallel fan-out merge without caring which shard finishes
 * first.
 */
TEST_F(EngineFixture, GlobalTopKMergeIsInvariantToShardArrivalOrder)
{
    const std::vector<ScoredDoc> expected =
        engine_->globalTopK(query_.terms);

    std::vector<std::vector<ScoredDoc>> shardResults;
    for (ShardId s = 0; s < index_->numShards(); ++s)
        shardResults.push_back(
            evaluator_
                .search(index_->shard(s), query_.terms, index_->topK())
                .topK);

    Rng rng(31337);
    std::vector<std::size_t> order(shardResults.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (int shuffle = 0; shuffle < 25; ++shuffle) {
        rng.shuffle(order);
        TopKHeap merged(index_->topK());
        for (std::size_t s : order)
            for (const ScoredDoc &hit : shardResults[s])
                merged.push(hit);
        const std::vector<ScoredDoc> got = merged.extractSorted();
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            ASSERT_EQ(got[i].doc, expected[i].doc)
                << "shuffle " << shuffle << " rank " << i;
            ASSERT_DOUBLE_EQ(got[i].score, expected[i].score);
        }
    }
}

/**
 * Weighted (personalized) queries go through the same parallel
 * fan-out; the merge must stay arrival-order invariant there too.
 */
TEST_F(EngineFixture, WeightedGlobalTopKMergeIsOrderInvariant)
{
    Query weighted = query_;
    weighted.weights = {2.0, 0.5};
    const std::vector<ScoredDoc> expected = engine_->globalTopK(weighted);

    const auto terms = DistributedEngine::weightedTerms(weighted);
    std::vector<std::vector<ScoredDoc>> shardResults;
    for (ShardId s = 0; s < index_->numShards(); ++s)
        shardResults.push_back(
            evaluator_.search(index_->shard(s), terms, index_->topK())
                .topK);

    Rng rng(987);
    std::vector<std::size_t> order(shardResults.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    for (int shuffle = 0; shuffle < 25; ++shuffle) {
        rng.shuffle(order);
        TopKHeap merged(index_->topK());
        for (std::size_t s : order)
            for (const ScoredDoc &hit : shardResults[s])
                merged.push(hit);
        const std::vector<ScoredDoc> got = merged.extractSorted();
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            ASSERT_EQ(got[i].doc, expected[i].doc)
                << "shuffle " << shuffle << " rank " << i;
    }
}

TEST_F(EngineFixture, TruncatedIsnsReturnPartialResultsWithProratedDocs)
{
    // Full run: everything completes, nothing is partial.
    QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement full = engine_->execute(query_, plan, truth_);
    EXPECT_EQ(full.isnsCompleted, 4u);
    EXPECT_EQ(full.partialResponses, 0u);
    EXPECT_DOUBLE_EQ(full.completedFraction, 1.0);

    // A budget below every shard's service time truncates all four
    // mid-service; each still answers with its anytime prefix.
    const double freq = cluster_->ladder().defaultGhz();
    double minService = noBudget;
    for (ShardId s = 0; s < 4; ++s)
        minService = std::min(minService,
                              engine_->workModel().serviceSeconds(
                                  engine_->shardWork(s, query_.terms), freq));
    plan.budgetSeconds = 0.75 * minService;
    cluster_->reset();
    const QueryMeasurement cut = engine_->execute(query_, plan, truth_);
    EXPECT_EQ(cut.isnsCompleted, 0u);
    EXPECT_EQ(cut.partialResponses, 4u);
    EXPECT_FALSE(cut.results.empty());
    EXPECT_GT(cut.completedFraction, 0.0);
    EXPECT_LT(cut.completedFraction, 1.0);
    // Prorated accounting: the truncated run did real but strictly
    // less work than the full run.
    EXPECT_GT(cut.docsSearched, 0u);
    EXPECT_LT(cut.docsSearched, full.docsSearched);
}

TEST_F(EngineFixture, TruncatedDocsSearchedNeverExceedsFullRun)
{
    QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement full = engine_->execute(query_, plan, truth_);

    const double freq = cluster_->ladder().defaultGhz();
    double maxService = 0.0;
    for (ShardId s = 0; s < 4; ++s)
        maxService = std::max(maxService,
                              engine_->workModel().serviceSeconds(
                                  engine_->shardWork(s, query_.terms), freq));
    // Regression: at every budget (including ones where only some
    // shards miss), the prorated docsSearched is bounded by the
    // uncut run's.
    for (double scale : {0.05, 0.25, 0.5, 0.9, 1.5}) {
        plan.budgetSeconds = scale * maxService;
        cluster_->reset();
        const QueryMeasurement m = engine_->execute(query_, plan, truth_);
        EXPECT_LE(m.docsSearched, full.docsSearched) << "scale " << scale;
        EXPECT_EQ(m.isnsCompleted + m.partialResponses <= m.isnsUsed, true)
            << "scale " << scale;
    }
}

TEST_F(EngineFixture, AnytimePartialsBeatDroppedResponses)
{
    // Budget tight enough that no shard completes, yet most of every
    // shard's evaluation fits: the anytime engine recovers nearly the
    // full ranking while the drop-whole-response model returns nothing.
    const double freq = cluster_->ladder().defaultGhz();
    double minService = noBudget;
    for (ShardId s = 0; s < 4; ++s)
        minService = std::min(minService,
                              engine_->workModel().serviceSeconds(
                                  engine_->shardWork(s, query_.terms), freq));
    QueryPlan plan = QueryPlan::allIsns(4);
    plan.budgetSeconds = 0.9 * minService;

    ASSERT_TRUE(engine_->anytimePartials());
    cluster_->reset();
    const QueryMeasurement anytime = engine_->execute(query_, plan, truth_);

    engine_->setAnytimePartials(false);
    cluster_->reset();
    const QueryMeasurement dropped = engine_->execute(query_, plan, truth_);
    engine_->setAnytimePartials(true);

    EXPECT_EQ(anytime.isnsCompleted, 0u);
    EXPECT_EQ(dropped.isnsCompleted, 0u);
    EXPECT_TRUE(dropped.results.empty());
    EXPECT_DOUBLE_EQ(dropped.ndcgAtK, 0.0);
    EXPECT_EQ(dropped.partialResponses, 0u);
    EXPECT_GT(anytime.ndcgAtK, dropped.ndcgAtK);
    EXPECT_GT(anytime.precisionAtK, dropped.precisionAtK);
    // Both modes burned (and account) the same prorated work, and the
    // simulated latency is identical: partials are free quality.
    EXPECT_DOUBLE_EQ(anytime.latencySeconds, dropped.latencySeconds);
    EXPECT_EQ(anytime.docsSearched, dropped.docsSearched);
    EXPECT_EQ(anytime.completedFraction, dropped.completedFraction);
}

TEST_F(EngineFixture, FabricatedPlanFrequencyIsRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    QueryPlan plan = QueryPlan::allIsns(4);
    plan.isns[2].freqGhz = 1.55; // between the 1.5 and 1.6 P-states
    cluster_->reset();
    EXPECT_DEATH(engine_->execute(query_, plan, truth_),
                 "not a ladder step");
}

TEST_F(EngineFixture, EmptyGroundTruthMeansPerfectPrecision)
{
    Query nonsense;
    nonsense.terms = {4999999};
    nonsense.arrivalSeconds = 0.0;
    const QueryPlan plan = QueryPlan::allIsns(4);
    cluster_->reset();
    const QueryMeasurement m = engine_->execute(nonsense, plan, {});
    EXPECT_DOUBLE_EQ(m.precisionAtK, 1.0);
    EXPECT_TRUE(m.results.empty());
}

} // namespace
} // namespace cottage
