/**
 * @file
 * Tests for the baseline policies: exhaustive, epoch aggregation,
 * Rank-S (CSI) and Taily (Gamma estimation).
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/distributed_engine.h"
#include "index/maxscore_evaluator.h"
#include "policy/aggregation_policy.h"
#include "policy/exhaustive_policy.h"
#include "policy/csi.h"
#include "policy/rank_s_policy.h"
#include "policy/redde_policy.h"
#include "policy/taily_estimator.h"
#include "policy/taily_policy.h"
#include "text/trace.h"

namespace cottage {
namespace {

class PolicyFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CorpusConfig corpusConfig;
        corpusConfig.numDocs = 4000;
        corpusConfig.vocabSize = 8000;
        corpusConfig.seed = 13;
        corpus_ = std::make_unique<Corpus>(Corpus::generate(corpusConfig));

        ShardedIndexConfig shardConfig;
        shardConfig.numShards = 8;
        shardConfig.topK = 10;
        index_ = std::make_unique<ShardedIndex>(*corpus_, shardConfig);
        cluster_ = std::make_unique<ClusterSim>(8, FrequencyLadder(),
                                                PowerModel());
        engine_ = std::make_unique<DistributedEngine>(*index_, *cluster_,
                                                      evaluator_);
        query_.terms = {40, 500};
        query_.arrivalSeconds = 0.0;
    }

    MaxScoreEvaluator evaluator_;
    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<ShardedIndex> index_;
    std::unique_ptr<ClusterSim> cluster_;
    std::unique_ptr<DistributedEngine> engine_;
    Query query_;
};

TEST_F(PolicyFixture, ExhaustiveSelectsEverythingWithoutBudget)
{
    ExhaustivePolicy policy;
    const QueryPlan plan = policy.plan(query_, *engine_);
    EXPECT_EQ(plan.participants(), 8u);
    EXPECT_EQ(plan.budgetSeconds, noBudget);
    EXPECT_DOUBLE_EQ(plan.decisionOverheadSeconds, 0.0);
}

TEST_F(PolicyFixture, AggregationLearnsBudgetFromObservations)
{
    AggregationPolicyConfig config;
    config.epochQueries = 10;
    config.latencyQuantile = 0.5;
    AggregationPolicy policy(config);

    // Before any epoch completes: no budget.
    EXPECT_EQ(policy.plan(query_, *engine_).budgetSeconds, noBudget);

    QueryMeasurement m;
    for (int i = 0; i < 10; ++i) {
        m.latencySeconds = 0.010 + 0.001 * i; // 10..19 ms
        policy.observe(m);
    }
    const double budget = policy.currentBudgetSeconds();
    EXPECT_NEAR(budget, 0.0145, 0.0006); // median of the window
    EXPECT_DOUBLE_EQ(policy.plan(query_, *engine_).budgetSeconds, budget);

    policy.reset();
    EXPECT_EQ(policy.plan(query_, *engine_).budgetSeconds, noBudget);
}

TEST_F(PolicyFixture, RankSCsiSamplesRoughlyOnePercent)
{
    RankSConfig config;
    config.sampleRate = 0.01;
    RankSPolicy policy(*corpus_, *index_, config);
    // 4000 docs at 1%: expect tens of docs, at least one per shard.
    EXPECT_GE(policy.csiSize(), 8u);
    EXPECT_LE(policy.csiSize(), 200u);
}

TEST_F(PolicyFixture, RankSVotesAreNormalized)
{
    RankSPolicy policy(*corpus_, *index_);
    const std::vector<double> votes = policy.shardVotes(query_.terms);
    ASSERT_EQ(votes.size(), 8u);
    double total = 0.0;
    for (double v : votes) {
        EXPECT_GE(v, 0.0);
        total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(PolicyFixture, RankSUnknownTermsFallBackToExhaustive)
{
    RankSPolicy policy(*corpus_, *index_);
    Query nonsense;
    nonsense.terms = {7999999};
    const QueryPlan plan = policy.plan(nonsense, *engine_);
    EXPECT_EQ(plan.participants(), 8u);
}

TEST_F(PolicyFixture, RankSTighterThresholdSelectsFewer)
{
    RankSConfig loose;
    loose.voteThreshold = 0.001;
    RankSConfig tight = loose;
    tight.voteThreshold = 0.2;
    RankSPolicy loosePolicy(*corpus_, *index_, loose);
    RankSPolicy tightPolicy(*corpus_, *index_, tight);
    EXPECT_GE(loosePolicy.plan(query_, *engine_).participants(),
              tightPolicy.plan(query_, *engine_).participants());
}

TEST_F(PolicyFixture, TailyContributionsSumToTarget)
{
    const TailyEstimator estimator(*index_);
    const std::vector<double> contributions =
        estimator.expectedTopContributions(query_.terms, 40.0);
    ASSERT_EQ(contributions.size(), 8u);
    double total = 0.0;
    for (double c : contributions) {
        EXPECT_GE(c, 0.0);
        total += c;
    }
    // Bisection solves for the threshold; the sum matches the target
    // (or every candidate when there are fewer than 40).
    EXPECT_NEAR(total, std::min(total, 40.0), 1e-6);
    EXPECT_GT(total, 1.0);
}

TEST_F(PolicyFixture, TailyMissingTermMeansZeroContribution)
{
    const TailyEstimator estimator(*index_);
    // Intersection semantics: a query with an absent term has an empty
    // intersection on every shard lacking the term.
    const std::vector<double> contributions =
        estimator.expectedTopContributions(std::vector<TermId>{7999999}, 10.0);
    for (double c : contributions)
        EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST_F(PolicyFixture, TailyUnionSemanticsKeepsMoreMass)
{
    const TailyEstimator intersection(*index_, false);
    const TailyEstimator unionized(*index_, true);
    // Multi-term query with one rare term: intersection estimates far
    // fewer candidates.
    const std::vector<TermId> terms = {40, 6000};
    double interTotal = 0.0;
    double unionTotal = 0.0;
    for (ShardId s = 0; s < 8; ++s) {
        interTotal += intersection.fitShards(terms)[s].candidates;
        unionTotal += unionized.fitShards(terms)[s].candidates;
    }
    EXPECT_LE(interTotal, unionTotal);
}

TEST_F(PolicyFixture, TailyPolicyCutoffMonotonicity)
{
    TailyConfig loose;
    loose.docCutoff = 0.01;
    TailyConfig tight = loose;
    tight.docCutoff = 5.0;
    TailyPolicy loosePolicy(*index_, loose);
    TailyPolicy tightPolicy(*index_, tight);
    EXPECT_GE(loosePolicy.plan(query_, *engine_).participants(),
              tightPolicy.plan(query_, *engine_).participants());
}

TEST_F(PolicyFixture, TailyPolicyNeverSelectsNothing)
{
    TailyConfig config;
    config.docCutoff = 1e9; // absurd cutoff
    TailyPolicy policy(*index_, config);
    EXPECT_EQ(policy.plan(query_, *engine_).participants(), 8u);
}

TEST_F(PolicyFixture, CsiScaleFactorsReflectSampling)
{
    const CentralSampleIndex csi(*corpus_, *index_, 0.05, 3);
    EXPECT_GE(csi.size(), 8u);
    std::size_t total = 0;
    for (ShardId s = 0; s < 8; ++s) {
        EXPECT_GE(csi.sampledFrom(s), 1u);
        total += csi.sampledFrom(s);
        // scale = shard size / sampled count.
        EXPECT_NEAR(csi.scaleFactor(s),
                    static_cast<double>(index_->shardDocs(s).size()) /
                        static_cast<double>(csi.sampledFrom(s)),
                    1e-12);
    }
    EXPECT_EQ(total, csi.size());
}

TEST_F(PolicyFixture, CsiSearchReturnsSampledDocsOnly)
{
    const CentralSampleIndex csi(*corpus_, *index_, 0.05, 3);
    const auto hits = csi.search(query_.terms, 20);
    EXPECT_FALSE(hits.empty());
    for (const ScoredDoc &hit : hits)
        EXPECT_LT(hit.doc, corpus_->numDocs());
}

TEST_F(PolicyFixture, ReddeEstimatesScaleWithSamples)
{
    ReddePolicy policy(*corpus_, *index_);
    const std::vector<double> estimates =
        policy.shardEstimates(query_.terms);
    ASSERT_EQ(estimates.size(), 8u);
    double total = 0.0;
    for (double e : estimates) {
        EXPECT_GE(e, 0.0);
        total += e;
    }
    EXPECT_GT(total, 0.0);
}

TEST_F(PolicyFixture, ReddeCoverageCutoffIsMonotone)
{
    ReddeConfig narrow;
    narrow.coverage = 0.3;
    ReddeConfig wide = narrow;
    wide.coverage = 1.0;
    ReddePolicy narrowPolicy(*corpus_, *index_, narrow);
    ReddePolicy widePolicy(*corpus_, *index_, wide);
    EXPECT_LE(narrowPolicy.plan(query_, *engine_).participants(),
              widePolicy.plan(query_, *engine_).participants());
}

TEST_F(PolicyFixture, ReddeUnknownTermsFallBackToExhaustive)
{
    ReddePolicy policy(*corpus_, *index_);
    Query nonsense;
    nonsense.terms = {7999999};
    EXPECT_EQ(policy.plan(nonsense, *engine_).participants(), 8u);
}

TEST_F(PolicyFixture, TailySingleTermFavorsHighDfShards)
{
    // The shard with the largest df for a term should receive at least
    // an average contribution estimate.
    const TailyEstimator estimator(*index_);
    const TermId term = 300;
    ShardId best = 0;
    double bestDf = -1.0;
    for (ShardId s = 0; s < 8; ++s) {
        const TermStats *ts = index_->termStats(s).get(term);
        const double df = ts == nullptr ? 0.0 : ts->postingLength;
        if (df > bestDf) {
            bestDf = df;
            best = s;
        }
    }
    const std::vector<double> contributions =
        estimator.expectedTopContributions(std::vector<TermId>{term}, 10.0);
    double total = 0.0;
    for (double c : contributions)
        total += c;
    EXPECT_GE(contributions[best], total / 8.0 * 0.5);
}

} // namespace
} // namespace cottage
