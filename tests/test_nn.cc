/**
 * @file
 * Tests for the neural-network library: matrix algebra, MLP training
 * dynamics (loss decreases, learnable functions are learned),
 * normalization, serialization round-trip and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/dataset.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace cottage {
namespace {

TEST(Matrix, MatmulSmallKnownValues)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Matrix b(3, 2);
    b(0, 0) = 7;  b(0, 1) = 8;
    b(1, 0) = 9;  b(1, 1) = 10;
    b(2, 0) = 11; b(2, 1) = 12;
    Matrix c(2, 2);
    matmul(a, b, c);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposedVariantsAgreeWithExplicitTranspose)
{
    Rng rng(42);
    Matrix a(4, 3);
    Matrix b(4, 5);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = rng.uniform(-1, 1);
    for (std::size_t i = 0; i < b.size(); ++i)
        b.data()[i] = rng.uniform(-1, 1);

    // a^T * b via matmulTransposeA vs explicit transpose.
    Matrix at(3, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            at(c, r) = a(r, c);
    Matrix expected(3, 5);
    matmul(at, b, expected);
    Matrix got(3, 5);
    matmulTransposeA(a, b, got);
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);

    // x * b^T via matmulTransposeB vs explicit transpose.
    Matrix x(2, 5);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = rng.uniform(-1, 1);
    Matrix bt(5, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            bt(c, r) = b(r, c);
    Matrix expected2(2, 4);
    matmul(x, bt, expected2);
    Matrix got2(2, 4);
    matmulTransposeB(x, b, got2);
    for (std::size_t i = 0; i < expected2.size(); ++i)
        EXPECT_NEAR(got2.data()[i], expected2.data()[i], 1e-12);
}

/** Two interleaved Gaussian blobs per class on a ring: learnable. */
Dataset
blobDataset(std::size_t classes, std::size_t perClass, uint64_t seed)
{
    Rng rng(seed);
    Dataset data(2);
    for (std::size_t c = 0; c < classes; ++c) {
        const double angle =
            2.0 * M_PI * static_cast<double>(c) / static_cast<double>(classes);
        for (std::size_t i = 0; i < perClass; ++i) {
            data.add({3.0 * std::cos(angle) + rng.normal(0.0, 0.4),
                      3.0 * std::sin(angle) + rng.normal(0.0, 0.4)},
                     static_cast<uint32_t>(c));
        }
    }
    return data;
}

TEST(Mlp, LearnsSeparableBlobs)
{
    const Dataset train = blobDataset(4, 200, 1);
    const Dataset test = blobDataset(4, 50, 2);

    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 4;
    config.hiddenLayers = {32, 32};
    config.seed = 3;
    MlpClassifier model(config);
    model.fitNormalization(train);

    const double lossBefore = model.loss(test);
    model.train(train, 400);
    const double lossAfter = model.loss(test);

    EXPECT_LT(lossAfter, lossBefore * 0.5);
    EXPECT_GT(model.accuracy(test), 0.95);
}

TEST(Mlp, TrainingLossDecreasesMonotonicallyOnAverage)
{
    const Dataset train = blobDataset(3, 150, 4);
    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 3;
    config.hiddenLayers = {16};
    MlpClassifier model(config);
    model.fitNormalization(train);

    double previous = model.loss(train);
    for (int round = 0; round < 4; ++round) {
        model.train(train, 100);
        const double current = model.loss(train);
        EXPECT_LT(current, previous + 0.05) << "round " << round;
        previous = current;
    }
    EXPECT_LT(previous, 0.3);
}

TEST(Mlp, DeterministicGivenSeed)
{
    const Dataset train = blobDataset(3, 100, 5);
    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 3;
    config.hiddenLayers = {8, 8};
    config.seed = 77;

    MlpClassifier a(config);
    a.fitNormalization(train);
    a.train(train, 50);

    MlpClassifier b(config);
    b.fitNormalization(train);
    b.train(train, 50);

    const std::vector<double> probe = {1.0, -2.0};
    const auto pa = a.probabilities(probe.data());
    const auto pb = b.probabilities(probe.data());
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(Mlp, ProbabilitiesFormDistribution)
{
    MlpConfig config;
    config.inputDim = 3;
    config.numClasses = 5;
    config.hiddenLayers = {8};
    const MlpClassifier model(config);
    const std::vector<double> sample = {0.3, -1.0, 2.0};
    const auto probs = model.probabilities(sample.data());
    ASSERT_EQ(probs.size(), 5u);
    double total = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Mlp, ExpectedClassLiesWithinRange)
{
    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 10;
    config.hiddenLayers = {8};
    const MlpClassifier model(config);
    const std::vector<double> sample = {1.0, 1.0};
    const double expected = model.expectedClass(sample.data());
    EXPECT_GE(expected, 0.0);
    EXPECT_LE(expected, 9.0);
}

TEST(Mlp, SaveLoadRoundTripPreservesOutputs)
{
    const Dataset train = blobDataset(4, 100, 6);
    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 4;
    config.hiddenLayers = {16, 16};
    MlpClassifier model(config);
    model.fitNormalization(train);
    model.train(train, 100);

    std::stringstream buffer;
    model.save(buffer);
    const MlpClassifier restored = MlpClassifier::load(buffer);

    EXPECT_EQ(restored.numParameters(), model.numParameters());
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        const std::vector<double> sample = {rng.uniform(-4, 4),
                                            rng.uniform(-4, 4)};
        const auto pa = model.probabilities(sample.data());
        const auto pb = restored.probabilities(sample.data());
        for (std::size_t c = 0; c < pa.size(); ++c)
            EXPECT_NEAR(pa[c], pb[c], 1e-12);
    }
}

TEST(Mlp, NumParametersMatchesArchitecture)
{
    MlpConfig config;
    config.inputDim = 10;
    config.numClasses = 11;
    config.hiddenLayers = {128, 128, 128, 128, 128};
    const MlpClassifier model(config);
    // 10*128+128 + 4*(128*128+128) + 128*11+11
    const std::size_t expected =
        (10 * 128 + 128) + 4 * (128 * 128 + 128) + (128 * 11 + 11);
    EXPECT_EQ(model.numParameters(), expected);
}

TEST(Mlp, NormalizationHandlesConstantFeatures)
{
    Dataset data(2);
    for (int i = 0; i < 10; ++i)
        data.add({5.0, static_cast<double>(i)}, i % 2);
    MlpConfig config;
    config.inputDim = 2;
    config.numClasses = 2;
    config.hiddenLayers = {4};
    MlpClassifier model(config);
    model.fitNormalization(data);
    // Must not produce NaNs.
    const auto probs = model.probabilities(data.features(0));
    for (double p : probs)
        EXPECT_FALSE(std::isnan(p));
}

TEST(Dataset, StoresSamplesContiguously)
{
    Dataset data(3);
    data.add({1.0, 2.0, 3.0}, 0);
    data.add({4.0, 5.0, 6.0}, 2);
    EXPECT_EQ(data.size(), 2u);
    EXPECT_DOUBLE_EQ(data.features(1)[0], 4.0);
    EXPECT_DOUBLE_EQ(data.features(1)[2], 6.0);
    EXPECT_EQ(data.label(0), 0u);
    EXPECT_EQ(data.label(1), 2u);
}

} // namespace
} // namespace cottage
