/**
 * @file
 * Tests for partitioning and the sharded index, including the exactness
 * property that merging per-shard top-K lists reproduces the global
 * exhaustive top-K (the foundation of the paper's quality metric).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "index/exhaustive_evaluator.h"
#include "index/top_k.h"
#include "shard/sharded_index.h"
#include "text/trace.h"

namespace cottage {
namespace {

CorpusConfig
testCorpusConfig()
{
    CorpusConfig config;
    config.numDocs = 1200;
    config.vocabSize = 4000;
    config.meanDocLength = 70.0;
    config.numTopics = 16;
    config.seed = 31;
    return config;
}

TEST(Partitioner, EveryDocAssignedExactlyOnce)
{
    const Corpus corpus = Corpus::generate(testCorpusConfig());
    for (const PartitionPolicy policy :
         {PartitionPolicy::RoundRobin, PartitionPolicy::Random,
          PartitionPolicy::Topical}) {
        const auto shards = partitionCorpus(corpus, 7, policy, 99);
        ASSERT_EQ(shards.size(), 7u);
        std::set<DocId> seen;
        for (const auto &shard : shards) {
            EXPECT_FALSE(shard.empty())
                << partitionPolicyName(policy);
            for (DocId doc : shard) {
                EXPECT_LT(doc, corpus.numDocs());
                EXPECT_TRUE(seen.insert(doc).second)
                    << "doc " << doc << " duplicated under "
                    << partitionPolicyName(policy);
            }
        }
        EXPECT_EQ(seen.size(), corpus.numDocs());
    }
}

TEST(Partitioner, RoundRobinIsBalanced)
{
    const Corpus corpus = Corpus::generate(testCorpusConfig());
    const auto shards =
        partitionCorpus(corpus, 16, PartitionPolicy::RoundRobin, 0);
    for (const auto &shard : shards) {
        EXPECT_GE(shard.size(), corpus.numDocs() / 16);
        EXPECT_LE(shard.size(), corpus.numDocs() / 16 + 1);
    }
}

TEST(Partitioner, RandomIsSeedDeterministic)
{
    const Corpus corpus = Corpus::generate(testCorpusConfig());
    const auto a = partitionCorpus(corpus, 8, PartitionPolicy::Random, 5);
    const auto b = partitionCorpus(corpus, 8, PartitionPolicy::Random, 5);
    EXPECT_EQ(a, b);
    const auto c = partitionCorpus(corpus, 8, PartitionPolicy::Random, 6);
    EXPECT_NE(a, c);
}

class ShardedFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        corpus_ = std::make_unique<Corpus>(Corpus::generate(testCorpusConfig()));
        ShardedIndexConfig config;
        config.numShards = 8;
        config.topK = 10;
        sharded_ = std::make_unique<ShardedIndex>(*corpus_, config);
    }

    std::unique_ptr<Corpus> corpus_;
    std::unique_ptr<ShardedIndex> sharded_;
};

TEST_F(ShardedFixture, ShardOfIsConsistentWithAssignment)
{
    for (ShardId s = 0; s < sharded_->numShards(); ++s)
        for (DocId doc : sharded_->shardDocs(s))
            EXPECT_EQ(sharded_->shardOf(doc), s);
}

TEST_F(ShardedFixture, MergedShardTopKEqualsGlobalTopK)
{
    // Build a single global index as the oracle.
    std::vector<DocId> allDocs(corpus_->numDocs());
    for (DocId d = 0; d < corpus_->numDocs(); ++d)
        allDocs[d] = d;
    const auto stats = std::make_shared<CollectionStats>(*corpus_);
    const InvertedIndex globalIndex(*corpus_, allDocs, stats);

    const ExhaustiveEvaluator evaluator;
    TraceConfig traceConfig;
    traceConfig.numQueries = 80;
    traceConfig.vocabSize = 4000;
    traceConfig.seed = 17;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    for (const Query &query : trace.queries()) {
        const SearchResult oracle =
            evaluator.search(globalIndex, query.terms, 10);

        TopKHeap merged(10);
        for (ShardId s = 0; s < sharded_->numShards(); ++s) {
            const SearchResult shardResult =
                evaluator.search(sharded_->shard(s), query.terms, 10);
            for (const ScoredDoc &hit : shardResult.topK)
                merged.push(hit);
        }
        const auto mergedTopK = merged.extractSorted();

        ASSERT_EQ(mergedTopK.size(), oracle.topK.size())
            << "query " << query.id;
        for (std::size_t i = 0; i < oracle.topK.size(); ++i) {
            EXPECT_EQ(mergedTopK[i].doc, oracle.topK[i].doc)
                << "rank " << i << " query " << query.id;
            EXPECT_NEAR(mergedTopK[i].score, oracle.topK[i].score, 1e-9);
        }
    }
}

TEST_F(ShardedFixture, TermStatsBuiltPerShard)
{
    for (ShardId s = 0; s < sharded_->numShards(); ++s) {
        EXPECT_EQ(sharded_->termStats(s).size(),
                  sharded_->shard(s).numTerms());
        EXPECT_EQ(sharded_->termStats(s).k(), 10u);
    }
}

TEST_F(ShardedFixture, ShardsPartitionTheCollection)
{
    uint64_t totalDocs = 0;
    for (ShardId s = 0; s < sharded_->numShards(); ++s)
        totalDocs += sharded_->shard(s).numDocs();
    EXPECT_EQ(totalDocs, corpus_->numDocs());
}

} // namespace
} // namespace cottage
