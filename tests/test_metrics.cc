/**
 * @file
 * Tests for run summarization and the harness table printer.
 */

#include <gtest/gtest.h>

#include "harness/table.h"
#include "metrics/run_stats.h"

namespace cottage {
namespace {

QueryMeasurement
measurement(double latencyMs, double precision, uint32_t used,
            uint32_t completed, uint64_t docs,
            double budgetSeconds = noBudget)
{
    QueryMeasurement m;
    m.latencySeconds = latencyMs * 1e-3;
    m.precisionAtK = precision;
    m.isnsUsed = used;
    m.isnsCompleted = completed;
    m.docsSearched = docs;
    m.budgetSeconds = budgetSeconds;
    return m;
}

TEST(RunStats, SummarizesKnownValues)
{
    std::vector<QueryMeasurement> measurements;
    for (int i = 1; i <= 100; ++i)
        measurements.push_back(
            measurement(static_cast<double>(i), 0.9, 8, 7, 100));

    const RunSummary summary =
        summarizeRun("cottage", "wikipedia", measurements);
    EXPECT_EQ(summary.policy, "cottage");
    EXPECT_EQ(summary.trace, "wikipedia");
    EXPECT_EQ(summary.queries, 100u);
    EXPECT_NEAR(summary.avgLatencySeconds, 50.5e-3, 1e-9);
    EXPECT_NEAR(summary.p50LatencySeconds, 50.5e-3, 1e-6);
    EXPECT_NEAR(summary.p95LatencySeconds, 95.05e-3, 1e-4);
    EXPECT_NEAR(summary.maxLatencySeconds, 100e-3, 1e-12);
    EXPECT_NEAR(summary.avgPrecision, 0.9, 1e-12);
    EXPECT_NEAR(summary.avgIsnsUsed, 8.0, 1e-12);
    EXPECT_NEAR(summary.avgDocsSearched, 100.0, 1e-12);
    // One truncated response per query (8 used, 7 completed).
    EXPECT_EQ(summary.truncatedResponses, 100u);
}

TEST(RunStats, BudgetAveragesOnlyBudgetedQueries)
{
    std::vector<QueryMeasurement> measurements;
    measurements.push_back(measurement(1, 1, 4, 4, 10));
    measurements.push_back(measurement(1, 1, 4, 4, 10, 0.020));
    measurements.push_back(measurement(1, 1, 4, 4, 10, 0.040));
    const RunSummary summary = summarizeRun("x", "y", measurements);
    EXPECT_NEAR(summary.avgBudgetSeconds, 0.030, 1e-12);
}

TEST(RunStats, EmptyRunIsAllZero)
{
    const RunSummary summary = summarizeRun("x", "y", {});
    EXPECT_EQ(summary.queries, 0u);
    EXPECT_DOUBLE_EQ(summary.avgLatencySeconds, 0.0);
    EXPECT_DOUBLE_EQ(summary.avgPrecision, 0.0);
}

TEST(RunStats, LatencySeriesPreservesOrder)
{
    std::vector<QueryMeasurement> measurements;
    measurements.push_back(measurement(5, 1, 4, 4, 10));
    measurements.push_back(measurement(2, 1, 4, 4, 10));
    const std::vector<double> series = latencySeries(measurements);
    ASSERT_EQ(series.size(), 2u);
    EXPECT_NEAR(series[0], 5e-3, 1e-12);
    EXPECT_NEAR(series[1], 2e-3, 1e-12);
}

TEST(RunStats, JsonContainsEveryHeadlineField)
{
    std::vector<QueryMeasurement> measurements;
    measurements.push_back(measurement(10, 0.9, 8, 8, 100, 0.02));
    RunSummary summary = summarizeRun("cottage", "wikipedia", measurements);
    summary.avgPowerWatts = 21.5;
    summary.energyJoules = 3.25;
    summary.durationSeconds = 12.0;

    const std::string json = toJson(summary);
    for (const char *key :
         {"\"policy\":\"cottage\"", "\"trace\":\"wikipedia\"",
          "\"queries\":1", "\"avg_latency_s\":0.01",
          "\"avg_precision\":0.9", "\"avg_ndcg\":", "\"avg_power_w\":21.5",
          "\"energy_j\":3.25", "\"avg_budget_s\":0.02"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key << "\n"
                                                     << json;
    }
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"policy", "value"});
    table.addRow({"exhaustive", TextTable::cell(1.5, 2)});
    table.addRow({"x", TextTable::cell(static_cast<uint64_t>(42))});
    const std::string out = table.render();
    EXPECT_NE(out.find("policy"), std::string::npos);
    EXPECT_NE(out.find("exhaustive  1.50"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CellFormatting)
{
    EXPECT_EQ(TextTable::cell(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::cell(3.14159, 4), "3.1416");
    EXPECT_EQ(TextTable::cell(static_cast<uint64_t>(7)), "7");
}

} // namespace
} // namespace cottage
