/**
 * @file
 * End-to-end suite for anytime partial results: graceful quality
 * degradation under shrinking time budgets, and the determinism
 * contract extended to truncated replays — partial rankings and
 * prorated work accounting must be byte-identical at any host thread
 * count, for every evaluator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <type_traits>
#include <vector>

#include "harness/experiment.h"
#include "metrics/run_stats.h"
#include "policy/policy.h"
#include "util/thread_pool.h"

namespace cottage {
namespace {

/**
 * Minimal budget policy: dispatch to every ISN with one fixed relative
 * time budget. Isolates the engine's anytime path from the selection /
 * budget-assignment machinery under test elsewhere.
 */
class FixedBudgetPolicy : public Policy
{
  public:
    explicit FixedBudgetPolicy(double budgetSeconds)
        : budget_(budgetSeconds)
    {
    }

    const char *name() const override { return "fixed-budget"; }

    QueryPlan
    plan(const Query &, const DistributedEngine &engine) override
    {
        QueryPlan plan = QueryPlan::allIsns(engine.index().numShards());
        plan.budgetSeconds = budget_;
        return plan;
    }

  private:
    double budget_;
};

/** Append a value's raw bytes to a buffer. */
template <typename T>
void
appendBytes(std::string &buffer, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char *raw = reinterpret_cast<const char *>(&value);
    buffer.append(raw, sizeof(T));
}

/** Bitwise serialization of a measurement stream (incl. partials). */
std::string
serializeMeasurements(const std::vector<QueryMeasurement> &measurements)
{
    std::string buffer;
    for (const QueryMeasurement &m : measurements) {
        appendBytes(buffer, m.id);
        appendBytes(buffer, m.arrivalSeconds);
        appendBytes(buffer, m.latencySeconds);
        appendBytes(buffer, m.budgetSeconds);
        appendBytes(buffer, m.isnsUsed);
        appendBytes(buffer, m.isnsCompleted);
        appendBytes(buffer, m.partialResponses);
        appendBytes(buffer, m.isnsBoosted);
        appendBytes(buffer, m.completedFraction);
        appendBytes(buffer, m.docsSearched);
        appendBytes(buffer, m.precisionAtK);
        appendBytes(buffer, m.ndcgAtK);
        for (const ScoredDoc &hit : m.results) {
            appendBytes(buffer, hit.doc);
            appendBytes(buffer, hit.score);
        }
    }
    return buffer;
}

/**
 * Small corpus with arrivals spread far apart (the cluster is idle at
 * almost every dispatch), so each query's completed fraction depends
 * only on its own budget — the clean regime for the monotonicity
 * property below.
 */
ExperimentConfig
anytimeConfig(const std::string &evaluator)
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 6000;
    config.corpus.meanDocLength = 90.0;
    config.shards.numShards = 8;
    config.traceQueries = 60;
    config.arrivalQps = 2.0;
    config.evaluator = evaluator;
    // The default per-request base cost is calibrated for the 60K-doc
    // corpus; on this small one it would dominate service time and
    // compress every completed fraction toward the same value. Shrink
    // it so the sweep exercises a wide range of fractions.
    config.work.baseCycles = 5e4;
    return config;
}

/**
 * The typical full-response time: average unbudgeted latency minus the
 * fixed network components — the scale budgets are expressed in.
 */
double
fullServiceScale(Experiment &experiment)
{
    FixedBudgetPolicy unbudgeted(noBudget);
    const RunResult full =
        experiment.run(unbudgeted, TraceFlavor::Wikipedia);
    const NetworkModel &network = experiment.cluster().network();
    const double scale = full.summary.avgLatencySeconds -
                         network.rttSeconds - network.mergeSeconds;
    EXPECT_GT(scale, 0.0);
    return scale;
}

TEST(AnytimeBudgetSweep, QualityDegradesGracefullyWithBudget)
{
    Experiment experiment(anytimeConfig("maxscore"));
    const double scale = fullServiceScale(experiment);
    // The per-request fixed cost: any budget above it guarantees even
    // a shard with no matching documents responds (completed), so
    // every participant contributes a full or partial response.
    const double baseSeconds = WorkModel::secondsForCycles(
        experiment.config().work.baseCycles,
        experiment.cluster().ladder().defaultGhz());

    const std::vector<double> scales = {0.35, 0.5, 0.7, 1.0, 1.6};
    std::vector<RunSummary> summaries;
    for (double s : scales) {
        FixedBudgetPolicy policy(s * scale);
        const RunResult run =
            experiment.run(policy, TraceFlavor::Wikipedia);
        // No participating ISN goes silent: every response is either
        // complete or a non-empty anytime partial (budgets here all
        // clear the per-request base cost).
        ASSERT_GT(s * scale, baseSeconds) << "scale " << s;
        for (const QueryMeasurement &m : run.measurements)
            ASSERT_EQ(m.isnsCompleted + m.partialResponses, m.isnsUsed)
                << "scale " << s << " query " << m.id;
        summaries.push_back(run.summary);
    }

    // Tight budgets really truncate, generous ones mostly do not.
    EXPECT_GT(summaries.front().truncatedResponses, 0u);
    EXPECT_GT(summaries.front().partialResponses, 0u);
    EXPECT_LT(summaries.back().truncatedResponses,
              summaries.front().truncatedResponses);

    // Graceful degradation: average quality is monotonically
    // non-decreasing in the budget. Per query, a larger budget yields
    // a larger docs cap, hence a superset candidate pool whose merged
    // top-K can only gain ground-truth hits (every truth doc outranks
    // every non-truth doc under the shared (score, doc) order).
    for (std::size_t i = 1; i < summaries.size(); ++i) {
        EXPECT_GE(summaries[i].avgNdcg, summaries[i - 1].avgNdcg)
            << "budget scale " << scales[i];
        EXPECT_GE(summaries[i].avgPrecision, summaries[i - 1].avgPrecision)
            << "budget scale " << scales[i];
        EXPECT_GE(summaries[i].avgCompletedFraction,
                  summaries[i - 1].avgCompletedFraction)
            << "budget scale " << scales[i];
    }
}

TEST(AnytimeBudgetSweep, PartialsBeatDroppingAtTightBudgets)
{
    Experiment experiment(anytimeConfig("maxscore"));
    const double scale = fullServiceScale(experiment);

    FixedBudgetPolicy tight(0.4 * scale);
    const RunResult anytime =
        experiment.run(tight, TraceFlavor::Wikipedia);

    experiment.engine().setAnytimePartials(false);
    const RunResult dropped =
        experiment.run(tight, TraceFlavor::Wikipedia);
    experiment.engine().setAnytimePartials(true);

    // Same deadlines, same truncations, same prorated work and
    // latency — but merging the anytime prefixes instead of dropping
    // whole responses is strictly better quality.
    EXPECT_EQ(anytime.summary.truncatedResponses,
              dropped.summary.truncatedResponses);
    EXPECT_GT(anytime.summary.truncatedResponses, 0u);
    EXPECT_EQ(dropped.summary.partialResponses, 0u);
    EXPECT_DOUBLE_EQ(anytime.summary.avgLatencySeconds,
                     dropped.summary.avgLatencySeconds);
    EXPECT_DOUBLE_EQ(anytime.summary.avgDocsSearched,
                     dropped.summary.avgDocsSearched);
    EXPECT_GT(anytime.summary.avgNdcg, dropped.summary.avgNdcg);
    EXPECT_GT(anytime.summary.avgPrecision, dropped.summary.avgPrecision);
}

/**
 * The PR 1 determinism contract extended to truncated replays: with a
 * budget tight enough that partial responses occur throughout the
 * trace, the measurement stream (partial rankings, prorated docs,
 * completed fractions) must be byte-identical at --threads 1 and 8.
 */
class AnytimeDeterminism : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AnytimeDeterminism, TruncatedReplayIsBitExactAcrossThreadCounts)
{
    Experiment experiment(anytimeConfig(GetParam()));
    const double scale = fullServiceScale(experiment);
    FixedBudgetPolicy tight(0.4 * scale);

    ThreadPool::setGlobalThreads(1);
    const RunResult sequential =
        experiment.run(tight, TraceFlavor::Wikipedia);

    ThreadPool::setGlobalThreads(8);
    const RunResult parallel =
        experiment.run(tight, TraceFlavor::Wikipedia);
    ThreadPool::setGlobalThreads(1);

    // The replay must actually exercise the anytime path.
    EXPECT_GT(sequential.summary.truncatedResponses, 0u);
    EXPECT_GT(sequential.summary.partialResponses, 0u);

    ASSERT_EQ(sequential.measurements.size(),
              parallel.measurements.size());
    EXPECT_EQ(serializeMeasurements(sequential.measurements),
              serializeMeasurements(parallel.measurements))
        << GetParam()
        << ": truncated measurement streams diverge across thread counts";
    EXPECT_EQ(toJson(sequential.summary), toJson(parallel.summary))
        << GetParam()
        << ": truncated run summaries diverge across thread counts";
}

INSTANTIATE_TEST_SUITE_P(Evaluators, AnytimeDeterminism,
                         ::testing::Values("exhaustive", "taat",
                                           "maxscore", "wand"));

} // namespace
} // namespace cottage
