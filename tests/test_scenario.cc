/**
 * @file
 * Tests for the scenario layer: inhomogeneous arrival shaping
 * (diurnal, flash crowd), the deterministic multi-tenant merge,
 * hostile cluster shapes (stragglers, frequency caps, outages), the
 * admission ladder's availability handling and the end-to-end
 * per-tenant rollups of Experiment::runScenario.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "serve/arrivals.h"
#include "serve/scenario.h"
#include "sim/cluster.h"

namespace cottage {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

QueryTrace
syntheticTrace(uint64_t queries, uint64_t seed = 77)
{
    TraceConfig config;
    config.numQueries = queries;
    config.vocabSize = 500;
    config.seed = seed;
    return QueryTrace::generate(config);
}

// ---------------------------------------------------------- arrivals

TEST(ShapeArrivals, PoissonIsRetimeTraceByteForByte)
{
    const QueryTrace base = syntheticTrace(300);
    ArrivalSpec spec;
    spec.shape = ArrivalShape::Poisson;
    spec.qps = 250.0;
    spec.seed = 99;

    const QueryTrace shaped = shapeArrivals(base, spec);
    const QueryTrace retimed = retimeTrace(base, spec.qps, spec.seed);
    ASSERT_EQ(shaped.size(), retimed.size());
    for (std::size_t i = 0; i < shaped.size(); ++i) {
        // Bitwise: the stationary case must BE retimeTrace, not a
        // numerically-similar reimplementation.
        const double a = shaped.query(i).arrivalSeconds;
        const double b = retimed.query(i).arrivalSeconds;
        ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0) << "query " << i;
        ASSERT_EQ(shaped.query(i).terms, retimed.query(i).terms);
    }
}

TEST(ShapeArrivals, DiurnalKeepsContentWithAscendingArrivals)
{
    const QueryTrace base = syntheticTrace(400);
    ArrivalSpec spec;
    spec.shape = ArrivalShape::Diurnal;
    spec.qps = 200.0;
    spec.seed = 5;
    spec.diurnalAmplitude = 0.8;
    spec.diurnalPeriodSeconds = 1.0;

    const QueryTrace shaped = shapeArrivals(base, spec);
    ASSERT_EQ(shaped.size(), base.size());
    double previous = 0.0;
    for (std::size_t i = 0; i < shaped.size(); ++i) {
        EXPECT_EQ(shaped.query(i).terms, base.query(i).terms)
            << "query content must survive re-timing";
        EXPECT_GE(shaped.query(i).arrivalSeconds, previous);
        previous = shaped.query(i).arrivalSeconds;
    }
    // Same spec, same bytes: the shaped stream is a pure function of
    // (base, spec).
    const QueryTrace again = shapeArrivals(base, spec);
    for (std::size_t i = 0; i < shaped.size(); ++i)
        ASSERT_DOUBLE_EQ(shaped.query(i).arrivalSeconds,
                         again.query(i).arrivalSeconds);
}

TEST(ShapeArrivals, FlashCrowdPacksTheSpikeWindow)
{
    const QueryTrace base = syntheticTrace(6000);
    ArrivalSpec spec;
    spec.shape = ArrivalShape::FlashCrowd;
    spec.qps = 1000.0;
    spec.seed = 11;
    spec.spikeStartSeconds = 0.5;
    spec.spikeDurationSeconds = 0.5;
    spec.spikeMultiplier = 8.0;

    const QueryTrace shaped = shapeArrivals(base, spec);
    uint64_t before = 0;
    uint64_t inside = 0;
    for (const Query &query : shaped.queries()) {
        if (query.arrivalSeconds < 0.5)
            ++before;
        else if (query.arrivalSeconds < 1.0)
            ++inside;
    }
    // The windows have equal width; the spike runs 8x the base rate,
    // so the in-window count must clearly dominate (3x leaves wide
    // slack for sampling noise at this trace length).
    EXPECT_GT(inside, 3 * before);
}

TEST(ShapeArrivalsDeath, RejectsMalformedSpecs)
{
    const QueryTrace base = syntheticTrace(10);

    ArrivalSpec zeroRate;
    zeroRate.qps = 0.0;
    EXPECT_DEATH(shapeArrivals(base, zeroRate), "arrival rate");

    ArrivalSpec fullAmplitude;
    fullAmplitude.shape = ArrivalShape::Diurnal;
    fullAmplitude.diurnalAmplitude = 1.0;
    EXPECT_DEATH(shapeArrivals(base, fullAmplitude),
                 "diurnal amplitude");

    ArrivalSpec dampingSpike;
    dampingSpike.shape = ArrivalShape::FlashCrowd;
    dampingSpike.spikeMultiplier = 0.5;
    EXPECT_DEATH(shapeArrivals(base, dampingSpike), "spike multiplier");
}

// ------------------------------------------------------------- merge

Query
timedQuery(double arrivalSeconds)
{
    Query query;
    query.terms = {1};
    query.arrivalSeconds = arrivalSeconds;
    return query;
}

TEST(MergeTenantArrivals, OrdersByArrivalThenTenantThenId)
{
    QueryTrace tenant0;
    tenant0.append(timedQuery(0.1));
    tenant0.append(timedQuery(0.25));
    QueryTrace tenant1;
    tenant1.append(timedQuery(0.1)); // exact tie with tenant 0's first
    tenant1.append(timedQuery(0.2));

    const MergedArrivals merged =
        mergeTenantArrivals({tenant0, tenant1});
    ASSERT_EQ(merged.trace.size(), 4u);
    ASSERT_EQ(merged.sources.size(), 4u);

    // Ascending arrival, exact ties broken by tenant: (t0,0)@0.1,
    // (t1,0)@0.1, (t1,1)@0.2, (t0,1)@0.25.
    const std::vector<std::pair<uint32_t, std::size_t>> expected = {
        {0, 0}, {1, 0}, {1, 1}, {0, 1}};
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(merged.sources[i], expected[i]) << "position " << i;
        EXPECT_EQ(merged.trace.query(i).tenant, expected[i].first)
            << "position " << i;
        // Ids are re-stamped to merged positions so downstream code
        // can index measurement streams directly.
        EXPECT_EQ(merged.trace.query(i).id, i) << "position " << i;
    }
    double previous = 0.0;
    for (const Query &query : merged.trace.queries()) {
        EXPECT_GE(query.arrivalSeconds, previous);
        previous = query.arrivalSeconds;
    }
}

TEST(MergeTenantArrivals, MergeIsAPureFunctionOfTheInputs)
{
    const QueryTrace base = syntheticTrace(100);
    ArrivalSpec spec0;
    spec0.qps = 300.0;
    spec0.seed = 17;
    ArrivalSpec spec1 = spec0;
    spec1.seed = 18;

    const MergedArrivals a = mergeTenantArrivals(
        {shapeArrivals(base, spec0), shapeArrivals(base, spec1)});
    const MergedArrivals b = mergeTenantArrivals(
        {shapeArrivals(base, spec0), shapeArrivals(base, spec1)});
    ASSERT_EQ(a.trace.size(), b.trace.size());
    EXPECT_EQ(a.sources, b.sources);
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        ASSERT_DOUBLE_EQ(a.trace.query(i).arrivalSeconds,
                         b.trace.query(i).arrivalSeconds);
}

TEST(MergeTenantArrivalsDeath, RejectsAnEmptyTenantList)
{
    EXPECT_DEATH(mergeTenantArrivals({}), "at least one tenant");
}

// --------------------------------------------------- hostile hardware

TEST(FrequencyLadderAtMost, RoundsDownAndSaturates)
{
    const FrequencyLadder ladder;
    EXPECT_DOUBLE_EQ(ladder.atMost(2.7), 2.7);
    EXPECT_DOUBLE_EQ(ladder.atMost(5.0), 2.7);
    EXPECT_DOUBLE_EQ(ladder.atMost(1.85), 1.8);
    EXPECT_DOUBLE_EQ(ladder.atMost(1.2), 1.2);
    // Below the ladder there is no legal step; saturate to the floor.
    EXPECT_DOUBLE_EQ(ladder.atMost(0.5), 1.2);
}

TEST(IsnShapes, StragglerDoublesServiceTime)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim baseline(ladder, power);
    IsnServerSim straggler(ladder, power);
    straggler.setServiceRateMultiplier(0.5);

    const IsnExecution fast = baseline.execute(0.0, 2.1e9, 2.1, kInf);
    const IsnExecution slow = straggler.execute(0.0, 2.1e9, 2.1, kInf);
    EXPECT_NEAR(slow.busySeconds, 2.0 * fast.busySeconds, 1e-12);
    EXPECT_NEAR(slow.finishSeconds, 2.0, 1e-12);
}

TEST(IsnShapes, FrequencyCapClampsToTheLadder)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim capped(ladder, power);
    capped.setMaxFreqGhz(1.85);

    // A plan asking for 2.7 GHz runs at the highest step under the
    // cap (1.8); requests at or below the cap are untouched.
    const IsnExecution clamped = capped.execute(0.0, 1.8e9, 2.7, kInf);
    EXPECT_DOUBLE_EQ(clamped.freqGhz, 1.8);
    EXPECT_NEAR(clamped.busySeconds, 1.0, 1e-12);

    capped.reset();
    const IsnExecution under = capped.execute(0.0, 1.2e9, 1.2, kInf);
    EXPECT_DOUBLE_EQ(under.freqGhz, 1.2);
}

TEST(IsnShapes, DownWindowsGateAvailability)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    server.setDownWindows({{0.3, 0.8}, {2.0, 2.5}});

    EXPECT_TRUE(server.availableAt(0.0));
    EXPECT_FALSE(server.availableAt(0.3));
    EXPECT_FALSE(server.availableAt(0.79));
    EXPECT_TRUE(server.availableAt(0.8));
    EXPECT_FALSE(server.availableAt(2.2));
    EXPECT_TRUE(server.availableAt(3.0));
}

TEST(IsnShapesDeath, RejectsMalformedShapes)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    EXPECT_DEATH(server.setServiceRateMultiplier(0.0), "");
    EXPECT_DEATH(server.setMaxFreqGhz(0.5), "");
    // Overlapping/backwards windows are invariant violations.
    EXPECT_DEATH(server.setDownWindows({{0.8, 0.3}}), "");
    EXPECT_DEATH(server.setDownWindows({{0.0, 0.5}, {0.4, 0.9}}), "");
}

TEST(IsnShapes, ResetKeepsShapeClearShapeRestoresIt)
{
    const FrequencyLadder ladder;
    const PowerModel power;
    IsnServerSim server(ladder, power);
    server.setServiceRateMultiplier(0.5);
    server.setMaxFreqGhz(1.8);
    server.setDownWindows({{0.1, 0.2}});

    // Shape is hardware: resetting the run state keeps it.
    server.execute(0.0, 1e9, 2.1, kInf);
    server.reset();
    EXPECT_DOUBLE_EQ(server.serviceRateMultiplier(), 0.5);
    EXPECT_DOUBLE_EQ(server.maxFreqGhz(), 1.8);
    EXPECT_EQ(server.downWindows().size(), 1u);

    server.clearShape();
    EXPECT_DOUBLE_EQ(server.serviceRateMultiplier(), 1.0);
    EXPECT_TRUE(std::isinf(server.maxFreqGhz()));
    EXPECT_TRUE(server.downWindows().empty());
}

TEST(ClusterShapes, ApplyAndClearRoundTrip)
{
    ClusterSim cluster(4, FrequencyLadder(), PowerModel());

    ClusterShape shape;
    IsnShape straggler;
    straggler.isn = 0;
    straggler.serviceRateMultiplier = 0.5;
    IsnShape capped;
    capped.isn = 2;
    capped.maxFreqGhz = 1.8;
    capped.downWindows = {{0.3, 0.8}};
    shape.isns = {straggler, capped};

    cluster.applyShape(shape);
    EXPECT_DOUBLE_EQ(cluster.isn(0).serviceRateMultiplier(), 0.5);
    EXPECT_DOUBLE_EQ(cluster.isn(1).serviceRateMultiplier(), 1.0);
    EXPECT_DOUBLE_EQ(cluster.isn(2).maxFreqGhz(), 1.8);
    EXPECT_FALSE(cluster.isn(2).availableAt(0.5));

    // Re-applying a different shape clears the previous one first.
    ClusterShape other;
    IsnShape lone;
    lone.isn = 1;
    lone.serviceRateMultiplier = 2.0;
    other.isns = {lone};
    cluster.applyShape(other);
    EXPECT_DOUBLE_EQ(cluster.isn(0).serviceRateMultiplier(), 1.0);
    EXPECT_DOUBLE_EQ(cluster.isn(1).serviceRateMultiplier(), 2.0);
    EXPECT_TRUE(cluster.isn(2).availableAt(0.5));

    cluster.clearShape();
    for (ShardId s = 0; s < cluster.numIsns(); ++s) {
        EXPECT_DOUBLE_EQ(cluster.isn(s).serviceRateMultiplier(), 1.0);
        EXPECT_TRUE(std::isinf(cluster.isn(s).maxFreqGhz()));
        EXPECT_TRUE(cluster.isn(s).downWindows().empty());
    }
}

// -------------------------------------------- admission availability

TEST(AdmissionAvailability, DownIsnsAreDroppedBeforeTheLadder)
{
    ClusterSim cluster(2, FrequencyLadder(), PowerModel());
    ClusterShape shape;
    IsnShape failing;
    failing.isn = 0;
    failing.downWindows = {{0.0, 1.0}};
    shape.isns = {failing};
    cluster.applyShape(shape);

    QueryPlan plan;
    plan.isns.resize(2);
    for (auto &isn : plan.isns)
        isn.participate = true;
    plan.budgetSeconds = noBudget;

    AdmissionConfig config;
    const AdmissionDecision decision =
        applyAdmission(plan, cluster, 0.5, config);
    // The down node is lost from the plan but is NOT overload
    // shedding — it is counted separately and leaves the survivor's
    // ladder state healthy.
    EXPECT_FALSE(plan.isns[0].participate);
    EXPECT_TRUE(plan.isns[1].participate);
    EXPECT_EQ(decision.isnsUnavailable, 1u);
    EXPECT_EQ(decision.isnsShed, 0u);
    EXPECT_FALSE(decision.shedQuery);
    EXPECT_FALSE(decision.degraded);

    // After recovery the node participates again.
    QueryPlan later;
    later.isns.resize(2);
    for (auto &isn : later.isns)
        isn.participate = true;
    later.budgetSeconds = noBudget;
    const AdmissionDecision recovered =
        applyAdmission(later, cluster, 1.5, config);
    EXPECT_TRUE(later.isns[0].participate);
    EXPECT_EQ(recovered.isnsUnavailable, 0u);
}

// --------------------------------------------------------- scenarios

TEST(ScenarioPresets, NamesBuildWithDistinctSeedsAndHostileFlags)
{
    const std::vector<std::string> &names = scenarioNames();
    ASSERT_EQ(names.size(), 6u);

    std::set<std::string> hostile;
    for (const std::string &name : names) {
        const ScenarioConfig scenario = scenarioByName(name);
        EXPECT_EQ(scenario.name, name);
        ASSERT_GE(scenario.tenants.size(), 2u) << name;
        std::set<uint64_t> seeds;
        for (const TenantSpec &tenant : scenario.tenants)
            seeds.insert(tenant.arrivals.seed);
        EXPECT_EQ(seeds.size(), scenario.tenants.size())
            << name << ": tenant arrival seeds must be distinct";
        if (scenario.hostile)
            hostile.insert(name);
    }
    EXPECT_EQ(hostile,
              (std::set<std::string>{"flash_crowd", "straggler_isn",
                                     "power_skew", "failover"}));

    // qpsScale multiplies every tenant's baseline rate.
    const ScenarioConfig one = scenarioByName("mixed_poisson", 1.0);
    const ScenarioConfig two = scenarioByName("mixed_poisson", 2.0);
    for (std::size_t t = 0; t < one.tenants.size(); ++t)
        EXPECT_DOUBLE_EQ(two.tenants[t].arrivals.qps,
                         2.0 * one.tenants[t].arrivals.qps);
}

TEST(ScenarioPresetsDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(scenarioByName("totally_bogus"), "unknown scenario");
}

// -------------------------------------------------------- end to end

ExperimentConfig
scenarioExperimentConfig()
{
    ExperimentConfig config;
    config.corpus.numDocs = 2000;
    config.corpus.vocabSize = 6000;
    config.corpus.meanDocLength = 90.0;
    config.shards.numShards = 8;
    config.traceQueries = 200;
    config.serving.resultCacheCapacity = 128;
    config.serving.statsCacheCapacity = 512;
    return config;
}

TEST(RunScenario, PerTenantRollupsPartitionTheRun)
{
    Experiment experiment(scenarioExperimentConfig());
    const ScenarioConfig scenario = scenarioByName("mixed_poisson");
    const ScenarioRunResult result =
        experiment.runScenario("taily", scenario);

    const ServingSummary &summary = result.summary;
    ASSERT_EQ(summary.tenants.size(), 2u);
    EXPECT_EQ(summary.tenants[0].tenant, "interactive");
    EXPECT_EQ(summary.tenants[1].tenant, "batch");

    // Both tenants replay the full 200-query base trace, so offered
    // counts partition the merged stream exactly.
    EXPECT_EQ(summary.tenants[0].offered + summary.tenants[1].offered,
              summary.offered);
    EXPECT_EQ(summary.offered, 400u);

    uint64_t fromMeasurements[2] = {0, 0};
    for (const ServingMeasurement &record : result.measurements) {
        ASSERT_LT(record.measurement.tenant, 2u);
        ++fromMeasurements[record.measurement.tenant];
    }
    EXPECT_EQ(fromMeasurements[0], summary.tenants[0].offered);
    EXPECT_EQ(fromMeasurements[1], summary.tenants[1].offered);

    double tenantEnergy = 0.0;
    for (const TenantSummary &tenant : summary.tenants) {
        EXPECT_EQ(tenant.offered, tenant.completed + tenant.shedQueries);
        EXPECT_GE(tenant.shedRate, 0.0);
        EXPECT_LE(tenant.shedRate, 1.0);
        // The percentile ladder must be monotone.
        EXPECT_LE(tenant.p50LatencySeconds, tenant.p95LatencySeconds);
        EXPECT_LE(tenant.p95LatencySeconds, tenant.p99LatencySeconds);
        EXPECT_LE(tenant.p99LatencySeconds, tenant.p999LatencySeconds);
        EXPECT_LE(tenant.p999LatencySeconds, tenant.maxLatencySeconds);
        tenantEnergy += tenant.energyJoules;
    }
    // Execution energy is attributed exactly once: the per-tenant
    // split sums back to the cluster total.
    EXPECT_NEAR(tenantEnergy, summary.run.energyJoules,
                1e-9 * (1.0 + summary.run.energyJoules));

    // The JSON export nests the rollups under "tenants".
    const std::string json = toJson(summary);
    EXPECT_NE(json.find("\"tenants\":["), std::string::npos);
    EXPECT_NE(json.find("\"tenant\":\"interactive\""), std::string::npos);
    EXPECT_NE(json.find("\"slo_attainment\""), std::string::npos);
    EXPECT_NE(json.find("\"p999_latency_s\""), std::string::npos);
}

TEST(RunScenario, SloShareAndDeadlineShapeTheBudget)
{
    // slo-dvfs plans a fixed finite budget, so the SLO arithmetic is
    // directly visible in the measured budgets: tenant "half" gets
    // 50% of the full budget, tenant "strict" is capped at its
    // deadline.
    Experiment experiment(scenarioExperimentConfig());

    ScenarioConfig scenario;
    scenario.name = "slo_probe";
    TenantSpec full;
    full.name = "full";
    full.arrivals.qps = 30.0;
    full.arrivals.seed = 21;
    TenantSpec half = full;
    half.name = "half";
    half.slo.budgetShare = 0.5;
    half.arrivals.seed = 22;
    TenantSpec strict = full;
    strict.name = "strict";
    strict.slo.deadlineSeconds = 8e-3;
    strict.arrivals.seed = 23;
    scenario.tenants = {full, half, strict};

    const ScenarioRunResult result =
        experiment.runScenario("slo-dvfs", scenario);

    double budgets[3] = {0.0, 0.0, 0.0};
    bool seen[3] = {false, false, false};
    for (const ServingMeasurement &record : result.measurements) {
        if (record.outcome != ServingOutcome::Served)
            continue;
        const uint32_t tenant = record.measurement.tenant;
        ASSERT_LT(tenant, 3u);
        if (!seen[tenant]) {
            budgets[tenant] = record.measurement.budgetSeconds;
            seen[tenant] = true;
        } else {
            // At this offered load nothing degrades, so the budget is
            // the same for every one of a tenant's served queries.
            ASSERT_DOUBLE_EQ(record.measurement.budgetSeconds,
                             budgets[tenant]);
        }
    }
    ASSERT_TRUE(seen[0] && seen[1] && seen[2]);
    EXPECT_GT(budgets[0], 0.0);
    EXPECT_DOUBLE_EQ(budgets[1], 0.5 * budgets[0]);
    EXPECT_DOUBLE_EQ(budgets[2], std::min(budgets[0], 8e-3));
    EXPECT_LT(budgets[2], budgets[0]);

    // The echo in the rollups matches the configured classes.
    ASSERT_EQ(result.summary.tenants.size(), 3u);
    EXPECT_DOUBLE_EQ(result.summary.tenants[2].deadlineSeconds, 8e-3);
}

TEST(RunScenario, FailoverLosesIsnsWhileDownAndRecovers)
{
    Experiment experiment(scenarioExperimentConfig());
    const ScenarioConfig scenario = scenarioByName("failover");
    const ScenarioRunResult result =
        experiment.runScenario("taily", scenario);
    // Queries dispatched inside the outage window lose ISN 0.
    EXPECT_GT(result.summary.isnsUnavailable, 0u);
    // The outage is a window, not the whole run: plenty of queries
    // still complete.
    EXPECT_GT(result.summary.completed, result.summary.offered / 2);
}

TEST(RunScenario, HostileShapeNeverLeaksIntoLaterRuns)
{
    Experiment experiment(scenarioExperimentConfig());

    const RunResult before =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    experiment.runScenario("taily", scenarioByName("straggler_isn"));

    // The scenario's straggler/cap shape must be fully cleared.
    EXPECT_DOUBLE_EQ(
        experiment.cluster().isn(0).serviceRateMultiplier(), 1.0);
    EXPECT_TRUE(std::isinf(experiment.cluster().isn(1).maxFreqGhz()));

    // And a replay after the scenario reproduces the replay before it
    // byte for byte.
    const RunResult after =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    ASSERT_EQ(before.measurements.size(), after.measurements.size());
    for (std::size_t i = 0; i < before.measurements.size(); ++i) {
        const QueryMeasurement &a = before.measurements[i];
        const QueryMeasurement &b = after.measurements[i];
        ASSERT_DOUBLE_EQ(a.latencySeconds, b.latencySeconds) << i;
        ASSERT_DOUBLE_EQ(a.ndcgAtK, b.ndcgAtK) << i;
        ASSERT_EQ(a.docsSearched, b.docsSearched) << i;
    }
    EXPECT_EQ(toJson(before.summary), toJson(after.summary));
}

TEST(RunScenario, FlashCrowdEngagesTheAdmissionLadder)
{
    // Scaled up far enough that the 8x spike overwhelms the 8-shard
    // test cluster: admission must visibly degrade or shed. (Scale 4
    // keeps the spike window aligned with the 200-query trace; much
    // higher scales compress the timeline past the window start.)
    Experiment experiment(scenarioExperimentConfig());
    const ScenarioRunResult result = experiment.runScenario(
        "taily", scenarioByName("flash_crowd", 4.0));
    EXPECT_GT(result.summary.degraded + result.summary.shedQueries +
                  result.summary.isnsShed,
              0u);
}

} // namespace
} // namespace cottage
