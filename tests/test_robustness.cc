/**
 * @file
 * Robustness and failure-injection tests: degenerate configurations,
 * out-of-distribution queries, untrained predictors, saturated queues.
 * The system must degrade gracefully (fall back, truncate, keep
 * invariants) rather than crash or return garbage.
 */

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/cottage_policy.h"
#include "harness/experiment.h"

namespace cottage {
namespace {

ExperimentConfig
tinyConfig()
{
    ExperimentConfig config;
    config.corpus.numDocs = 1500;
    config.corpus.vocabSize = 3000;
    config.shards.numShards = 3;
    config.traceQueries = 60;
    config.trainQueries = 150;
    config.train.hiddenLayers = {8};
    config.train.iterations = 60;
    return config;
}

TEST(Robustness, SingleShardClusterWorks)
{
    ExperimentConfig config = tinyConfig();
    config.shards.numShards = 1;
    Experiment experiment(std::move(config));
    for (const char *name : {"exhaustive", "taily", "cottage"}) {
        const RunResult result =
            experiment.run(name, TraceFlavor::Wikipedia);
        // One shard: nothing to select away from. Selection policies
        // stay near-perfect (cottage can still truncate on a cycle
        // misprediction, which costs a query, not the run).
        EXPECT_GT(result.summary.avgPrecision, 0.95) << name;
        EXPECT_DOUBLE_EQ(result.summary.avgIsnsUsed, 1.0) << name;
    }
    EXPECT_DOUBLE_EQ(
        experiment.run("exhaustive", TraceFlavor::Wikipedia)
            .summary.avgPrecision,
        1.0);
}

TEST(Robustness, KTwoAndLargeKWork)
{
    for (const std::size_t k : {2u, 50u}) {
        ExperimentConfig config = tinyConfig();
        config.shards.topK = k;
        Experiment experiment(std::move(config));
        const RunResult result =
            experiment.run("cottage", TraceFlavor::Wikipedia);
        EXPECT_GT(result.summary.avgPrecision, 0.5) << "k=" << k;
        for (const QueryMeasurement &m : result.measurements)
            EXPECT_LE(m.results.size(), k);
    }
}

TEST(Robustness, UntrainedPredictorsNeverCrashCottage)
{
    // A bank trained for a single iteration on a tiny trace is close
    // to random; Cottage must still produce valid plans (possibly
    // falling back to exhaustive) and the engine valid measurements.
    ExperimentConfig config = tinyConfig();
    config.train.iterations = 1;
    config.trainQueries = 30;
    Experiment experiment(std::move(config));
    const RunResult result =
        experiment.run("cottage", TraceFlavor::Wikipedia);
    EXPECT_EQ(result.summary.queries, 60u);
    for (const QueryMeasurement &m : result.measurements) {
        EXPECT_GE(m.isnsUsed, 1u);
        EXPECT_LE(m.precisionAtK, 1.0 + 1e-12);
    }
}

TEST(Robustness, QueriesWithUnknownTermsAreHandled)
{
    ExperimentConfig config = tinyConfig();
    Experiment experiment(std::move(config));
    CottagePolicy policy(experiment.bank(), experiment.config().cottage);

    Query nonsense;
    nonsense.terms = {999999u}; // beyond the vocabulary
    nonsense.arrivalSeconds = 0.0;
    const QueryPlan plan = policy.plan(nonsense, experiment.engine());
    EXPECT_GE(plan.participants(), 1u);
    const QueryMeasurement m =
        experiment.engine().execute(nonsense, plan, {});
    EXPECT_TRUE(m.results.empty());
    EXPECT_DOUBLE_EQ(m.precisionAtK, 1.0); // vacuous ground truth
}

TEST(Robustness, OverloadedClusterKeepsMeasurementInvariants)
{
    // 50x the calibrated load: queues explode, latencies grow without
    // bound, but every measurement stays internally consistent.
    ExperimentConfig config = tinyConfig();
    config.arrivalQps = 5000.0;
    Experiment experiment(std::move(config));
    const RunResult result =
        experiment.run("cottage", TraceFlavor::Wikipedia);
    double lastArrival = 0.0;
    for (const QueryMeasurement &m : result.measurements) {
        EXPECT_GE(m.arrivalSeconds, lastArrival);
        lastArrival = m.arrivalSeconds;
        EXPECT_LE(m.isnsCompleted, m.isnsUsed);
        EXPECT_GE(m.latencySeconds, 0.0);
        EXPECT_FALSE(std::isnan(m.latencySeconds));
    }
    EXPECT_GT(result.summary.avgPowerWatts,
              experiment.config().power.idleWatts);
}

TEST(Robustness, ZeroSlackCottageTruncatesButSurvives)
{
    ExperimentConfig config = tinyConfig();
    config.cottage.budgetSlack = 1.0; // no safety margin at all
    Experiment experiment(std::move(config));
    const RunResult result =
        experiment.run("cottage", TraceFlavor::Wikipedia);
    // Quality may suffer, the run must not.
    EXPECT_EQ(result.summary.queries, 60u);
    EXPECT_GE(result.summary.avgPrecision, 0.0);
}

TEST(Robustness, RepeatedRunsDoNotLeakClusterState)
{
    ExperimentConfig config = tinyConfig();
    Experiment experiment(std::move(config));
    const RunResult first =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    // A second, different policy, then exhaustive again: identical.
    experiment.run("taily", TraceFlavor::Wikipedia);
    const RunResult again =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);
    EXPECT_DOUBLE_EQ(first.summary.avgLatencySeconds,
                     again.summary.avgLatencySeconds);
    EXPECT_DOUBLE_EQ(first.summary.energyJoules,
                     again.summary.energyJoules);
}

TEST(Robustness, PersonalizedTraceRunsEndToEnd)
{
    // The paper's future-work scenario: every query carries user-
    // profile term weights. The full stack (ground truth, features,
    // estimators, evaluators) must honour them consistently.
    ExperimentConfig config = tinyConfig();
    Experiment experiment(std::move(config));

    TraceConfig personalConfig;
    personalConfig.numQueries = 60;
    personalConfig.vocabSize =
        experiment.config().corpus.vocabSize;
    personalConfig.personalizedFraction = 1.0;
    personalConfig.seed = 404;
    const QueryTrace personalized = QueryTrace::generate(personalConfig);

    CottagePolicy policy(experiment.bank(), experiment.config().cottage);
    experiment.cluster().reset();
    double precision = 0.0;
    for (const Query &query : personalized.queries()) {
        EXPECT_TRUE(query.personalized());
        EXPECT_EQ(query.weights.size(), query.terms.size());
        const auto truth = experiment.engine().globalTopK(query);
        const QueryPlan plan = policy.plan(query, experiment.engine());
        const QueryMeasurement m =
            experiment.engine().execute(query, plan, truth);
        precision += m.precisionAtK;
        EXPECT_GE(m.isnsUsed, 1u);
    }
    EXPECT_GT(precision / 60.0, 0.6);
}

TEST(Robustness, WeightsChangeTheGroundTruth)
{
    ExperimentConfig config = tinyConfig();
    Experiment experiment(std::move(config));

    // Find a two-term query where extreme re-weighting changes the
    // global top-K (demonstrates weights actually flow into scoring).
    bool anyDiffers = false;
    for (TermId a = 40; a < 90 && !anyDiffers; a += 7) {
        Query query;
        query.terms = {a, static_cast<TermId>(a + 400)};
        const auto unweighted = experiment.engine().globalTopK(query);
        if (unweighted.empty())
            continue;
        query.weights = {10.0, 0.1};
        const auto weighted = experiment.engine().globalTopK(query);
        bool differs = unweighted.size() != weighted.size();
        for (std::size_t i = 0; !differs && i < unweighted.size(); ++i)
            differs = unweighted[i].doc != weighted[i].doc;
        anyDiffers |= differs;
    }
    EXPECT_TRUE(anyDiffers);
}

TEST(Robustness, ManyShardsFewDocs)
{
    ExperimentConfig config = tinyConfig();
    config.shards.numShards = 24; // ~60 docs per shard
    config.trainQueries = 100;
    Experiment experiment(std::move(config));
    const RunResult result =
        experiment.run("cottage", TraceFlavor::Wikipedia);
    EXPECT_EQ(result.summary.queries, 60u);
    EXPECT_LE(result.summary.avgIsnsUsed, 24.0);
}

} // namespace
} // namespace cottage
