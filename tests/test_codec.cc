/**
 * @file
 * StreamVByte codec tests: exact round-trips over adversarial value
 * distributions, a differential check of the production decoder (SIMD
 * or scalar, whichever this binary compiled in) against an independent
 * bit-by-bit reference decoder on randomized corpora, the fused
 * delta-decode against decode-then-integrate, and death tests for the
 * truncated/corrupt-stream contract (a hard COTTAGE_CHECK in every
 * build type, mirroring varbyte.h).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstddef>
#include <vector>

#include "index/block_codec.h"
#include "util/rng.h"

namespace cottage {
namespace {

/** Encode and append the decoder's required tail padding. */
std::vector<uint8_t>
encodePadded(const std::vector<uint32_t> &values, std::size_t *logical)
{
    std::vector<uint8_t> bytes;
    streamVByteEncode(values.data(), values.size(), bytes);
    *logical = bytes.size();
    bytes.insert(bytes.end(), kStreamVBytePadding, uint8_t{0});
    return bytes;
}

/**
 * Independent reference decoder: walks the control region two bits at
 * a time and assembles each value byte-by-byte, sharing no code (and
 * no shuffle tables) with the production decoder. Deliberately the
 * dumbest possible implementation of the format spec.
 */
std::vector<uint32_t>
referenceDecode(const std::vector<uint8_t> &bytes, std::size_t n)
{
    const std::size_t controlBytes = streamVByteControlBytes(n);
    std::vector<uint32_t> out;
    out.reserve(n);
    std::size_t at = controlBytes;
    for (std::size_t i = 0; i < n; ++i) {
        const uint8_t control = bytes[i / 4];
        const unsigned len = ((control >> (2 * (i % 4))) & 0x3u) + 1;
        uint32_t value = 0;
        for (unsigned b = 0; b < len; ++b)
            value |= static_cast<uint32_t>(bytes[at + b]) << (8 * b);
        at += len;
        out.push_back(value);
    }
    return out;
}

void
expectRoundTrip(const std::vector<uint32_t> &values)
{
    std::size_t logical = 0;
    const std::vector<uint8_t> bytes = encodePadded(values, &logical);
    std::vector<uint32_t> decoded(
        streamVByteDecodeCapacity(values.size()));
    const std::size_t consumed = streamVByteDecode(
        bytes.data(), logical, values.size(), decoded.data());
    EXPECT_EQ(consumed, logical);
    for (std::size_t i = 0; i < values.size(); ++i)
        ASSERT_EQ(decoded[i], values[i]) << "value " << i;

    const std::vector<uint32_t> reference =
        referenceDecode(bytes, values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        ASSERT_EQ(decoded[i], reference[i]) << "reference value " << i;
}

// Lengths that straddle the 4-value group boundary plus 2^k +/- 1
// shapes: tail groups with 1..3 live lanes are where a group decoder
// over- or under-reads.
const std::size_t kAdversarialLengths[] = {0, 1,  2,  3,  4,   5,
                                           7, 8,  9,  15, 16,  17,
                                           31, 33, 63, 65, 127, 129};

TEST(StreamVByte, RoundTripsAllOnes)
{
    for (const std::size_t n : kAdversarialLengths)
        expectRoundTrip(std::vector<uint32_t>(n, 1u));
}

TEST(StreamVByte, RoundTripsMaxGaps)
{
    // Every value 0xffffffff: all length codes 3, maximal data region.
    for (const std::size_t n : kAdversarialLengths)
        expectRoundTrip(std::vector<uint32_t>(n, 0xffffffffu));
}

TEST(StreamVByte, RoundTripsAllZeros)
{
    for (const std::size_t n : kAdversarialLengths)
        expectRoundTrip(std::vector<uint32_t>(n, 0u));
}

TEST(StreamVByte, RoundTripsSingleValue)
{
    // The single-doc posting list shape, at every byte-length class.
    for (const uint32_t v :
         {0u, 1u, 0xffu, 0x100u, 0xffffu, 0x10000u, 0xffffffu,
          0x1000000u, 0xffffffffu})
        expectRoundTrip({v});
}

TEST(StreamVByte, RoundTripsByteLengthBoundaries)
{
    // One value of each length class adjacent to every other class, in
    // both orders: exercises every control-byte bit pattern the
    // shuffle table rows are generated from.
    const std::vector<uint32_t> classes = {0x01u, 0x80u, 0x100u, 0xffffu,
                                           0x10000u, 0xffffffu,
                                           0x1000000u, 0xffffffffu};
    std::vector<uint32_t> values;
    for (const uint32_t a : classes)
        for (const uint32_t b : classes) {
            values.push_back(a);
            values.push_back(b);
        }
    expectRoundTrip(values);
}

TEST(StreamVByte, DifferentialAgainstReferenceOnRandomCorpora)
{
    Rng rng(0x5eedc0dec);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 700));
        std::vector<uint32_t> values;
        values.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Mix byte-length classes with skewed odds so runs of
            // short values meet occasional 3- and 4-byte outliers.
            const double roll = rng.uniform();
            uint64_t hi = 0xffull;
            if (roll > 0.55)
                hi = 0xffffull;
            if (roll > 0.85)
                hi = 0xffffffull;
            if (roll > 0.95)
                hi = 0xffffffffull;
            values.push_back(static_cast<uint32_t>(
                rng.uniformInt(0, static_cast<int64_t>(hi))));
        }
        expectRoundTrip(values);
    }
}

TEST(StreamVByte, FusedDeltaDecodeMatchesDecodeThenIntegrate)
{
    Rng rng(0xde17a);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 600));
        std::vector<uint32_t> gaps;
        gaps.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            gaps.push_back(
                static_cast<uint32_t>(rng.uniformInt(0, 2000)));
        const uint32_t prev = (round % 3 == 0)
                                  ? 0xffffffffu // block-0 seed
                                  : static_cast<uint32_t>(
                                        rng.uniformInt(0, 1 << 30));

        std::size_t logical = 0;
        const std::vector<uint8_t> bytes = encodePadded(gaps, &logical);
        std::vector<uint32_t> fused(streamVByteDecodeCapacity(n));
        const std::size_t consumed = streamVByteDecodeDeltas(
            bytes.data(), logical, n, prev, fused.data());
        EXPECT_EQ(consumed, logical);

        std::vector<uint32_t> plain(streamVByteDecodeCapacity(n));
        (void)streamVByteDecode(bytes.data(), logical, n, plain.data());
        uint32_t running = prev;
        for (std::size_t i = 0; i < n; ++i) {
            running += plain[i] + 1; // mod 2^32 by unsigned wrap
            ASSERT_EQ(fused[i], running) << "posting " << i;
        }
    }
}

TEST(StreamVByte, FusedDeltaSeedCancelsForAbsoluteFirstDoc)
{
    // prev = 0xffffffff makes out[0] == gap[0]: the block-0 "first gap
    // is the absolute doc id" convention without a special case.
    const std::vector<uint32_t> gaps = {42u, 0u, 6u};
    std::size_t logical = 0;
    const std::vector<uint8_t> bytes = encodePadded(gaps, &logical);
    std::vector<uint32_t> docs(streamVByteDecodeCapacity(gaps.size()));
    (void)streamVByteDecodeDeltas(bytes.data(), logical, gaps.size(),
                                  0xffffffffu, docs.data());
    EXPECT_EQ(docs[0], 42u);
    EXPECT_EQ(docs[1], 43u);
    EXPECT_EQ(docs[2], 50u);
}

TEST(StreamVByte, CapacityHelpersAreConsistent)
{
    for (const std::size_t n : kAdversarialLengths) {
        EXPECT_EQ(streamVByteControlBytes(n), (n + 3) / 4);
        EXPECT_GE(streamVByteDecodeCapacity(n), n);
        EXPECT_EQ(streamVByteDecodeCapacity(n) % 4, 0u);
        // Worst case really is the worst case: all 4-byte values.
        const std::vector<uint32_t> wide(n, 0xffffffffu);
        std::vector<uint8_t> bytes;
        streamVByteEncode(wide.data(), wide.size(), bytes);
        EXPECT_EQ(bytes.size(), n == 0 ? 0 : streamVByteMaxBytes(n));
    }
}

TEST(StreamVByte, ReportsCompiledKernel)
{
    // COTTAGE_EXPECT_SIMD_CODEC mirrors the build system's kernel
    // choice (tests/CMakeLists.txt): the scalar-fallback CI job relies
    // on streamVByteUsesSimd() to prove it really exercised the
    // fallback, so the report must match the compiled reality.
#if defined(COTTAGE_EXPECT_SIMD_CODEC)
    EXPECT_TRUE(streamVByteUsesSimd());
#else
    EXPECT_FALSE(streamVByteUsesSimd());
#endif
}

// ---------------------------------------------------------------------
// The truncated-stream contract is a hard CHECK in every build type,
// exactly as vbyteDecode's (varbyte.h): a malformed stream must never
// be silently decoded into garbage.

TEST(StreamVByteDeathTest, TruncatedControlRegionFailsTheBoundsCheck)
{
    const std::vector<uint32_t> values(9, 7u); // 3 control bytes
    std::size_t logical = 0;
    const std::vector<uint8_t> bytes = encodePadded(values, &logical);
    std::vector<uint32_t> out(streamVByteDecodeCapacity(values.size()));
    // avail covers only 2 of the 3 control bytes.
    EXPECT_DEATH((void)streamVByteDecode(bytes.data(), 2, values.size(),
                                         out.data()),
                 "truncated streamvbyte control stream");
}

TEST(StreamVByteDeathTest, TruncatedDataRegionFailsTheBoundsCheck)
{
    const std::vector<uint32_t> values(8, 0x01020304u); // 4-byte data
    std::size_t logical = 0;
    const std::vector<uint8_t> bytes = encodePadded(values, &logical);
    std::vector<uint32_t> out(streamVByteDecodeCapacity(values.size()));
    // Control region intact, data region cut short.
    EXPECT_DEATH((void)streamVByteDecode(bytes.data(), logical - 5,
                                         values.size(), out.data()),
                 "truncated streamvbyte data stream");
}

TEST(StreamVByteDeathTest, CorruptControlStreamOverrunsAndDies)
{
    // Flip a 1-byte length code up to 4 bytes: the implied data region
    // now overruns the logical end, which the pre-pass must catch.
    std::vector<uint32_t> values(4, 1u);
    std::size_t logical = 0;
    std::vector<uint8_t> bytes = encodePadded(values, &logical);
    bytes[0] = 0xffu; // all four codes -> 4-byte values
    std::vector<uint32_t> out(streamVByteDecodeCapacity(values.size()));
    EXPECT_DEATH((void)streamVByteDecode(bytes.data(), logical,
                                         values.size(), out.data()),
                 "truncated streamvbyte data stream");
}

TEST(StreamVByteDeathTest, FusedDeltaDecodeHoldsTheSameContract)
{
    const std::vector<uint32_t> gaps(5, 3u);
    std::size_t logical = 0;
    const std::vector<uint8_t> bytes = encodePadded(gaps, &logical);
    std::vector<uint32_t> out(streamVByteDecodeCapacity(gaps.size()));
    EXPECT_DEATH((void)streamVByteDecodeDeltas(bytes.data(), 1,
                                               gaps.size(), 0u,
                                               out.data()),
                 "truncated streamvbyte control stream");
    EXPECT_DEATH((void)streamVByteDecodeDeltas(bytes.data(), logical - 2,
                                               gaps.size(), 0u,
                                               out.data()),
                 "truncated streamvbyte data stream");
}

} // namespace
} // namespace cottage
