file(REMOVE_RECURSE
  "libcottage_stats.a"
)
