file(REMOVE_RECURSE
  "CMakeFiles/cottage_stats.dir/gamma.cc.o"
  "CMakeFiles/cottage_stats.dir/gamma.cc.o.d"
  "CMakeFiles/cottage_stats.dir/histogram.cc.o"
  "CMakeFiles/cottage_stats.dir/histogram.cc.o.d"
  "CMakeFiles/cottage_stats.dir/ks.cc.o"
  "CMakeFiles/cottage_stats.dir/ks.cc.o.d"
  "CMakeFiles/cottage_stats.dir/summary.cc.o"
  "CMakeFiles/cottage_stats.dir/summary.cc.o.d"
  "libcottage_stats.a"
  "libcottage_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
