# Empty compiler generated dependencies file for cottage_stats.
# This may be replaced when dependencies are built.
