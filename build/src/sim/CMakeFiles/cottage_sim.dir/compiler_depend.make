# Empty compiler generated dependencies file for cottage_sim.
# This may be replaced when dependencies are built.
