file(REMOVE_RECURSE
  "libcottage_sim.a"
)
