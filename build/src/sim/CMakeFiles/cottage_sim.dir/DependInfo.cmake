
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/cottage_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/cottage_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/frequency.cc" "src/sim/CMakeFiles/cottage_sim.dir/frequency.cc.o" "gcc" "src/sim/CMakeFiles/cottage_sim.dir/frequency.cc.o.d"
  "/root/repo/src/sim/isn_server.cc" "src/sim/CMakeFiles/cottage_sim.dir/isn_server.cc.o" "gcc" "src/sim/CMakeFiles/cottage_sim.dir/isn_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/cottage_index.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cottage_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cottage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cottage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
