file(REMOVE_RECURSE
  "CMakeFiles/cottage_sim.dir/cluster.cc.o"
  "CMakeFiles/cottage_sim.dir/cluster.cc.o.d"
  "CMakeFiles/cottage_sim.dir/frequency.cc.o"
  "CMakeFiles/cottage_sim.dir/frequency.cc.o.d"
  "CMakeFiles/cottage_sim.dir/isn_server.cc.o"
  "CMakeFiles/cottage_sim.dir/isn_server.cc.o.d"
  "libcottage_sim.a"
  "libcottage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
