# Empty compiler generated dependencies file for cottage_metrics.
# This may be replaced when dependencies are built.
