file(REMOVE_RECURSE
  "libcottage_metrics.a"
)
