file(REMOVE_RECURSE
  "CMakeFiles/cottage_metrics.dir/run_stats.cc.o"
  "CMakeFiles/cottage_metrics.dir/run_stats.cc.o.d"
  "libcottage_metrics.a"
  "libcottage_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
