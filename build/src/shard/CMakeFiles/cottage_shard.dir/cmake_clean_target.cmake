file(REMOVE_RECURSE
  "libcottage_shard.a"
)
