# Empty compiler generated dependencies file for cottage_shard.
# This may be replaced when dependencies are built.
