file(REMOVE_RECURSE
  "CMakeFiles/cottage_shard.dir/partitioner.cc.o"
  "CMakeFiles/cottage_shard.dir/partitioner.cc.o.d"
  "CMakeFiles/cottage_shard.dir/sharded_index.cc.o"
  "CMakeFiles/cottage_shard.dir/sharded_index.cc.o.d"
  "libcottage_shard.a"
  "libcottage_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
