
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/aggregation_policy.cc" "src/policy/CMakeFiles/cottage_policy.dir/aggregation_policy.cc.o" "gcc" "src/policy/CMakeFiles/cottage_policy.dir/aggregation_policy.cc.o.d"
  "/root/repo/src/policy/csi.cc" "src/policy/CMakeFiles/cottage_policy.dir/csi.cc.o" "gcc" "src/policy/CMakeFiles/cottage_policy.dir/csi.cc.o.d"
  "/root/repo/src/policy/rank_s_policy.cc" "src/policy/CMakeFiles/cottage_policy.dir/rank_s_policy.cc.o" "gcc" "src/policy/CMakeFiles/cottage_policy.dir/rank_s_policy.cc.o.d"
  "/root/repo/src/policy/redde_policy.cc" "src/policy/CMakeFiles/cottage_policy.dir/redde_policy.cc.o" "gcc" "src/policy/CMakeFiles/cottage_policy.dir/redde_policy.cc.o.d"
  "/root/repo/src/policy/taily_estimator.cc" "src/policy/CMakeFiles/cottage_policy.dir/taily_estimator.cc.o" "gcc" "src/policy/CMakeFiles/cottage_policy.dir/taily_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/cottage_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cottage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/cottage_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cottage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/cottage_index.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cottage_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cottage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
