# Empty dependencies file for cottage_policy.
# This may be replaced when dependencies are built.
