file(REMOVE_RECURSE
  "libcottage_policy.a"
)
