file(REMOVE_RECURSE
  "CMakeFiles/cottage_policy.dir/aggregation_policy.cc.o"
  "CMakeFiles/cottage_policy.dir/aggregation_policy.cc.o.d"
  "CMakeFiles/cottage_policy.dir/csi.cc.o"
  "CMakeFiles/cottage_policy.dir/csi.cc.o.d"
  "CMakeFiles/cottage_policy.dir/rank_s_policy.cc.o"
  "CMakeFiles/cottage_policy.dir/rank_s_policy.cc.o.d"
  "CMakeFiles/cottage_policy.dir/redde_policy.cc.o"
  "CMakeFiles/cottage_policy.dir/redde_policy.cc.o.d"
  "CMakeFiles/cottage_policy.dir/taily_estimator.cc.o"
  "CMakeFiles/cottage_policy.dir/taily_estimator.cc.o.d"
  "libcottage_policy.a"
  "libcottage_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
