# Empty compiler generated dependencies file for cottage_engine.
# This may be replaced when dependencies are built.
