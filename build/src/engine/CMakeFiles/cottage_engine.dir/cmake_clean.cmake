file(REMOVE_RECURSE
  "CMakeFiles/cottage_engine.dir/distributed_engine.cc.o"
  "CMakeFiles/cottage_engine.dir/distributed_engine.cc.o.d"
  "libcottage_engine.a"
  "libcottage_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
