file(REMOVE_RECURSE
  "libcottage_engine.a"
)
