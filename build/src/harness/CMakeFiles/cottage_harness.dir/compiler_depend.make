# Empty compiler generated dependencies file for cottage_harness.
# This may be replaced when dependencies are built.
