file(REMOVE_RECURSE
  "CMakeFiles/cottage_harness.dir/experiment.cc.o"
  "CMakeFiles/cottage_harness.dir/experiment.cc.o.d"
  "CMakeFiles/cottage_harness.dir/table.cc.o"
  "CMakeFiles/cottage_harness.dir/table.cc.o.d"
  "libcottage_harness.a"
  "libcottage_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
