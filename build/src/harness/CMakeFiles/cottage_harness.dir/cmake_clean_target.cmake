file(REMOVE_RECURSE
  "libcottage_harness.a"
)
