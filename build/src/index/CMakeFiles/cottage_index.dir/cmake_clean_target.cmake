file(REMOVE_RECURSE
  "libcottage_index.a"
)
