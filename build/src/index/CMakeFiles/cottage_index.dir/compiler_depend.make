# Empty compiler generated dependencies file for cottage_index.
# This may be replaced when dependencies are built.
