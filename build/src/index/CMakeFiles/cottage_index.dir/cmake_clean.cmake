file(REMOVE_RECURSE
  "CMakeFiles/cottage_index.dir/collection_stats.cc.o"
  "CMakeFiles/cottage_index.dir/collection_stats.cc.o.d"
  "CMakeFiles/cottage_index.dir/evaluator.cc.o"
  "CMakeFiles/cottage_index.dir/evaluator.cc.o.d"
  "CMakeFiles/cottage_index.dir/exhaustive_evaluator.cc.o"
  "CMakeFiles/cottage_index.dir/exhaustive_evaluator.cc.o.d"
  "CMakeFiles/cottage_index.dir/inverted_index.cc.o"
  "CMakeFiles/cottage_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/cottage_index.dir/maxscore_evaluator.cc.o"
  "CMakeFiles/cottage_index.dir/maxscore_evaluator.cc.o.d"
  "CMakeFiles/cottage_index.dir/taat_evaluator.cc.o"
  "CMakeFiles/cottage_index.dir/taat_evaluator.cc.o.d"
  "CMakeFiles/cottage_index.dir/term_stats.cc.o"
  "CMakeFiles/cottage_index.dir/term_stats.cc.o.d"
  "CMakeFiles/cottage_index.dir/varbyte.cc.o"
  "CMakeFiles/cottage_index.dir/varbyte.cc.o.d"
  "CMakeFiles/cottage_index.dir/wand_evaluator.cc.o"
  "CMakeFiles/cottage_index.dir/wand_evaluator.cc.o.d"
  "libcottage_index.a"
  "libcottage_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
