
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/collection_stats.cc" "src/index/CMakeFiles/cottage_index.dir/collection_stats.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/collection_stats.cc.o.d"
  "/root/repo/src/index/evaluator.cc" "src/index/CMakeFiles/cottage_index.dir/evaluator.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/evaluator.cc.o.d"
  "/root/repo/src/index/exhaustive_evaluator.cc" "src/index/CMakeFiles/cottage_index.dir/exhaustive_evaluator.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/exhaustive_evaluator.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/cottage_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/maxscore_evaluator.cc" "src/index/CMakeFiles/cottage_index.dir/maxscore_evaluator.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/maxscore_evaluator.cc.o.d"
  "/root/repo/src/index/taat_evaluator.cc" "src/index/CMakeFiles/cottage_index.dir/taat_evaluator.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/taat_evaluator.cc.o.d"
  "/root/repo/src/index/term_stats.cc" "src/index/CMakeFiles/cottage_index.dir/term_stats.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/term_stats.cc.o.d"
  "/root/repo/src/index/varbyte.cc" "src/index/CMakeFiles/cottage_index.dir/varbyte.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/varbyte.cc.o.d"
  "/root/repo/src/index/wand_evaluator.cc" "src/index/CMakeFiles/cottage_index.dir/wand_evaluator.cc.o" "gcc" "src/index/CMakeFiles/cottage_index.dir/wand_evaluator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/cottage_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cottage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cottage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
