file(REMOVE_RECURSE
  "CMakeFiles/cottage_predict.dir/features.cc.o"
  "CMakeFiles/cottage_predict.dir/features.cc.o.d"
  "CMakeFiles/cottage_predict.dir/latency_predictor.cc.o"
  "CMakeFiles/cottage_predict.dir/latency_predictor.cc.o.d"
  "CMakeFiles/cottage_predict.dir/quality_predictor.cc.o"
  "CMakeFiles/cottage_predict.dir/quality_predictor.cc.o.d"
  "CMakeFiles/cottage_predict.dir/training.cc.o"
  "CMakeFiles/cottage_predict.dir/training.cc.o.d"
  "libcottage_predict.a"
  "libcottage_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
