# Empty dependencies file for cottage_predict.
# This may be replaced when dependencies are built.
