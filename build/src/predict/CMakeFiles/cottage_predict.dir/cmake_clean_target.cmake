file(REMOVE_RECURSE
  "libcottage_predict.a"
)
