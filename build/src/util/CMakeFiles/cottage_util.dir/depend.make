# Empty dependencies file for cottage_util.
# This may be replaced when dependencies are built.
