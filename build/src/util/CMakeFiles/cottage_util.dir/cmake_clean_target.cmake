file(REMOVE_RECURSE
  "libcottage_util.a"
)
