file(REMOVE_RECURSE
  "CMakeFiles/cottage_util.dir/cli.cc.o"
  "CMakeFiles/cottage_util.dir/cli.cc.o.d"
  "CMakeFiles/cottage_util.dir/logging.cc.o"
  "CMakeFiles/cottage_util.dir/logging.cc.o.d"
  "CMakeFiles/cottage_util.dir/rng.cc.o"
  "CMakeFiles/cottage_util.dir/rng.cc.o.d"
  "CMakeFiles/cottage_util.dir/string_util.cc.o"
  "CMakeFiles/cottage_util.dir/string_util.cc.o.d"
  "CMakeFiles/cottage_util.dir/zipf.cc.o"
  "CMakeFiles/cottage_util.dir/zipf.cc.o.d"
  "libcottage_util.a"
  "libcottage_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
