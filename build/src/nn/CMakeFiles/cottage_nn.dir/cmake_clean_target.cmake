file(REMOVE_RECURSE
  "libcottage_nn.a"
)
