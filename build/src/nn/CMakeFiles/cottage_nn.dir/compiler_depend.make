# Empty compiler generated dependencies file for cottage_nn.
# This may be replaced when dependencies are built.
