file(REMOVE_RECURSE
  "CMakeFiles/cottage_nn.dir/matrix.cc.o"
  "CMakeFiles/cottage_nn.dir/matrix.cc.o.d"
  "CMakeFiles/cottage_nn.dir/mlp.cc.o"
  "CMakeFiles/cottage_nn.dir/mlp.cc.o.d"
  "libcottage_nn.a"
  "libcottage_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
