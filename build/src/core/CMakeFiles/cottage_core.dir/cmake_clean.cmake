file(REMOVE_RECURSE
  "CMakeFiles/cottage_core.dir/budget_algorithm.cc.o"
  "CMakeFiles/cottage_core.dir/budget_algorithm.cc.o.d"
  "CMakeFiles/cottage_core.dir/cottage_policy.cc.o"
  "CMakeFiles/cottage_core.dir/cottage_policy.cc.o.d"
  "CMakeFiles/cottage_core.dir/oracle_policy.cc.o"
  "CMakeFiles/cottage_core.dir/oracle_policy.cc.o.d"
  "CMakeFiles/cottage_core.dir/slo_policy.cc.o"
  "CMakeFiles/cottage_core.dir/slo_policy.cc.o.d"
  "libcottage_core.a"
  "libcottage_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
