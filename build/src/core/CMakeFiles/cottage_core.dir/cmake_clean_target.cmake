file(REMOVE_RECURSE
  "libcottage_core.a"
)
