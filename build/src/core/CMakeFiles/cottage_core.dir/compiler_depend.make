# Empty compiler generated dependencies file for cottage_core.
# This may be replaced when dependencies are built.
