file(REMOVE_RECURSE
  "CMakeFiles/cottage_text.dir/corpus.cc.o"
  "CMakeFiles/cottage_text.dir/corpus.cc.o.d"
  "CMakeFiles/cottage_text.dir/query.cc.o"
  "CMakeFiles/cottage_text.dir/query.cc.o.d"
  "CMakeFiles/cottage_text.dir/trace.cc.o"
  "CMakeFiles/cottage_text.dir/trace.cc.o.d"
  "CMakeFiles/cottage_text.dir/vocabulary.cc.o"
  "CMakeFiles/cottage_text.dir/vocabulary.cc.o.d"
  "libcottage_text.a"
  "libcottage_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cottage_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
