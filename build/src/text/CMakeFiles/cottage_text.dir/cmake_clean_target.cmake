file(REMOVE_RECURSE
  "libcottage_text.a"
)
