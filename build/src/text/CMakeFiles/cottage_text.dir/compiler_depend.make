# Empty compiler generated dependencies file for cottage_text.
# This may be replaced when dependencies are built.
