file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_dvfs.dir/bench/bench_fig04_dvfs.cpp.o"
  "CMakeFiles/bench_fig04_dvfs.dir/bench/bench_fig04_dvfs.cpp.o.d"
  "bench/bench_fig04_dvfs"
  "bench/bench_fig04_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
