# Empty compiler generated dependencies file for bench_fig13_isns.
# This may be replaced when dependencies are built.
