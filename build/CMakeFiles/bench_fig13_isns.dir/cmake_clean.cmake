file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_isns.dir/bench/bench_fig13_isns.cpp.o"
  "CMakeFiles/bench_fig13_isns.dir/bench/bench_fig13_isns.cpp.o.d"
  "bench/bench_fig13_isns"
  "bench/bench_fig13_isns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_isns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
