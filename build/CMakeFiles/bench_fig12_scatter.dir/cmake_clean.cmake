file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_scatter.dir/bench/bench_fig12_scatter.cpp.o"
  "CMakeFiles/bench_fig12_scatter.dir/bench/bench_fig12_scatter.cpp.o.d"
  "bench/bench_fig12_scatter"
  "bench/bench_fig12_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
