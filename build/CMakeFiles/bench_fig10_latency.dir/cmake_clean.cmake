file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_latency.dir/bench/bench_fig10_latency.cpp.o"
  "CMakeFiles/bench_fig10_latency.dir/bench/bench_fig10_latency.cpp.o.d"
  "bench/bench_fig10_latency"
  "bench/bench_fig10_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
