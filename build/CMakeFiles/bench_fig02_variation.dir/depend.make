# Empty dependencies file for bench_fig02_variation.
# This may be replaced when dependencies are built.
