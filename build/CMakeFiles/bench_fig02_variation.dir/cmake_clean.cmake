file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_variation.dir/bench/bench_fig02_variation.cpp.o"
  "CMakeFiles/bench_fig02_variation.dir/bench/bench_fig02_variation.cpp.o.d"
  "bench/bench_fig02_variation"
  "bench/bench_fig02_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
