file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_gamma.dir/bench/bench_fig06_gamma.cpp.o"
  "CMakeFiles/bench_fig06_gamma.dir/bench/bench_fig06_gamma.cpp.o.d"
  "bench/bench_fig06_gamma"
  "bench/bench_fig06_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
