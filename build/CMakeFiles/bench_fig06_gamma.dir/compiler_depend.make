# Empty compiler generated dependencies file for bench_fig06_gamma.
# This may be replaced when dependencies are built.
