file(REMOVE_RECURSE
  "CMakeFiles/bench_tables_features.dir/bench/bench_tables_features.cpp.o"
  "CMakeFiles/bench_tables_features.dir/bench/bench_tables_features.cpp.o.d"
  "bench/bench_tables_features"
  "bench/bench_tables_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
