# Empty compiler generated dependencies file for bench_tables_features.
# This may be replaced when dependencies are built.
