# Empty dependencies file for bench_ablation_personalized.
# This may be replaced when dependencies are built.
