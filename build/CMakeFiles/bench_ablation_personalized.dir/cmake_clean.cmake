file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_personalized.dir/bench/bench_ablation_personalized.cpp.o"
  "CMakeFiles/bench_ablation_personalized.dir/bench/bench_ablation_personalized.cpp.o.d"
  "bench/bench_ablation_personalized"
  "bench/bench_ablation_personalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_personalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
