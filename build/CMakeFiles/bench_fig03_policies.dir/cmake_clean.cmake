file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_policies.dir/bench/bench_fig03_policies.cpp.o"
  "CMakeFiles/bench_fig03_policies.dir/bench/bench_fig03_policies.cpp.o.d"
  "bench/bench_fig03_policies"
  "bench/bench_fig03_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
