file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_oracle.dir/bench/bench_ablation_oracle.cpp.o"
  "CMakeFiles/bench_ablation_oracle.dir/bench/bench_ablation_oracle.cpp.o.d"
  "bench/bench_ablation_oracle"
  "bench/bench_ablation_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
