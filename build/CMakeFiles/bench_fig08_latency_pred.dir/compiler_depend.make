# Empty compiler generated dependencies file for bench_fig08_latency_pred.
# This may be replaced when dependencies are built.
