# Empty dependencies file for bench_fig07_quality_pred.
# This may be replaced when dependencies are built.
