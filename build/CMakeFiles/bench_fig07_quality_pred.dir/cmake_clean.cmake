file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_quality_pred.dir/bench/bench_fig07_quality_pred.cpp.o"
  "CMakeFiles/bench_fig07_quality_pred.dir/bench/bench_fig07_quality_pred.cpp.o.d"
  "bench/bench_fig07_quality_pred"
  "bench/bench_fig07_quality_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_quality_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
