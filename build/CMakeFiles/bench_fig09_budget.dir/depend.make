# Empty dependencies file for bench_fig09_budget.
# This may be replaced when dependencies are built.
