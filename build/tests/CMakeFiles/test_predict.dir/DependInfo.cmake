
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_predict.cc" "tests/CMakeFiles/test_predict.dir/test_predict.cc.o" "gcc" "tests/CMakeFiles/test_predict.dir/test_predict.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predict/CMakeFiles/cottage_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/cottage_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cottage_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cottage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/cottage_index.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cottage_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cottage_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cottage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
