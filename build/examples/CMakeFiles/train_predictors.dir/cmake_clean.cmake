file(REMOVE_RECURSE
  "CMakeFiles/train_predictors.dir/train_predictors.cpp.o"
  "CMakeFiles/train_predictors.dir/train_predictors.cpp.o.d"
  "train_predictors"
  "train_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
