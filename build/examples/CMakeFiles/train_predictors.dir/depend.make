# Empty dependencies file for train_predictors.
# This may be replaced when dependencies are built.
