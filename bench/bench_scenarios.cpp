/**
 * @file
 * Multi-tenant SLO scenario bench: run Cottage and the fixed-deadline
 * slo-dvfs baseline over the built-in scenario shapes — a stationary
 * mixed-tenant Poisson load plus the hostile shapes (flash crowd,
 * straggler ISN, failover) — and emit machine-readable JSON
 * (BENCH_scenarios.json) with one per-tenant rollup per (scenario,
 * policy) cell: latency percentiles up to p99.9, SLO attainment, shed
 * rate, quality and energy. scripts/check_bench.py --scenarios guards
 * the numbers in CI: every tenant's percentile ladder must be
 * monotone and Cottage must beat slo-dvfs on at least one hostile
 * shape.
 *
 * Usage: bench_scenarios [--smoke] [--out=FILE] [--qps-scale=4]
 *                        [--scenarios=mixed_poisson,flash_crowd,...]
 *                        [--policies=cottage,slo-dvfs]
 *                        [--docs=] [--queries=] [--shards=] ...
 *
 * Every (scenario, policy) cell replays the same merged arrival
 * stream — the merge is a pure function of the scenario spec — so the
 * comparison isolates the budget policy exactly.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/scenario.h"
#include "util/logging.h"

using namespace cottage;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> items;
    std::stringstream stream(csv);
    std::string item;
    while (std::getline(stream, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    const bool smoke = flags.getBool("smoke", false);

    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("docs"))
        config.corpus.numDocs = smoke ? 8000 : 30000;
    if (!flags.has("queries"))
        config.traceQueries = smoke ? 500 : 3000;
    if (!flags.has("shards"))
        config.shards.numShards = smoke ? 8 : 16;
    if (!flags.has("result-cache"))
        config.serving.resultCacheCapacity = 512;
    if (!flags.has("postings-cache"))
        config.serving.statsCacheCapacity = 2048;
    config.print(std::cout);

    const std::string outPath =
        flags.getString("out", "BENCH_scenarios.json");
    // Scale 4 drives the 8-shard smoke stack into the regime where
    // the hostile shapes actually hurt (the flash-crowd spike window
    // overlaps most of the trace and backlog reaches the ladder).
    // A non-positive scale is an operator typo, not a program bug:
    // report it as a usage error instead of tripping the scenario
    // layer's assertion.
    const double qpsScale = getPositiveDouble(flags, "qps-scale", 4.0);
    const std::vector<std::string> scenarios = splitList(
        flags.getString("scenarios",
                        "mixed_poisson,flash_crowd,straggler_isn,"
                        "power_skew,failover"));
    const std::vector<std::string> policies = splitList(
        flags.getString("policies", "cottage,slo-dvfs,rank-s,taily"));
    COTTAGE_CHECK_MSG(!scenarios.empty() && !policies.empty(),
                      "need at least one scenario and one policy");

    Experiment experiment(std::move(config));

    std::ofstream out(outPath);
    if (!out)
        fatal("cannot write " + outPath);
    out << "{\n  \"bench\": \"scenarios\",\n  \"config\": {"
        << "\"docs\":" << experiment.config().corpus.numDocs
        << ",\"queries\":" << experiment.config().traceQueries
        << ",\"shards\":" << experiment.config().shards.numShards
        << ",\"qps_scale\":" << qpsScale
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},\n"
        << "  \"scenarios\": [\n";

    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        const ScenarioConfig scenario =
            scenarioByName(scenarios[s], qpsScale);
        out << "    {\"name\":\"" << scenario.name << "\""
            << ",\"hostile\":" << (scenario.hostile ? "true" : "false")
            << ",\"policies\":[\n";
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ScenarioRunResult run =
                experiment.runScenario(policies[p], scenario);
            const ServingSummary &sv = run.summary;
            std::cout << "  " << scenario.name << " / " << policies[p]
                      << ": shed_rate=" << sv.shedRate
                      << " p99_ms=" << sv.run.p99LatencySeconds * 1e3
                      << " power_w=" << sv.run.avgPowerWatts << "\n";
            for (const TenantSummary &tenant : sv.tenants)
                std::cout << "    tenant " << tenant.tenant
                          << ": p99_ms="
                          << tenant.p99LatencySeconds * 1e3
                          << " p999_ms="
                          << tenant.p999LatencySeconds * 1e3
                          << " attainment=" << tenant.sloAttainment
                          << " ndcg=" << tenant.avgNdcg << "\n";
            out << "      {\"policy\":\"" << policies[p]
                << "\",\"summary\":" << toJson(sv) << "}"
                << (p + 1 < policies.size() ? ",\n" : "\n");
        }
        out << "    ]}" << (s + 1 < scenarios.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    out.close();

    std::cout << "wrote " << outPath << "\n";
    return 0;
}
