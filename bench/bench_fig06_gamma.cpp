/**
 * @file
 * Reproduces Fig. 6 — a query's per-document score histogram on one
 * ISN against the Gamma distribution Taily fits from term statistics.
 * The interesting quantity is the tail: P(X > Kth score) from the fit
 * vs the empirical tail, whose mismatch is what makes Gamma-based ISN
 * cutoffs (Taily, Cottage-withoutML) imprecise.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "stats/gamma.h"
#include "stats/histogram.h"
#include "stats/ks.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    config.traceQueries = 100; // the stack is all we need
    config.print(std::cout);
    Experiment experiment(std::move(config));

    const std::string text = flags.getString("query", "tokyo");
    const std::vector<TermId> terms =
        experiment.corpus().vocabulary().tokenize(text);
    if (terms.empty())
        fatal("query '" + text + "' has no known terms");
    const auto shard =
        static_cast<ShardId>(flags.getInt("isn", 0));

    // Empirical per-document scores of the query on the shard (docs
    // without any query term ignored, as in the paper).
    const InvertedIndex &index = experiment.index().shard(shard);
    std::vector<double> scores;
    {
        std::vector<double> perDoc(index.numDocs(), 0.0);
        for (TermId term : terms) {
            const PostingList *list = index.postings(term);
            if (list == nullptr)
                continue;
            const double idf = index.idf(term);
            for (const Posting &posting : list->postings)
                perDoc[posting.doc] += index.scorePosting(idf, posting);
        }
        for (double s : perDoc)
            if (s > 0.0)
                scores.push_back(s);
    }
    if (scores.empty())
        fatal("query matches nothing on ISN " + std::to_string(shard));

    const GammaDistribution fit = GammaDistribution::fitMoments(scores);

    std::cout << "\n=== Fig. 6: score histogram vs fitted Gamma, query \""
              << text << "\", ISN " << shard << " (" << scores.size()
              << " docs) ===\n";
    const double maxScore = *std::max_element(scores.begin(), scores.end());
    Histogram hist = Histogram::linear(0.0, maxScore * 1.001, 20);
    for (double s : scores)
        hist.add(s);

    TextTable table({"score bin", "empirical", "gamma-fit"});
    for (std::size_t b = 0; b < hist.bins(); ++b) {
        const double lo = hist.binLow(b);
        const double hi = hist.binHigh(b);
        const double model = (fit.cdf(hi) - fit.cdf(lo)) *
                             static_cast<double>(scores.size());
        table.addRow({TextTable::cell(lo, 2) + "-" + TextTable::cell(hi, 2),
                      TextTable::cell(hist.count(b)),
                      TextTable::cell(model, 1)});
    }
    std::cout << table.render();

    // The tail the selection decision depends on.
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    const std::size_t k = experiment.index().topK();
    const double kth = sorted[std::min(k, sorted.size()) - 1];
    std::size_t empiricalAbove = 0;
    for (double s : scores)
        empiricalAbove += s > kth;
    const double modelAbove =
        fit.survival(kth) * static_cast<double>(scores.size());

    const double ks =
        ksDistance(scores, [&](double x) { return fit.cdf(x); });
    std::cout << "\nfitted Gamma: shape " << TextTable::cell(fit.shape(), 3)
              << ", scale " << TextTable::cell(fit.scale(), 3) << "\n";
    std::cout << "KS distance: " << TextTable::cell(ks, 3) << "\n";
    std::cout << "docs above the K-th score (" << TextTable::cell(kth, 2)
              << "): empirical " << empiricalAbove << ", gamma estimate "
              << TextTable::cell(modelAbove, 1)
              << " -> the cutoff error Taily inherits\n";
    return 0;
}
