/**
 * @file
 * Extension ablation (the paper's future-work scenario, §III-B):
 * personalized search. Every query carries user-profile term weights;
 * document scores, pruning bounds, ground truth and the predictors'
 * features all honour them. Compares policies on the personalized
 * trace and, side by side, on its unpersonalized twin to show what
 * personalization costs each selection mechanism.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        config.traceQueries = 3000;
    config.print(std::cout);
    Experiment experiment(std::move(config));

    const std::vector<std::string> policies = {"exhaustive", "taily",
                                               "cottage"};

    // A personalized evaluation trace (same generator knobs as the
    // standard wikipedia trace, every query weighted).
    TraceConfig personalConfig;
    personalConfig.flavor = TraceFlavor::Wikipedia;
    personalConfig.numQueries = experiment.config().traceQueries;
    personalConfig.vocabSize = experiment.config().corpus.vocabSize;
    personalConfig.arrivalQps = experiment.config().arrivalQps;
    personalConfig.seed = experiment.config().traceSeed + 77;
    personalConfig.personalizedFraction = 1.0;
    const QueryTrace personalized = QueryTrace::generate(personalConfig);

    // Its unweighted twin (identical terms and arrivals).
    QueryTrace plain;
    plain.setName("wikipedia-plain-twin");
    for (Query query : personalized.queries()) {
        query.weights.clear();
        plain.append(std::move(query));
    }

    const auto replayCustom = [&](Policy &policy,
                                  const QueryTrace &trace) {
        experiment.cluster().reset();
        policy.reset();
        std::vector<QueryMeasurement> measurements;
        measurements.reserve(trace.size());
        for (const Query &query : trace.queries()) {
            const auto truth = experiment.engine().globalTopK(query);
            const QueryPlan plan =
                policy.plan(query, experiment.engine());
            QueryMeasurement m =
                experiment.engine().execute(query, plan, truth);
            policy.observe(m);
            measurements.push_back(std::move(m));
        }
        RunSummary summary =
            summarizeRun(policy.name(), trace.name(), measurements);
        double window = trace.durationSeconds();
        for (ShardId s = 0; s < experiment.cluster().numIsns(); ++s)
            window = std::max(
                window,
                experiment.cluster().isn(s).busyUntilSeconds());
        summary.avgPowerWatts =
            experiment.cluster().averagePowerWatts(window);
        return summary;
    };

    for (const auto &[label, trace] :
         {std::pair<const char *, const QueryTrace *>{"personalized",
                                                      &personalized},
          std::pair<const char *, const QueryTrace *>{"unweighted twin",
                                                      &plain}}) {
        std::cout << "\n=== " << label << " trace ===\n";
        TextTable table({"policy", "avg ms", "P@10", "ISNs", "power W"});
        for (const std::string &name : policies) {
            auto policy = experiment.makePolicy(name);
            const RunSummary s = replayCustom(*policy, *trace);
            table.addRow({name,
                          TextTable::cell(s.avgLatencySeconds * 1e3, 2),
                          TextTable::cell(s.avgPrecision, 3),
                          TextTable::cell(s.avgIsnsUsed, 2),
                          TextTable::cell(s.avgPowerWatts, 2)});
        }
        std::cout << table.render();
    }
    std::cout << "\nreading: Cottage's weight-scaled features keep most "
                 "of its quality under personalization; the predictors "
                 "were trained on unweighted queries, so the remaining "
                 "gap is the future-work headroom the paper describes "
                 "(user-profile features, weighted training).\n";
    return 0;
}
