/**
 * @file
 * Reproduces Fig. 3 — the per-ISN view of one query ("canada") under
 * the four policy families: exhaustive search waits for the slowest
 * ISN; the aggregation policy cuts a fixed budget regardless of
 * quality; selective search (Taily) cuts low-quality ISNs regardless
 * of latency; Cottage weighs both and boosts slow, high-quality ISNs.
 */

#include <algorithm>
#include <iostream>

#include "core/cottage_policy.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

using namespace cottage;

namespace {

/** Service time of one shard for the query at a frequency, ms. */
double
serviceMs(Experiment &experiment, ShardId shard,
          const std::vector<TermId> &terms, double freqGhz)
{
    const SearchWork work = experiment.engine().shardWork(shard, terms);
    return experiment.config().work.serviceSeconds(work, freqGhz) * 1e3;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        config.traceQueries = 500; // only needed for predictor training
    config.print(std::cout);
    Experiment experiment(std::move(config));

    // The paper's running example query.
    Query query;
    const std::string text = flags.getString("query", "canada");
    query.terms = experiment.corpus().vocabulary().tokenize(text);
    if (query.terms.empty())
        fatal("query '" + text + "' has no known terms");
    query.arrivalSeconds = 0.0;

    const auto truth = experiment.engine().globalTopK(query.terms);
    const auto contributions =
        experiment.engine().shardContributions(truth);

    std::cout << "\n=== Fig. 3: per-ISN latency and P@10 contribution for "
                 "query \""
              << text << "\" ===\n";
    const double defaultGhz = experiment.cluster().ladder().defaultGhz();
    TextTable perIsn({"ISN", "service ms (2.1 GHz)", "boosted ms (2.7 GHz)",
                      "P@10 contribution"});
    double slowest = 0.0;
    for (ShardId s = 0; s < experiment.index().numShards(); ++s) {
        const double ms = serviceMs(experiment, s, query.terms, defaultGhz);
        slowest = std::max(slowest, ms);
        perIsn.addRow({TextTable::cell(static_cast<uint64_t>(s)),
                       TextTable::cell(ms, 2),
                       TextTable::cell(serviceMs(experiment, s, query.terms,
                                                 2.7),
                                       2),
                       TextTable::cell(static_cast<uint64_t>(
                           contributions[s]))});
    }
    std::cout << perIsn.render();

    std::cout << "\n=== Policy decisions for this query ===\n";
    TextTable decisions({"policy", "ISNs used", "budget ms",
                         "P@10", "latency ms"});
    for (const char *name :
         {"exhaustive", "aggregation", "taily", "cottage"}) {
        auto policy = experiment.makePolicy(name);
        experiment.cluster().reset();
        // Warm the aggregation policy's epoch window with the
        // exhaustive straggler latency.
        if (std::string(name) == "aggregation") {
            QueryMeasurement warm;
            warm.latencySeconds = slowest * 1e-3 * 0.6;
            for (int i = 0; i < 200; ++i)
                policy->observe(warm);
        }
        const QueryPlan plan = policy->plan(query, experiment.engine());
        const QueryMeasurement m =
            experiment.engine().execute(query, plan, truth);
        decisions.addRow(
            {name, TextTable::cell(static_cast<uint64_t>(m.isnsUsed)),
             plan.budgetSeconds == noBudget
                 ? "-"
                 : TextTable::cell(plan.budgetSeconds * 1e3, 2),
             TextTable::cell(m.precisionAtK, 2),
             TextTable::cell(m.latencySeconds * 1e3, 2)});
    }
    std::cout << decisions.render();
    std::cout << "\nExhaustive waits " << TextTable::cell(slowest, 2)
              << " ms for the slowest ISN; Cottage keeps slow ISNs only "
                 "when they contribute, and boosts them.\n";
    return 0;
}
