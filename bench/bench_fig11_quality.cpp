/**
 * @file
 * Reproduces Fig. 11 — the average P@10 search quality of every policy
 * on both traces (exhaustive is 1 by construction; the paper reports
 * Cottage 0.947/0.955, Taily 0.887/0.878, Rank-S <= 0.709).
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const ReplayResults results = replayAll(experiment, mainPolicies);

    std::cout << "\n=== Fig. 11: average P@10 quality (NDCG@10 in "
                 "parentheses) ===\n";
    TextTable table({"policy", "wikipedia", "lucene"});
    for (const std::string &policy : mainPolicies) {
        const RunSummary &wiki =
            results.at(policy, TraceFlavor::Wikipedia).summary;
        const RunSummary &lucene =
            results.at(policy, TraceFlavor::Lucene).summary;
        table.addRow({policy,
                      TextTable::cell(wiki.avgPrecision, 3) + " (" +
                          TextTable::cell(wiki.avgNdcg, 3) + ")",
                      TextTable::cell(lucene.avgPrecision, 3) + " (" +
                          TextTable::cell(lucene.avgNdcg, 3) + ")"});
    }
    std::cout << table.render();
    std::cout << "\npaper: exhaustive 1.000, cottage 0.947/0.955, taily "
                 "0.887/0.878, rank-s <= 0.709\n";
    return 0;
}
