/**
 * @file
 * Reproduces Fig. 12 — the per-query (latency, P@10) distribution on
 * the Wikipedia trace: Cottage's queries cluster in the fast/high-
 * quality corner while Taily's and Rank-S's scatter down the quality
 * axis. Rendered as a 2D density table (latency bins x quality bins)
 * per policy, plus corner-mass summaries.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

namespace {

void
printDensity(const RunResult &run, double latencyCapSeconds)
{
    constexpr std::size_t latencyBins = 6;
    constexpr std::size_t qualityBins = 5;
    // counts[q][l]: quality descending (top row = perfect quality).
    std::vector<std::vector<uint64_t>> counts(
        qualityBins, std::vector<uint64_t>(latencyBins, 0));
    for (const QueryMeasurement &m : run.measurements) {
        std::size_t l = static_cast<std::size_t>(
            m.latencySeconds / latencyCapSeconds * latencyBins);
        l = std::min(l, latencyBins - 1);
        std::size_t q = static_cast<std::size_t>(
            (1.0 - m.precisionAtK) * qualityBins);
        q = std::min(q, qualityBins - 1);
        counts[q][l] += 1;
    }

    std::vector<std::string> headers = {"P@10 \\ latency"};
    for (std::size_t l = 0; l < latencyBins; ++l) {
        headers.push_back(
            TextTable::cell(latencyCapSeconds * 1e3 * (l + 1) /
                                latencyBins,
                            1) +
            " ms");
    }
    TextTable table(headers);
    for (std::size_t q = 0; q < qualityBins; ++q) {
        const double hi = 1.0 - static_cast<double>(q) / qualityBins;
        const double lo = 1.0 - static_cast<double>(q + 1) / qualityBins;
        std::vector<std::string> row = {TextTable::cell(lo, 1) + "-" +
                                        TextTable::cell(hi, 1)};
        for (std::size_t l = 0; l < latencyBins; ++l)
            row.push_back(TextTable::cell(counts[q][l]));
        table.addRow(std::move(row));
    }
    std::cout << table.render();

    // Top-left corner: fast AND high quality.
    uint64_t corner = 0;
    uint64_t total = 0;
    for (const QueryMeasurement &m : run.measurements) {
        corner += m.precisionAtK >= 0.8 &&
                  m.latencySeconds <= 0.5 * latencyCapSeconds;
        ++total;
    }
    std::cout << "fast+high-quality corner (P@10 >= 0.8, latency <= "
              << TextTable::cell(0.5 * latencyCapSeconds * 1e3, 1)
              << " ms): "
              << TextTable::cell(static_cast<double>(corner) /
                                     static_cast<double>(total),
                                 3)
              << " of queries\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const ReplayResults results = replayAll(experiment, mainPolicies);

    // A common latency cap so the three densities are comparable.
    const double cap =
        results.at("exhaustive", TraceFlavor::Wikipedia)
            .summary.p95LatencySeconds;

    for (const std::string policy : {"cottage", "taily", "rank-s"}) {
        std::cout << "\n=== Fig. 12: (latency, P@10) density, " << policy
                  << ", wikipedia trace ===\n";
        printDensity(results.at(policy, TraceFlavor::Wikipedia), cap);
    }
    std::cout << "\npaper shape: cottage mass sits top-left; taily and "
                 "rank-s scatter down the quality axis.\n";
    return 0;
}
