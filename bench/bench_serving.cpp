/**
 * @file
 * Sustained-throughput bench for the serving front-end: sweep a rising
 * offered QPS ladder through ServingFrontEnd (admission control,
 * result/term-stats caches, load shedding) until the cluster
 * saturates, and emit machine-readable JSON (BENCH_serving.json) with
 * one point per QPS rung — latency percentiles, shed/degrade rates,
 * cache hit rates and package power — plus the detected knee.
 * scripts/check_bench.py --serving guards the numbers in CI: the
 * lowest rung must shed nothing and the reported saturation QPS must
 * be positive.
 *
 * Usage: bench_serving [--smoke] [--out=FILE] [--policy=taily]
 *                      [--qps-start=] [--qps-max=] [--shed-rate=0.01]
 *                      [--docs=] [--queries=] [--shards=] ...
 *
 * The ladder doubles each rung from --qps-start and stops early once a
 * rung's shed rate exceeds --shed-rate (the saturation criterion); the
 * knee is the last rung at or below it. Every rung re-times the SAME
 * base trace (serve/arrivals.h), so quality ground truth is computed
 * once and the rungs differ only in arrival pressure.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/serving.h"
#include "util/logging.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    const bool smoke = flags.getBool("smoke", false);

    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("docs"))
        config.corpus.numDocs = smoke ? 8000 : 30000;
    if (!flags.has("queries"))
        config.traceQueries = smoke ? 500 : 3000;
    if (!flags.has("shards"))
        config.shards.numShards = smoke ? 8 : 16;
    config.serving.enabled = true;
    // Caches on by default so the bench reports meaningful hit rates;
    // the flags can still force either off (=0).
    if (!flags.has("result-cache"))
        config.serving.resultCacheCapacity = 512;
    if (!flags.has("postings-cache"))
        config.serving.statsCacheCapacity = 2048;
    config.print(std::cout);

    const std::string policyName = flags.getString("policy", "taily");
    const std::string outPath =
        flags.getString("out", "BENCH_serving.json");
    const double qpsStart = flags.getDouble("qps-start", 100.0);
    const double qpsMax =
        flags.getDouble("qps-max", smoke ? 6400.0 : 25600.0);
    const double saturationShedRate =
        flags.getDouble("shed-rate", 0.01);
    COTTAGE_CHECK_MSG(qpsStart > 0.0 && qpsMax >= qpsStart,
                      "need 0 < --qps-start <= --qps-max");

    Experiment experiment(std::move(config));
    const std::unique_ptr<Policy> policy =
        experiment.makePolicy(policyName);

    std::vector<ServingSummary> points;
    double saturationQps = 0.0;
    bool saturated = false;
    for (double qps = qpsStart; qps <= qpsMax; qps *= 2.0) {
        const ServingRunResult run =
            experiment.runServing(*policy, TraceFlavor::Wikipedia, qps);
        const ServingSummary &sv = run.summary;
        std::cout << "  qps=" << qps << ": achieved="
                  << sv.achievedQps << " shed_rate=" << sv.shedRate
                  << " p95_ms=" << sv.run.p95LatencySeconds * 1e3
                  << " power_w=" << sv.run.avgPowerWatts
                  << " result_hit=" << sv.resultCacheHitRate << "\n";
        points.push_back(sv);
        if (sv.shedRate > saturationShedRate) {
            // This rung is past the knee; the previous one is the
            // sustained-throughput report.
            saturated = true;
            break;
        }
        saturationQps = qps;
    }
    COTTAGE_CHECK_MSG(!points.empty(), "qps ladder produced no points");
    // Ladder exhausted without saturating: report the top rung as the
    // sustained rate (the gate only needs it positive; a wider ladder
    // refines it).
    if (saturationQps == 0.0)
        saturationQps = qpsStart;
    const std::size_t knee =
        saturated && points.size() > 1 ? points.size() - 2
                                       : points.size() - 1;

    std::ofstream out(outPath);
    if (!out)
        fatal("cannot write " + outPath);
    out << "{\n  \"bench\": \"serving\",\n  \"config\": {"
        << "\"docs\":" << experiment.config().corpus.numDocs
        << ",\"queries\":" << experiment.config().traceQueries
        << ",\"shards\":" << experiment.config().shards.numShards
        << ",\"policy\":\"" << policyName << "\""
        << ",\"shed_backlog_ms\":"
        << experiment.config().serving.admission.shedBacklogSeconds * 1e3
        << ",\"result_cache\":"
        << experiment.config().serving.resultCacheCapacity
        << ",\"postings_cache\":"
        << experiment.config().serving.statsCacheCapacity
        << ",\"shed_rate_threshold\":" << saturationShedRate
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},\n"
        << "  \"serving\": {\n    \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        out << "      " << toJson(points[i])
            << (i + 1 < points.size() ? ",\n" : "\n");
    }
    out << "    ],\n    \"saturation_qps\": " << saturationQps
        << ",\n    \"saturated\": " << (saturated ? "true" : "false")
        << ",\n    \"knee\": " << toJson(points[knee]) << "\n  }\n}\n";
    out.close();

    std::cout << "wrote " << outPath << "\n"
              << "  saturation_qps=" << saturationQps
              << (saturated ? "" : " (ladder top; never saturated)")
              << "\n";
    return 0;
}
