/**
 * @file
 * Reproduces Fig. 2 — the motivation: (a) the client-side latency
 * histogram of 10K Wikipedia-trace queries under exhaustive search has
 * a long tail; (b) for most queries only a fraction of the 16 ISNs
 * contribute any document to the P@10 results.
 *
 * Usage: bench_fig02_variation [--docs=] [--queries=] [--qps=] ...
 */

#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "stats/histogram.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        config.traceQueries = 6000;
    config.print(std::cout);

    Experiment experiment(std::move(config));

    std::cout << "\n=== Fig. 2(a): latency histogram, exhaustive search, "
              << experiment.config().traceQueries
              << " wikipedia queries ===\n";
    const RunResult run =
        experiment.run("exhaustive", TraceFlavor::Wikipedia);

    // The paper's 5 ms bins, 0 to 65 ms.
    Histogram latencyHist = Histogram::linear(0.0, 65e-3, 13);
    for (const QueryMeasurement &m : run.measurements)
        latencyHist.add(m.latencySeconds);

    TextTable latencyTable({"latency bin (ms)", "queries", "fraction"});
    for (std::size_t b = 0; b < latencyHist.bins(); ++b) {
        latencyTable.addRow(
            {TextTable::cell(latencyHist.binLow(b) * 1e3, 0) + "-" +
                 TextTable::cell(latencyHist.binHigh(b) * 1e3, 0),
             TextTable::cell(latencyHist.count(b)),
             TextTable::cell(latencyHist.fraction(b), 3)});
    }
    std::cout << latencyTable.render();
    std::cout << "\navg " << TextTable::cell(run.summary.avgLatencySeconds * 1e3)
              << " ms, p95 "
              << TextTable::cell(run.summary.p95LatencySeconds * 1e3)
              << " ms, max "
              << TextTable::cell(run.summary.maxLatencySeconds * 1e3)
              << " ms\n";

    std::cout << "\n=== Fig. 2(b): ISNs with non-zero P@10 contribution "
                 "per query ===\n";
    const auto &truth = experiment.groundTruth(TraceFlavor::Wikipedia);
    std::vector<uint64_t> counts(experiment.index().numShards() + 1, 0);
    for (const auto &ranking : truth) {
        const std::vector<uint32_t> contributions =
            experiment.engine().shardContributions(ranking);
        uint32_t nonzero = 0;
        for (uint32_t c : contributions)
            nonzero += c > 0;
        ++counts[nonzero];
    }
    TextTable contribTable({"contributing ISNs", "queries"});
    for (std::size_t n = 0; n < counts.size(); ++n)
        contribTable.addRow({TextTable::cell(static_cast<uint64_t>(n)),
                             TextTable::cell(counts[n])});
    std::cout << contribTable.render();

    double weighted = 0.0;
    for (std::size_t n = 0; n < counts.size(); ++n)
        weighted += static_cast<double>(n * counts[n]);
    std::cout << "\naverage contributing ISNs: "
              << TextTable::cell(weighted /
                                 static_cast<double>(truth.size()), 2)
              << " of " << experiment.index().numShards() << "\n";
    return 0;
}
