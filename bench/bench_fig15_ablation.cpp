/**
 * @file
 * Reproduces Fig. 15 — the component ablation: Cottage vs Cottage-ISN
 * (no aggregator coordination) vs Cottage-withoutML (Gamma quality
 * estimation) vs Taily vs exhaustive, across (a) average latency,
 * (b) P@10, (c) active ISNs and (d) searched documents C_RES.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const ReplayResults results = replayAll(experiment, ablationPolicies);

    for (const TraceFlavor flavor :
         {TraceFlavor::Wikipedia, TraceFlavor::Lucene}) {
        std::cout << "\n=== Fig. 15: component ablation, "
                  << traceFlavorName(flavor) << " trace ===\n";
        TextTable table({"policy", "avg ms", "P@10", "active ISNs",
                         "C_RES (docs)"});
        for (const std::string &policy : ablationPolicies) {
            const RunSummary &s = results.at(policy, flavor).summary;
            table.addRow({policy,
                          TextTable::cell(s.avgLatencySeconds * 1e3, 2),
                          TextTable::cell(s.avgPrecision, 3),
                          TextTable::cell(s.avgIsnsUsed, 2),
                          TextTable::cell(s.avgDocsSearched, 0)});
        }
        std::cout << table.render();
    }

    const RunSummary &cottage =
        results.at("cottage", TraceFlavor::Wikipedia).summary;
    const RunSummary &isn =
        results.at("cottage-isn", TraceFlavor::Wikipedia).summary;
    const RunSummary &noMl =
        results.at("cottage-without-ml", TraceFlavor::Wikipedia).summary;
    std::cout << "\ncoordination value: cottage-isn latency is "
              << TextTable::cell(isn.avgLatencySeconds /
                                     cottage.avgLatencySeconds,
                                 2)
              << "x cottage's (paper: ~1.9x)\n";
    std::cout << "ML value: cottage-without-ml uses "
              << TextTable::cell((noMl.avgIsnsUsed - cottage.avgIsnsUsed) /
                                     cottage.avgIsnsUsed * 100.0,
                                 0)
              << "% more ISNs and "
              << TextTable::cell(
                     (noMl.avgDocsSearched - cottage.avgDocsSearched) /
                         cottage.avgDocsSearched * 100.0,
                     0)
              << "% more C_RES (paper: ~43% and ~48%)\n";
    return 0;
}
