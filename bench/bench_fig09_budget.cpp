/**
 * @file
 * Reproduces Fig. 9 — a worked example of Algorithm 1: the per-ISN
 * predictions <Q^K, Q^{K/2}, L^current, L^boosted> of a real query and
 * the budget determination walk (zero-quality cut, descending boosted
 * latency walk, budget pin at the slowest top-K/2 contributor).
 */

#include <algorithm>
#include <iostream>

#include "core/budget_algorithm.h"
#include "core/cottage_policy.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        config.traceQueries = 2000;
    config.print(std::cout);
    Experiment experiment(std::move(config));

    CottagePolicy policy(experiment.bank(),
                         experiment.config().cottage);

    // Pick a query whose predictions exhibit the Fig. 9 structure:
    // several zero-quality ISNs plus at least one slow ISN that only
    // serves the bottom half of the ranking (so the budget walk
    // actually drops somebody). Fall back to the most varied query.
    const QueryTrace &trace = experiment.trace(TraceFlavor::Wikipedia);
    std::size_t chosen = 0;
    bool found = false;
    for (std::size_t q = 0; q < trace.size() && !found; ++q) {
        const auto preds =
            policy.predictions(trace.query(q), experiment.engine());
        const BudgetDecision decision = determineTimeBudget(preds);
        if (!decision.droppedOverBudget.empty() &&
            decision.droppedZeroQuality.size() >= 2 &&
            decision.selected.size() >= 3) {
            chosen = q;
            found = true;
        }
    }
    const Query &query = trace.query(chosen);
    std::cout << "\nquery #" << chosen << ": \""
              << query.text(experiment.corpus().vocabulary()) << "\"\n";

    const auto preds = policy.predictions(query, experiment.engine());
    const BudgetDecision decision = determineTimeBudget(preds);

    std::cout << "\n=== Fig. 9: per-ISN predictions (K = "
              << experiment.index().topK() << ") ===\n";
    TextTable table({"ISN", "Q^K", "Q^K/2", "L current ms",
                     "L boosted ms", "fate"});
    const auto fate = [&](ShardId isn) -> std::string {
        if (std::find(decision.selected.begin(), decision.selected.end(),
                      isn) != decision.selected.end())
            return "selected";
        if (std::find(decision.droppedZeroQuality.begin(),
                      decision.droppedZeroQuality.end(), isn) !=
            decision.droppedZeroQuality.end())
            return "cut: zero Q^K";
        return "cut: over budget";
    };
    // Present in the algorithm's stage-2 order (descending boosted).
    auto ordered = preds;
    std::sort(ordered.begin(), ordered.end(),
              [](const IsnPrediction &a, const IsnPrediction &b) {
                  return a.latencyBoosted > b.latencyBoosted;
              });
    for (const IsnPrediction &p : ordered) {
        table.addRow({TextTable::cell(static_cast<uint64_t>(p.isn)),
                      TextTable::cell(static_cast<uint64_t>(p.qualityK)),
                      TextTable::cell(static_cast<uint64_t>(p.qualityHalf)),
                      TextTable::cell(p.latencyCurrent * 1e3, 2),
                      TextTable::cell(p.latencyBoosted * 1e3, 2),
                      fate(p.isn)});
    }
    std::cout << table.render();

    std::cout << "\ntime budget T = "
              << TextTable::cell(decision.budgetSeconds * 1e3, 2)
              << " ms; " << decision.selected.size() << " selected, "
              << decision.droppedZeroQuality.size() << " cut for zero Q^K, "
              << decision.droppedOverBudget.size()
              << " sacrificed above the budget\n";

    // Show the resulting plan's frequency assignments (boost/slow-down).
    const QueryPlan plan = policy.plan(query, experiment.engine());
    TextTable freqs({"ISN", "assigned GHz"});
    for (ShardId s = 0; s < plan.isns.size(); ++s) {
        if (plan.isns[s].participate)
            freqs.addRow({TextTable::cell(static_cast<uint64_t>(s)),
                          TextTable::cell(plan.isns[s].freqGhz, 1)});
    }
    std::cout << "\n=== Step 5-6: frequency assignment (default "
              << TextTable::cell(
                     experiment.cluster().ladder().defaultGhz(), 1)
              << " GHz) ===\n"
              << freqs.render();
    return 0;
}
