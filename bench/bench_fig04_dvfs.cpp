/**
 * @file
 * Reproduces Fig. 4 — a query's service time across the CPU frequency
 * ladder: boosting 1.2 -> 2.7 GHz shortens a compute-bound search
 * request by ~2.25x (the paper measures 2.43x including memory
 * effects), motivating frequency boosting as a quality-preserving
 * accelerator.
 */

#include <algorithm>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        config.traceQueries = 2000;
    config.print(std::cout);
    Experiment experiment(std::move(config));

    // Pick the heaviest query of the trace (the paper uses a long
    // request) and its heaviest shard.
    const QueryTrace &trace = experiment.trace(TraceFlavor::Wikipedia);
    double worstCycles = 0.0;
    std::size_t worstQuery = 0;
    ShardId worstShard = 0;
    for (std::size_t q = 0; q < trace.size(); q += 20) {
        const std::vector<SearchWork> shardWork =
            experiment.engine().shardWorkAll(trace.query(q).terms);
        for (ShardId s = 0; s < experiment.index().numShards(); ++s) {
            const double cycles =
                experiment.config().work.cycles(shardWork[s]);
            if (cycles > worstCycles) {
                worstCycles = cycles;
                worstQuery = q;
                worstShard = s;
            }
        }
    }

    std::cout << "\n=== Fig. 4: latency vs CPU frequency (query #"
              << worstQuery << ", ISN " << worstShard << ", "
              << TextTable::cell(worstCycles / 1e6, 1)
              << " Mcycles) ===\n";

    const FrequencyLadder &ladder = experiment.cluster().ladder();
    TextTable table({"frequency GHz", "service ms", "speedup vs 1.2 GHz"});
    const double base = worstCycles / (ladder.minGhz() * 1e9);
    for (double freq : ladder.steps()) {
        const double seconds = worstCycles / (freq * 1e9);
        table.addRow({TextTable::cell(freq, 1),
                      TextTable::cell(seconds * 1e3, 2),
                      TextTable::cell(base / seconds, 2)});
    }
    std::cout << table.render();
    std::cout << "\nboost headroom (max/default): "
              << TextTable::cell(ladder.maxGhz() / ladder.defaultGhz(), 2)
              << "x\n";
    return 0;
}
