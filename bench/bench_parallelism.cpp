/**
 * @file
 * Intra-query parallelism bench: measure the deterministic parallel
 * traversal driver (engine/parallel_search.h) across evaluator x
 * cores cells, and the end-to-end (cores x frequency) frontier of the
 * Cottage policy.
 *
 * Part 1 (sweep): one-shard index, every evaluator cell runs the same
 * query set at cores {1, 2, 4, 8}. Each cell reports wall-clock
 * ns/query (min over interleaved repeats), the aggregate work
 * counters, and a bitwise checksum of the merged top-K (ids AND score
 * doubles) — the checksum must be identical across core counts, the
 * rank-safety half of the driver's contract, and is gated in CI by
 * scripts/check_bench.py --parallelism together with "4 cores beats
 * 1 core on wall-clock for wand and bmw". An Amdahl serial fraction is
 * fitted per evaluator from the measured speedups; feed it back into
 * the simulator via --speedup-serial-fraction.
 *
 * Part 2 (frontier): two full experiments on the SAME simulated
 * hardware (4 workers per ISN) — one limited to frequency-only
 * Cottage (isn-cores=1), one allowed the joint (cores x frequency)
 * grid (isn-cores=4) — serve the same scenario presets. The gate
 * requires the cores build to beat frequency-only on energy at no
 * worse p99, or on p99 at no worse energy, for at least one preset.
 *
 * --no-time zeroes every wall-clock-derived field (ns_per_query,
 * fitted alpha) so the output is byte-identical across machines and
 * SIMD variants; CI diffs a scalar (-DCOTTAGE_NO_SIMD=ON) run against
 * the SIMD build this way.
 *
 * Usage: bench_parallelism [--smoke] [--no-time] [--out=FILE]
 *                          [--evaluators=maxscore,wand,bmw]
 *                          [--repeats=3] [--qps-scale=4] [--docs=] ...
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/parallel_search.h"
#include "serve/scenario.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace cottage;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> items;
    std::stringstream stream(csv);
    std::string item;
    while (std::getline(stream, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

/** Shortest round-trippable double, matching the other bench JSONs. */
std::string
num(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return std::string(buffer);
}

/** FNV-1a over raw bytes — the merged top-K's bitwise fingerprint. */
uint64_t
fnv1a(uint64_t hash, const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** One sweep cell's aggregate results. */
struct SweepCell
{
    std::string evaluator;
    uint32_t cores = 0;
    double nsPerQuery = 0.0;
    SearchWork work;
    uint64_t checksum = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    const bool smoke = flags.getBool("smoke", false);
    const bool timed = !flags.getBool("no-time", false);
    const std::string outPath =
        flags.getString("out", "BENCH_parallelism.json");
    const std::vector<std::string> evaluators = splitList(
        flags.getString("evaluators", "maxscore,wand,bmw"));
    const auto repeats = static_cast<std::size_t>(
        getIntAtLeast(flags, "repeats", 3, 1));
    const double qpsScale = getPositiveDouble(flags, "qps-scale", 4.0);
    const std::vector<uint32_t> coreCounts = {1, 2, 4, 8};

    // ---------------------------------------------------- part 1: sweep
    // One shard, sized so a 4-core slice still dwarfs the pool's
    // dispatch overhead (a slice of the smoke corpus is ~6K docs).
    CorpusConfig corpusConfig;
    corpusConfig.numDocs = static_cast<uint32_t>(
        flags.getInt("docs", smoke ? 24000 : 60000));
    ShardedIndexConfig shardConfig;
    shardConfig.numShards = 1;
    const Corpus corpus = Corpus::generate(corpusConfig);
    const ShardedIndex index(corpus, shardConfig);

    TraceConfig traceConfig;
    traceConfig.flavor = TraceFlavor::Wikipedia;
    traceConfig.numQueries = static_cast<uint64_t>(
        flags.getInt("queries", smoke ? 150 : 400));
    traceConfig.vocabSize = corpusConfig.vocabSize;
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    std::vector<std::vector<WeightedTerm>> termSets;
    termSets.reserve(trace.size());
    for (std::size_t q = 0; q < trace.size(); ++q)
        termSets.push_back(
            DistributedEngine::weightedTerms(trace.query(q)));

    std::vector<SweepCell> cells;
    for (const std::string &name : evaluators) {
        const std::unique_ptr<Evaluator> evaluator =
            Experiment::makeEvaluator(name);
        for (const uint32_t cores : coreCounts) {
            SweepCell cell;
            cell.evaluator = name;
            cell.cores = cores;
            cell.nsPerQuery = -1.0;
            cells.push_back(cell);
        }
        (void)evaluator;
    }

    // Interleaved repeats: each repeat times every cell once, and the
    // min over repeats stands — robust against one-off scheduler noise
    // biasing a whole cell. Work counters and checksums come from the
    // first repeat (they are bit-identical in every repeat).
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::size_t cellIndex = 0;
        for (const std::string &name : evaluators) {
            const std::unique_ptr<Evaluator> evaluator =
                Experiment::makeEvaluator(name);
            for (const uint32_t cores : coreCounts) {
                SweepCell &cell = cells[cellIndex++];
                Stopwatch watch;
                SearchWork work;
                uint64_t checksum = 0xcbf29ce484222325ull;
                for (std::size_t q = 0; q < termSets.size(); ++q) {
                    const SearchResult result = parallelShardSearch(
                        *evaluator, index.shard(0), termSets[q],
                        index.topK(), noDocCap, cores);
                    if (rep == 0) {
                        work.docsScored += result.work.docsScored;
                        work.docsSkipped += result.work.docsSkipped;
                        work.blocksDecoded += result.work.blocksDecoded;
                        work.blocksSkipped += result.work.blocksSkipped;
                        for (const ScoredDoc &hit : result.topK) {
                            checksum = fnv1a(checksum, &hit.doc,
                                             sizeof(hit.doc));
                            checksum = fnv1a(checksum, &hit.score,
                                             sizeof(hit.score));
                        }
                    }
                }
                const double ns =
                    watch.elapsedSeconds() * 1e9 /
                    static_cast<double>(termSets.size());
                if (cell.nsPerQuery < 0.0 || ns < cell.nsPerQuery)
                    cell.nsPerQuery = ns;
                if (rep == 0) {
                    cell.work = work;
                    cell.checksum = checksum;
                }
            }
        }
    }
    if (!timed)
        for (SweepCell &cell : cells)
            cell.nsPerQuery = 0.0;

    // Fitted Amdahl serial fraction per evaluator: from S(k) =
    // k / (1 + a(k-1)), each measured speedup S_k = t1/tk yields
    // a_k = (k/S_k - 1)/(k - 1); report the mean over k > 1. This is
    // the calibration input for SpeedupCurve::serialFraction.
    struct FittedAlpha
    {
        std::string evaluator;
        double alpha = 0.0;
    };
    std::vector<FittedAlpha> alphas;
    for (const std::string &name : evaluators) {
        double t1 = 0.0;
        double sum = 0.0;
        std::size_t count = 0;
        for (const SweepCell &cell : cells) {
            if (cell.evaluator != name)
                continue;
            if (cell.cores == 1) {
                t1 = cell.nsPerQuery;
            } else if (timed && t1 > 0.0 && cell.nsPerQuery > 0.0) {
                const double k = cell.cores;
                const double speedup = t1 / cell.nsPerQuery;
                const double alpha =
                    (k / speedup - 1.0) / (k - 1.0);
                sum += std::max(0.0, alpha);
                ++count;
            }
        }
        alphas.push_back(
            {name, count > 0 ? sum / static_cast<double>(count) : 0.0});
    }

    // ------------------------------------------------ part 2: frontier
    // Same hardware (4 workers per ISN), same scenario load; the only
    // difference is whether Cottage's step 6 may gang cores.
    struct FrontierRow
    {
        std::string scenario;
        uint32_t isnCores = 0;
        double p99Seconds = 0.0;
        double energyJoules = 0.0;
        double avgPowerWatts = 0.0;
        double avgNdcg = 0.0;
        double shedRate = 0.0;
    };
    std::vector<FrontierRow> frontier;
    const std::vector<std::string> presets = splitList(flags.getString(
        "frontier-scenarios", "mixed_poisson,flash_crowd"));
    for (const uint32_t isnCores : {1u, 4u}) {
        ExperimentConfig config = ExperimentConfig::fromFlags(flags);
        if (!flags.has("docs"))
            config.corpus.numDocs = smoke ? 8000 : 30000;
        if (!flags.has("queries"))
            config.traceQueries = smoke ? 500 : 3000;
        if (!flags.has("shards"))
            config.shards.numShards = smoke ? 8 : 16;
        if (!flags.has("train-queries"))
            config.trainQueries = smoke ? 400 : 2500;
        if (!flags.has("iterations"))
            config.train.iterations = smoke ? 300 : 1500;
        if (!flags.has("cores-per-isn"))
            config.coresPerIsn = 4;
        config.isnCores = isnCores;
        config.cottage.maxCoresPerQuery = isnCores;
        Experiment experiment(std::move(config));
        for (const std::string &preset : presets) {
            const ScenarioConfig scenario =
                scenarioByName(preset, qpsScale);
            const ScenarioRunResult run =
                experiment.runScenario("cottage", scenario);
            FrontierRow row;
            row.scenario = preset;
            row.isnCores = isnCores;
            row.p99Seconds = run.summary.run.p99LatencySeconds;
            row.energyJoules = run.summary.run.energyJoules;
            row.avgPowerWatts = run.summary.run.avgPowerWatts;
            row.avgNdcg = run.summary.run.avgNdcg;
            row.shedRate = run.summary.shedRate;
            frontier.push_back(row);
            std::cout << "frontier " << preset << " isn-cores="
                      << isnCores
                      << ": p99_ms=" << row.p99Seconds * 1e3
                      << " energy_j=" << row.energyJoules
                      << " power_w=" << row.avgPowerWatts
                      << " ndcg=" << row.avgNdcg << "\n";
        }
    }

    // ------------------------------------------------------- emit JSON
    std::ofstream out(outPath);
    if (!out)
        fatal("cannot write " + outPath);
    out << "{\n  \"bench\": \"parallelism\",\n  \"config\": {"
        << "\"sweep_docs\":" << corpusConfig.numDocs
        << ",\"sweep_queries\":" << termSets.size()
        << ",\"repeats\":" << repeats
        << ",\"qps_scale\":" << num(qpsScale)
        << ",\"timed\":" << (timed ? "true" : "false")
        << ",\"smoke\":" << (smoke ? "true" : "false") << "},\n"
        << "  \"sweep\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        char checksum[32];
        std::snprintf(checksum, sizeof(checksum), "0x%016llx",
                      static_cast<unsigned long long>(cell.checksum));
        out << "    {\"evaluator\":\"" << cell.evaluator << "\""
            << ",\"cores\":" << cell.cores
            << ",\"ns_per_query\":" << num(cell.nsPerQuery)
            << ",\"docs_scored\":" << cell.work.docsScored
            << ",\"docs_skipped\":" << cell.work.docsSkipped
            << ",\"blocks_decoded\":" << cell.work.blocksDecoded
            << ",\"blocks_skipped\":" << cell.work.blocksSkipped
            << ",\"topk_checksum\":\"" << checksum << "\"}"
            << (i + 1 < cells.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"fitted_alpha\": [\n";
    for (std::size_t i = 0; i < alphas.size(); ++i) {
        out << "    {\"evaluator\":\"" << alphas[i].evaluator << "\""
            << ",\"alpha\":" << num(alphas[i].alpha) << "}"
            << (i + 1 < alphas.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"frontier\": [\n";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const FrontierRow &row = frontier[i];
        out << "    {\"scenario\":\"" << row.scenario << "\""
            << ",\"policy\":\"cottage\""
            << ",\"isn_cores\":" << row.isnCores
            << ",\"p99_latency_s\":" << num(row.p99Seconds)
            << ",\"energy_j\":" << num(row.energyJoules)
            << ",\"avg_power_w\":" << num(row.avgPowerWatts)
            << ",\"avg_ndcg\":" << num(row.avgNdcg)
            << ",\"shed_rate\":" << num(row.shedRate) << "}"
            << (i + 1 < frontier.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    out.close();

    std::cout << "wrote " << outPath << "\n";
    return 0;
}
