/**
 * @file
 * Reproduces Fig. 10 — overall latency on the Wikipedia and Lucene
 * traces for exhaustive, Taily, Rank-S and Cottage: (a)/(c) the
 * latency timeline (time-bucketed averages standing in for the paper's
 * per-query scatter) and (b)/(d) the average and 95th-percentile bars.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

namespace {

void
printTimeline(Experiment &experiment, const ReplayResults &results,
              TraceFlavor flavor)
{
    const double duration = experiment.trace(flavor).durationSeconds();
    constexpr std::size_t slots = 10;

    TextTable table({"window s", "exhaustive ms", "taily ms", "rank-s ms",
                     "cottage ms"});
    for (std::size_t slot = 0; slot < slots; ++slot) {
        const double lo = duration * static_cast<double>(slot) / slots;
        const double hi = duration * static_cast<double>(slot + 1) / slots;
        std::vector<std::string> row = {TextTable::cell(lo, 1) + "-" +
                                        TextTable::cell(hi, 1)};
        for (const std::string &policy : mainPolicies) {
            const auto &measurements =
                results.at(policy, flavor).measurements;
            double total = 0.0;
            std::size_t count = 0;
            for (const QueryMeasurement &m : measurements) {
                if (m.arrivalSeconds >= lo && m.arrivalSeconds < hi) {
                    total += m.latencySeconds;
                    ++count;
                }
            }
            row.push_back(TextTable::cell(
                count == 0 ? 0.0 : total / count * 1e3, 2));
        }
        table.addRow(std::move(row));
    }
    std::cout << table.render();
}

void
printBars(const ReplayResults &results, TraceFlavor flavor)
{
    const RunSummary &base =
        results.at("exhaustive", flavor).summary;
    TextTable table({"policy", "avg ms", "p95 ms", "avg vs exhaustive",
                     "p95 vs exhaustive"});
    for (const std::string &policy : mainPolicies) {
        const RunSummary &s = results.at(policy, flavor).summary;
        table.addRow(
            {policy, TextTable::cell(s.avgLatencySeconds * 1e3, 2),
             TextTable::cell(s.p95LatencySeconds * 1e3, 2),
             TextTable::cell(base.avgLatencySeconds / s.avgLatencySeconds,
                             2) +
                 "x",
             TextTable::cell(base.p95LatencySeconds / s.p95LatencySeconds,
                             2) +
                 "x"});
    }
    std::cout << table.render();
}

} // namespace

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const ReplayResults results = replayAll(experiment, mainPolicies);

    for (const TraceFlavor flavor :
         {TraceFlavor::Wikipedia, TraceFlavor::Lucene}) {
        std::cout << "\n=== Fig. 10: latency timeline, "
                  << traceFlavorName(flavor) << " trace ===\n";
        printTimeline(experiment, results, flavor);
        std::cout << "\n=== Fig. 10: average / p95 latency, "
                  << traceFlavorName(flavor) << " trace ===\n";
        printBars(results, flavor);
    }
    std::cout << "\npaper shape: Cottage ~2.4x lower average and ~2.6x "
                 "lower p95 than exhaustive; Taily barely improves; "
                 "Rank-S in between.\n";
    return 0;
}
