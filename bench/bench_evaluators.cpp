/**
 * @file
 * Evaluator micro-benchmark and perf-regression harness: sweeps
 * evaluator x query length x block size over a wikipedia-flavor trace
 * on a single whole-corpus index and emits machine-readable JSON
 * (BENCH_evaluators.json) with the work counters and per-query time.
 * scripts/check_bench.py guards the numbers in CI: block-max pruning
 * must score strictly fewer documents than its flat counterpart.
 *
 * Usage: bench_evaluators [--smoke] [--out=FILE] [--docs=] [--queries=]
 *                         [--k=] [--seed=]
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/bmm_evaluator.h"
#include "index/bmw_evaluator.h"
#include "index/collection_stats.h"
#include "index/exhaustive_evaluator.h"
#include "index/maxscore_evaluator.h"
#include "index/wand_evaluator.h"
#include "text/corpus.h"
#include "text/trace.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace cottage;

namespace {

/** Work + time accumulated over one (evaluator, block size, bucket). */
struct Row
{
    std::string evaluator;
    uint32_t blockSize = 0; // 0 = flat (no block layer used)
    std::string queryLen;   // "1", "2", "3", "4+" or "all"
    uint64_t queries = 0;
    SearchWork work;
    double nanos = 0.0;
};

std::string
lengthBucket(std::size_t terms)
{
    if (terms >= 4)
        return "4+";
    return std::to_string(terms);
}

std::unique_ptr<InvertedIndex>
buildIndex(const Corpus &corpus, uint32_t blockSize)
{
    std::vector<DocId> allDocs(corpus.numDocs());
    for (DocId d = 0; d < corpus.numDocs(); ++d)
        allDocs[d] = d;
    return std::make_unique<InvertedIndex>(
        corpus, allDocs, std::make_shared<CollectionStats>(corpus),
        Bm25Params{}, blockSize);
}

/** Replay the whole trace, bucketing rows by query length. */
std::vector<Row>
sweep(const Evaluator &evaluator, uint32_t blockSize,
      const InvertedIndex &index, const QueryTrace &trace, std::size_t k)
{
    std::map<std::string, Row> buckets;
    Row all;
    all.evaluator = evaluator.name();
    all.blockSize = blockSize;
    all.queryLen = "all";
    for (const Query &query : trace.queries()) {
        Stopwatch watch;
        const SearchResult result = evaluator.search(index, query.terms, k);
        const double nanos = watch.elapsedNanos();

        Row &row = buckets[lengthBucket(query.terms.size())];
        if (row.queries == 0) {
            row.evaluator = evaluator.name();
            row.blockSize = blockSize;
            row.queryLen = lengthBucket(query.terms.size());
        }
        row.work += result.work;
        row.nanos += nanos;
        ++row.queries;
        all.work += result.work;
        all.nanos += nanos;
        ++all.queries;
    }
    std::vector<Row> rows;
    for (auto &entry : buckets)
        rows.push_back(std::move(entry.second));
    rows.push_back(std::move(all));
    return rows;
}

void
writeRow(std::ostream &out, const Row &row)
{
    const double perQuery =
        row.queries == 0 ? 0.0
                         : row.nanos / static_cast<double>(row.queries);
    out << "{\"evaluator\":\"" << row.evaluator << "\""
        << ",\"block_size\":" << row.blockSize << ",\"query_len\":\""
        << row.queryLen << "\",\"queries\":" << row.queries
        << ",\"docs_scored\":" << row.work.docsScored
        << ",\"postings_scored\":" << row.work.postingsScored
        << ",\"docs_skipped\":" << row.work.docsSkipped
        << ",\"blocks_decoded\":" << row.work.blocksDecoded
        << ",\"blocks_skipped\":" << row.work.blocksSkipped
        << ",\"heap_insertions\":" << row.work.heapInsertions
        << ",\"ns_per_query\":" << static_cast<uint64_t>(perQuery) << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    const bool smoke = flags.getBool("smoke", false);

    CorpusConfig corpusConfig;
    corpusConfig.numDocs = static_cast<uint32_t>(
        flags.getInt("docs", smoke ? 4000 : 20000));
    corpusConfig.vocabSize = corpusConfig.numDocs * 3;
    corpusConfig.meanDocLength = 120.0;
    corpusConfig.seed =
        static_cast<uint64_t>(flags.getInt("seed", 42));

    TraceConfig traceConfig;
    traceConfig.flavor = TraceFlavor::Wikipedia;
    traceConfig.numQueries = static_cast<uint64_t>(
        flags.getInt("queries", smoke ? 400 : 2000));
    traceConfig.vocabSize = corpusConfig.vocabSize;
    traceConfig.seed = corpusConfig.seed + 1;

    const std::size_t k =
        static_cast<std::size_t>(flags.getInt("k", 10));
    const std::string outPath =
        flags.getString("out", "BENCH_evaluators.json");

    std::cout << "bench_evaluators: docs=" << corpusConfig.numDocs
              << " queries=" << traceConfig.numQueries << " k=" << k
              << (smoke ? " (smoke)" : "") << "\n";

    const Corpus corpus = Corpus::generate(corpusConfig);
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;

    std::vector<Row> rows;
    // Totals at the defaults check_bench.py compares: flat evaluators,
    // and the block-max evaluators at the default block size 128.
    std::map<std::string, Row> totals;
    const auto keepTotals = [&totals](const std::vector<Row> &swept) {
        for (const Row &row : swept)
            if (row.queryLen == "all")
                totals[row.evaluator] = row;
    };

    {
        // Flat evaluators: the block layer is built but unused, so one
        // index serves all three (block_size reported as 0).
        const auto index = buildIndex(corpus, 128);
        for (const Evaluator *evaluator :
             {static_cast<const Evaluator *>(&exhaustive),
              static_cast<const Evaluator *>(&maxscore),
              static_cast<const Evaluator *>(&wand)}) {
            std::cout << "  sweep " << evaluator->name() << "...\n";
            const auto swept = sweep(*evaluator, 0, *index, trace, k);
            keepTotals(swept);
            rows.insert(rows.end(), swept.begin(), swept.end());
        }
    }

    for (const uint32_t blockSize : {64u, 128u, 256u}) {
        const auto index = buildIndex(corpus, blockSize);
        for (const Evaluator *evaluator :
             {static_cast<const Evaluator *>(&bmw),
              static_cast<const Evaluator *>(&bmm)}) {
            std::cout << "  sweep " << evaluator->name()
                      << " block_size=" << blockSize << "...\n";
            const auto swept =
                sweep(*evaluator, blockSize, *index, trace, k);
            if (blockSize == 128)
                keepTotals(swept);
            rows.insert(rows.end(), swept.begin(), swept.end());
        }
    }

    std::ofstream out(outPath);
    if (!out)
        fatal("cannot write " + outPath);
    out << "{\n  \"bench\": \"evaluators\",\n  \"config\": {"
        << "\"docs\":" << corpusConfig.numDocs
        << ",\"queries\":" << traceConfig.numQueries << ",\"k\":" << k
        << ",\"trace\":\"wikipedia\",\"smoke\":"
        << (smoke ? "true" : "false") << "},\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out << "    ";
        writeRow(out, rows[i]);
        out << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"totals\": {\n";
    std::size_t emitted = 0;
    for (const auto &entry : totals) {
        out << "    \"" << entry.first << "\": ";
        writeRow(out, entry.second);
        out << (++emitted < totals.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    out.close();

    std::cout << "wrote " << outPath << "\n";
    for (const auto &entry : totals)
        std::cout << "  " << entry.first << ": docs_scored="
                  << entry.second.work.docsScored << " docs_skipped="
                  << entry.second.work.docsSkipped << " blocks_skipped="
                  << entry.second.work.blocksSkipped << "\n";
    return 0;
}
