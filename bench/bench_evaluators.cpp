/**
 * @file
 * Evaluator micro-benchmark and perf-regression harness: sweeps
 * evaluator x query length x block size over a wikipedia-flavor trace
 * on a single whole-corpus index and emits machine-readable JSON
 * (BENCH_evaluators.json) with the work counters and per-query time.
 * scripts/check_bench.py guards the numbers in CI: block-max pruning
 * must score strictly fewer documents than its flat counterpart.
 *
 * Usage: bench_evaluators [--smoke] [--out=FILE] [--docs=] [--queries=]
 *                         [--k=] [--seed=] [--repeats=N] [--no-time]
 *
 * --repeats replays every sweep N times and keeps the *minimum* time
 * per row (work counters must be bit-identical across repeats — the
 * determinism contract — and are CHECKed): the minimum is the standard
 * noise-rejecting statistic for a time gate on a shared machine.
 * --no-time writes ns_per_query as 0 so two builds of the same commit
 * (e.g. the SIMD and scalar-codec CI jobs) can be compared byte-for-
 * byte on everything deterministic.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/bmm_evaluator.h"
#include "index/bmw_evaluator.h"
#include "index/collection_stats.h"
#include "index/exhaustive_evaluator.h"
#include "index/maxscore_evaluator.h"
#include "index/wand_evaluator.h"
#include "text/corpus.h"
#include "text/trace.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace cottage;

namespace {

/** Work + time accumulated over one (evaluator, block size, bucket). */
struct Row
{
    std::string evaluator;
    uint32_t blockSize = 0; // 0 = flat (no block layer used)
    std::string queryLen;   // "1", "2", "3", "4+" or "all"
    uint64_t queries = 0;
    SearchWork work;
    double nanos = 0.0;
};

std::string
lengthBucket(std::size_t terms)
{
    if (terms >= 4)
        return "4+";
    return std::to_string(terms);
}

std::unique_ptr<InvertedIndex>
buildIndex(const Corpus &corpus, uint32_t blockSize)
{
    std::vector<DocId> allDocs(corpus.numDocs());
    for (DocId d = 0; d < corpus.numDocs(); ++d)
        allDocs[d] = d;
    return std::make_unique<InvertedIndex>(
        corpus, allDocs, std::make_shared<CollectionStats>(corpus),
        Bm25Params{}, blockSize);
}

/** Replay the whole trace once, bucketing rows by query length. */
std::vector<Row>
sweepOnce(const Evaluator &evaluator, uint32_t blockSize,
          const InvertedIndex &index, const QueryTrace &trace,
          std::size_t k)
{
    std::map<std::string, Row> buckets;
    Row all;
    all.evaluator = evaluator.name();
    all.blockSize = blockSize;
    all.queryLen = "all";
    for (const Query &query : trace.queries()) {
        Stopwatch watch;
        const SearchResult result = evaluator.search(index, query.terms, k);
        const double nanos = watch.elapsedNanos();

        Row &row = buckets[lengthBucket(query.terms.size())];
        if (row.queries == 0) {
            row.evaluator = evaluator.name();
            row.blockSize = blockSize;
            row.queryLen = lengthBucket(query.terms.size());
        }
        row.work += result.work;
        row.nanos += nanos;
        ++row.queries;
        all.work += result.work;
        all.nanos += nanos;
        ++all.queries;
    }
    std::vector<Row> rows;
    for (auto &entry : buckets)
        rows.push_back(std::move(entry.second));
    rows.push_back(std::move(all));
    return rows;
}

/**
 * Fold one repeat cycle's rows into the running best: keep each row's
 * minimum time. Every replay must produce identical work counters —
 * anything else is a determinism bug, not noise, so it is a hard
 * CHECK.
 */
void
foldMin(std::vector<Row> &best, const std::vector<Row> &again)
{
    if (best.empty()) {
        best = again;
        return;
    }
    COTTAGE_CHECK_MSG(again.size() == best.size(),
                      "bench repeat changed the row set");
    for (std::size_t i = 0; i < best.size(); ++i) {
        COTTAGE_CHECK_MSG(again[i].work == best[i].work &&
                              again[i].queries == best[i].queries,
                          "bench repeat changed the work counters");
        best[i].nanos = std::min(best[i].nanos, again[i].nanos);
    }
}

void
writeRow(std::ostream &out, const Row &row, bool zeroTime)
{
    const double perQuery =
        (zeroTime || row.queries == 0)
            ? 0.0
            : row.nanos / static_cast<double>(row.queries);
    out << "{\"evaluator\":\"" << row.evaluator << "\""
        << ",\"block_size\":" << row.blockSize << ",\"query_len\":\""
        << row.queryLen << "\",\"queries\":" << row.queries
        << ",\"docs_scored\":" << row.work.docsScored
        << ",\"postings_scored\":" << row.work.postingsScored
        << ",\"docs_skipped\":" << row.work.docsSkipped
        << ",\"blocks_decoded\":" << row.work.blocksDecoded
        << ",\"blocks_skipped\":" << row.work.blocksSkipped
        << ",\"heap_insertions\":" << row.work.heapInsertions
        << ",\"ns_per_query\":" << static_cast<uint64_t>(perQuery) << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    const bool smoke = flags.getBool("smoke", false);

    CorpusConfig corpusConfig;
    corpusConfig.numDocs = static_cast<uint32_t>(
        flags.getInt("docs", smoke ? 4000 : 20000));
    corpusConfig.vocabSize = corpusConfig.numDocs * 3;
    corpusConfig.meanDocLength = 120.0;
    corpusConfig.seed =
        static_cast<uint64_t>(flags.getInt("seed", 42));

    TraceConfig traceConfig;
    traceConfig.flavor = TraceFlavor::Wikipedia;
    traceConfig.numQueries = static_cast<uint64_t>(
        flags.getInt("queries", smoke ? 400 : 2000));
    traceConfig.vocabSize = corpusConfig.vocabSize;
    traceConfig.seed = corpusConfig.seed + 1;

    const std::size_t k =
        static_cast<std::size_t>(flags.getInt("k", 10));
    const std::string outPath =
        flags.getString("out", "BENCH_evaluators.json");
    const int repeats =
        static_cast<int>(flags.getInt("repeats", 1));
    COTTAGE_CHECK_MSG(repeats >= 1, "--repeats must be >= 1");
    const bool noTime = flags.getBool("no-time", false);

    std::cout << "bench_evaluators: docs=" << corpusConfig.numDocs
              << " queries=" << traceConfig.numQueries << " k=" << k
              << " repeats=" << repeats << (noTime ? " no-time" : "")
              << (smoke ? " (smoke)" : "") << "\n";

    const Corpus corpus = Corpus::generate(corpusConfig);
    const QueryTrace trace = QueryTrace::generate(traceConfig);

    const ExhaustiveEvaluator exhaustive;
    const MaxScoreEvaluator maxscore;
    const WandEvaluator wand;
    const BmwEvaluator bmw;
    const BmmEvaluator bmm;

    // All (evaluator, block size, index) sweeps, indexes built up
    // front. Repeat cycles interleave ACROSS sweeps — wand's repeat r
    // and bmw's repeat r run seconds, not minutes, apart — so slow
    // machine-state drift hits every evaluator alike and the per-row
    // minimum compares like against like. A per-sweep repeat loop
    // would let drift between sweeps masquerade as an evaluator gap.
    struct Sweep
    {
        const Evaluator *evaluator;
        uint32_t blockSize; // 0 = flat (block layer unused)
        const InvertedIndex *index;
    };

    // Flat evaluators share one index (the block layer is built but
    // unused); the block-max evaluators get one per block size.
    const auto flatIndex = buildIndex(corpus, 128);
    std::map<uint32_t, std::unique_ptr<InvertedIndex>> blockIndexes;
    for (const uint32_t blockSize : {64u, 128u, 256u})
        blockIndexes[blockSize] = buildIndex(corpus, blockSize);

    std::vector<Sweep> sweeps;
    for (const Evaluator *evaluator :
         {static_cast<const Evaluator *>(&exhaustive),
          static_cast<const Evaluator *>(&maxscore),
          static_cast<const Evaluator *>(&wand)}) {
        sweeps.push_back({evaluator, 0, flatIndex.get()});
    }
    for (const uint32_t blockSize : {64u, 128u, 256u}) {
        for (const Evaluator *evaluator :
             {static_cast<const Evaluator *>(&bmw),
              static_cast<const Evaluator *>(&bmm)}) {
            sweeps.push_back(
                {evaluator, blockSize, blockIndexes[blockSize].get()});
        }
    }

    std::vector<std::vector<Row>> best(sweeps.size());
    for (int r = 0; r < repeats; ++r) {
        std::cout << "  cycle " << (r + 1) << "/" << repeats << "...\n";
        for (std::size_t s = 0; s < sweeps.size(); ++s) {
            foldMin(best[s], sweepOnce(*sweeps[s].evaluator,
                                       sweeps[s].blockSize,
                                       *sweeps[s].index, trace, k));
        }
    }

    std::vector<Row> rows;
    // Totals at the configurations check_bench.py compares: flat
    // evaluators, and the block-max evaluators at the reference block
    // size 64 — the sweep's consistent winner (finer-grained maxima
    // prune more and each decode is half the work), and the sweep that
    // runs adjacent to wand's in the repeat cycle, so the gated
    // wand/bmw time comparison sees the least machine-state drift.
    std::map<std::string, Row> totals;
    constexpr uint32_t kReferenceBlockSize = 64;
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
        if (sweeps[s].blockSize == 0 ||
            sweeps[s].blockSize == kReferenceBlockSize) {
            for (const Row &row : best[s]) {
                if (row.queryLen == "all")
                    totals[row.evaluator] = row;
            }
        }
        rows.insert(rows.end(), best[s].begin(), best[s].end());
    }

    std::ofstream out(outPath);
    if (!out)
        fatal("cannot write " + outPath);
    out << "{\n  \"bench\": \"evaluators\",\n  \"config\": {"
        << "\"docs\":" << corpusConfig.numDocs
        << ",\"queries\":" << traceConfig.numQueries << ",\"k\":" << k
        << ",\"trace\":\"wikipedia\",\"smoke\":"
        << (smoke ? "true" : "false") << "},\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out << "    ";
        writeRow(out, rows[i], noTime);
        out << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"totals\": {\n";
    std::size_t emitted = 0;
    for (const auto &entry : totals) {
        out << "    \"" << entry.first << "\": ";
        writeRow(out, entry.second, noTime);
        out << (++emitted < totals.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    out.close();

    std::cout << "wrote " << outPath << "\n";
    for (const auto &entry : totals)
        std::cout << "  " << entry.first << ": docs_scored="
                  << entry.second.work.docsScored << " docs_skipped="
                  << entry.second.work.docsSkipped << " blocks_skipped="
                  << entry.second.work.blocksSkipped << "\n";
    return 0;
}
