/**
 * @file
 * Shared helpers for the Fig. 10-15 trace-replay benches: build the
 * experiment from flags, replay the standard policy set over both
 * traces, and hand each bench the per-run results.
 */

#ifndef COTTAGE_BENCH_BENCH_COMMON_H
#define COTTAGE_BENCH_BENCH_COMMON_H

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

namespace cottage::bench {

/** The policy set of the paper's main evaluation (Figs. 10-14). */
inline const std::vector<std::string> mainPolicies = {
    "exhaustive", "taily", "rank-s", "cottage"};

/** The policy set of the ablation study (Fig. 15). */
inline const std::vector<std::string> ablationPolicies = {
    "exhaustive", "taily", "cottage-without-ml", "cottage-isn", "cottage"};

/** One bench's replay results, keyed by (policy, flavor). */
struct ReplayResults
{
    std::map<std::pair<std::string, TraceFlavor>, RunResult> runs;

    const RunResult &
    at(const std::string &policy, TraceFlavor flavor) const
    {
        return runs.at({policy, flavor});
    }
};

/**
 * Build the experiment from CLI flags (default: 5000 queries per
 * trace so a full bench sweep stays tractable on one core) and replay
 * the given policies over both trace flavors. The replay is sequential
 * over policies/queries (the cluster-sim must advance in arrival
 * order) but every per-shard retrieval inside fans out over the
 * `--threads` work-stealing pool, so wall-clock scales with cores
 * while the reported numbers stay bit-identical.
 */
inline ReplayResults
replayAll(Experiment &experiment, const std::vector<std::string> &policies)
{
    ReplayResults results;
    for (const TraceFlavor flavor :
         {TraceFlavor::Wikipedia, TraceFlavor::Lucene}) {
        for (const std::string &policy : policies) {
            results.runs.emplace(std::make_pair(policy, flavor),
                                 experiment.run(policy, flavor));
        }
    }
    return results;
}

/**
 * Standard bench experiment construction (echoes the config).
 * Honors `--threads=N` (default: hardware concurrency; 1 = the
 * sequential baseline for determinism checks and speedup baselines).
 */
inline Experiment
makeBenchExperiment(int argc, char **argv, uint64_t defaultQueries = 3000)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        config.traceQueries = defaultQueries;
    config.print(std::cout);
    return Experiment(std::move(config));
}

} // namespace cottage::bench

#endif // COTTAGE_BENCH_BENCH_COMMON_H
