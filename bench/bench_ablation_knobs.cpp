/**
 * @file
 * Extension ablation (not a paper figure): the design-choice knobs
 * DESIGN.md calls out.
 *
 *  (a) budget slack — how much deadline margin the conservative cycle
 *      predictions need before quality saturates;
 *  (b) participation threshold — the recall bias of the quality gate,
 *      trading ISNs (power) against P@10;
 *  (c) partition policy — topical vs random document allocation, i.e.
 *      how much of Cottage's win depends on shards being distinct.
 */

#include <iostream>

#include "bench_common.h"
#include "core/cottage_policy.h"

using namespace cottage;
using namespace cottage::bench;

namespace {

void
printRun(TextTable &table, const std::string &label, const RunResult &run)
{
    const RunSummary &s = run.summary;
    table.addRow({label, TextTable::cell(s.avgLatencySeconds * 1e3, 2),
                  TextTable::cell(s.avgPrecision, 3),
                  TextTable::cell(s.avgIsnsUsed, 2),
                  TextTable::cell(
                      static_cast<double>(s.truncatedResponses) /
                          static_cast<double>(s.queries),
                      3),
                  TextTable::cell(s.avgPowerWatts, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig base = ExperimentConfig::fromFlags(flags);
    if (!flags.has("queries"))
        base.traceQueries = 3000;

    {
        Experiment experiment(base);
        std::cout << "\n=== (a) budget slack sweep ===\n";
        TextTable table({"slack", "avg ms", "P@10", "ISNs",
                         "truncated/query", "power W"});
        for (double slack : {1.0, 1.25, 1.5, 2.0, 3.0}) {
            CottageConfig config = base.cottage;
            config.budgetSlack = slack;
            CottagePolicy policy(experiment.bank(), config);
            printRun(table, TextTable::cell(slack, 2),
                     experiment.run(policy, TraceFlavor::Wikipedia));
        }
        std::cout << table.render();

        std::cout << "\n=== (b) participation threshold sweep ===\n";
        TextTable table2({"threshold", "avg ms", "P@10", "ISNs",
                          "truncated/query", "power W"});
        for (double threshold : {0.05, 0.1, 0.15, 0.3, 0.5}) {
            CottageConfig config = base.cottage;
            config.participationThreshold = threshold;
            config.halfThreshold = std::max(threshold, 0.2);
            CottagePolicy policy(experiment.bank(), config);
            printRun(table2, TextTable::cell(threshold, 2),
                     experiment.run(policy, TraceFlavor::Wikipedia));
        }
        std::cout << table2.render();
    }

    std::cout << "\n=== (c) partition policy (shards distinct vs "
                 "statistically identical) ===\n";
    TextTable table3({"partition", "avg ms", "P@10", "ISNs",
                      "truncated/query", "power W"});
    for (const PartitionPolicy partition :
         {PartitionPolicy::Topical, PartitionPolicy::Random}) {
        ExperimentConfig config = base;
        config.shards.partition = partition;
        Experiment experiment(std::move(config));
        const RunResult run =
            experiment.run("cottage", TraceFlavor::Wikipedia);
        printRun(table3, partitionPolicyName(partition), run);
    }
    std::cout << table3.render();
    std::cout << "\nreading: random partitioning erases the per-shard "
                 "signal the quality predictor needs (DESIGN.md §6).\n";
    return 0;
}
