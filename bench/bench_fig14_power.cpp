/**
 * @file
 * Reproduces Fig. 14 — the average package power of every policy over
 * the trace replay (RAPL-style busy-energy integration over the
 * window), against the idle floor. The paper reports exhaustive ~36 W,
 * Taily ~25 W, Rank-S ~24 W, Cottage ~21 W over a 14.53 W idle.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const ReplayResults results = replayAll(experiment, mainPolicies);

    std::cout << "\n=== Fig. 14: average package power (W) ===\n";
    TextTable table({"policy", "wikipedia W", "lucene W",
                     "saving vs exhaustive (wiki)"});
    const double base = results.at("exhaustive", TraceFlavor::Wikipedia)
                            .summary.avgPowerWatts;
    for (const std::string &policy : mainPolicies) {
        const double wiki = results.at(policy, TraceFlavor::Wikipedia)
                                .summary.avgPowerWatts;
        const double lucene = results.at(policy, TraceFlavor::Lucene)
                                  .summary.avgPowerWatts;
        table.addRow({policy, TextTable::cell(wiki, 2),
                      TextTable::cell(lucene, 2),
                      TextTable::cell((base - wiki) / base * 100.0, 1) +
                          "%"});
    }
    table.addRow({"idle",
                  TextTable::cell(experiment.config().power.idleWatts, 2),
                  TextTable::cell(experiment.config().power.idleWatts, 2),
                  "-"});
    std::cout << table.render();

    std::cout << "\nbusy energy per query (J, wiki): ";
    for (const std::string &policy : mainPolicies) {
        const RunSummary &s =
            results.at(policy, TraceFlavor::Wikipedia).summary;
        std::cout << policy << " "
                  << TextTable::cell(s.energyJoules /
                                         static_cast<double>(s.queries),
                                     4)
                  << "  ";
    }
    std::cout << "\npaper: exhaustive ~36 W, taily ~25 W, rank-s ~24 W, "
                 "cottage ~21 W, idle 14.53 W (41.3% saving)\n";
    return 0;
}
