/**
 * @file
 * Reproduces Fig. 7 — the quality predictor: (a) held-out accuracy and
 * training loss versus training iterations (diminishing returns), and
 * (b) per-ISN accuracy plus single-query inference time.
 *
 * Pass --paper-arch to use the paper's 5x128 MLP (slower to train);
 * the default is the bank's scaled architecture.
 */

#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "predict/training.h"
#include "util/cli.h"
#include "util/stopwatch.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    config.traceQueries = 100; // evaluation traces unused here
    const bool paperArch = flags.getBool("paper-arch", false);
    const std::vector<std::size_t> hidden =
        paperArch ? std::vector<std::size_t>{128, 128, 128, 128, 128}
                  : config.train.hiddenLayers;
    config.print(std::cout);
    Experiment experiment(std::move(config));

    const TrainingSets train = buildTrainingSets(
        experiment.index(), experiment.evaluator(),
        experiment.config().work, experiment.trainTrace(),
        experiment.config().train.numBuckets);

    TraceConfig heldOutConfig;
    heldOutConfig.numQueries = 1500;
    heldOutConfig.vocabSize = experiment.config().corpus.vocabSize;
    heldOutConfig.seed = experiment.config().traceSeed + 555;
    const QueryTrace heldOut = QueryTrace::generate(heldOutConfig);
    const TrainingSets test = buildTrainingSets(
        experiment.index(), experiment.evaluator(),
        experiment.config().work, heldOut,
        experiment.config().train.numBuckets);

    std::cout << "\n=== Fig. 7(a): quality accuracy / loss vs training "
                 "iterations (ISN 0, "
              << (paperArch ? "paper 5x128" : "default") << " arch) ===\n";
    QualityPredictor predictor(experiment.index().topK(), hidden, 99);
    TextTable curve({"iterations", "train loss", "held-out accuracy"});
    std::size_t done = 0;
    for (std::size_t checkpoint :
         {50u, 100u, 200u, 300u, 400u, 600u, 900u, 1200u}) {
        const double loss =
            predictor.train(train.shards[0].qualityK,
                            train.shards[0].qualityHalf,
                            checkpoint - done);
        done = checkpoint;
        curve.addRow({TextTable::cell(static_cast<uint64_t>(checkpoint)),
                      TextTable::cell(loss, 4),
                      TextTable::cell(
                          predictor.accuracyTopK(test.shards[0].qualityK),
                          3)});
    }
    std::cout << curve.render();

    std::cout << "\n=== Fig. 7(b): per-ISN accuracy and inference time ===\n";
    TextTable perIsn({"ISN", "accuracy", "zero/nonzero acc",
                      "inference us"});
    double accSum = 0.0;
    double inferSum = 0.0;
    const ShardId numShards = experiment.index().numShards();
    for (ShardId s = 0; s < numShards; ++s) {
        QualityPredictor model(experiment.index().topK(), hidden,
                               99 + 17 * s);
        model.train(train.shards[s].qualityK, train.shards[s].qualityHalf,
                    experiment.config().train.iterations);
        const Dataset &data = test.shards[s].qualityK;
        const double accuracy = model.accuracyTopK(data);

        std::size_t binaryOk = 0;
        for (std::size_t i = 0; i < data.size(); ++i) {
            const std::vector<double> features(
                data.features(i), data.features(i) + data.numFeatures());
            binaryOk += (model.predictTopK(features) == 0) ==
                        (data.label(i) == 0);
        }

        // Single-query inference latency, averaged over the test set.
        Stopwatch watch;
        for (std::size_t i = 0; i < data.size(); ++i) {
            const std::vector<double> features(
                data.features(i), data.features(i) + data.numFeatures());
            (void)model.predictTopK(features);
        }
        const double inferUs =
            watch.elapsedMicros() / static_cast<double>(data.size());

        accSum += accuracy;
        inferSum += inferUs;
        perIsn.addRow({TextTable::cell(static_cast<uint64_t>(s)),
                       TextTable::cell(accuracy, 3),
                       TextTable::cell(static_cast<double>(binaryOk) /
                                           static_cast<double>(data.size()),
                                       3),
                       TextTable::cell(inferUs, 1)});
    }
    std::cout << perIsn.render();
    std::cout << "\naverage accuracy "
              << TextTable::cell(accSum / numShards, 3)
              << ", average inference "
              << TextTable::cell(inferSum / numShards, 1)
              << " us (paper: 94.71% average, <= 41 us)\n";
    return 0;
}
