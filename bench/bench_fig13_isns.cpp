/**
 * @file
 * Reproduces Fig. 13 — the average number of ISNs selected per query:
 * exhaustive uses all 16, Taily ~13, Rank-S ~11, Cottage ~6.8 in the
 * paper, which is where the resource and power savings come from.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const ReplayResults results = replayAll(experiment, mainPolicies);

    std::cout << "\n=== Fig. 13: average selected ISNs per query (of "
              << experiment.index().numShards() << ") ===\n";
    TextTable table({"policy", "wikipedia", "lucene", "boosted (wiki)"});
    for (const std::string &policy : mainPolicies) {
        table.addRow(
            {policy,
             TextTable::cell(results.at(policy, TraceFlavor::Wikipedia)
                                 .summary.avgIsnsUsed,
                             2),
             TextTable::cell(results.at(policy, TraceFlavor::Lucene)
                                 .summary.avgIsnsUsed,
                             2),
             TextTable::cell(results.at(policy, TraceFlavor::Wikipedia)
                                 .summary.avgIsnsBoosted,
                             2)});
    }
    std::cout << table.render();
    std::cout << "\npaper: exhaustive 16, taily ~13, rank-s ~11, cottage "
                 "<= 6.81\n";
    return 0;
}
