/**
 * @file
 * Reproduces Fig. 8 — the latency predictor: (a) held-out accuracy vs
 * training iterations (the paper's curve flattens near 87%), and
 * (b) per-ISN accuracy plus single-query inference time. "Accurate" is
 * within +/- one cycle bucket, the tolerance under which the paper's
 * 87% figure is meaningful for bucketized service-time prediction.
 *
 * Pass --paper-arch for the 5x128 MLP.
 */

#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "predict/training.h"
#include "util/cli.h"
#include "util/stopwatch.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    config.traceQueries = 100;
    const bool paperArch = flags.getBool("paper-arch", false);
    const std::vector<std::size_t> hidden =
        paperArch ? std::vector<std::size_t>{128, 128, 128, 128, 128}
                  : config.train.hiddenLayers;
    config.print(std::cout);
    Experiment experiment(std::move(config));

    const TrainingSets train = buildTrainingSets(
        experiment.index(), experiment.evaluator(),
        experiment.config().work, experiment.trainTrace(),
        experiment.config().train.numBuckets);

    TraceConfig heldOutConfig;
    heldOutConfig.numQueries = 1500;
    heldOutConfig.vocabSize = experiment.config().corpus.vocabSize;
    heldOutConfig.seed = experiment.config().traceSeed + 555;
    const QueryTrace heldOut = QueryTrace::generate(heldOutConfig);

    // Held-out labels must use the *training* bucket edges.
    std::vector<Dataset> testSets;
    for (ShardId s = 0; s < experiment.index().numShards(); ++s)
        testSets.emplace_back(numLatencyFeatures);
    for (const Query &query : heldOut.queries()) {
        const std::vector<SearchWork> shardWork =
            experiment.engine().shardWorkAll(query.terms);
        for (ShardId s = 0; s < experiment.index().numShards(); ++s) {
            testSets[s].add(
                latencyFeatures(experiment.index().termStats(s),
                                query.terms),
                train.buckets.bucketOf(
                    experiment.config().work.cycles(shardWork[s])));
        }
    }

    std::cout << "\n=== Fig. 8(a): latency accuracy vs training iterations "
                 "(ISN 0, "
              << (paperArch ? "paper 5x128" : "default") << " arch) ===\n";
    LatencyPredictor predictor(train.buckets, hidden, 77);
    TextTable curve({"iterations", "train loss", "held-out acc (+/-1)",
                     "exact"});
    std::size_t done = 0;
    for (std::size_t checkpoint :
         {30u, 60u, 120u, 240u, 480u, 900u, 1500u}) {
        const double loss =
            predictor.train(train.shards[0].latency, checkpoint - done);
        done = checkpoint;
        curve.addRow({TextTable::cell(static_cast<uint64_t>(checkpoint)),
                      TextTable::cell(loss, 4),
                      TextTable::cell(
                          predictor.accuracyWithin(testSets[0], 1), 3),
                      TextTable::cell(
                          predictor.accuracyWithin(testSets[0], 0), 3)});
    }
    std::cout << curve.render();

    std::cout << "\n=== Fig. 8(b): per-ISN accuracy and inference time ===\n";
    TextTable perIsn({"ISN", "acc (+/-1 bucket)", "exact", "inference us"});
    double accSum = 0.0;
    double inferSum = 0.0;
    const ShardId numShards = experiment.index().numShards();
    for (ShardId s = 0; s < numShards; ++s) {
        LatencyPredictor model(train.buckets, hidden, 77 + 17 * s);
        model.train(train.shards[s].latency,
                    experiment.config().train.iterations);
        const double accuracy = model.accuracyWithin(testSets[s], 1);

        Stopwatch watch;
        const Dataset &data = testSets[s];
        for (std::size_t i = 0; i < data.size(); ++i) {
            const std::vector<double> features(
                data.features(i), data.features(i) + data.numFeatures());
            (void)model.predictBucket(features);
        }
        const double inferUs =
            watch.elapsedMicros() / static_cast<double>(data.size());

        accSum += accuracy;
        inferSum += inferUs;
        perIsn.addRow({TextTable::cell(static_cast<uint64_t>(s)),
                       TextTable::cell(accuracy, 3),
                       TextTable::cell(model.accuracyWithin(testSets[s], 0),
                                       3),
                       TextTable::cell(inferUs, 1)});
    }
    std::cout << perIsn.render();
    std::cout << "\naverage accuracy "
              << TextTable::cell(accSum / numShards, 3)
              << ", average inference "
              << TextTable::cell(inferSum / numShards, 1)
              << " us (paper: 87.23% average, 70.25 us)\n";
    return 0;
}
