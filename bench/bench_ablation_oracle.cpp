/**
 * @file
 * Extension ablation (not a paper figure): prediction headroom and the
 * value of per-query budgets.
 *
 *  - oracle      : Algorithm 1 on ground-truth quality and cycles —
 *                  the ceiling Cottage approaches as its predictors
 *                  improve.
 *  - cottage     : the full system with learned predictors.
 *  - cottage-isn : no coordination (predictors only).
 *  - slo-dvfs    : the prior regime the paper argues against — the
 *                  budget is a fixed SLO given a priori and DVFS just
 *                  tracks it; nothing is ever cut.
 *  - exhaustive  : no management at all.
 */

#include <iostream>

#include "bench_common.h"

using namespace cottage;
using namespace cottage::bench;

int
main(int argc, char **argv)
{
    Experiment experiment = makeBenchExperiment(argc, argv);
    const std::vector<std::string> policies = {
        "exhaustive", "slo-dvfs", "cottage-isn", "cottage", "oracle"};

    std::cout << "\n=== ablation: prediction headroom and budget source "
                 "(wikipedia trace, SLO "
              << TextTable::cell(experiment.config().sloSeconds * 1e3, 0)
              << " ms for slo-dvfs) ===\n";
    TextTable table({"policy", "avg ms", "p95 ms", "P@10", "ISNs",
                     "power W"});
    for (const std::string &policy : policies) {
        const RunResult result =
            experiment.run(policy, TraceFlavor::Wikipedia);
        const RunSummary &s = result.summary;
        table.addRow({policy, TextTable::cell(s.avgLatencySeconds * 1e3, 2),
                      TextTable::cell(s.p95LatencySeconds * 1e3, 2),
                      TextTable::cell(s.avgPrecision, 3),
                      TextTable::cell(s.avgIsnsUsed, 2),
                      TextTable::cell(s.avgPowerWatts, 2)});
    }
    std::cout << table.render();
    std::cout << "\nreading: (oracle - cottage) is the cost of imperfect "
                 "predictions; (slo-dvfs - cottage) is the value of "
                 "determining the budget per query instead of assuming "
                 "it.\n";
    return 0;
}
