/**
 * @file
 * Reproduces Tables I and II — the feature vectors of the two
 * predictors for example queries ("tokyo" for quality, "toyota" for
 * latency, as in the paper), evaluated against one ISN's indexing-time
 * term statistics.
 */

#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "predict/features.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    config.traceQueries = 100;
    config.print(std::cout);
    Experiment experiment(std::move(config));

    const auto isn = static_cast<ShardId>(flags.getInt("isn", 0));
    const TermStatsStore &stats = experiment.index().termStats(isn);
    const Vocabulary &vocabulary = experiment.corpus().vocabulary();

    const std::string qualityQuery =
        flags.getString("quality-query", "tokyo");
    const std::vector<TermId> qualityTerms =
        vocabulary.tokenize(qualityQuery);
    if (qualityTerms.empty())
        fatal("no known terms in '" + qualityQuery + "'");

    std::cout << "\n=== Table I: quality-prediction features for \""
              << qualityQuery << "\" on ISN " << isn << " ===\n";
    const std::vector<double> qf = qualityFeatures(stats, qualityTerms);
    TextTable tableI({"feature", "value"});
    for (std::size_t f = 0; f < numQualityFeatures; ++f)
        tableI.addRow({qualityFeatureName(f), TextTable::cell(qf[f], 3)});
    std::cout << tableI.render();

    const std::string latencyQuery =
        flags.getString("latency-query", "toyota");
    const std::vector<TermId> latencyTerms =
        vocabulary.tokenize(latencyQuery);
    if (latencyTerms.empty())
        fatal("no known terms in '" + latencyQuery + "'");

    std::cout << "\n=== Table II: latency-prediction features for \""
              << latencyQuery << "\" on ISN " << isn << " ===\n";
    const std::vector<double> lf = latencyFeatures(stats, latencyTerms);
    TextTable tableII({"feature", "value"});
    for (std::size_t f = 0; f < numLatencyFeatures; ++f)
        tableII.addRow({latencyFeatureName(f), TextTable::cell(lf[f], 3)});
    std::cout << tableII.render();

    std::cout << "\n(count-valued features are log1p-compressed; see "
                 "src/predict/features.cc)\n";
    return 0;
}
