/**
 * @file
 * Microbenchmarks (google-benchmark) of the hot paths: top-K retrieval
 * under the three evaluators, predictor inference (default and paper
 * architectures), feature extraction, Algorithm 1 itself, and the
 * Gamma machinery — quantifying the per-query overhead budget Cottage
 * spends on coordination (paper: ~150 us total).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "core/budget_algorithm.h"
#include "index/exhaustive_evaluator.h"
#include "index/maxscore_evaluator.h"
#include "index/taat_evaluator.h"
#include "index/varbyte.h"
#include "index/wand_evaluator.h"
#include "policy/taily_estimator.h"
#include "predict/features.h"
#include "predict/latency_predictor.h"
#include "predict/quality_predictor.h"
#include "shard/sharded_index.h"
#include "stats/gamma.h"
#include "text/trace.h"
#include "util/rng.h"

namespace cottage {
namespace {

/** Shared stack built once for all microbenchmarks. */
struct MicroStack
{
    MicroStack()
    {
        CorpusConfig corpusConfig;
        corpusConfig.numDocs = 20000;
        corpusConfig.vocabSize = 20000;
        corpusConfig.seed = 9;
        corpus = std::make_unique<Corpus>(Corpus::generate(corpusConfig));

        ShardedIndexConfig shardConfig;
        shardConfig.numShards = 4;
        shardConfig.partition = PartitionPolicy::Topical;
        index = std::make_unique<ShardedIndex>(*corpus, shardConfig);

        TraceConfig traceConfig;
        traceConfig.numQueries = 256;
        traceConfig.vocabSize = corpusConfig.vocabSize;
        traceConfig.seed = 3;
        trace = QueryTrace::generate(traceConfig);
    }

    std::unique_ptr<Corpus> corpus;
    std::unique_ptr<ShardedIndex> index;
    QueryTrace trace;
};

MicroStack &
stack()
{
    static MicroStack instance;
    return instance;
}

template <typename EvaluatorT>
void
benchSearch(benchmark::State &state)
{
    const EvaluatorT evaluator;
    const InvertedIndex &shard = stack().index->shard(0);
    std::size_t q = 0;
    uint64_t docs = 0;
    for (auto _ : state) {
        const Query &query =
            stack().trace.query(q++ % stack().trace.size());
        const SearchResult result = evaluator.search(shard, query.terms, 10);
        docs += result.work.docsScored;
        benchmark::DoNotOptimize(result.topK.data());
    }
    state.counters["docs/query"] = benchmark::Counter(
        static_cast<double>(docs),
        benchmark::Counter::kAvgIterations);
}

void BM_SearchExhaustive(benchmark::State &state)
{
    benchSearch<ExhaustiveEvaluator>(state);
}
void BM_SearchMaxScore(benchmark::State &state)
{
    benchSearch<MaxScoreEvaluator>(state);
}
void BM_SearchWand(benchmark::State &state)
{
    benchSearch<WandEvaluator>(state);
}
void BM_SearchTaat(benchmark::State &state)
{
    benchSearch<TaatEvaluator>(state);
}
BENCHMARK(BM_SearchExhaustive);
BENCHMARK(BM_SearchMaxScore);
BENCHMARK(BM_SearchWand);
BENCHMARK(BM_SearchTaat);

void
BM_VByteDecodePostings(benchmark::State &state)
{
    // Longest posting list on shard 0, compressed once.
    const PostingList *longest = nullptr;
    for (const PostingList &list : stack().index->shard(0).allPostings()) {
        if (longest == nullptr || list.size() > longest->size())
            longest = &list;
    }
    const CompressedPostingList compressed(*longest);
    for (auto _ : state) {
        auto cursor = compressed.cursor();
        uint64_t checksum = 0;
        while (cursor.hasNext())
            checksum += cursor.next().doc;
        benchmark::DoNotOptimize(checksum);
    }
    state.counters["postings"] =
        static_cast<double>(compressed.size());
    state.counters["bytes/posting"] =
        static_cast<double>(compressed.bytes()) /
        static_cast<double>(compressed.size());
}
BENCHMARK(BM_VByteDecodePostings);

void
BM_QualityFeatureExtraction(benchmark::State &state)
{
    const TermStatsStore &stats = stack().index->termStats(0);
    std::size_t q = 0;
    for (auto _ : state) {
        const Query &query =
            stack().trace.query(q++ % stack().trace.size());
        const auto features = qualityFeatures(stats, query.terms);
        benchmark::DoNotOptimize(features.data());
    }
}
BENCHMARK(BM_QualityFeatureExtraction);

/** Inference cost as a function of architecture (paper: 5x128). */
void
BM_QualityInference(benchmark::State &state)
{
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    const std::size_t depth = static_cast<std::size_t>(state.range(1));
    const QualityPredictor predictor(
        10, std::vector<std::size_t>(depth, width), 1);
    const TermStatsStore &stats = stack().index->termStats(0);
    std::size_t q = 0;
    for (auto _ : state) {
        const Query &query =
            stack().trace.query(q++ % stack().trace.size());
        const auto features = qualityFeatures(stats, query.terms);
        benchmark::DoNotOptimize(predictor.predictTopK(features));
    }
}
BENCHMARK(BM_QualityInference)
    ->Args({48, 2})    // bank default
    ->Args({128, 5});  // paper architecture

void
BM_LatencyInference(benchmark::State &state)
{
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    const std::size_t depth = static_cast<std::size_t>(state.range(1));
    const CycleBuckets buckets(1e5, 1e9, 20);
    const LatencyPredictor predictor(
        buckets, std::vector<std::size_t>(depth, width), 2);
    const TermStatsStore &stats = stack().index->termStats(0);
    std::size_t q = 0;
    for (auto _ : state) {
        const Query &query =
            stack().trace.query(q++ % stack().trace.size());
        const auto features = latencyFeatures(stats, query.terms);
        benchmark::DoNotOptimize(predictor.predictCycles(features));
    }
}
BENCHMARK(BM_LatencyInference)->Args({48, 2})->Args({128, 5});

/** Algorithm 1 cost at various cluster sizes (paper: O(n log n)). */
void
BM_BudgetAlgorithm(benchmark::State &state)
{
    const auto numIsns = static_cast<std::size_t>(state.range(0));
    constexpr std::uint64_t kPredictionSeed = 5;
    Rng rng(kPredictionSeed);
    std::vector<IsnPrediction> predictions(numIsns);
    for (std::size_t i = 0; i < numIsns; ++i) {
        predictions[i].isn = static_cast<ShardId>(i);
        predictions[i].qualityK =
            static_cast<uint32_t>(rng.uniformInt(0, 4));
        predictions[i].qualityHalf =
            static_cast<uint32_t>(rng.uniformInt(0, 2));
        predictions[i].latencyBoosted = rng.uniform(1e-3, 30e-3);
        predictions[i].latencyCurrent =
            predictions[i].latencyBoosted * 1.3;
    }
    for (auto _ : state) {
        const BudgetDecision decision = determineTimeBudget(predictions);
        benchmark::DoNotOptimize(decision.budgetSeconds);
    }
}
BENCHMARK(BM_BudgetAlgorithm)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void
BM_TailyEstimation(benchmark::State &state)
{
    const TailyEstimator estimator(*stack().index);
    std::size_t q = 0;
    for (auto _ : state) {
        const Query &query =
            stack().trace.query(q++ % stack().trace.size());
        const auto contributions =
            estimator.expectedTopContributions(query.terms, 40.0);
        benchmark::DoNotOptimize(contributions.data());
    }
}
BENCHMARK(BM_TailyEstimation);

void
BM_GammaFitMoments(benchmark::State &state)
{
    constexpr std::uint64_t kSampleSeed = 6;
    Rng rng(kSampleSeed);
    std::vector<double> sample(1000);
    for (double &v : sample)
        v = rng.exponential(0.5) + rng.exponential(0.5);
    for (auto _ : state) {
        const GammaDistribution fit = GammaDistribution::fitMoments(sample);
        benchmark::DoNotOptimize(fit.survival(5.0));
    }
}
BENCHMARK(BM_GammaFitMoments);

} // namespace
} // namespace cottage

BENCHMARK_MAIN();
