#!/usr/bin/env python3
"""cottage_lint gate: fail CI on any NEW finding.

Runs the built cottage_lint binary in --json mode over the whole tree
(src/, bench/, tests/, tools/ — the linter self-lints) and compares
the findings against the committed baseline. A finding is keyed by
(repo-relative file, rule); the job fails when a key appears that the
baseline lacks, or when a key's count grows. Line numbers are
deliberately NOT part of the key so an unrelated edit shifting lines
cannot flip the gate.

    python3 scripts/check_lint.py --binary build/tools/cottage_lint/cottage_lint
    python3 scripts/check_lint.py --log lint.json
    python3 scripts/check_lint.py --binary ... --update-baseline

The baseline (scripts/lint_baseline.json) is empty today: the tree is
clean under D1-D9, with in-source allow() suppressions carrying their
justifications next to the code. Keep it that way; --update-baseline
exists for bootstrapping a new rule family, and a grown baseline must
be justified in the PR that grows it.

Exit codes: 0 clean/no new findings, 1 new findings, 2 tooling error —
the same 0/1/2 convention as cottage_lint itself and check_bench.py.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "lint_baseline.json"
)


def tooling_error(message: str) -> None:
    print(f"check_lint: ERROR: {message}", file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Gate cottage_lint findings against the baseline"
    )
    parser.add_argument(
        "--binary",
        help="cottage_lint executable; invoked with --json --root "
        "over the repo when given",
    )
    parser.add_argument(
        "--log",
        help="parse this pre-captured `cottage_lint --json` output "
        "instead of invoking the binary",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings",
    )
    return parser.parse_args(argv)


def capture_output(args) -> str:
    if args.log:
        try:
            with open(args.log) as handle:
                return handle.read()
        except OSError as err:
            tooling_error(f"cannot read --log file: {err}")
    if not args.binary:
        tooling_error("need --binary or --log")
    # Resolve before the cwd switch below: a relative --binary is
    # relative to where the user ran the gate, not to the repo root.
    binary = os.path.abspath(args.binary)
    if not os.path.exists(binary):
        tooling_error(f"{args.binary} not found: build cottage_lint first")
    proc = subprocess.run(
        [binary, "--json", "--root", REPO_ROOT],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    # Exit 0 (clean) and 1 (findings) are both judged against the
    # baseline below; exit 2 means the linter itself rejected its
    # input (bad path, unreadable file) and the gate must not mask it.
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stderr)
        tooling_error(f"cottage_lint exited {proc.returncode}")
    return proc.stdout


def collect_findings(text: str):
    """Map 'relpath::rule' -> count from the --json finding array."""
    try:
        findings = json.loads(text)
    except json.JSONDecodeError as err:
        tooling_error(f"linter output is not valid JSON ({err})")
    if not isinstance(findings, list):
        tooling_error("linter output is not a JSON array")
    counts = {}
    for entry in findings:
        if not isinstance(entry, dict) or "file" not in entry \
                or "rule" not in entry:
            tooling_error(f"malformed finding entry: {entry!r}")
        key = f"{entry['file']}::{entry['rule']}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def main(argv=None) -> None:
    args = parse_args(argv)
    findings = collect_findings(capture_output(args))

    if args.update_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(findings, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"check_lint: baseline rewritten with "
            f"{sum(findings.values())} finding(s) in {len(findings)} "
            "bucket(s)"
        )
        return

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        baseline = {}
    except json.JSONDecodeError as err:
        tooling_error(f"baseline is not valid JSON ({err})")

    regressions = []
    for key, count in sorted(findings.items()):
        allowed = baseline.get(key, 0)
        if count > allowed:
            regressions.append(f"{key}: {count} (baseline {allowed})")

    if regressions:
        print("check_lint: NEW findings over baseline:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)

    fixed = sum(
        1 for key, allowed in baseline.items()
        if findings.get(key, 0) < allowed
    )
    note = f"; {fixed} baseline bucket(s) improved — shrink the baseline" \
        if fixed else ""
    print(
        f"check_lint: OK ({sum(findings.values())} finding(s) in "
        f"{len(findings)} bucket(s), all within baseline{note})"
    )


if __name__ == "__main__":
    main()
