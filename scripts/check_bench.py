#!/usr/bin/env python3
"""Perf-regression guard over BENCH_evaluators.json.

Run after `bench_evaluators [--smoke]`:

    python3 scripts/check_bench.py BENCH_evaluators.json

Fails when block-max pruning stops paying for itself:
  - bmw must score STRICTLY fewer documents than wand at the bench's
    k on the wikipedia-flavor trace (the whole point of the shallow
    per-block bound check);
  - bmm must score no more documents than maxscore;
  - the block-skip machinery must actually engage (blocks_skipped > 0);
  - every evaluator must agree on queries run (same trace replayed).

Exit codes are distinct on purpose so CI logs are unambiguous:
  0  all guards pass
  1  a perf guard tripped (a real regression)
  2  the input is unusable — file missing/corrupt, an evaluator named
     by --require absent (e.g. a smoke run that skipped it), or a
     sweep entry missing an expected field

--require names the evaluators that must be present, comma-separated
or repeated (default: exhaustive,maxscore,wand,bmw,bmm — the full CI
sweep). Comparisons are only run between evaluators that are present,
so a trimmed smoke file can still be checked with a narrower
--require list instead of dying on a KeyError.
"""

import argparse
import json
import sys

DEFAULT_REQUIRED = ["exhaustive", "maxscore", "wand", "bmw", "bmm"]

# Fields every totals row must carry for the guards to run.
ROW_FIELDS = ["queries", "docs_scored", "blocks_skipped"]


def fail(message: str) -> None:
    """A perf guard tripped: exit 1."""
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def unusable(message: str) -> None:
    """The input cannot be checked at all: exit 2."""
    print(f"check_bench: BAD INPUT: {message}", file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Guard BENCH_evaluators.json against perf regressions"
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_evaluators.json",
        help="bench output to check (default: %(default)s)",
    )
    parser.add_argument(
        "--require",
        action="append",
        metavar="EVALUATORS",
        help=(
            "evaluator(s) that must be present, comma-separated; may be "
            "repeated (default: %s)" % ",".join(DEFAULT_REQUIRED)
        ),
    )
    return parser.parse_args(argv)


def load_totals(path: str, required):
    try:
        with open(path) as handle:
            bench = json.load(handle)
    except FileNotFoundError:
        unusable(f"{path} not found: run bench_evaluators first")
    except json.JSONDecodeError as err:
        unusable(f"{path} is not valid JSON ({err})")

    totals = bench.get("totals")
    if not isinstance(totals, dict) or not totals:
        unusable(f"{path} has no 'totals' section: not a bench output?")

    missing = [name for name in required if name not in totals]
    if missing:
        unusable(
            f"{path} is missing required evaluator(s) {missing} "
            f"(present: {sorted(totals)}); was this a smoke run with a "
            "reduced sweep? Re-run bench_evaluators or narrow --require"
        )

    for name, row in totals.items():
        absent = [f for f in ROW_FIELDS if f not in row]
        if absent:
            unusable(
                f"{path}: totals entry '{name}' lacks field(s) {absent}; "
                "bench output from an incompatible bench_evaluators "
                "version"
            )
    return totals


def main(argv=None) -> None:
    args = parse_args(argv)
    required = []
    for chunk in args.require or [",".join(DEFAULT_REQUIRED)]:
        required.extend(n for n in chunk.split(",") if n)

    totals = load_totals(args.path, required)

    queries = {name: row["queries"] for name, row in totals.items()}
    if len(set(queries.values())) != 1:
        fail(f"evaluators replayed different query counts: {queries}")

    def row(name):
        return totals.get(name)

    wand, bmw = row("wand"), row("bmw")
    maxscore, bmm = row("maxscore"), row("bmm")

    if bmw and wand and bmw["docs_scored"] >= wand["docs_scored"]:
        fail(
            "bmw scored "
            f"{bmw['docs_scored']} docs, wand {wand['docs_scored']}: "
            "block-max pruning must beat flat WAND strictly"
        )
    if bmm and maxscore and bmm["docs_scored"] > maxscore["docs_scored"]:
        fail(
            "bmm scored "
            f"{bmm['docs_scored']} docs, maxscore "
            f"{maxscore['docs_scored']}: block-max must not regress"
        )
    for name in ("bmw", "bmm"):
        entry = row(name)
        if entry and entry["blocks_skipped"] == 0:
            fail(f"{name} skipped zero blocks: skip layer never engaged")

    summary = []
    if bmw and wand:
        saved = 1.0 - bmw["docs_scored"] / wand["docs_scored"]
        summary.append(
            f"bmw scores {bmw['docs_scored']} docs vs wand "
            f"{wand['docs_scored']} ({saved:.1%} fewer)"
        )
    if bmm and maxscore:
        summary.append(
            f"bmm {bmm['docs_scored']} vs maxscore "
            f"{maxscore['docs_scored']}"
        )
    detail = "; ".join(summary) if summary else "no pruning pairs present"
    print(f"check_bench: OK ({args.path}): {detail}")


if __name__ == "__main__":
    main()
