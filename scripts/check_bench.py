#!/usr/bin/env python3
"""Perf guard over the committed BENCH_*.json artifacts.

Run after `bench_evaluators [--smoke]`:

    python3 scripts/check_bench.py BENCH_evaluators.json

after `bench_serving [--smoke]`:

    python3 scripts/check_bench.py --serving BENCH_serving.json

after `bench_scenarios [--smoke]`:

    python3 scripts/check_bench.py --scenarios BENCH_scenarios.json

or after `bench_parallelism [--smoke] [--no-time]`:

    python3 scripts/check_bench.py --parallelism BENCH_parallelism.json

Parallelism gates (--parallelism; guard the intra-query parallel
traversal driver and the joint (cores x frequency) frontier):
  - the file must carry a non-empty 'sweep' (evaluator x cores cells),
    a 'config' with a 'timed' bool, and a 'frontier' list with rows
    for isn_cores 1 and 4 per scenario — anything else is BAD INPUT;
  - determinism: within an evaluator, 'topk_checksum' must be
    IDENTICAL across every core count. The merged top-K is required
    to be bit-identical at any gang width; one flipped score bit
    anywhere in the sweep trips this;
  - work sanity: docs_scored at 4 cores must be >= docs_scored at
    1 core for each pruning evaluator (slices start with a cold
    threshold, so a parallel traversal can only prune less, never
    more — fewer docs at 4 cores means the slices are not covering
    the full doc range);
  - frontier: the isn_cores=4 build must beat isn_cores=1 on at
    least one preset, either on energy at no-worse p99 or on p99 at
    no-worse energy ("no worse" = within 1%). A (cores x frequency)
    grid that cannot beat frequency-only anywhere is a regression;
  - wall clock (armed only when the file says "timed": true, or
    forced with --require-time): ns_per_query at 4 cores must be
    strictly below 1 core for wand and bmw. A --no-time file zeroes
    every wall-clock field, so requesting --require-time on one is
    BAD INPUT (exit 2), not a pass. The committed smoke artifact is
    produced with --no-time (byte-stable across machines); CI's
    multi-core timed run regenerates with timing and arms this gate.

Scenario gates (--scenarios; guard the multi-tenant SLO scenarios):
  - the file must carry a non-empty 'scenarios' list whose cells each
    hold a per-tenant rollup ('tenants') — anything else is BAD INPUT;
  - every tenant's latency percentile ladder must be monotone
    (p50 <= p95 <= p99 <= p99.9 <= max) with shed_rate in [0, 1];
  - at least one hostile scenario must carry both 'cottage' and
    'slo-dvfs' (BAD INPUT otherwise — the comparison cannot run);
  - --require-policies names policies (comma-separated, may repeat)
    that EVERY scenario must carry; a missing cell is BAD INPUT.
    CI passes cottage,slo-dvfs,rank-s,taily so the committed file
    always holds the full policy grid, including the quality-cut
    (rank-s) and resource-selection (taily) baselines;
  - cottage must beat slo-dvfs on at least one hostile shape, on at
    least one axis: lower run p99 latency, lower shed rate, or higher
    mean per-tenant SLO attainment. Coordinated budgets that lose to a
    fixed a-priori deadline on EVERY hostile shape are a regression.

Serving gates (--serving; guard the serving front-end's QPS sweep):
  - the file must carry a 'serving' section with a non-empty 'points'
    ladder and a 'saturation_qps' field (anything else is BAD INPUT);
  - saturation_qps must be > 0 (a sweep that cannot sustain any load
    means admission control is shedding everything — a regression);
  - the LOWEST QPS rung must shed nothing (shed_rate == 0): an
    unloaded cluster that sheds has a broken admission ladder;
  - offered_qps must rise strictly along the ladder (the sweep must
    actually sweep).

Work gates (always run between evaluators that are present):
  - bmw must score STRICTLY fewer documents than wand at the bench's
    k on the wikipedia-flavor trace (the whole point of the shallow
    per-block bound check);
  - bmm must score no more documents than maxscore;
  - the block-skip machinery must actually engage (blocks_skipped > 0);
  - every evaluator must agree on queries run (same trace replayed).

Time gates (ns_per_query; opt-in via an explicit --require): wall time
is machine- and load-dependent, so the time comparisons only run for a
pair when BOTH members are named in an explicit --require list:
  - wand,bmw     -> bmw must beat wand on ns_per_query (strictly);
  - maxscore,bmm -> bmm must not lose to maxscore on ns_per_query.
CI runs the work gates on every bench file and the wand/bmw time gate
on the full (non-smoke) run, which bench_evaluators measures as an
interleaved min-of-N (see --repeats there). A file produced with
--no-time has every ns_per_query zeroed; requesting a time gate on one
is BAD INPUT (exit 2), not a pass.

Exit codes are distinct on purpose so CI logs are unambiguous:
  0  all guards pass
  1  a perf guard tripped (a real regression)
  2  the input is unusable — file missing/corrupt, an evaluator named
     by --require absent (e.g. a smoke run that skipped it), a sweep
     entry missing an expected field, or a time gate requested on a
     --no-time file

--require names the evaluators that must be present, comma-separated
or repeated (default: exhaustive,maxscore,wand,bmw,bmm — the full CI
sweep). Comparisons are only run between evaluators that are present,
so a trimmed smoke file can still be checked with a narrower
--require list instead of dying on a KeyError.

--self-test exercises every gate and exit code on synthetic bench
files and exits 0 only if all behave; ctest runs it so the guard's own
logic is pinned alongside the code it guards.
"""

import argparse
import json
import os
import sys
import tempfile

DEFAULT_REQUIRED = ["exhaustive", "maxscore", "wand", "bmw", "bmm"]

# Fields every totals row must carry for the guards to run.
ROW_FIELDS = ["queries", "docs_scored", "blocks_skipped", "ns_per_query"]

# Fields every serving sweep point must carry.
POINT_FIELDS = [
    "offered_qps",
    "achieved_qps",
    "shed_rate",
    "p95_latency_s",
    "result_cache_hit_rate",
    "stats_cache_hit_rate",
]

# Fields every per-tenant scenario rollup must carry.
TENANT_FIELDS = [
    "tenant",
    "offered",
    "shed_rate",
    "p50_latency_s",
    "p95_latency_s",
    "p99_latency_s",
    "p999_latency_s",
    "max_latency_s",
    "slo_attainment",
    "avg_ndcg",
    "energy_j",
]


def fail(message: str) -> None:
    """A perf guard tripped: exit 1."""
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def unusable(message: str) -> None:
    """The input cannot be checked at all: exit 2."""
    print(f"check_bench: BAD INPUT: {message}", file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Guard BENCH_evaluators.json against perf regressions"
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_evaluators.json",
        help="bench output to check (default: %(default)s)",
    )
    parser.add_argument(
        "--require",
        action="append",
        metavar="EVALUATORS",
        help=(
            "evaluator(s) that must be present, comma-separated; may be "
            "repeated (default: %s). Passing the flag explicitly also "
            "arms the ns_per_query gates for fully-covered pairs"
            % ",".join(DEFAULT_REQUIRED)
        ),
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help=(
            "treat the input as bench_serving output and run the "
            "serving gates instead of the evaluator gates"
        ),
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help=(
            "treat the input as bench_scenarios output and run the "
            "multi-tenant scenario gates"
        ),
    )
    parser.add_argument(
        "--require-policies",
        action="append",
        metavar="POLICIES",
        help=(
            "with --scenarios: policies every scenario must carry, "
            "comma-separated, may be repeated (default: "
            "cottage,slo-dvfs). A scenario missing one is BAD INPUT"
        ),
    )
    parser.add_argument(
        "--parallelism",
        action="store_true",
        help=(
            "treat the input as bench_parallelism output and run the "
            "determinism/work/frontier gates (plus the wall-clock "
            "gate when the file is timed)"
        ),
    )
    parser.add_argument(
        "--require-time",
        action="store_true",
        help=(
            "with --parallelism: force the 4-cores-beats-1 wall-clock "
            "gate even if the file says timed=false (BAD INPUT on a "
            "--no-time file)"
        ),
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check the checker itself on synthetic inputs and exit",
    )
    return parser.parse_args(argv)


def load_totals(path: str, required):
    try:
        with open(path) as handle:
            bench = json.load(handle)
    except FileNotFoundError:
        unusable(f"{path} not found: run bench_evaluators first")
    except json.JSONDecodeError as err:
        unusable(f"{path} is not valid JSON ({err})")

    totals = bench.get("totals")
    if not isinstance(totals, dict) or not totals:
        unusable(f"{path} has no 'totals' section: not a bench output?")

    missing = [name for name in required if name not in totals]
    if missing:
        unusable(
            f"{path} is missing required evaluator(s) {missing} "
            f"(present: {sorted(totals)}); was this a smoke run with a "
            "reduced sweep? Re-run bench_evaluators or narrow --require"
        )

    for name, row in totals.items():
        absent = [f for f in ROW_FIELDS if f not in row]
        if absent:
            unusable(
                f"{path}: totals entry '{name}' lacks field(s) {absent}; "
                "bench output from an incompatible bench_evaluators "
                "version"
            )
    return totals


def check(path: str, required, time_gated) -> str:
    """Run every armed gate; exits via fail()/unusable() on violation.

    Returns the one-line OK summary.
    """
    totals = load_totals(path, required)

    queries = {name: row["queries"] for name, row in totals.items()}
    if len(set(queries.values())) != 1:
        fail(f"evaluators replayed different query counts: {queries}")

    def row(name):
        return totals.get(name)

    wand, bmw = row("wand"), row("bmw")
    maxscore, bmm = row("maxscore"), row("bmm")

    if bmw and wand and bmw["docs_scored"] >= wand["docs_scored"]:
        fail(
            "bmw scored "
            f"{bmw['docs_scored']} docs, wand {wand['docs_scored']}: "
            "block-max pruning must beat flat WAND strictly"
        )
    if bmm and maxscore and bmm["docs_scored"] > maxscore["docs_scored"]:
        fail(
            "bmm scored "
            f"{bmm['docs_scored']} docs, maxscore "
            f"{maxscore['docs_scored']}: block-max must not regress"
        )
    for name in ("bmw", "bmm"):
        entry = row(name)
        if entry and entry["blocks_skipped"] == 0:
            fail(f"{name} skipped zero blocks: skip layer never engaged")

    def timed(name):
        entry = row(name)
        if entry is None:
            unusable(f"time gate needs evaluator '{name}'")
        if entry["ns_per_query"] == 0:
            unusable(
                f"time gate on '{name}' but its ns_per_query is 0: "
                "bench ran with --no-time (or never measured); time "
                "gates need a timed run"
            )
        return entry

    summary = []
    if {"wand", "bmw"} <= time_gated:
        w, b = timed("wand"), timed("bmw")
        if b["ns_per_query"] >= w["ns_per_query"]:
            fail(
                f"bmw took {b['ns_per_query']} ns/query, wand "
                f"{w['ns_per_query']}: block-max decode+prune must beat "
                "flat WAND on wall time, not only on docs scored"
            )
        speedup = 1.0 - b["ns_per_query"] / w["ns_per_query"]
        summary.append(
            f"bmw {b['ns_per_query']} ns/query vs wand "
            f"{w['ns_per_query']} ({speedup:.1%} faster)"
        )
    if {"maxscore", "bmm"} <= time_gated:
        m, b = timed("maxscore"), timed("bmm")
        if b["ns_per_query"] > m["ns_per_query"]:
            fail(
                f"bmm took {b['ns_per_query']} ns/query, maxscore "
                f"{m['ns_per_query']}: bmm must not lose wall time to "
                "flat MaxScore"
            )
        summary.append(
            f"bmm {b['ns_per_query']} ns/query vs maxscore "
            f"{m['ns_per_query']}"
        )

    if bmw and wand:
        saved = 1.0 - bmw["docs_scored"] / wand["docs_scored"]
        summary.append(
            f"bmw scores {bmw['docs_scored']} docs vs wand "
            f"{wand['docs_scored']} ({saved:.1%} fewer)"
        )
    if bmm and maxscore:
        summary.append(
            f"bmm {bmm['docs_scored']} vs maxscore "
            f"{maxscore['docs_scored']}"
        )
    return "; ".join(summary) if summary else "no pruning pairs present"


def check_serving(path: str) -> str:
    """Run the serving-sweep gates; exits via fail()/unusable().

    Returns the one-line OK summary.
    """
    try:
        with open(path) as handle:
            bench = json.load(handle)
    except FileNotFoundError:
        unusable(f"{path} not found: run bench_serving first")
    except json.JSONDecodeError as err:
        unusable(f"{path} is not valid JSON ({err})")

    serving = bench.get("serving")
    if not isinstance(serving, dict):
        unusable(
            f"{path} has no 'serving' section: not bench_serving "
            "output? (--serving checks BENCH_serving.json only)"
        )
    points = serving.get("points")
    if not isinstance(points, list) or not points:
        unusable(f"{path}: 'serving.points' missing or empty")
    if "saturation_qps" not in serving:
        unusable(f"{path}: 'serving' section lacks 'saturation_qps'")

    for i, point in enumerate(points):
        absent = [f for f in POINT_FIELDS if f not in point]
        if absent:
            unusable(
                f"{path}: serving point {i} lacks field(s) {absent}; "
                "output from an incompatible bench_serving version"
            )

    saturation = serving["saturation_qps"]
    if not saturation or saturation <= 0:
        fail(
            f"saturation_qps is {saturation}: the sweep sustained no "
            "load at all — admission control is shedding everything"
        )
    lowest = points[0]
    if lowest["shed_rate"] != 0:
        fail(
            f"lowest rung (offered_qps={lowest['offered_qps']}) shed "
            f"{lowest['shed_rate']:.3f} of its queries: an unloaded "
            "cluster must shed nothing"
        )
    offered = [p["offered_qps"] for p in points]
    if any(b <= a for a, b in zip(offered, offered[1:])):
        fail(f"offered_qps ladder is not strictly rising: {offered}")

    return (
        f"{len(points)} rungs, saturation_qps={saturation}, lowest "
        f"rung shed_rate=0, p95 {lowest['p95_latency_s'] * 1e3:.2f} -> "
        f"{points[-1]['p95_latency_s'] * 1e3:.2f} ms"
    )


# Fields every parallelism sweep cell must carry.
SWEEP_FIELDS = [
    "evaluator",
    "cores",
    "ns_per_query",
    "docs_scored",
    "topk_checksum",
]

# Fields every frontier row must carry.
FRONTIER_FIELDS = [
    "scenario",
    "isn_cores",
    "p99_latency_s",
    "energy_j",
    "avg_ndcg",
]

# The evaluators whose wall-clock must improve at 4 cores when the
# wall-clock gate is armed (timed run or --require-time).
TIME_GATED_EVALUATORS = ["wand", "bmw"]

# "No worse" tolerance for the frontier domination test: a 1% slip on
# the held-equal axis still counts as equal.
FRONTIER_TOLERANCE = 1.01


def check_parallelism(path: str, require_time: bool) -> str:
    """Run the intra-query parallelism gates; exits via fail()/unusable().

    Returns the one-line OK summary.
    """
    try:
        with open(path) as handle:
            bench = json.load(handle)
    except FileNotFoundError:
        unusable(f"{path} not found: run bench_parallelism first")
    except json.JSONDecodeError as err:
        unusable(f"{path} is not valid JSON ({err})")

    config = bench.get("config")
    if not isinstance(config, dict) or "timed" not in config:
        unusable(
            f"{path} has no 'config.timed': not bench_parallelism "
            "output? (--parallelism checks BENCH_parallelism.json only)"
        )
    sweep = bench.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        unusable(f"{path}: 'sweep' list missing or empty")
    frontier = bench.get("frontier")
    if not isinstance(frontier, list) or not frontier:
        unusable(f"{path}: 'frontier' list missing or empty")

    for i, cell in enumerate(sweep):
        absent = [f for f in SWEEP_FIELDS if f not in cell]
        if absent:
            unusable(
                f"{path}: sweep cell {i} lacks field(s) {absent}; "
                "output from an incompatible bench_parallelism version"
            )
    for i, row in enumerate(frontier):
        absent = [f for f in FRONTIER_FIELDS if f not in row]
        if absent:
            unusable(
                f"{path}: frontier row {i} lacks field(s) {absent}; "
                "output from an incompatible bench_parallelism version"
            )

    # Group the sweep by evaluator, cells keyed by core count.
    by_evaluator = {}
    for cell in sweep:
        by_evaluator.setdefault(cell["evaluator"], {})[cell["cores"]] = cell

    # Determinism gate: the merged top-K's bitwise fingerprint must not
    # depend on the gang width. This is the rank-safety contract of the
    # parallel driver — one flipped score bit anywhere trips it.
    for name, cells in by_evaluator.items():
        checksums = {c: cell["topk_checksum"] for c, cell in cells.items()}
        if len(set(checksums.values())) != 1:
            fail(
                f"'{name}' top-K checksum differs across core counts: "
                f"{checksums} — the parallel traversal is not "
                "bit-identical to the sequential one"
            )

    # Work gate: parallel slices start with a cold top-K threshold, so
    # a correct range-partitioned traversal scores AT LEAST as many
    # docs at 4 cores as at 1. Fewer means slices skipped real work.
    for name, cells in by_evaluator.items():
        if 1 not in cells or 4 not in cells:
            unusable(
                f"{path}: evaluator '{name}' lacks the cores=1 and "
                "cores=4 cells the gates compare"
            )
        if cells[4]["docs_scored"] < cells[1]["docs_scored"]:
            fail(
                f"'{name}' scored {cells[4]['docs_scored']} docs at 4 "
                f"cores but {cells[1]['docs_scored']} at 1: a slice is "
                "dropping part of the doc range"
            )

    # Wall-clock gate: only meaningful on a timed run on multi-core
    # hardware; a --no-time artifact zeroes ns_per_query on purpose.
    timed = bool(config["timed"])
    summary = []
    if timed or require_time:
        for name in TIME_GATED_EVALUATORS:
            cells = by_evaluator.get(name)
            if cells is None:
                unusable(f"wall-clock gate needs evaluator '{name}'")
            one, four = cells[1]["ns_per_query"], cells[4]["ns_per_query"]
            if one == 0 or four == 0:
                unusable(
                    f"wall-clock gate on '{name}' but ns_per_query is "
                    "0: the file was produced with --no-time; the gate "
                    "needs a timed run"
                )
            if four >= one:
                fail(
                    f"'{name}' took {four:.0f} ns/query at 4 cores vs "
                    f"{one:.0f} at 1: the parallel driver must deliver "
                    "wall-clock speedup on timed multi-core runs"
                )
            summary.append(f"{name} {one / four:.2f}x at 4 cores")
    else:
        summary.append("untimed artifact (wall-clock gate not armed)")

    # Frontier gate: the joint (cores x frequency) grid must dominate
    # frequency-only somewhere — better energy at no-worse p99, or
    # better p99 at no-worse energy, on at least one preset.
    by_scenario = {}
    for row in frontier:
        by_scenario.setdefault(row["scenario"], {})[row["isn_cores"]] = row
    comparable = {
        name: rows
        for name, rows in by_scenario.items()
        if {1, 4} <= set(rows)
    }
    if not comparable:
        unusable(
            f"{path}: no frontier preset carries both isn_cores=1 and "
            "isn_cores=4; the domination gate cannot run"
        )
    wins = []
    for name, rows in sorted(comparable.items()):
        one, four = rows[1], rows[4]
        axes = []
        if (four["energy_j"] < one["energy_j"]
                and four["p99_latency_s"]
                <= one["p99_latency_s"] * FRONTIER_TOLERANCE):
            axes.append(
                f"energy {four['energy_j']:.2f}J vs "
                f"{one['energy_j']:.2f}J"
            )
        if (four["p99_latency_s"] < one["p99_latency_s"]
                and four["energy_j"]
                <= one["energy_j"] * FRONTIER_TOLERANCE):
            axes.append(
                f"p99 {four['p99_latency_s'] * 1e3:.2f}ms vs "
                f"{one['p99_latency_s'] * 1e3:.2f}ms"
            )
        if axes:
            wins.append(f"{name} ({'; '.join(axes)})")
    if not wins:
        fail(
            "the isn_cores=4 build beat frequency-only on NO preset "
            f"(checked: {sorted(comparable)}): the joint (cores x "
            "frequency) grid must win on energy at no-worse p99 or "
            "p99 at no-worse energy somewhere"
        )

    summary.append(
        f"{len(by_evaluator)} evaluators bit-identical across cores; "
        f"frontier wins: {', '.join(wins)}"
    )
    return "; ".join(summary)


DEFAULT_REQUIRED_POLICIES = ["cottage", "slo-dvfs"]


def check_scenarios(path: str, required_policies) -> str:
    """Run the multi-tenant scenario gates; exits via fail()/unusable().

    Returns the one-line OK summary.
    """
    try:
        with open(path) as handle:
            bench = json.load(handle)
    except FileNotFoundError:
        unusable(f"{path} not found: run bench_scenarios first")
    except json.JSONDecodeError as err:
        unusable(f"{path} is not valid JSON ({err})")

    scenarios = bench.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        unusable(
            f"{path} has no 'scenarios' list: not bench_scenarios "
            "output? (--scenarios checks BENCH_scenarios.json only)"
        )

    hostile_cells = []  # (scenario_name, {policy: summary})
    tenants_checked = 0
    for i, scenario in enumerate(scenarios):
        name = scenario.get("name")
        cells = scenario.get("policies")
        if not name or not isinstance(cells, list) or not cells:
            unusable(f"{path}: scenario {i} lacks 'name'/'policies'")
        by_policy = {}
        for cell in cells:
            summary = cell.get("summary")
            if "policy" not in cell or not isinstance(summary, dict):
                unusable(
                    f"{path}: scenario '{name}' has a cell without "
                    "'policy'/'summary'"
                )
            tenants = summary.get("tenants")
            if not isinstance(tenants, list) or not tenants:
                unusable(
                    f"{path}: scenario '{name}' policy "
                    f"'{cell['policy']}' carries no per-tenant rollups"
                )
            for tenant in tenants:
                absent = [f for f in TENANT_FIELDS if f not in tenant]
                if absent:
                    unusable(
                        f"{path}: scenario '{name}' tenant rollup "
                        f"lacks field(s) {absent}; output from an "
                        "incompatible bench_scenarios version"
                    )
                label = (
                    f"scenario '{name}' / {cell['policy']} / tenant "
                    f"'{tenant['tenant']}'"
                )
                ladder = [
                    tenant["p50_latency_s"],
                    tenant["p95_latency_s"],
                    tenant["p99_latency_s"],
                    tenant["p999_latency_s"],
                    tenant["max_latency_s"],
                ]
                if any(b < a for a, b in zip(ladder, ladder[1:])):
                    fail(
                        f"{label}: latency percentile ladder is not "
                        f"monotone: {ladder}"
                    )
                if not 0.0 <= tenant["shed_rate"] <= 1.0:
                    fail(
                        f"{label}: shed_rate {tenant['shed_rate']} "
                        "outside [0, 1]"
                    )
                tenants_checked += 1
            by_policy[cell["policy"]] = summary
        missing_policies = [
            p for p in required_policies if p not in by_policy
        ]
        if missing_policies:
            unusable(
                f"{path}: scenario '{name}' lacks required policy "
                f"cell(s) {missing_policies} (present: "
                f"{sorted(by_policy)}); re-run bench_scenarios with "
                "the full --policies grid or narrow --require-policies"
            )
        if scenario.get("hostile"):
            hostile_cells.append((name, by_policy))

    comparable = [
        (name, cells)
        for name, cells in hostile_cells
        if {"cottage", "slo-dvfs"} <= set(cells)
    ]
    if not comparable:
        unusable(
            f"{path}: no hostile scenario carries both 'cottage' and "
            "'slo-dvfs'; the Cottage-vs-SLO gate cannot run"
        )

    def mean_attainment(summary):
        tenants = summary["tenants"]
        return sum(t["slo_attainment"] for t in tenants) / len(tenants)

    wins = []
    for name, cells in comparable:
        cottage, slo = cells["cottage"], cells["slo-dvfs"]
        axes = []
        if cottage["p99_latency_s"] < slo["p99_latency_s"]:
            axes.append("p99")
        if cottage["shed_rate"] < slo["shed_rate"]:
            axes.append("shed_rate")
        if mean_attainment(cottage) > mean_attainment(slo):
            axes.append("slo_attainment")
        if axes:
            wins.append(f"{name} ({'/'.join(axes)})")
    if not wins:
        fail(
            "cottage beat slo-dvfs on NO hostile scenario (checked: "
            f"{[name for name, _ in comparable]}): coordinated budget "
            "assignment must outperform a fixed a-priori deadline "
            "under at least one hostile shape"
        )

    return (
        f"{len(scenarios)} scenarios, {tenants_checked} tenant rollups "
        f"monotone; cottage beats slo-dvfs on {', '.join(wins)}"
    )


# ---------------------------------------------------------------------
# Self-test: pin the checker's own behaviour (gates, arming rules, exit
# codes) on synthetic bench files.


def _synthetic_totals(**overrides):
    """A healthy full-sweep totals section; overrides patch fields as
    {evaluator: {field: value}}."""
    base = {
        "exhaustive": {"queries": 100, "docs_scored": 5000,
                       "blocks_skipped": 0, "ns_per_query": 9000},
        "maxscore": {"queries": 100, "docs_scored": 3000,
                     "blocks_skipped": 0, "ns_per_query": 6000},
        "wand": {"queries": 100, "docs_scored": 2500,
                 "blocks_skipped": 0, "ns_per_query": 8000},
        "bmw": {"queries": 100, "docs_scored": 2000,
                "blocks_skipped": 40, "ns_per_query": 7000},
        "bmm": {"queries": 100, "docs_scored": 3000,
                "blocks_skipped": 30, "ns_per_query": 5500},
    }
    for name, fields in overrides.items():
        base[name].update(fields)
    return base


def _run_case(tag, argv, expect_exit):
    """Run main() on argv; assert the exit code (0 encoded as None)."""
    code = 0
    try:
        main(argv)
    except SystemExit as err:
        code = err.code or 0
    if code != expect_exit:
        print(
            f"check_bench self-test: case '{tag}' exited {code}, "
            f"expected {expect_exit}",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"check_bench self-test: case '{tag}' ok (exit {expect_exit})")


def self_test() -> None:
    with tempfile.TemporaryDirectory(prefix="check_bench_") as tmp:

        def bench_file(name, totals):
            path = os.path.join(tmp, name)
            with open(path, "w") as handle:
                json.dump({"bench": "evaluators", "totals": totals},
                          handle)
            return path

        healthy = bench_file("healthy.json", _synthetic_totals())
        _run_case("healthy default gates", [healthy], 0)
        _run_case(
            "healthy armed time gates",
            [healthy, "--require=wand,bmw,maxscore,bmm"],
            0,
        )

        # Work gates trip regardless of --require.
        docs_regressed = bench_file(
            "docs.json", _synthetic_totals(bmw={"docs_scored": 2500})
        )
        _run_case("bmw docs regression", [docs_regressed], 1)
        no_skips = bench_file(
            "skips.json", _synthetic_totals(bmw={"blocks_skipped": 0})
        )
        _run_case("bmw never skipped", [no_skips], 1)
        drifted = bench_file(
            "drift.json", _synthetic_totals(wand={"queries": 99})
        )
        _run_case("query count drift", [drifted], 1)

        # Time gates only arm when the pair is named explicitly...
        slow_bmw = bench_file(
            "slow_bmw.json", _synthetic_totals(bmw={"ns_per_query": 9500})
        )
        _run_case("slow bmw, time gate unarmed", [slow_bmw], 0)
        _run_case(
            "slow bmw, time gate armed", [slow_bmw, "--require=wand,bmw"], 1
        )
        _run_case(
            "slow bmw, only bmm pair armed",
            [slow_bmw, "--require=maxscore,bmm"],
            0,
        )
        slow_bmm = bench_file(
            "slow_bmm.json", _synthetic_totals(bmm={"ns_per_query": 6001})
        )
        _run_case(
            "slow bmm, time gate armed",
            [slow_bmm, "--require=maxscore,bmm"],
            1,
        )
        tie = bench_file(
            "tie.json", _synthetic_totals(bmw={"ns_per_query": 8000})
        )
        _run_case("bmw ties wand, strict gate",
                  [tie, "--require=wand,bmw"], 1)
        bmm_tie = bench_file(
            "bmm_tie.json", _synthetic_totals(bmm={"ns_per_query": 6000})
        )
        _run_case(
            "bmm ties maxscore, lenient gate",
            [bmm_tie, "--require=maxscore,bmm"],
            0,
        )

        # BAD INPUT paths keep exit 2.
        _run_case("missing file", [os.path.join(tmp, "nope.json")], 2)
        corrupt = os.path.join(tmp, "corrupt.json")
        with open(corrupt, "w") as handle:
            handle.write("{not json")
        _run_case("corrupt json", [corrupt], 2)
        totals = _synthetic_totals()
        del totals["bmm"]
        trimmed = bench_file("trimmed.json", totals)
        _run_case("required evaluator absent", [trimmed], 2)
        _run_case(
            "trimmed file, narrowed require",
            [trimmed, "--require=wand,bmw"],
            0,
        )
        broken_row = _synthetic_totals()
        del broken_row["bmw"]["blocks_skipped"]
        fieldless = bench_file("fieldless.json", broken_row)
        _run_case("totals row missing field", [fieldless], 2)
        no_time = bench_file(
            "no_time.json",
            _synthetic_totals(
                **{n: {"ns_per_query": 0} for n in DEFAULT_REQUIRED}
            ),
        )
        _run_case("no-time file, work gates only", [no_time], 0)
        _run_case(
            "no-time file, time gate requested",
            [no_time, "--require=wand,bmw"],
            2,
        )

        # ---- serving gates ----

        def serving_point(qps, shed_rate=0.0):
            return {
                "offered_qps": qps,
                "achieved_qps": qps * (1.0 - shed_rate),
                "shed_rate": shed_rate,
                "p95_latency_s": 0.004 + qps * 1e-6,
                "result_cache_hit_rate": 0.1,
                "stats_cache_hit_rate": 0.8,
            }

        def serving_file(name, points, saturation_qps=None, section=True):
            path = os.path.join(tmp, name)
            body = {"bench": "serving"}
            if section:
                serving = {"points": points}
                if saturation_qps is not None:
                    serving["saturation_qps"] = saturation_qps
                body["serving"] = serving
            with open(path, "w") as handle:
                json.dump(body, handle)
            return path

        healthy_sweep = serving_file(
            "serving.json",
            [serving_point(100), serving_point(200),
             serving_point(400, shed_rate=0.2)],
            saturation_qps=200,
        )
        _run_case("healthy serving sweep", [healthy_sweep, "--serving"], 0)
        _run_case(
            "serving file without --serving (no totals)",
            [healthy_sweep],
            2,
        )
        _run_case(
            "evaluator file with --serving (no serving section)",
            [healthy, "--serving"],
            2,
        )
        shed_cold = serving_file(
            "serving_shed_cold.json",
            [serving_point(100, shed_rate=0.05), serving_point(200)],
            saturation_qps=200,
        )
        _run_case(
            "serving sheds at lowest rung", [shed_cold, "--serving"], 1
        )
        no_sustain = serving_file(
            "serving_no_sustain.json",
            [serving_point(100)],
            saturation_qps=0,
        )
        _run_case(
            "serving saturation_qps zero", [no_sustain, "--serving"], 1
        )
        flat_ladder = serving_file(
            "serving_flat.json",
            [serving_point(100), serving_point(100)],
            saturation_qps=100,
        )
        _run_case(
            "serving ladder not rising", [flat_ladder, "--serving"], 1
        )
        no_saturation_field = serving_file(
            "serving_no_saturation.json", [serving_point(100)]
        )
        _run_case(
            "serving lacks saturation_qps",
            [no_saturation_field, "--serving"],
            2,
        )
        empty_points = serving_file(
            "serving_empty.json", [], saturation_qps=100
        )
        _run_case(
            "serving empty ladder", [empty_points, "--serving"], 2
        )
        bare_point = serving_point(100)
        del bare_point["shed_rate"]
        fieldless_point = serving_file(
            "serving_fieldless.json", [bare_point], saturation_qps=100
        )
        _run_case(
            "serving point missing field",
            [fieldless_point, "--serving"],
            2,
        )

        # ---- scenario gates ----

        def tenant_rollup(name, p99=0.005, shed=0.0, attainment=1.0):
            return {
                "tenant": name,
                "offered": 500,
                "shed_rate": shed,
                "p50_latency_s": 0.002,
                "p95_latency_s": 0.004,
                "p99_latency_s": p99,
                "p999_latency_s": p99 + 0.001,
                "max_latency_s": p99 + 0.002,
                "slo_attainment": attainment,
                "avg_ndcg": 0.9,
                "energy_j": 10.0,
            }

        def scenario_summary(p99=0.005, shed=0.0, attainment=1.0):
            return {
                "p99_latency_s": p99,
                "shed_rate": shed,
                "tenants": [
                    tenant_rollup("interactive", p99, shed, attainment),
                    tenant_rollup("batch", p99, shed, attainment),
                ],
            }

        def scenario_file(name, scenarios):
            path = os.path.join(tmp, name)
            with open(path, "w") as handle:
                json.dump(
                    {"bench": "scenarios", "scenarios": scenarios},
                    handle,
                )
            return path

        def scenario(name, hostile, cottage, slo):
            return {
                "name": name,
                "hostile": hostile,
                "policies": [
                    {"policy": "cottage", "summary": cottage},
                    {"policy": "slo-dvfs", "summary": slo},
                ],
            }

        healthy_scenarios = scenario_file(
            "scenarios.json",
            [
                scenario("mixed_poisson", False, scenario_summary(),
                         scenario_summary()),
                scenario(
                    "straggler_isn",
                    True,
                    scenario_summary(p99=0.006),
                    scenario_summary(p99=0.020, shed=0.05),
                ),
            ],
        )
        _run_case(
            "healthy scenarios", [healthy_scenarios, "--scenarios"], 0
        )
        _run_case(
            "scenario file without --scenarios (no totals)",
            [healthy_scenarios],
            2,
        )

        # Cottage losing every hostile axis is a regression.
        cottage_loses = scenario_file(
            "scenarios_lose.json",
            [
                scenario(
                    "straggler_isn",
                    True,
                    scenario_summary(p99=0.030, shed=0.10,
                                     attainment=0.5),
                    scenario_summary(p99=0.010, shed=0.01,
                                     attainment=0.9),
                )
            ],
        )
        _run_case(
            "cottage loses every hostile shape",
            [cottage_loses, "--scenarios"],
            1,
        )
        # ... but winning a single axis (here: shed rate) passes.
        cottage_shed_win = scenario_file(
            "scenarios_shed_win.json",
            [
                scenario(
                    "flash_crowd",
                    True,
                    scenario_summary(p99=0.030, shed=0.02,
                                     attainment=0.5),
                    scenario_summary(p99=0.010, shed=0.05,
                                     attainment=0.9),
                )
            ],
        )
        _run_case(
            "cottage wins only the shed-rate axis",
            [cottage_shed_win, "--scenarios"],
            0,
        )

        broken_ladder_summary = scenario_summary(p99=0.006)
        broken_ladder_summary["tenants"][0]["p95_latency_s"] = 0.009
        broken_ladder = scenario_file(
            "scenarios_ladder.json",
            [
                scenario("straggler_isn", True, broken_ladder_summary,
                         scenario_summary(p99=0.020)),
            ],
        )
        _run_case(
            "tenant percentile ladder not monotone",
            [broken_ladder, "--scenarios"],
            1,
        )

        bad_shed_summary = scenario_summary()
        bad_shed_summary["tenants"][1]["shed_rate"] = 1.5
        bad_shed = scenario_file(
            "scenarios_shed.json",
            [
                scenario("straggler_isn", True, scenario_summary(),
                         bad_shed_summary),
            ],
        )
        _run_case(
            "tenant shed_rate outside [0,1]",
            [bad_shed, "--scenarios"],
            1,
        )

        # BAD INPUT paths keep exit 2.
        no_hostile = scenario_file(
            "scenarios_no_hostile.json",
            [
                scenario("mixed_poisson", False, scenario_summary(),
                         scenario_summary()),
            ],
        )
        _run_case(
            "no hostile scenario to compare",
            [no_hostile, "--scenarios"],
            2,
        )
        tenantless_summary = scenario_summary()
        tenantless_summary["tenants"] = []
        tenantless = scenario_file(
            "scenarios_tenantless.json",
            [
                scenario("straggler_isn", True, tenantless_summary,
                         scenario_summary()),
            ],
        )
        _run_case(
            "cell without tenant rollups",
            [tenantless, "--scenarios"],
            2,
        )
        bare_tenant_summary = scenario_summary()
        del bare_tenant_summary["tenants"][0]["p999_latency_s"]
        bare_tenant = scenario_file(
            "scenarios_fieldless.json",
            [
                scenario("straggler_isn", True, bare_tenant_summary,
                         scenario_summary()),
            ],
        )
        _run_case(
            "tenant rollup missing field",
            [bare_tenant, "--scenarios"],
            2,
        )
        _run_case(
            "evaluator file with --scenarios (no scenarios list)",
            [healthy, "--scenarios"],
            2,
        )

        # --require-policies: every scenario must carry every named
        # policy cell; the default stays cottage,slo-dvfs.
        def scenario_full_grid(name, hostile):
            return {
                "name": name,
                "hostile": hostile,
                "policies": [
                    {"policy": "cottage",
                     "summary": scenario_summary(p99=0.005)},
                    {"policy": "slo-dvfs",
                     "summary": scenario_summary(p99=0.008)},
                    {"policy": "rank-s",
                     "summary": scenario_summary(p99=0.006)},
                    {"policy": "taily",
                     "summary": scenario_summary(p99=0.007)},
                ],
            }

        full_grid = scenario_file(
            "scenarios_full_grid.json",
            [
                scenario_full_grid("mixed_poisson", False),
                scenario_full_grid("flash_crowd", True),
            ],
        )
        _run_case(
            "full policy grid, all four required",
            [full_grid, "--scenarios",
             "--require-policies=cottage,slo-dvfs,rank-s,taily"],
            0,
        )
        _run_case(
            "baseline file missing a required policy",
            [healthy_scenarios, "--scenarios",
             "--require-policies=cottage,slo-dvfs,rank-s"],
            2,
        )
        _run_case(
            "baseline file, default required policies",
            [healthy_scenarios, "--scenarios"],
            0,
        )

        # ---- parallelism gates ----

        def sweep_cell(evaluator, cores, ns, docs, checksum):
            return {
                "evaluator": evaluator,
                "cores": cores,
                "ns_per_query": ns,
                "docs_scored": docs,
                "topk_checksum": checksum,
            }

        def healthy_cells(timed):
            # Checksums constant per evaluator; docs rise with cores
            # (cold-threshold slices prune less); timing improves to a
            # min at 4 then regresses slightly at 8.
            cells = []
            for name in ("maxscore", "wand", "bmw"):
                for cores, ns in ((1, 8000.0), (2, 4500.0),
                                  (4, 2600.0), (8, 2700.0)):
                    cells.append(sweep_cell(
                        name, cores, ns if timed else 0.0,
                        10000 + (cores - 1) * 50, f"0x{name}"))
            return cells

        def frontier_row(scenario, isn_cores, p99, energy):
            return {
                "scenario": scenario,
                "isn_cores": isn_cores,
                "p99_latency_s": p99,
                "energy_j": energy,
                "avg_ndcg": 0.95,
            }

        def healthy_frontier():
            return [
                frontier_row("mixed_poisson", 1, 0.0040, 13.7),
                frontier_row("mixed_poisson", 4, 0.0036, 6.6),
                frontier_row("flash_crowd", 1, 0.0044, 12.3),
                frontier_row("flash_crowd", 4, 0.0050, 7.3),
            ]

        def parallelism_file(name, sweep, frontier, timed=False):
            path = os.path.join(tmp, name)
            with open(path, "w") as handle:
                json.dump(
                    {
                        "bench": "parallelism",
                        "config": {"timed": timed},
                        "sweep": sweep,
                        "frontier": frontier,
                    },
                    handle,
                )
            return path

        untimed = parallelism_file(
            "par.json", healthy_cells(False), healthy_frontier()
        )
        _run_case("healthy untimed parallelism", [untimed,
                                                  "--parallelism"], 0)
        timed_file = parallelism_file(
            "par_timed.json", healthy_cells(True), healthy_frontier(),
            timed=True,
        )
        _run_case(
            "healthy timed parallelism", [timed_file, "--parallelism"], 0
        )

        drifted_cells = healthy_cells(False)
        drifted_cells[3] = sweep_cell(  # maxscore @ 8 cores
            "maxscore", 8, 0.0, 10350, "0xdeadbeef")
        drifted_checksum = parallelism_file(
            "par_drift.json", drifted_cells, healthy_frontier()
        )
        _run_case(
            "top-K checksum drifts across cores",
            [drifted_checksum, "--parallelism"],
            1,
        )

        shrunk_cells = healthy_cells(False)
        shrunk_cells[6] = sweep_cell(  # wand @ 4 cores scores fewer
            "wand", 4, 0.0, 9000, "0xwand")
        shrunk = parallelism_file(
            "par_shrunk.json", shrunk_cells, healthy_frontier()
        )
        _run_case(
            "4-core slice drops part of the doc range",
            [shrunk, "--parallelism"],
            1,
        )

        slow_cells = healthy_cells(True)
        slow_cells[10] = sweep_cell(  # bmw @ 4 cores slower than @ 1
            "bmw", 4, 9000.0, 10150, "0xbmw")
        slow_timed = parallelism_file(
            "par_slow.json", slow_cells, healthy_frontier(), timed=True
        )
        _run_case(
            "timed run with no 4-core speedup",
            [slow_timed, "--parallelism"],
            1,
        )
        slow_untimed = parallelism_file(
            "par_slow_untimed.json", slow_cells, healthy_frontier()
        )
        _run_case(
            "same cells, wall-clock gate unarmed",
            [slow_untimed, "--parallelism"],
            0,
        )
        _run_case(
            "--require-time on a --no-time artifact",
            [untimed, "--parallelism", "--require-time"],
            2,
        )

        dominated = parallelism_file(
            "par_dominated.json",
            healthy_cells(False),
            [
                frontier_row("mixed_poisson", 1, 0.0040, 10.0),
                frontier_row("mixed_poisson", 4, 0.0050, 12.0),
            ],
        )
        _run_case(
            "frontier: cores build loses everywhere",
            [dominated, "--parallelism"],
            1,
        )
        tolerance_win = parallelism_file(
            "par_tolerance.json",
            healthy_cells(False),
            [
                # Energy halves while p99 slips 0.5% — within the 1%
                # "no worse" band, so the energy axis wins.
                frontier_row("mixed_poisson", 1, 0.00400, 13.0),
                frontier_row("mixed_poisson", 4, 0.00402, 6.5),
            ],
        )
        _run_case(
            "frontier: energy win inside the p99 tolerance",
            [tolerance_win, "--parallelism"],
            0,
        )
        over_tolerance = parallelism_file(
            "par_over_tolerance.json",
            healthy_cells(False),
            [
                # Energy halves but p99 slips 5% — outside the band on
                # one axis and not a win on the other: regression.
                frontier_row("mixed_poisson", 1, 0.00400, 13.0),
                frontier_row("mixed_poisson", 4, 0.00420, 6.5),
            ],
        )
        _run_case(
            "frontier: energy win outside the p99 tolerance",
            [over_tolerance, "--parallelism"],
            1,
        )

        missing_cores = parallelism_file(
            "par_missing_cores.json",
            [c for c in healthy_cells(False) if c["cores"] != 4],
            healthy_frontier(),
        )
        _run_case(
            "sweep lacks the cores=4 cells",
            [missing_cores, "--parallelism"],
            2,
        )
        frequency_only = parallelism_file(
            "par_freq_only.json",
            healthy_cells(False),
            [frontier_row("mixed_poisson", 1, 0.0040, 13.7)],
        )
        _run_case(
            "frontier lacks isn_cores=4 rows",
            [frequency_only, "--parallelism"],
            2,
        )
        bare_cell = healthy_cells(False)
        del bare_cell[0]["topk_checksum"]
        fieldless_sweep = parallelism_file(
            "par_fieldless.json", bare_cell, healthy_frontier()
        )
        _run_case(
            "sweep cell missing field",
            [fieldless_sweep, "--parallelism"],
            2,
        )
        _run_case(
            "evaluator file with --parallelism (no sweep)",
            [healthy, "--parallelism"],
            2,
        )

    print("check_bench self-test: all cases passed")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.self_test:
        self_test()
        return

    if args.serving:
        detail = check_serving(args.path)
        print(f"check_bench: OK ({args.path}): {detail}")
        return

    if args.parallelism:
        detail = check_parallelism(args.path, args.require_time)
        print(f"check_bench: OK ({args.path}): {detail}")
        return

    if args.scenarios:
        required_policies = []
        for chunk in args.require_policies or [
            ",".join(DEFAULT_REQUIRED_POLICIES)
        ]:
            required_policies.extend(
                p for p in chunk.split(",") if p
            )
        detail = check_scenarios(args.path, required_policies)
        print(f"check_bench: OK ({args.path}): {detail}")
        return

    required = []
    for chunk in args.require or [",".join(DEFAULT_REQUIRED)]:
        required.extend(n for n in chunk.split(",") if n)
    # An explicit --require arms the ns_per_query gates for the pairs it
    # fully covers; the default list only enforces the work gates.
    time_gated = set(required) if args.require else set()

    detail = check(args.path, required, time_gated)
    print(f"check_bench: OK ({args.path}): {detail}")


if __name__ == "__main__":
    main()
