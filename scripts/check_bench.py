#!/usr/bin/env python3
"""Perf-regression guard over BENCH_evaluators.json.

Run after `bench_evaluators [--smoke]`:

    python3 scripts/check_bench.py BENCH_evaluators.json

Fails (exit 1) when block-max pruning stops paying for itself:
  - bmw must score STRICTLY fewer documents than wand at the bench's
    k on the wikipedia-flavor trace (the whole point of the shallow
    per-block bound check);
  - bmm must score no more documents than maxscore;
  - the block-skip machinery must actually engage (blocks_skipped > 0);
  - every evaluator must agree on queries run (same trace replayed).
"""

import json
import sys


def fail(message: str) -> None:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_evaluators.json"
    with open(path) as handle:
        bench = json.load(handle)

    totals = bench.get("totals", {})
    for name in ("exhaustive", "maxscore", "wand", "bmw", "bmm"):
        if name not in totals:
            fail(f"totals missing evaluator '{name}' in {path}")

    queries = {name: row["queries"] for name, row in totals.items()}
    if len(set(queries.values())) != 1:
        fail(f"evaluators replayed different query counts: {queries}")

    wand = totals["wand"]
    bmw = totals["bmw"]
    maxscore = totals["maxscore"]
    bmm = totals["bmm"]

    if bmw["docs_scored"] >= wand["docs_scored"]:
        fail(
            "bmw scored "
            f"{bmw['docs_scored']} docs, wand {wand['docs_scored']}: "
            "block-max pruning must beat flat WAND strictly"
        )
    if bmm["docs_scored"] > maxscore["docs_scored"]:
        fail(
            "bmm scored "
            f"{bmm['docs_scored']} docs, maxscore "
            f"{maxscore['docs_scored']}: block-max must not regress"
        )
    for name, row in (("bmw", bmw), ("bmm", bmm)):
        if row["blocks_skipped"] == 0:
            fail(f"{name} skipped zero blocks: skip layer never engaged")

    saved = 1.0 - bmw["docs_scored"] / wand["docs_scored"]
    print(
        f"check_bench: OK ({path}): bmw scores {bmw['docs_scored']} docs "
        f"vs wand {wand['docs_scored']} ({saved:.1%} fewer), "
        f"bmm {bmm['docs_scored']} vs maxscore {maxscore['docs_scored']}"
    )


if __name__ == "__main__":
    main()
