#!/usr/bin/env python3
"""clang-tidy gate: fail CI on any NEW finding.

Runs run-clang-tidy over the exported compilation database (or parses
a pre-captured log) and compares the findings against the committed
baseline. A finding is keyed by (repo-relative file, check name); the
job fails when a key appears that the baseline lacks, or when a key's
count grows. Line numbers are deliberately NOT part of the key so an
unrelated edit shifting lines cannot flip the gate.

    python3 scripts/check_clang_tidy.py --build-dir build
    python3 scripts/check_clang_tidy.py --log tidy.log
    python3 scripts/check_clang_tidy.py --build-dir build --update-baseline

The baseline (scripts/clang_tidy_baseline.json) is empty today: the
tree is clean under the curated .clang-tidy profile. Keep it that way;
--update-baseline exists for bootstrapping a new check family, and a
grown baseline must be justified in the PR that grows it.

Exit codes: 0 clean/no new findings, 1 new findings, 2 tooling error.
"""

import argparse
import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "clang_tidy_baseline.json"
)

# "path/to/file.cc:12:5: warning: message text [check-name]"
FINDING_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+.*\[(?P<check>[\w.,-]+)\]\s*$"
)


def tooling_error(message: str) -> None:
    print(f"check_clang_tidy: ERROR: {message}", file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Gate clang-tidy findings against the baseline"
    )
    parser.add_argument(
        "--build-dir",
        help="build tree holding compile_commands.json; run-clang-tidy "
        "is invoked over src/ when given",
    )
    parser.add_argument(
        "--log", help="parse this pre-captured run-clang-tidy output "
        "instead of invoking the tool"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings",
    )
    parser.add_argument(
        "--run-clang-tidy",
        default="run-clang-tidy",
        help="run-clang-tidy executable (default: %(default)s)",
    )
    return parser.parse_args(argv)


def capture_output(args) -> str:
    if args.log:
        try:
            with open(args.log) as handle:
                return handle.read()
        except OSError as err:
            tooling_error(f"cannot read --log file: {err}")
    if not args.build_dir:
        tooling_error("need --build-dir or --log")
    db = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(db):
        tooling_error(
            f"{db} not found: configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
        )
    cmd = [
        args.run_clang_tidy,
        "-p",
        args.build_dir,
        "-quiet",
        r".*/src/.*",
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, cwd=REPO_ROOT
        )
    except FileNotFoundError:
        tooling_error(f"{args.run_clang_tidy} not installed")
    # run-clang-tidy exits nonzero on clang-tidy *errors* (e.g. a file
    # that fails to parse); findings themselves are judged below.
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stderr)
        tooling_error(f"run-clang-tidy exited {proc.returncode}")
    return proc.stdout + "\n" + proc.stderr


def collect_findings(text: str):
    """Map 'relpath::check' -> count, deduplicating repeated emissions
    (headers are re-reported once per including TU)."""
    seen_lines = set()
    counts = {}
    for line in text.splitlines():
        match = FINDING_RE.match(line.strip())
        if not match:
            continue
        path = os.path.normpath(match.group("file"))
        if os.path.isabs(path):
            path = os.path.relpath(path, REPO_ROOT)
        # A header finding surfaces once per including TU at the same
        # line; count each source position once.
        position = (path, match.group("line"), match.group("check"))
        if position in seen_lines:
            continue
        seen_lines.add(position)
        for check in match.group("check").split(","):
            key = f"{path}::{check}"
            counts[key] = counts.get(key, 0) + 1
    return counts


def main(argv=None) -> None:
    args = parse_args(argv)
    findings = collect_findings(capture_output(args))

    if args.update_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(findings, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"check_clang_tidy: baseline rewritten with "
            f"{sum(findings.values())} finding(s) in {len(findings)} "
            "bucket(s)"
        )
        return

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        baseline = {}
    except json.JSONDecodeError as err:
        tooling_error(f"baseline is not valid JSON ({err})")

    regressions = []
    for key, count in sorted(findings.items()):
        allowed = baseline.get(key, 0)
        if count > allowed:
            regressions.append(f"{key}: {count} (baseline {allowed})")

    if regressions:
        print("check_clang_tidy: NEW findings over baseline:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)

    fixed = sum(
        1 for key, allowed in baseline.items()
        if findings.get(key, 0) < allowed
    )
    note = f"; {fixed} baseline bucket(s) improved — shrink the baseline" \
        if fixed else ""
    print(
        f"check_clang_tidy: OK ({sum(findings.values())} finding(s) in "
        f"{len(findings)} bucket(s), all within baseline{note})"
    )


if __name__ == "__main__":
    main()
