/**
 * @file
 * cottage_lint — project-invariant static checks for the Cottage tree.
 *
 * The checker enforces the determinism and rank-safety contracts of
 * DESIGN.md §5b/§5e at CI time, before a single query runs:
 *
 *   D1  no iteration over std::unordered_map / std::unordered_set in
 *       non-test translation units (order-dependent output from hash
 *       containers is the classic replay-divergence bug);
 *   D2  no wall-clock or libc randomness outside the blessed files —
 *       rand()/random_device belong to src/util/rng.cc, the chrono
 *       clocks and time() to src/util/stopwatch.h; all sim time comes
 *       from the event clock;
 *   D3  no `float` in src/index, src/engine, src/sim — the
 *       bit-exactness contract is on doubles;
 *   D4  assert() is banned in favor of COTTAGE_CHECK, and raw
 *       new/delete are banned outside allow-listed arena code;
 *   D5  every std::sort / std::stable_sort in non-test code must name
 *       a comparator (default `<` on pointers, or on pairs holding
 *       pointers, is a latent nondeterminism);
 *   D6  raw SIMD intrinsics are confined to src/index — vector
 *       kernels pair with a byte-identical scalar fallback there;
 *   D7  hook purity (cross-TU): QueryTracer / MetricsRegistry code
 *       and hook-pointer-guarded regions must not reach writes to
 *       measured state (members of classes under src/sim, src/engine,
 *       src/index — per the project symbol index and call graph);
 *   D8  gang-shared state: lambdas handed to the ThreadPool may write
 *       a by-reference capture only through a per-worker indexed slot
 *       or a COTTAGE_GUARDED_BY member;
 *   D9  seed discipline: every Rng construction must show its seed
 *       provenance at the call site (a *seed* identifier or .split()).
 *
 * D7-D9 are flow rules over the cross-TU symbol index; the model and
 * its deliberate approximations are in docs/static_analysis.md.
 *
 * Findings are suppressed per line with
 *
 *     // cottage-lint: allow(D1): <justification, >= 10 chars>
 *
 * either on the offending line or alone on the line above it. An
 * allow() without a justification is itself a finding (rule SUP) and
 * suppresses nothing.
 */

#ifndef COTTAGE_LINT_LINT_H
#define COTTAGE_LINT_LINT_H

#include <string>
#include <vector>

namespace cottage::lint {

/** One finding, formatted as file:line: [rule] message. */
struct Diagnostic
{
    std::string file;
    int line;
    std::string rule; ///< "D1".."D9", or "SUP" for a bad suppression.
    std::string message;

    /** Render in the canonical file:line: [rule] form. */
    std::string format() const;
};

/** One source file queued for checking. */
struct SourceFile
{
    std::string path; ///< Repo-relative path; drives rule scoping.
    std::string content;
};

/**
 * Two-phase checker. addFile() every translation unit first (phase one
 * collects the hash-container identifier names D1 matches against
 * project-wide, so a map declared in a header is caught when iterated
 * in a .cc), then run() applies the rules and suppressions.
 */
class Linter
{
  public:
    /** Queue a file. @p path should be repo-relative with '/'. */
    void addFile(std::string path, std::string content);

    /** Check every queued file; diagnostics in path-then-line order. */
    std::vector<Diagnostic> run() const;

  private:
    std::vector<SourceFile> files_;
};

/**
 * Convenience wrapper: lint one file in isolation under a virtual
 * path (rule scoping comes from the path, so a fixture can pretend to
 * live in src/index/). Used by tests and the CLI's --as mode.
 */
std::vector<Diagnostic> lintContent(const std::string &virtualPath,
                                    const std::string &content);

/** True when @p path is test code (tests/ dir or test_ file prefix). */
bool isTestPath(const std::string &path);

} // namespace cottage::lint

#endif // COTTAGE_LINT_LINT_H
