/**
 * @file
 * Project-wide symbol index for cottage_lint's flow rules (D7-D9).
 *
 * One pass over every lexed file harvests just enough structure for
 * the cross-TU rules without becoming a compiler front end:
 *
 *  - class/struct definitions (including forward declarations,
 *    nested classes and out-of-line method owners) with their data
 *    member names and the file that defines them;
 *  - function and method definitions with a token span for the body,
 *    the set of decl-heuristic locals, the bare names they call, and
 *    every write site (identifier op= / ++ / --) classified by access
 *    path (bare, `.`, `->`) and whether it went through an index
 *    (`slot[i] = ...` — the sanctioned per-worker pattern);
 *  - members annotated COTTAGE_GUARDED_BY (the D8 escape hatch);
 *  - variables declared as `QueryTracer *` / `MetricsRegistry *`
 *    (the nullable hook pointers whose guard blocks D7 audits).
 *
 * finalize() then computes the "measured member" set (data members of
 * classes defined under src/sim, src/engine or src/index — the state
 * whose bytes the replay contract covers) and runs a fixed point over
 * the name-keyed call graph so every function knows whether it can
 * reach a measured-state write.
 *
 * Everything is name-keyed, not type-resolved; the deliberate over-
 * and under-approximations are documented in docs/static_analysis.md.
 */

#ifndef COTTAGE_LINT_SYMBOL_INDEX_H
#define COTTAGE_LINT_SYMBOL_INDEX_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace cottage::lint {

/** How a written identifier was reached. */
enum class WriteAccess {
    Bare, ///< `name = ...` (local, member of *this, or global)
    Dot,  ///< `obj.name = ...` (value/reference access)
    Ptr,  ///< `obj->name = ...` (pointer access)
};

/** One write site inside a function body. */
struct WriteSite
{
    std::string name; ///< Identifier assigned / incremented.
    std::string base; ///< Receiver for Dot/Ptr access ("" if complex).
    int line = 0;
    WriteAccess access = WriteAccess::Bare;
    bool indexed = false;     ///< Went through `[...]` (slot write).
    bool declaration = false; ///< Looked like a decl-with-initializer.
};

/** One function or method definition (or bodyless declaration). */
struct FunctionInfo
{
    std::string name;  ///< As written, e.g. "DistributedEngine::run".
    std::string bare;  ///< Last component, e.g. "run".
    std::string klass; ///< Owning class ("" for free functions).
    std::string file;
    int line = 0;

    /** Body token span in the owning file's stream (0,0 = bodyless). */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;

    std::set<std::string> locals;  ///< Parameters + decl-heuristic.
    std::set<std::string> callees; ///< Bare names called in the body.
    std::vector<WriteSite> writes;

    /** Set by finalize(): body can reach a measured-state write. */
    bool writesMeasured = false;
    std::string measuredWhy; ///< Human-readable evidence chain.

    bool defined() const { return bodyEnd > bodyBegin; }
};

/** One class/struct, merged across forward decls and the definition. */
struct ClassInfo
{
    std::string file; ///< File of the definition (or first decl).
    bool defined = false;
    std::set<std::string> members; ///< Data member names.
};

/** The project-wide index the flow rules query. */
class SymbolIndex
{
  public:
    /** Harvest one file; call once per file, then finalize(). */
    void addFile(const std::string &path, const LexedFile &lexed);

    /** Compute measured members + the call-graph fixed point. */
    void finalize();

    const std::map<std::string, ClassInfo> &classes() const
    {
        return classes_;
    }
    const std::vector<FunctionInfo> &functions() const
    {
        return functions_;
    }

    /** Data member of a class defined under src/sim|engine|index. */
    bool isMeasuredMember(const std::string &name) const
    {
        return measuredMembers_.count(name) != 0;
    }

    /** Data member of any indexed class (for D8's `this` captures). */
    bool isAnyMember(const std::string &name) const
    {
        return allMembers_.count(name) != 0;
    }

    /** Member carrying a COTTAGE_GUARDED_BY annotation. */
    bool isGuardedMember(const std::string &name) const
    {
        return guardedMembers_.count(name) != 0;
    }

    /** Variable declared as QueryTracer* / MetricsRegistry*. */
    bool isHookPointer(const std::string &name) const
    {
        return hookPointers_.count(name) != 0;
    }

    /**
     * Conservative call resolution: true when the bare name resolves
     * to at least one defined function and EVERY defined candidate
     * can reach a measured-state write (ambiguous names with mixed
     * candidates resolve to false — see docs/static_analysis.md).
     * On true, @p why receives the evidence chain of one candidate.
     */
    bool calleeWritesMeasured(const std::string &bare,
                              std::string *why) const;

  private:
    std::map<std::string, ClassInfo> classes_;
    std::vector<FunctionInfo> functions_;
    std::map<std::string, std::vector<std::size_t>> byBare_;
    std::set<std::string> guardedMembers_;
    std::set<std::string> hookPointers_;
    std::set<std::string> measuredMembers_;
    std::set<std::string> allMembers_;
};

/** Assignment-operator spellings that write their left-hand side. */
bool isAssignOp(const std::string &t);

/** C++ keywords / contextual keywords the scanners must not treat as
 *  names. */
bool isCppKeyword(const std::string &t);

/**
 * True when @p t can end the type part of a declaration whose
 * declarator follows — an identifier or a type-ish keyword (`double`,
 * `auto`, `const`, ...), but not an expression keyword (`return`,
 * `throw`, ...). The decl heuristics share this.
 */
bool isDeclPrevToken(const Token &t);

/**
 * Scan [begin, end) of a token stream for write sites (assignment
 * operators with optional `[...]` between name and operator, and
 * pre/post increment/decrement). Shared by the index builder and the
 * guarded-region / lambda-body rule scans.
 */
std::vector<WriteSite> scanWrites(const std::vector<Token> &toks,
                                  std::size_t begin, std::size_t end);

/** Index of the token closing the group opened at @p open
 *  (returns end when unbalanced). Tracks (), [], {}. */
std::size_t matchGroup(const std::vector<Token> &toks, std::size_t open,
                       std::size_t end);

} // namespace cottage::lint

#endif // COTTAGE_LINT_SYMBOL_INDEX_H
