#include "symbol_index.h"

#include <algorithm>

namespace cottage::lint {

namespace {

const std::set<std::string> kKeywords = {
    "alignas",   "alignof",  "auto",     "bool",     "break",
    "case",      "catch",    "char",     "class",    "co_await",
    "co_return", "co_yield", "const",    "consteval","constexpr",
    "constinit", "continue", "decltype", "default",  "delete",
    "do",        "double",   "else",     "enum",     "explicit",
    "extern",    "false",    "final",    "float",    "for",
    "friend",    "goto",     "if",       "inline",   "int",
    "long",      "mutable",  "namespace","new",      "noexcept",
    "nullptr",   "operator", "override", "private",  "protected",
    "public",    "register", "requires", "return",   "short",
    "signed",    "sizeof",   "static",   "static_assert",
    "static_cast","struct",  "switch",   "template", "this",
    "thread_local","throw",  "true",     "try",      "typedef",
    "typeid",    "typename", "union",    "unsigned", "using",
    "virtual",   "void",     "volatile", "while",
};

/**
 * Keywords that may precede an identifier in an *expression* (so an
 * identifier after one is not a declarator). Everything else —
 * including the built-in type keywords — reads as the tail of a
 * declaration's type.
 */
const std::set<std::string> kExprKeywords = {
    "return", "case",   "goto",     "throw",    "else",
    "do",     "if",     "while",    "for",      "switch",
    "new",    "delete", "co_return","co_yield", "co_await",
    "sizeof", "typeid", "operator", "break",    "continue",
    "try",    "catch",  "default",  "true",     "false",
    "nullptr","this",   "typename",
};

/** src subtrees whose class members are "measured state" (D7). */
bool
isMeasuredPath(const std::string &path)
{
    return path.find("src/sim/") != std::string::npos ||
           path.find("src/engine/") != std::string::npos ||
           path.find("src/index/") != std::string::npos;
}

/** Project annotation / check macros (skipped with their parens). */
bool
isProjectMacro(const std::string &t)
{
    return t.rfind("COTTAGE_", 0) == 0;
}

/** Skip a balanced `<...>` starting at @p open (pointing at '<'). */
std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t open,
           std::size_t end)
{
    int depth = 0;
    for (std::size_t j = open; j < end; ++j) {
        const std::string &t = toks[j].text;
        if (t == "<")
            ++depth;
        else if (t == ">")
            --depth;
        else if (t == ">>")
            depth -= 2;
        else if (t == "(" || t == "[" || t == "{")
            j = matchGroup(toks, j, end);
        if (depth <= 0 && j >= open)
            return j + 1;
    }
    return end;
}

/** Skip an enum definition/declaration through its ';'. */
std::size_t
skipEnum(const std::vector<Token> &toks, std::size_t i, std::size_t end)
{
    for (std::size_t j = i; j < end; ++j) {
        if (toks[j].text == "{")
            j = matchGroup(toks, j, end);
        else if (toks[j].text == ";")
            return j + 1;
    }
    return end;
}

} // namespace

bool
isAssignOp(const std::string &t)
{
    return t == "=" || t == "+=" || t == "-=" || t == "*=" ||
           t == "/=" || t == "%=" || t == "&=" || t == "|=" ||
           t == "^=" || t == "<<=" || t == ">>=";
}

bool
isCppKeyword(const std::string &t)
{
    return kKeywords.count(t) != 0;
}

bool
isDeclPrevToken(const Token &t)
{
    return t.kind == TokenKind::Identifier && !kExprKeywords.count(t.text);
}

std::size_t
matchGroup(const std::vector<Token> &toks, std::size_t open,
           std::size_t end)
{
    int depth = 0;
    for (std::size_t j = open; j < end; ++j) {
        const std::string &t = toks[j].text;
        if (t == "(" || t == "[" || t == "{")
            ++depth;
        else if (t == ")" || t == "]" || t == "}") {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return end;
}

std::vector<WriteSite>
scanWrites(const std::vector<Token> &toks, std::size_t begin,
           std::size_t end)
{
    std::vector<WriteSite> out;

    auto accessOf = [&](std::size_t i, WriteSite &w) {
        const std::string prev = i > begin ? toks[i - 1].text : "";
        if (prev == ".")
            w.access = WriteAccess::Dot;
        else if (prev == "->")
            w.access = WriteAccess::Ptr;
        else
            w.access = WriteAccess::Bare;
        if (w.access != WriteAccess::Bare && i >= begin + 2 &&
            toks[i - 2].kind == TokenKind::Identifier)
            w.base = toks[i - 2].text;
    };

    auto declAt = [&](std::size_t i) {
        if (i <= begin)
            return false;
        const Token &p = toks[i - 1];
        if (p.kind == TokenKind::Identifier)
            return isDeclPrevToken(p);
        if (p.text == ">")
            return true;
        if ((p.text == "*" || p.text == "&" || p.text == "&&") &&
            i >= begin + 2 && isDeclPrevToken(toks[i - 2]))
            return true;
        return false;
    };

    for (std::size_t i = begin; i < end; ++i) {
        const Token &t = toks[i];

        // Prefix ++/--: target is the (possibly accessed) identifier
        // that follows.
        if ((t.text == "++" || t.text == "--") && i + 1 < end &&
            toks[i + 1].kind == TokenKind::Identifier &&
            !isCppKeyword(toks[i + 1].text))
        {
            std::size_t target = i + 1;
            WriteSite w;
            if (target + 2 < end && (toks[target + 1].text == "." ||
                                     toks[target + 1].text == "->") &&
                toks[target + 2].kind == TokenKind::Identifier)
            {
                w.base = toks[target].text;
                w.access = toks[target + 1].text == "."
                               ? WriteAccess::Dot
                               : WriteAccess::Ptr;
                target += 2;
            }
            w.name = toks[target].text;
            w.line = toks[target].line;
            std::size_t k = target + 1;
            while (k < end && toks[k].text == "[") {
                w.indexed = true;
                k = matchGroup(toks, k, end) + 1;
            }
            out.push_back(std::move(w));
            continue;
        }

        if (t.kind != TokenKind::Identifier || isCppKeyword(t.text))
            continue;

        // Identifier, optional [...] groups, then an assignment
        // operator or postfix ++/--.
        std::size_t k = i + 1;
        bool indexed = false;
        while (k < end && toks[k].text == "[") {
            indexed = true;
            k = matchGroup(toks, k, end) + 1;
        }
        if (k >= end)
            continue;
        const std::string &op = toks[k].text;
        if (!isAssignOp(op) && op != "++" && op != "--")
            continue;
        // `x == y` never reaches here ("==" is one token), but an
        // assignment inside a condition does — that is still a write.
        WriteSite w;
        w.name = t.text;
        w.line = t.line;
        w.indexed = indexed;
        accessOf(i, w);
        w.declaration = w.access == WriteAccess::Bare && !indexed &&
                        op == "=" && declAt(i);
        out.push_back(std::move(w));
    }
    return out;
}

namespace {

/**
 * Per-file harvesting pass: walks the token stream with a small
 * recursive-descent structure (classes recurse, function bodies are
 * consumed wholesale) and appends what it finds to the index's
 * containers. Name-keyed only; see the file comment in the header.
 */
class FileScanner
{
  public:
    FileScanner(const std::string &path, const LexedFile &lexed,
                std::map<std::string, ClassInfo> &classes,
                std::vector<FunctionInfo> &functions,
                std::set<std::string> &guardedMembers,
                std::set<std::string> &hookPointers)
        : path_(path), toks_(lexed.tokens), classes_(classes),
          functions_(functions), guardedMembers_(guardedMembers),
          hookPointers_(hookPointers)
    {
    }

    void
    run()
    {
        scanAnnotationsAndHooks();
        const std::size_t n = toks_.size();
        std::size_t i = 0;
        while (i < n)
            i = step(i, n, "");
    }

  private:
    /** Whole-stream pass for GUARDED_BY members and hook pointers. */
    void
    scanAnnotationsAndHooks()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (t.kind != TokenKind::Identifier)
                continue;
            if (t.text == "COTTAGE_GUARDED_BY" && i > 0 &&
                toks_[i - 1].kind == TokenKind::Identifier)
                guardedMembers_.insert(toks_[i - 1].text);
            if ((t.text == "QueryTracer" || t.text == "MetricsRegistry") &&
                i + 2 < toks_.size() && toks_[i + 1].text == "*" &&
                toks_[i + 2].kind == TokenKind::Identifier &&
                !isCppKeyword(toks_[i + 2].text))
                hookPointers_.insert(toks_[i + 2].text);
        }
    }

    /** Process one construct starting at @p i; returns the next index. */
    std::size_t
    step(std::size_t i, std::size_t end, const std::string &classCtx)
    {
        const Token &t = toks_[i];
        if (t.kind == TokenKind::Identifier) {
            if (t.text == "template" && i + 1 < end &&
                toks_[i + 1].text == "<")
                return skipAngles(toks_, i + 1, end);
            if (t.text == "class" || t.text == "struct")
                return parseClass(i, end, classCtx);
            if (t.text == "enum")
                return skipEnum(toks_, i, end);
            if (t.text == "namespace") {
                // Namespaces are transparent: enter the braces and
                // keep walking (the stray '}' is skipped later).
                std::size_t j = i + 1;
                while (j < end && toks_[j].text != "{" &&
                       toks_[j].text != ";" && toks_[j].text != "=")
                    ++j;
                return j < end && toks_[j].text == "{" ? j + 1 : j + 1;
            }
            if (!isCppKeyword(t.text) && i + 1 < end &&
                toks_[i + 1].text == "(")
            {
                const std::size_t after = tryParseFunction(i, end, classCtx);
                if (after != kFail)
                    return after;
            }
            return i + 1;
        }
        if (t.text == "{")
            return matchGroup(toks_, i, end) + 1;
        return i + 1;
    }

    /**
     * Parse `class|struct [macros] Name ... ;` (declaration) or
     * `... { body }` (definition, recursing into the body).
     * Returns the index past the construct.
     */
    std::size_t
    parseClass(std::size_t i, std::size_t end, const std::string &outer)
    {
        std::size_t j = i + 1;
        std::string name;
        while (j < end) {
            const Token &t = toks_[j];
            if (t.kind != TokenKind::Identifier)
                break;
            if ((isProjectMacro(t.text) || t.text == "alignas") &&
                j + 1 < end && toks_[j + 1].text == "(")
            {
                j = matchGroup(toks_, j + 1, end) + 1;
                continue;
            }
            name = t.text;
            ++j;
            break;
        }
        if (name.empty())
            return i + 1; // anonymous / unstructured; let the walker cope

        const std::string qual =
            outer.empty() ? name : outer + "::" + name;

        int angle = 0;
        std::size_t k = j;
        while (k < end) {
            const std::string &t = toks_[k].text;
            if (t == "<")
                ++angle;
            else if (t == ">")
                angle = std::max(0, angle - 1);
            else if (t == ">>")
                angle = std::max(0, angle - 2);
            else if (t == "(") {
                k = matchGroup(toks_, k, end) + 1;
                continue;
            } else if (t == "{" && angle == 0) {
                ClassInfo &ci = classes_[qual];
                if (!ci.defined) {
                    ci.defined = true;
                    ci.file = path_;
                }
                const std::size_t close = matchGroup(toks_, k, end);
                parseClassBody(qual, k + 1, close);
                return close + 1;
            } else if (t == ";") {
                // Forward declaration (or an elaborated-type decl).
                ClassInfo &ci = classes_[qual];
                if (ci.file.empty())
                    ci.file = path_;
                return k + 1;
            }
            ++k;
        }
        return end;
    }

    /** Walk a class body: nested types, methods, member decls. */
    void
    parseClassBody(const std::string &qual, std::size_t begin,
                   std::size_t end)
    {
        std::size_t declStart = begin;
        int angle = 0;
        std::size_t j = begin;
        while (j < end) {
            const Token &t = toks_[j];
            if (t.kind == TokenKind::Identifier) {
                const std::string &s = t.text;
                if (s == "template" && j + 1 < end &&
                    toks_[j + 1].text == "<")
                {
                    j = skipAngles(toks_, j + 1, end);
                    continue;
                }
                if ((s == "public" || s == "private" ||
                     s == "protected") &&
                    j + 1 < end && toks_[j + 1].text == ":")
                {
                    j += 2;
                    declStart = j;
                    continue;
                }
                if (s == "class" || s == "struct") {
                    j = parseClass(j, end, qual);
                    declStart = j;
                    continue;
                }
                if (s == "enum") {
                    j = skipEnum(toks_, j, end);
                    declStart = j;
                    continue;
                }
                if (s == "using" || s == "typedef" || s == "friend" ||
                    s == "static_assert")
                {
                    while (j < end && toks_[j].text != ";")
                        ++j;
                    ++j;
                    declStart = j;
                    continue;
                }
                if (angle == 0 && !isCppKeyword(s) && j + 1 < end &&
                    toks_[j + 1].text == "(" && !isProjectMacro(s))
                {
                    const std::size_t after =
                        tryParseFunction(j, end, qual);
                    if (after != kFail) {
                        j = after;
                        declStart = j;
                        continue;
                    }
                }
                ++j;
                continue;
            }
            const std::string &s = t.text;
            if (s == "<")
                ++angle;
            else if (s == ">")
                angle = std::max(0, angle - 1);
            else if (s == ">>")
                angle = std::max(0, angle - 2);
            else if (s == "{") {
                // Brace initializer in a member decl; the decl still
                // ends at its ';'.
                j = matchGroup(toks_, j, end) + 1;
                continue;
            } else if (s == ";") {
                processMemberDecl(qual, declStart, j);
                ++j;
                declStart = j;
                angle = 0;
                continue;
            }
            ++j;
        }
    }

    /** Extract the member name from one `type name [init];` span. */
    void
    processMemberDecl(const std::string &qual, std::size_t begin,
                      std::size_t end)
    {
        if (begin >= end)
            return;
        int angle = 0;
        std::size_t stop = end;
        for (std::size_t k = begin; k < end; ++k) {
            const std::string &t = toks_[k].text;
            if (t == "<")
                ++angle;
            else if (t == ">")
                angle = std::max(0, angle - 1);
            else if (t == ">>")
                angle = std::max(0, angle - 2);
            else if (angle == 0 &&
                     (t == "=" || t == "{" ||
                      (toks_[k].kind == TokenKind::Identifier &&
                       isProjectMacro(t) && k + 1 < end &&
                       toks_[k + 1].text == "(")))
            {
                stop = k;
                break;
            } else if (angle == 0 && t == "(") {
                // Unparsed function-ish declaration; not a member.
                return;
            }
        }
        // The declarator name is the identifier right before the stop
        // (or the last identifier of the span for plain `type name;`).
        for (std::size_t k = stop; k-- > begin;) {
            const Token &t = toks_[k];
            if (t.kind == TokenKind::Identifier) {
                if (isCppKeyword(t.text))
                    return;
                classes_[qual].members.insert(t.text);
                return;
            }
            if (t.text != "]" && t.text != ")" &&
                t.kind != TokenKind::Number)
            {
                if (stop == end)
                    continue; // bitfield ': 3' tail etc.
                return;
            }
        }
    }

    /**
     * Try to parse a function/method whose name identifier is at
     * @p i (with '(' at i+1). Returns the index past the declaration
     * or definition, or kFail when the shape is not a function.
     */
    std::size_t
    tryParseFunction(std::size_t i, std::size_t end,
                     const std::string &classCtx)
    {
        // Walk the qualified-name chain backwards: A::B::name.
        std::size_t first = i;
        while (first >= 2 && toks_[first - 1].text == "::" &&
               toks_[first - 2].kind == TokenKind::Identifier)
            first -= 2;
        if (first > 0) {
            const std::string &p = toks_[first - 1].text;
            // A call expression, not a declarator.
            if (p == "." || p == "->" || p == "=" || p == "(" ||
                p == "," || p == "return" || p == "!" || p == "&&" ||
                p == "||" || p == "?" || p == ":" || p == "+" ||
                p == "-" || p == "<" || isAssignOp(p))
                return kFail;
        }

        const std::size_t paren = i + 1;
        const std::size_t close = matchGroup(toks_, paren, end);
        if (close >= end)
            return kFail;

        // Scan the qualifier tail for '{' (definition), ';'/'='
        // (declaration), or anything else (not a function).
        std::size_t j = close + 1;
        std::size_t bodyOpen = 0;
        bool declOnly = false;
        while (j < end) {
            const std::string &t = toks_[j].text;
            if (t == "const" || t == "noexcept" || t == "override" ||
                t == "final" || t == "mutable" || t == "throw" ||
                t == "&" || t == "&&")
            {
                if (j + 1 < end && toks_[j + 1].text == "(") {
                    j = matchGroup(toks_, j + 1, end) + 1;
                    continue;
                }
                ++j;
                continue;
            }
            if (toks_[j].kind == TokenKind::Identifier &&
                isProjectMacro(t) && j + 1 < end &&
                toks_[j + 1].text == "(")
            {
                j = matchGroup(toks_, j + 1, end) + 1;
                continue;
            }
            if (t == "->") {
                // Trailing return type: scan to '{' or ';'.
                ++j;
                while (j < end && toks_[j].text != "{" &&
                       toks_[j].text != ";")
                {
                    if (toks_[j].text == "(")
                        j = matchGroup(toks_, j, end);
                    ++j;
                }
                continue;
            }
            if (t == ":") {
                // Constructor initializer list: entries are
                // `name(...)` or `name{...}`; the body '{' follows a
                // ')' or '}'.
                ++j;
                std::string prev;
                while (j < end) {
                    const std::string &u = toks_[j].text;
                    if (u == "(") {
                        j = matchGroup(toks_, j, end) + 1;
                        prev = ")";
                        continue;
                    }
                    if (u == "{") {
                        if (prev == ")" || prev == "}" || prev == "...")
                            break; // function body
                        j = matchGroup(toks_, j, end) + 1;
                        prev = "}";
                        continue;
                    }
                    if (u == ";")
                        break; // malformed; bail below
                    prev = u;
                    ++j;
                }
                continue;
            }
            if (t == "{") {
                bodyOpen = j;
                break;
            }
            if (t == ";") {
                declOnly = true;
                break;
            }
            if (t == "=") {
                // = default / = delete / = 0.
                while (j < end && toks_[j].text != ";")
                    ++j;
                declOnly = true;
                break;
            }
            return kFail;
        }
        if (bodyOpen == 0 && !declOnly)
            return kFail;

        FunctionInfo fn;
        fn.bare = toks_[i].text;
        fn.file = path_;
        fn.line = toks_[i].line;
        std::string qualName;
        for (std::size_t k = first; k <= i; ++k) {
            qualName += toks_[k].text;
        }
        fn.name = qualName;
        if (first < i) {
            // Out-of-line: the qualifier right before the bare name
            // is the owner (a class if one is indexed by that name).
            fn.klass = toks_[i - 2].text;
        } else if (!classCtx.empty()) {
            fn.klass = classCtx;
            fn.name = classCtx + "::" + fn.bare;
        }

        if (bodyOpen != 0) {
            const std::size_t bodyClose =
                matchGroup(toks_, bodyOpen, end);
            fn.bodyBegin = bodyOpen + 1;
            fn.bodyEnd = bodyClose;
            harvestBody(fn, paren, close);
            functions_.push_back(std::move(fn));
            return bodyClose + 1;
        }
        functions_.push_back(std::move(fn));
        ++j; // past the ';'
        return j;
    }

    /** Collect params, locals, callees and writes for a definition. */
    void
    harvestBody(FunctionInfo &fn, std::size_t paramOpen,
                std::size_t paramClose)
    {
        // Parameters: identifiers directly followed by ',' ')' '=' '['.
        for (std::size_t k = paramOpen + 1; k < paramClose; ++k) {
            const Token &t = toks_[k];
            if (t.kind != TokenKind::Identifier || isCppKeyword(t.text))
                continue;
            const std::string &nxt = toks_[k + 1].text;
            if (nxt == "," || nxt == ")" || nxt == "=" || nxt == "[")
                fn.locals.insert(t.text);
        }

        for (std::size_t k = fn.bodyBegin; k < fn.bodyEnd; ++k) {
            const Token &t = toks_[k];
            if (t.kind != TokenKind::Identifier || isCppKeyword(t.text))
                continue;
            const std::string prev = k > 0 ? toks_[k - 1].text : "";
            const std::string &nxt = toks_[k + 1].text;

            // Callee: name '(' that is not a declaration header.
            if (nxt == "(" && prev != "." && !isProjectMacro(t.text)) {
                // `Type name(...)` is a decl, handled below via the
                // local heuristic; a bare or qualified or member call
                // is a callee either way (over-approximation is fine:
                // unknown names resolve to nothing).
                fn.callees.insert(t.text);
            }

            // Local declaration heuristic: `Type name` / `Type &name`
            // where the declarator is followed by a terminator.
            if (prev != "" &&
                (isDeclPrevToken(toks_[k - 1]) || prev == ">" ||
                 prev == "*" || prev == "&" || prev == "&&") &&
                (nxt == "=" || nxt == ";" || nxt == "{" || nxt == "(" ||
                 nxt == ":" || nxt == "," || nxt == "["))
            {
                if (prev == "*" || prev == "&" || prev == "&&") {
                    if (k >= 2 && isDeclPrevToken(toks_[k - 2]))
                        fn.locals.insert(t.text);
                } else {
                    fn.locals.insert(t.text);
                }
            }
        }

        fn.writes = scanWrites(toks_, fn.bodyBegin, fn.bodyEnd);
    }

    static constexpr std::size_t kFail =
        static_cast<std::size_t>(-1);

    const std::string &path_;
    const std::vector<Token> &toks_;
    std::map<std::string, ClassInfo> &classes_;
    std::vector<FunctionInfo> &functions_;
    std::set<std::string> &guardedMembers_;
    std::set<std::string> &hookPointers_;
};

} // namespace

void
SymbolIndex::addFile(const std::string &path, const LexedFile &lexed)
{
    FileScanner scanner(path, lexed, classes_, functions_,
                        guardedMembers_, hookPointers_);
    scanner.run();
}

void
SymbolIndex::finalize()
{
    byBare_.clear();
    for (std::size_t f = 0; f < functions_.size(); ++f)
        byBare_[functions_[f].bare].push_back(f);

    measuredMembers_.clear();
    allMembers_.clear();
    for (const auto &[name, info] : classes_) {
        allMembers_.insert(info.members.begin(), info.members.end());
        if (info.defined && isMeasuredPath(info.file))
            measuredMembers_.insert(info.members.begin(),
                                    info.members.end());
    }
    // The nullable hook pointers themselves are observability wiring,
    // not measured state: installing a tracer/metrics sink (setTracer,
    // setMetrics) changes no measured bytes — that identity is what
    // test_obs pins dynamically.
    for (const std::string &hook : hookPointers_)
        measuredMembers_.erase(hook);

    // Direct writes: a non-declaration write to a measured member
    // name, reached bare (an unqualified member of *this) or through
    // a pointer (state held by reference from elsewhere). `.` access
    // is deliberately excluded — that is how locals and value copies
    // are touched (docs/static_analysis.md, under-approximations).
    for (FunctionInfo &fn : functions_) {
        if (!fn.defined())
            continue;
        for (const WriteSite &w : fn.writes) {
            if (w.declaration || !measuredMembers_.count(w.name))
                continue;
            if (w.access == WriteAccess::Dot)
                continue;
            if (w.access == WriteAccess::Bare && fn.locals.count(w.name))
                continue;
            fn.writesMeasured = true;
            fn.measuredWhy = "writes measured member '" + w.name +
                             "' (" + fn.file + ":" +
                             std::to_string(w.line) + ")";
            break;
        }
    }

    // Fixed point over the name-keyed call graph: a caller inherits
    // writesMeasured from any callee whose bare name resolves
    // unambiguously to measured-writing definitions.
    bool changed = true;
    while (changed) {
        changed = false;
        for (FunctionInfo &fn : functions_) {
            if (!fn.defined() || fn.writesMeasured)
                continue;
            for (const std::string &callee : fn.callees) {
                if (fn.locals.count(callee))
                    continue; // local lambda / functor
                std::string why;
                if (calleeWritesMeasured(callee, &why)) {
                    fn.writesMeasured = true;
                    fn.measuredWhy =
                        "calls '" + callee + "', which " + why;
                    changed = true;
                    break;
                }
            }
        }
    }
}

bool
SymbolIndex::calleeWritesMeasured(const std::string &bare,
                                  std::string *why) const
{
    const auto it = byBare_.find(bare);
    if (it == byBare_.end())
        return false;
    bool anyDefined = false;
    const FunctionInfo *evidence = nullptr;
    for (std::size_t idx : it->second) {
        const FunctionInfo &cand = functions_[idx];
        if (!cand.defined())
            continue;
        anyDefined = true;
        if (!cand.writesMeasured)
            return false; // ambiguous: at least one clean candidate
        evidence = &cand;
    }
    if (!anyDefined || evidence == nullptr)
        return false;
    if (why != nullptr)
        *why = evidence->measuredWhy;
    return true;
}

} // namespace cottage::lint
