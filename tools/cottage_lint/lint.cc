#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "lexer.h"
#include "symbol_index.h"

namespace cottage::lint {

namespace {

/** Rule-id set a suppression may name. */
const std::set<std::string> kKnownRules = {"D1", "D2", "D3", "D4", "D5",
                                           "D6", "D7", "D8", "D9"};

/** Minimum justification length a suppression must carry. */
constexpr std::size_t kMinJustification = 10;

/** Files where D2's wall-clock/randomness ban does not apply. */
bool
isD2Exempt(const std::string &path)
{
    return path.ends_with("src/util/stopwatch.h") ||
           path.ends_with("src/util/rng.cc") ||
           path == "src/util/stopwatch.h" || path == "src/util/rng.cc";
}

/** Directories whose score/energy paths carry the double contract. */
bool
isD3Scoped(const std::string &path)
{
    return path.find("src/index/") != std::string::npos ||
           path.find("src/engine/") != std::string::npos ||
           path.find("src/sim/") != std::string::npos;
}

/**
 * Files allowed to use raw new/delete (arena / placement code). None
 * today; kept as an explicit list so adding an arena is a one-line,
 * reviewable change rather than a scattering of suppressions.
 */
bool
isArenaFile(const std::string &path)
{
    (void)path;
    return false;
}

/**
 * Directory D6 confines raw SIMD intrinsics to. The codec TU
 * (src/index/block_codec.cc) is the only place vector kernels live —
 * everything else consumes them through the codec interface, whose
 * scalar fallback keeps every other TU portable (DESIGN.md 5g).
 * The include itself (<tmmintrin.h> etc.) is preprocessor text the
 * lexer drops, but an include without a use is inert; any actual use
 * spells an intrinsic identifier this rule catches.
 */
bool
isD6Scoped(const std::string &path)
{
    return path.find("src/index/") == std::string::npos;
}

/** True for identifiers only vendor intrinsic headers define. */
bool
isIntrinsicName(const std::string &t)
{
    // x86: _mm_/_mm256_/_mm512_ calls and __m128/__m256/__m512 types
    // (including the i/d-suffixed variants, which share the prefix).
    if (t.rfind("_mm_", 0) == 0 || t.rfind("_mm256_", 0) == 0 ||
        t.rfind("_mm512_", 0) == 0 || t.rfind("__m128", 0) == 0 ||
        t.rfind("__m256", 0) == 0 || t.rfind("__m512", 0) == 0)
        return true;
    // ARM NEON: load/store/dup families plus the vector types.
    return t.rfind("vld1", 0) == 0 || t.rfind("vst1", 0) == 0 ||
           t.rfind("vdupq", 0) == 0 || t.rfind("uint8x16", 0) == 0 ||
           t.rfind("uint32x4", 0) == 0;
}

/**
 * Files where D9's seed-provenance rule does not apply: rng.{h,cc}
 * define the generator (including the default-seed constructor and
 * split()), so they are the one sanctioned home for seed plumbing.
 */
bool
isD9Exempt(const std::string &path)
{
    return path.ends_with("src/util/rng.h") ||
           path.ends_with("src/util/rng.cc") ||
           path == "src/util/rng.h" || path == "src/util/rng.cc";
}

/** Wall-clock / randomness identifiers D2 bans outright. */
const std::set<std::string> kBannedD2Names = {
    "random_device",
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
};

/** Function-call spellings D2 bans when followed by '('. */
const std::set<std::string> kBannedD2Calls = {
    "rand",      "srand",        "time",      "clock",
    "localtime", "gmtime",       "gettimeofday",
    "clock_gettime",
};

/** One parsed suppression (a `cottage-lint` allow-comment). */
struct Suppression
{
    int commentLine = 0;
    int targetLine = 0; ///< Line whose findings it suppresses.
    std::set<std::string> rules;
    std::string justification;
    std::vector<std::string> unknownRules;

    bool justified() const
    {
        return justification.size() >= kMinJustification;
    }
};

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t:-.;,");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parse every suppression in the file's comments. */
std::vector<Suppression>
parseSuppressions(const LexedFile &lexed)
{
    std::vector<Suppression> out;
    for (const auto &[line, text] : lexed.comments) {
        std::size_t pos = 0;
        while ((pos = text.find("cottage-lint", pos)) != std::string::npos) {
            std::size_t allowPos = text.find("allow", pos);
            if (allowPos == std::string::npos)
                break;
            std::size_t open = text.find('(', allowPos);
            std::size_t close =
                open == std::string::npos ? std::string::npos
                                          : text.find(')', open);
            if (close == std::string::npos)
                break;

            Suppression sup;
            sup.commentLine = line;
            // Comment alone on its line guards the next line; a
            // trailing comment guards its own line.
            const auto codeIt = lexed.codeOnLine.find(line);
            const bool hasCode =
                codeIt != lexed.codeOnLine.end() && codeIt->second;
            sup.targetLine = hasCode ? line : line + 1;

            std::string ruleList = text.substr(open + 1, close - open - 1);
            std::string current;
            auto flush = [&]() {
                if (current.empty())
                    return;
                if (kKnownRules.count(current))
                    sup.rules.insert(current);
                else
                    sup.unknownRules.push_back(current);
                current.clear();
            };
            for (char c : ruleList) {
                if (c == ',' || c == ' ' || c == '\t')
                    flush();
                else
                    current += c;
            }
            flush();

            sup.justification = trimmed(text.substr(close + 1));
            out.push_back(std::move(sup));
            pos = close;
        }
    }
    return out;
}

/**
 * Phase one: identifier names declared with a hash-container type.
 * Recognizes `unordered_map<...> name` / `unordered_set<...> name`
 * (members, locals, parameters), skipping qualifiers and references.
 * `using`-alias indirection is out of reach of a token scanner and is
 * covered by code review instead.
 */
void
collectUnorderedNames(const LexedFile &lexed, std::set<std::string> &names)
{
    const auto &toks = lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            (toks[i].text != "unordered_map" &&
             toks[i].text != "unordered_set"))
            continue;
        if (toks[i + 1].text != "<")
            continue;

        // Skip the template argument list (">>" closes two).
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">")
                --depth;
            else if (toks[j].text == ">>")
                depth -= 2;
            if (depth <= 0 && j > i + 1)
                break;
        }
        // Declarator: skip cv/ref tokens, then an identifier not
        // followed by '(' (that would be a function returning a map)
        // and not preceded by '::' access (that's a nested type).
        for (++j; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "&" || t == "*" || t == "const" || t == "&&")
                continue;
            if (toks[j].kind == TokenKind::Identifier &&
                j + 1 < toks.size() && toks[j + 1].text != "(" &&
                t != "iterator" && t != "const_iterator")
                names.insert(t);
            break;
        }
    }
}

/** Bounds of one range-based for's range expression, if any. */
struct RangeFor
{
    int line;                ///< Line of the `for` keyword.
    std::size_t exprBegin;   ///< First token of the range expression.
    std::size_t exprEnd;     ///< One past the last token.
};

/**
 * Find range-based for statements. A for-parenthesis is range-based
 * iff it has a depth-1 ':' and no depth-1 ';' (the lexer emits '::'
 * as one token, so a lone ':' is unambiguous).
 */
std::vector<RangeFor>
findRangeFors(const LexedFile &lexed)
{
    std::vector<RangeFor> out;
    const auto &toks = lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier || toks[i].text != "for" ||
            toks[i + 1].text != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0;
        bool classic = false;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}") {
                --depth;
                if (depth == 0) {
                    close = j;
                    break;
                }
            } else if (depth == 1 && t == ";")
                classic = true;
            else if (depth == 1 && t == ":" && colon == 0)
                colon = j;
        }
        if (close == 0 || classic || colon == 0)
            continue;
        out.push_back({toks[i].line, colon + 1, close});
    }
    return out;
}

/** Decl-heuristic local names in [begin, end) of a token stream. */
std::set<std::string>
collectLocalDecls(const std::vector<Token> &toks, std::size_t begin,
                  std::size_t end)
{
    std::set<std::string> locals;
    for (std::size_t k = begin; k < end && k + 1 < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.kind != TokenKind::Identifier || isCppKeyword(t.text))
            continue;
        if (k == 0)
            continue;
        const std::string &prev = toks[k - 1].text;
        const std::string &nxt = toks[k + 1].text;
        const bool declPrev =
            isDeclPrevToken(toks[k - 1]) || prev == ">" ||
            ((prev == "*" || prev == "&" || prev == "&&") && k >= 2 &&
             isDeclPrevToken(toks[k - 2]));
        if (declPrev && (nxt == "=" || nxt == ";" || nxt == "{" ||
                         nxt == "(" || nxt == ":" || nxt == ","))
            locals.insert(t.text);
    }
    return locals;
}

/**
 * D7 part one: guarded-hook regions. Finds `if (<hook ptr> ...)`
 * blocks and `<hook ptr> ... ? ... : ...` conditionals whose guard is
 * a nullable QueryTracer / MetricsRegistry pointer and audits the
 * guarded tokens: no write to measured state (bare or via `->`), and
 * no call that can transitively reach one. Locals of the enclosing
 * function (per the symbol index) and obs-local state are fine.
 */
void
runD7Regions(const SourceFile &file, const LexedFile &lexed,
             const SymbolIndex &index,
             const std::function<void(int, const char *, std::string)> &emit)
{
    const auto &toks = lexed.tokens;

    auto enclosingLocals = [&](std::size_t pos) {
        for (const FunctionInfo &fn : index.functions()) {
            if (fn.file == file.path && fn.defined() &&
                fn.bodyBegin <= pos && pos < fn.bodyEnd)
                return fn.locals;
        }
        return std::set<std::string>{};
    };

    auto checkRegion = [&](std::size_t rb, std::size_t re,
                           const std::string &guard) {
        const std::set<std::string> locals = enclosingLocals(rb);
        for (const WriteSite &w : scanWrites(toks, rb, re)) {
            if (w.declaration || w.access == WriteAccess::Dot)
                continue;
            if (w.access == WriteAccess::Bare && locals.count(w.name))
                continue;
            if (!index.isMeasuredMember(w.name))
                continue;
            emit(w.line, "D7",
                 "write to measured state '" + w.name +
                     "' inside the '" + guard +
                     "' hook guard: observability must be pure — "
                     "tracing/metrics off and on must leave measured "
                     "bytes identical (DESIGN.md 5f; test_obs pins "
                     "this dynamically)");
        }
        for (std::size_t k = rb; k < re && k + 1 < toks.size(); ++k) {
            const Token &t = toks[k];
            if (t.kind != TokenKind::Identifier ||
                isCppKeyword(t.text) ||
                t.text.rfind("COTTAGE_", 0) == 0 ||
                toks[k + 1].text != "(" || locals.count(t.text))
                continue;
            std::string why;
            if (index.calleeWritesMeasured(t.text, &why)) {
                emit(t.line, "D7",
                     "call to '" + t.text + "' inside the '" + guard +
                         "' hook guard reaches a measured-state "
                         "write (" + why +
                         "): hook-guarded code must stay pure "
                         "(DESIGN.md 5f)");
            }
        }
    };

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];

        // `if (<cond containing hook ptr>) { ... }`
        if (t.kind == TokenKind::Identifier && t.text == "if" &&
            toks[i + 1].text == "(")
        {
            const std::size_t close =
                matchGroup(toks, i + 1, toks.size());
            std::string guard;
            bool negative = false;
            for (std::size_t c = i + 2; c < close; ++c) {
                if (toks[c].kind == TokenKind::Identifier &&
                    index.isHookPointer(toks[c].text))
                {
                    guard = toks[c].text;
                    if (c + 2 < close && toks[c + 1].text == "==" &&
                        toks[c + 2].text == "nullptr")
                        negative = true;
                    if (c >= 2 && toks[c - 1].text == "==" &&
                        toks[c - 2].text == "nullptr")
                        negative = true;
                }
            }
            if (guard.empty() || negative)
                continue;
            std::size_t rb = close + 1;
            std::size_t re;
            if (rb < toks.size() && toks[rb].text == "{") {
                re = matchGroup(toks, rb, toks.size());
                ++rb;
            } else {
                re = rb;
                int depth = 0;
                while (re < toks.size()) {
                    const std::string &u = toks[re].text;
                    if (u == "(" || u == "[" || u == "{")
                        ++depth;
                    else if (u == ")" || u == "]" || u == "}")
                        --depth;
                    else if (u == ";" && depth == 0)
                        break;
                    ++re;
                }
            }
            checkRegion(rb, re, guard);
            continue;
        }

        // `<hook ptr> [!= nullptr] ? <guarded> : <fallback>`
        if (t.kind == TokenKind::Identifier &&
            index.isHookPointer(t.text))
        {
            std::size_t q = i + 1;
            if (q + 1 < toks.size() && toks[q].text == "!=" &&
                toks[q + 1].text == "nullptr")
                q += 2;
            if (q >= toks.size() || toks[q].text != "?")
                continue;
            // True branch: '?' to the matching top-level ':'.
            std::size_t rb = q + 1;
            std::size_t re = rb;
            int depth = 0;
            int nested = 0;
            while (re < toks.size()) {
                const std::string &u = toks[re].text;
                if (u == "(" || u == "[" || u == "{")
                    ++depth;
                else if (u == ")" || u == "]" || u == "}") {
                    if (depth == 0)
                        break;
                    --depth;
                } else if (u == "?" && depth == 0)
                    ++nested;
                else if (u == ":" && depth == 0) {
                    if (nested == 0)
                        break;
                    --nested;
                } else if (u == ";" && depth == 0)
                    break;
                ++re;
            }
            checkRegion(rb, re, t.text);
        }
    }
}

/** D7 part two: hook entry points must not reach measured writes. */
void
runD7HookEntries(const SourceFile &file, const SymbolIndex &index,
                 const std::function<void(int, const char *,
                                          std::string)> &emit)
{
    for (const FunctionInfo &fn : index.functions()) {
        if (fn.file != file.path || !fn.defined() || !fn.writesMeasured)
            continue;
        if (fn.klass != "QueryTracer" && fn.klass != "MetricsRegistry")
            continue;
        emit(fn.line, "D7",
             "hook entry point '" + fn.name +
                 "' can reach a measured-state write (" +
                 fn.measuredWhy +
                 "): observability code must only read measured state "
                 "and write obs-local state (DESIGN.md 5f)");
    }
}

/** Parsed capture list of one lambda handed to the thread pool. */
struct LambdaCaptures
{
    bool defaultRef = false; ///< [&]
    bool defaultVal = false; ///< [=] (captures this implicitly)
    bool capturesThis = false;
    std::set<std::string> byRef;
    std::set<std::string> byVal;
};

/**
 * D8: lambdas submitted to ThreadPool (submit / parallelFor / post)
 * run concurrently with their siblings, so a by-reference captured
 * name (or a member reached through a captured `this`) may only be
 * written through a per-worker index (`slot[i] = ...`) or if it is
 * annotated COTTAGE_GUARDED_BY. Everything else is the
 * unsynchronized-shared-mutable pattern TSan can only catch when the
 * schedule happens to interleave it.
 */
void
runD8(const LexedFile &lexed, const SymbolIndex &index,
      const std::function<void(int, const char *, std::string)> &emit)
{
    static const std::set<std::string> kPoolCalls = {"submit",
                                                     "parallelFor",
                                                     "post"};
    const auto &toks = lexed.tokens;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            !kPoolCalls.count(toks[i].text) || toks[i + 1].text != "(")
            continue;
        const std::size_t argClose =
            matchGroup(toks, i + 1, toks.size());

        for (std::size_t j = i + 2; j < argClose; ++j) {
            // A lambda introducer in argument position.
            if (toks[j].text != "[" ||
                (toks[j - 1].text != "(" && toks[j - 1].text != ","))
                continue;
            const std::size_t capClose =
                matchGroup(toks, j, toks.size());

            LambdaCaptures caps;
            std::size_t e = j + 1;
            while (e < capClose) {
                const std::string &c = toks[e].text;
                if (c == "&") {
                    if (e + 1 < capClose &&
                        toks[e + 1].kind == TokenKind::Identifier)
                    {
                        caps.byRef.insert(toks[e + 1].text);
                        ++e;
                    } else {
                        caps.defaultRef = true;
                    }
                } else if (c == "=") {
                    caps.defaultVal = true;
                } else if (c == "this") {
                    caps.capturesThis = true;
                } else if (c == "*" && e + 1 < capClose &&
                           toks[e + 1].text == "this")
                {
                    ++e; // *this copies: writes stay lambda-local
                } else if (toks[e].kind == TokenKind::Identifier) {
                    caps.byVal.insert(c);
                }
                // Skip an init-capture's initializer to its ','.
                if (e + 1 < capClose && toks[e + 1].text == "=") {
                    int depth = 0;
                    e += 2;
                    while (e < capClose &&
                           !(depth == 0 && toks[e].text == ","))
                    {
                        const std::string &u = toks[e].text;
                        if (u == "(" || u == "[" || u == "{")
                            ++depth;
                        else if (u == ")" || u == "]" || u == "}")
                            --depth;
                        ++e;
                    }
                }
                ++e;
            }

            // Parameters, then the body.
            std::size_t p = capClose + 1;
            std::set<std::string> params;
            if (p < toks.size() && toks[p].text == "(") {
                const std::size_t pClose =
                    matchGroup(toks, p, toks.size());
                for (std::size_t k = p + 1; k < pClose; ++k) {
                    if (toks[k].kind == TokenKind::Identifier &&
                        !isCppKeyword(toks[k].text) &&
                        (toks[k + 1].text == "," ||
                         toks[k + 1].text == ")" ||
                         toks[k + 1].text == "="))
                        params.insert(toks[k].text);
                }
                p = pClose + 1;
            }
            while (p < toks.size() && toks[p].text != "{" &&
                   toks[p].text != ")" && toks[p].text != ",")
                ++p;
            if (p >= toks.size() || toks[p].text != "{")
                continue;
            const std::size_t bodyClose =
                matchGroup(toks, p, toks.size());
            const std::size_t bodyBegin = p + 1;

            std::set<std::string> locals =
                collectLocalDecls(toks, bodyBegin, bodyClose);
            locals.insert(params.begin(), params.end());

            auto flag = [&](const WriteSite &w, const std::string &how) {
                emit(w.line, "D8",
                     "gang-shared write to '" + w.name + "' (" + how +
                         ") in a lambda handed to ThreadPool::" +
                         toks[i].text +
                         ": concurrent tasks may only write "
                         "per-worker indexed slots ('slot[i] = ...') "
                         "or COTTAGE_GUARDED_BY members; merge "
                         "results sequentially afterwards "
                         "(DESIGN.md threading model)");
            };

            for (const WriteSite &w :
                 scanWrites(toks, bodyBegin, bodyClose))
            {
                if (w.declaration || w.indexed)
                    continue;
                if (index.isGuardedMember(w.name))
                    continue;
                if (w.access == WriteAccess::Bare) {
                    if (locals.count(w.name) || caps.byVal.count(w.name))
                        continue;
                    if (caps.byRef.count(w.name)) {
                        flag(w, "captured by reference");
                    } else if (caps.defaultRef) {
                        flag(w, "captured by '[&]' default");
                    } else if ((caps.capturesThis || caps.defaultVal ||
                                caps.defaultRef) &&
                               index.isAnyMember(w.name))
                    {
                        flag(w, "member via captured 'this'");
                    }
                    continue;
                }
                // obj.f = / obj->f =: shared iff the receiver is
                // captured by reference (or is `this`).
                const std::string &base = w.base;
                if (base.empty() || locals.count(base) ||
                    caps.byVal.count(base))
                    continue;
                if (base == "this" &&
                    (caps.capturesThis || caps.defaultRef ||
                     caps.defaultVal))
                {
                    flag(w, "member via captured 'this'");
                } else if (caps.byRef.count(base)) {
                    flag(w, "through by-reference capture '" + base +
                                "'");
                } else if (caps.defaultRef) {
                    flag(w, "through '[&]'-captured '" + base + "'");
                }
            }
            j = bodyClose;
        }
        i = argClose;
    }
}

/**
 * D9: every util/rng construction must show its seed provenance at
 * the call site — an identifier containing "seed" (a parameter or an
 * ExperimentConfig field) or derivation via split(). Default-seeded
 * generators are ambient randomness D2 cannot see.
 */
void
runD9(const LexedFile &lexed,
      const std::function<void(int, const char *, std::string)> &emit)
{
    const auto &toks = lexed.tokens;

    auto hasSeedEvidence = [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k) {
            if (toks[k].kind != TokenKind::Identifier)
                continue;
            if (toks[k].text == "split")
                return true;
            std::string low = toks[k].text;
            std::transform(low.begin(), low.end(), low.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::tolower(c));
                           });
            if (low.find("seed") != std::string::npos)
                return true;
        }
        return false;
    };

    auto flag = [&](int line, const std::string &detail) {
        emit(line, "D9",
             "Rng " + detail +
                 ": every generator must trace to an explicit seed "
                 "(a seed parameter, an ExperimentConfig field, or "
                 "parent.split()); ambient/default seeds make runs "
                 "unreplayable (extends D2 to randomness provenance)");
    };

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier || t.text != "Rng")
            continue;
        const std::string &nxt = toks[i + 1].text;

        // Reference/pointer declarators, template args, qualified
        // access and type positions never construct.
        if (nxt == "&" || nxt == "*" || nxt == "&&" || nxt == "::" ||
            nxt == ">" || nxt == "," || nxt == ")" || nxt == ";")
            continue;

        if (nxt == "(") {
            // Temporary: Rng(args).
            const std::size_t close =
                matchGroup(toks, i + 1, toks.size());
            if (close == i + 2)
                flag(t.line, "temporary with the default seed");
            else if (!hasSeedEvidence(i + 2, close))
                flag(t.line,
                     "temporary without visible seed provenance");
            i = close;
            continue;
        }
        if (nxt == "{") {
            const std::size_t close =
                matchGroup(toks, i + 1, toks.size());
            if (close == i + 2)
                flag(t.line, "value-initialized with the default seed");
            else if (!hasSeedEvidence(i + 2, close))
                flag(t.line,
                     "braced construction without visible seed "
                     "provenance");
            i = close;
            continue;
        }
        if (toks[i + 1].kind != TokenKind::Identifier ||
            isCppKeyword(nxt) || i + 2 >= toks.size())
            continue;
        const std::string &after = toks[i + 2].text;
        if (after == ";") {
            flag(t.line, "'" + nxt +
                             "' default-constructed (implicit default "
                             "seed)");
        } else if (after == "=") {
            std::size_t e = i + 3;
            int depth = 0;
            while (e < toks.size()) {
                const std::string &u = toks[e].text;
                if (u == "(" || u == "[" || u == "{")
                    ++depth;
                else if (u == ")" || u == "]" || u == "}")
                    --depth;
                else if (u == ";" && depth == 0)
                    break;
                ++e;
            }
            if (!hasSeedEvidence(i + 3, e))
                flag(t.line, "'" + nxt +
                                 "' initialized without visible seed "
                                 "provenance");
            i = e;
        } else if (after == "(") {
            const std::size_t close =
                matchGroup(toks, i + 2, toks.size());
            // `Rng name()` is a function declaration (or the most
            // vexing parse) — never a seeded construction; skip.
            if (close != i + 3 && !hasSeedEvidence(i + 3, close))
                flag(t.line, "'" + nxt +
                                 "' constructed without visible seed "
                                 "provenance");
            i = close;
        } else if (after == "{") {
            const std::size_t close =
                matchGroup(toks, i + 2, toks.size());
            if (close == i + 3)
                flag(t.line, "'" + nxt +
                                 "' value-initialized (implicit "
                                 "default seed)");
            else if (!hasSeedEvidence(i + 3, close))
                flag(t.line, "'" + nxt +
                                 "' constructed without visible seed "
                                 "provenance");
            i = close;
        }
    }
}

void
runRules(const SourceFile &file, const LexedFile &lexed,
         const std::set<std::string> &unorderedNames,
         const SymbolIndex &index, std::vector<Diagnostic> &diags)
{
    const bool testFile = isTestPath(file.path);
    const auto &toks = lexed.tokens;

    auto emit = [&](int line, const char *rule, std::string message) {
        diags.push_back({file.path, line, rule, std::move(message)});
    };

    // --- Flow rules over the project-wide symbol index -------------
    if (!testFile) {
        const std::function<void(int, const char *, std::string)>
            emitFn = emit;
        runD7Regions(file, lexed, index, emitFn);
        runD7HookEntries(file, index, emitFn);
        runD8(lexed, index, emitFn);
        if (!isD9Exempt(file.path))
            runD9(lexed, emitFn);
    }

    // --- D1: hash-container iteration (non-test TUs) ---------------
    if (!testFile) {
        for (const RangeFor &rf : findRangeFors(lexed)) {
            for (std::size_t j = rf.exprBegin; j < rf.exprEnd; ++j) {
                const Token &t = toks[j];
                if (t.kind != TokenKind::Identifier)
                    continue;
                if (t.text == "unordered_map" || t.text == "unordered_set" ||
                    unorderedNames.count(t.text))
                {
                    emit(rf.line, "D1",
                         "iteration over hash container '" + t.text +
                             "': order-dependent output from "
                             "std::unordered_* breaks the bit-exact "
                             "replay contract (DESIGN.md 5b); iterate a "
                             "sorted or insertion-ordered copy instead");
                    break;
                }
            }
        }
    }

    // --- Token-at-a-time rules -------------------------------------
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier)
            continue;
        const bool callLike =
            i + 1 < toks.size() && toks[i + 1].text == "(";
        const std::string prev = i > 0 ? toks[i - 1].text : "";

        // D2: wall clocks and libc randomness.
        if (!isD2Exempt(file.path)) {
            if (kBannedD2Names.count(t.text)) {
                emit(t.line, "D2",
                     "'" + t.text +
                         "' is banned: all simulated time comes from "
                         "the event clock, wall time from "
                         "util/stopwatch.h, randomness from "
                         "util/rng.cc (seeded, replayable)");
            } else if (callLike && kBannedD2Calls.count(t.text) &&
                       prev != "." && prev != "->")
            {
                emit(t.line, "D2",
                     "call to '" + t.text +
                         "()' is banned: use the event clock / "
                         "util/stopwatch.h for time and util/rng.cc "
                         "for randomness");
            }
        }

        // D3: float in the double-contract directories.
        if (isD3Scoped(file.path) && t.text == "float") {
            emit(t.line, "D3",
                 "'float' in a score/energy path: the bit-exactness "
                 "contract (DESIGN.md 5b) is on IEEE doubles; "
                 "truncation to float silently changes ranks");
        }

        // D4: assert() and raw new/delete.
        if (t.text == "assert" && callLike) {
            emit(t.line, "D4",
                 "assert() compiles out under NDEBUG; use "
                 "COTTAGE_CHECK / COTTAGE_CHECK_MSG so invariants "
                 "hold in release replays too");
        }
        if (!testFile && !isArenaFile(file.path)) {
            if (t.text == "new") {
                emit(t.line, "D4",
                     "raw 'new' outside arena code: own allocations "
                     "with std::make_unique/std::vector");
            } else if (t.text == "delete" && prev != "=" &&
                       prev != "operator")
            {
                emit(t.line, "D4",
                     "raw 'delete' outside arena code: use RAII "
                     "ownership instead");
            }
        }

        // D6: raw SIMD intrinsics outside the codec directory.
        if (isD6Scoped(file.path) && isIntrinsicName(t.text)) {
            emit(t.line, "D6",
                 "SIMD intrinsic '" + t.text +
                     "' outside src/index/: vector kernels are "
                     "confined to the block codec TU, which pairs "
                     "them with a byte-identical scalar fallback "
                     "(DESIGN.md 5g); consume the codec interface "
                     "instead");
        }

        // D5: std::sort / std::stable_sort must name a comparator.
        if (!testFile &&
            (t.text == "sort" || t.text == "stable_sort") && callLike &&
            prev == "::" && i >= 2 &&
            (toks[i - 2].text == "std" || toks[i - 2].text == "ranges"))
        {
            const bool rangesSort = toks[i - 2].text == "ranges";
            int depth = 0;
            std::size_t commas = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const std::string &p = toks[j].text;
                if (p == "(" || p == "[" || p == "{")
                    ++depth;
                else if (p == ")" || p == "]" || p == "}") {
                    --depth;
                    if (depth == 0)
                        break;
                } else if (depth == 1 && p == ",")
                    ++commas;
            }
            const std::size_t needed = rangesSort ? 1 : 2;
            if (commas < needed) {
                emit(t.line, "D5",
                     "std::" + std::string(rangesSort ? "ranges::" : "") +
                         t.text +
                         " without a named comparator: default '<' on "
                         "pointers (or pairs holding them) is a latent "
                         "nondeterminism; pass std::less<T>{} or an "
                         "explicit ordering");
            }
        }
    }
}

} // namespace

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << file << ":" << line << ": [" << rule << "] " << message;
    return os.str();
}

bool
isTestPath(const std::string &path)
{
    if (path.find("tests/") != std::string::npos)
        return true;
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return base.rfind("test_", 0) == 0;
}

void
Linter::addFile(std::string path, std::string content)
{
    std::replace(path.begin(), path.end(), '\\', '/');
    files_.push_back({std::move(path), std::move(content)});
}

std::vector<Diagnostic>
Linter::run() const
{
    // Phase one: project-wide hash-container names, so a member map
    // declared in a header is caught when iterated in a .cc. Names
    // declared in test files are skipped — D1 does not apply there,
    // and a test-local map must not shadow-flag production loops.
    std::set<std::string> unorderedNames;
    std::vector<LexedFile> lexed;
    lexed.reserve(files_.size());
    SymbolIndex index;
    for (const SourceFile &file : files_) {
        lexed.push_back(lex(file.content));
        if (!isTestPath(file.path)) {
            collectUnorderedNames(lexed.back(), unorderedNames);
            index.addFile(file.path, lexed.back());
        }
    }
    index.finalize();

    std::vector<Diagnostic> out;
    for (std::size_t f = 0; f < files_.size(); ++f) {
        std::vector<Diagnostic> diags;
        runRules(files_[f], lexed[f], unorderedNames, index, diags);

        // Apply suppressions; a malformed one suppresses nothing and
        // is itself a finding.
        const auto sups = parseSuppressions(lexed[f]);
        for (const Suppression &sup : sups) {
            for (const std::string &bad : sup.unknownRules) {
                diags.push_back(
                    {files_[f].path, sup.commentLine, "SUP",
                     "allow() names unknown rule '" + bad +
                         "' (known: D1..D9)"});
            }
            if (!sup.justified()) {
                diags.push_back(
                    {files_[f].path, sup.commentLine, "SUP",
                     "suppression without a justification: write "
                     "'cottage-lint: allow(<rule>): <why this site "
                     "cannot break the invariant>' (>= " +
                         std::to_string(kMinJustification) +
                         " chars); the unjustified allow() suppresses "
                         "nothing"});
                continue;
            }
            std::erase_if(diags, [&](const Diagnostic &d) {
                return d.line == sup.targetLine && sup.rules.count(d.rule);
            });
        }

        std::sort(diags.begin(), diags.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      if (a.line != b.line)
                          return a.line < b.line;
                      return a.rule < b.rule;
                  });
        out.insert(out.end(), diags.begin(), diags.end());
    }
    return out;
}

std::vector<Diagnostic>
lintContent(const std::string &virtualPath, const std::string &content)
{
    Linter linter;
    linter.addFile(virtualPath, content);
    return linter.run();
}

} // namespace cottage::lint
