#include "lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>

#include "lexer.h"

namespace cottage::lint {

namespace {

/** Rule-id set a suppression may name. */
const std::set<std::string> kKnownRules = {"D1", "D2", "D3",
                                           "D4", "D5", "D6"};

/** Minimum justification length a suppression must carry. */
constexpr std::size_t kMinJustification = 10;

/** Files where D2's wall-clock/randomness ban does not apply. */
bool
isD2Exempt(const std::string &path)
{
    return path.ends_with("src/util/stopwatch.h") ||
           path.ends_with("src/util/rng.cc") ||
           path == "src/util/stopwatch.h" || path == "src/util/rng.cc";
}

/** Directories whose score/energy paths carry the double contract. */
bool
isD3Scoped(const std::string &path)
{
    return path.find("src/index/") != std::string::npos ||
           path.find("src/engine/") != std::string::npos ||
           path.find("src/sim/") != std::string::npos;
}

/**
 * Files allowed to use raw new/delete (arena / placement code). None
 * today; kept as an explicit list so adding an arena is a one-line,
 * reviewable change rather than a scattering of suppressions.
 */
bool
isArenaFile(const std::string &path)
{
    (void)path;
    return false;
}

/**
 * Directory D6 confines raw SIMD intrinsics to. The codec TU
 * (src/index/block_codec.cc) is the only place vector kernels live —
 * everything else consumes them through the codec interface, whose
 * scalar fallback keeps every other TU portable (DESIGN.md 5g).
 * The include itself (<tmmintrin.h> etc.) is preprocessor text the
 * lexer drops, but an include without a use is inert; any actual use
 * spells an intrinsic identifier this rule catches.
 */
bool
isD6Scoped(const std::string &path)
{
    return path.find("src/index/") == std::string::npos;
}

/** True for identifiers only vendor intrinsic headers define. */
bool
isIntrinsicName(const std::string &t)
{
    // x86: _mm_/_mm256_/_mm512_ calls and __m128/__m256/__m512 types
    // (including the i/d-suffixed variants, which share the prefix).
    if (t.rfind("_mm_", 0) == 0 || t.rfind("_mm256_", 0) == 0 ||
        t.rfind("_mm512_", 0) == 0 || t.rfind("__m128", 0) == 0 ||
        t.rfind("__m256", 0) == 0 || t.rfind("__m512", 0) == 0)
        return true;
    // ARM NEON: load/store/dup families plus the vector types.
    return t.rfind("vld1", 0) == 0 || t.rfind("vst1", 0) == 0 ||
           t.rfind("vdupq", 0) == 0 || t.rfind("uint8x16", 0) == 0 ||
           t.rfind("uint32x4", 0) == 0;
}

/** Wall-clock / randomness identifiers D2 bans outright. */
const std::set<std::string> kBannedD2Names = {
    "random_device",
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
};

/** Function-call spellings D2 bans when followed by '('. */
const std::set<std::string> kBannedD2Calls = {
    "rand",      "srand",        "time",      "clock",
    "localtime", "gmtime",       "gettimeofday",
    "clock_gettime",
};

/** One parsed `cottage-lint: allow(...)` comment. */
struct Suppression
{
    int commentLine = 0;
    int targetLine = 0; ///< Line whose findings it suppresses.
    std::set<std::string> rules;
    std::string justification;
    std::vector<std::string> unknownRules;

    bool justified() const
    {
        return justification.size() >= kMinJustification;
    }
};

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t:-.;,");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parse every suppression in the file's comments. */
std::vector<Suppression>
parseSuppressions(const LexedFile &lexed)
{
    std::vector<Suppression> out;
    for (const auto &[line, text] : lexed.comments) {
        std::size_t pos = 0;
        while ((pos = text.find("cottage-lint", pos)) != std::string::npos) {
            std::size_t allowPos = text.find("allow", pos);
            if (allowPos == std::string::npos)
                break;
            std::size_t open = text.find('(', allowPos);
            std::size_t close =
                open == std::string::npos ? std::string::npos
                                          : text.find(')', open);
            if (close == std::string::npos)
                break;

            Suppression sup;
            sup.commentLine = line;
            // Comment alone on its line guards the next line; a
            // trailing comment guards its own line.
            const auto codeIt = lexed.codeOnLine.find(line);
            const bool hasCode =
                codeIt != lexed.codeOnLine.end() && codeIt->second;
            sup.targetLine = hasCode ? line : line + 1;

            std::string ruleList = text.substr(open + 1, close - open - 1);
            std::string current;
            auto flush = [&]() {
                if (current.empty())
                    return;
                if (kKnownRules.count(current))
                    sup.rules.insert(current);
                else
                    sup.unknownRules.push_back(current);
                current.clear();
            };
            for (char c : ruleList) {
                if (c == ',' || c == ' ' || c == '\t')
                    flush();
                else
                    current += c;
            }
            flush();

            sup.justification = trimmed(text.substr(close + 1));
            out.push_back(std::move(sup));
            pos = close;
        }
    }
    return out;
}

/**
 * Phase one: identifier names declared with a hash-container type.
 * Recognizes `unordered_map<...> name` / `unordered_set<...> name`
 * (members, locals, parameters), skipping qualifiers and references.
 * `using`-alias indirection is out of reach of a token scanner and is
 * covered by code review instead.
 */
void
collectUnorderedNames(const LexedFile &lexed, std::set<std::string> &names)
{
    const auto &toks = lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            (toks[i].text != "unordered_map" &&
             toks[i].text != "unordered_set"))
            continue;
        if (toks[i + 1].text != "<")
            continue;

        // Skip the template argument list (">>" closes two).
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">")
                --depth;
            else if (toks[j].text == ">>")
                depth -= 2;
            if (depth <= 0 && j > i + 1)
                break;
        }
        // Declarator: skip cv/ref tokens, then an identifier not
        // followed by '(' (that would be a function returning a map)
        // and not preceded by '::' access (that's a nested type).
        for (++j; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "&" || t == "*" || t == "const" || t == "&&")
                continue;
            if (toks[j].kind == TokenKind::Identifier &&
                j + 1 < toks.size() && toks[j + 1].text != "(" &&
                t != "iterator" && t != "const_iterator")
                names.insert(t);
            break;
        }
    }
}

/** Bounds of one range-based for's range expression, if any. */
struct RangeFor
{
    int line;                ///< Line of the `for` keyword.
    std::size_t exprBegin;   ///< First token of the range expression.
    std::size_t exprEnd;     ///< One past the last token.
};

/**
 * Find range-based for statements. A for-parenthesis is range-based
 * iff it has a depth-1 ':' and no depth-1 ';' (the lexer emits '::'
 * as one token, so a lone ':' is unambiguous).
 */
std::vector<RangeFor>
findRangeFors(const LexedFile &lexed)
{
    std::vector<RangeFor> out;
    const auto &toks = lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier || toks[i].text != "for" ||
            toks[i + 1].text != "(")
            continue;
        int depth = 0;
        std::size_t colon = 0;
        bool classic = false;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}") {
                --depth;
                if (depth == 0) {
                    close = j;
                    break;
                }
            } else if (depth == 1 && t == ";")
                classic = true;
            else if (depth == 1 && t == ":" && colon == 0)
                colon = j;
        }
        if (close == 0 || classic || colon == 0)
            continue;
        out.push_back({toks[i].line, colon + 1, close});
    }
    return out;
}

void
runRules(const SourceFile &file, const LexedFile &lexed,
         const std::set<std::string> &unorderedNames,
         std::vector<Diagnostic> &diags)
{
    const bool testFile = isTestPath(file.path);
    const auto &toks = lexed.tokens;

    auto emit = [&](int line, const char *rule, std::string message) {
        diags.push_back({file.path, line, rule, std::move(message)});
    };

    // --- D1: hash-container iteration (non-test TUs) ---------------
    if (!testFile) {
        for (const RangeFor &rf : findRangeFors(lexed)) {
            for (std::size_t j = rf.exprBegin; j < rf.exprEnd; ++j) {
                const Token &t = toks[j];
                if (t.kind != TokenKind::Identifier)
                    continue;
                if (t.text == "unordered_map" || t.text == "unordered_set" ||
                    unorderedNames.count(t.text))
                {
                    emit(rf.line, "D1",
                         "iteration over hash container '" + t.text +
                             "': order-dependent output from "
                             "std::unordered_* breaks the bit-exact "
                             "replay contract (DESIGN.md 5b); iterate a "
                             "sorted or insertion-ordered copy instead");
                    break;
                }
            }
        }
    }

    // --- Token-at-a-time rules -------------------------------------
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier)
            continue;
        const bool callLike =
            i + 1 < toks.size() && toks[i + 1].text == "(";
        const std::string prev = i > 0 ? toks[i - 1].text : "";

        // D2: wall clocks and libc randomness.
        if (!isD2Exempt(file.path)) {
            if (kBannedD2Names.count(t.text)) {
                emit(t.line, "D2",
                     "'" + t.text +
                         "' is banned: all simulated time comes from "
                         "the event clock, wall time from "
                         "util/stopwatch.h, randomness from "
                         "util/rng.cc (seeded, replayable)");
            } else if (callLike && kBannedD2Calls.count(t.text) &&
                       prev != "." && prev != "->")
            {
                emit(t.line, "D2",
                     "call to '" + t.text +
                         "()' is banned: use the event clock / "
                         "util/stopwatch.h for time and util/rng.cc "
                         "for randomness");
            }
        }

        // D3: float in the double-contract directories.
        if (isD3Scoped(file.path) && t.text == "float") {
            emit(t.line, "D3",
                 "'float' in a score/energy path: the bit-exactness "
                 "contract (DESIGN.md 5b) is on IEEE doubles; "
                 "truncation to float silently changes ranks");
        }

        // D4: assert() and raw new/delete.
        if (t.text == "assert" && callLike) {
            emit(t.line, "D4",
                 "assert() compiles out under NDEBUG; use "
                 "COTTAGE_CHECK / COTTAGE_CHECK_MSG so invariants "
                 "hold in release replays too");
        }
        if (!testFile && !isArenaFile(file.path)) {
            if (t.text == "new") {
                emit(t.line, "D4",
                     "raw 'new' outside arena code: own allocations "
                     "with std::make_unique/std::vector");
            } else if (t.text == "delete" && prev != "=" &&
                       prev != "operator")
            {
                emit(t.line, "D4",
                     "raw 'delete' outside arena code: use RAII "
                     "ownership instead");
            }
        }

        // D6: raw SIMD intrinsics outside the codec directory.
        if (isD6Scoped(file.path) && isIntrinsicName(t.text)) {
            emit(t.line, "D6",
                 "SIMD intrinsic '" + t.text +
                     "' outside src/index/: vector kernels are "
                     "confined to the block codec TU, which pairs "
                     "them with a byte-identical scalar fallback "
                     "(DESIGN.md 5g); consume the codec interface "
                     "instead");
        }

        // D5: std::sort / std::stable_sort must name a comparator.
        if (!testFile &&
            (t.text == "sort" || t.text == "stable_sort") && callLike &&
            prev == "::" && i >= 2 &&
            (toks[i - 2].text == "std" || toks[i - 2].text == "ranges"))
        {
            const bool rangesSort = toks[i - 2].text == "ranges";
            int depth = 0;
            std::size_t commas = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const std::string &p = toks[j].text;
                if (p == "(" || p == "[" || p == "{")
                    ++depth;
                else if (p == ")" || p == "]" || p == "}") {
                    --depth;
                    if (depth == 0)
                        break;
                } else if (depth == 1 && p == ",")
                    ++commas;
            }
            const std::size_t needed = rangesSort ? 1 : 2;
            if (commas < needed) {
                emit(t.line, "D5",
                     "std::" + std::string(rangesSort ? "ranges::" : "") +
                         t.text +
                         " without a named comparator: default '<' on "
                         "pointers (or pairs holding them) is a latent "
                         "nondeterminism; pass std::less<T>{} or an "
                         "explicit ordering");
            }
        }
    }
}

} // namespace

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << file << ":" << line << ": [" << rule << "] " << message;
    return os.str();
}

bool
isTestPath(const std::string &path)
{
    if (path.find("tests/") != std::string::npos)
        return true;
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return base.rfind("test_", 0) == 0;
}

void
Linter::addFile(std::string path, std::string content)
{
    std::replace(path.begin(), path.end(), '\\', '/');
    files_.push_back({std::move(path), std::move(content)});
}

std::vector<Diagnostic>
Linter::run() const
{
    // Phase one: project-wide hash-container names, so a member map
    // declared in a header is caught when iterated in a .cc. Names
    // declared in test files are skipped — D1 does not apply there,
    // and a test-local map must not shadow-flag production loops.
    std::set<std::string> unorderedNames;
    std::vector<LexedFile> lexed;
    lexed.reserve(files_.size());
    for (const SourceFile &file : files_) {
        lexed.push_back(lex(file.content));
        if (!isTestPath(file.path))
            collectUnorderedNames(lexed.back(), unorderedNames);
    }

    std::vector<Diagnostic> out;
    for (std::size_t f = 0; f < files_.size(); ++f) {
        std::vector<Diagnostic> diags;
        runRules(files_[f], lexed[f], unorderedNames, diags);

        // Apply suppressions; a malformed one suppresses nothing and
        // is itself a finding.
        const auto sups = parseSuppressions(lexed[f]);
        for (const Suppression &sup : sups) {
            for (const std::string &bad : sup.unknownRules) {
                diags.push_back(
                    {files_[f].path, sup.commentLine, "SUP",
                     "allow() names unknown rule '" + bad +
                         "' (known: D1..D6)"});
            }
            if (!sup.justified()) {
                diags.push_back(
                    {files_[f].path, sup.commentLine, "SUP",
                     "suppression without a justification: write "
                     "'cottage-lint: allow(<rule>): <why this site "
                     "cannot break the invariant>' (>= " +
                         std::to_string(kMinJustification) +
                         " chars); the unjustified allow() suppresses "
                         "nothing"});
                continue;
            }
            std::erase_if(diags, [&](const Diagnostic &d) {
                return d.line == sup.targetLine && sup.rules.count(d.rule);
            });
        }

        std::sort(diags.begin(), diags.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      if (a.line != b.line)
                          return a.line < b.line;
                      return a.rule < b.rule;
                  });
        out.insert(out.end(), diags.begin(), diags.end());
    }
    return out;
}

std::vector<Diagnostic>
lintContent(const std::string &virtualPath, const std::string &content)
{
    Linter linter;
    linter.addFile(virtualPath, content);
    return linter.run();
}

} // namespace cottage::lint
