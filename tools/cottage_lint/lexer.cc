#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace cottage::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Multi-character punctuators the rules care about distinguishing. The
 * only load-bearing one is "::" (so a lone ":" in a range-for is easy
 * to find) but matching the usual two/three-char operators keeps the
 * stream sane, e.g. "->" never shows up as ">" to the D1 scanner.
 */
const char *const kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*",
};

} // namespace

LexedFile
lex(const std::string &source)
{
    LexedFile out;
    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;

    auto addComment = [&out](int atLine, const std::string &text) {
        std::string &slot = out.comments[atLine];
        if (!slot.empty())
            slot += ' ';
        slot += text;
    };
    auto push = [&out](TokenKind kind, std::string text, int atLine) {
        out.codeOnLine[atLine] = true;
        out.tokens.push_back({kind, std::move(text), atLine});
    };

    // True when the only things seen on the current line so far are
    // whitespace — used to recognize preprocessor directives.
    bool lineStart = true;

    while (i < n) {
        const char c = source[i];

        if (c == '\n') {
            ++line;
            ++i;
            lineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Preprocessor directive: consume to end of line, honoring
        // backslash continuations. Includes/defines never carry code
        // the rules inspect (and `#include <unordered_map>` must not
        // look like a declaration).
        if (c == '#' && lineStart) {
            while (i < n) {
                if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (source[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        lineStart = false;

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t j = i + 2;
            while (j < n && source[j] != '\n')
                ++j;
            addComment(line, source.substr(i + 2, j - i - 2));
            i = j;
            continue;
        }

        // Block comment: text attaches to every spanned line.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t j = i + 2;
            int commentLine = line;
            std::size_t segStart = j;
            while (j < n && !(source[j] == '*' && j + 1 < n &&
                              source[j + 1] == '/')) {
                if (source[j] == '\n') {
                    addComment(commentLine,
                               source.substr(segStart, j - segStart));
                    ++commentLine;
                    segStart = j + 1;
                }
                ++j;
            }
            addComment(commentLine, source.substr(segStart, j - segStart));
            line = commentLine;
            i = (j + 1 < n) ? j + 2 : n;
            continue;
        }

        // Identifier / keyword — with the raw-string prefix special
        // case: R"( and friends start a raw string literal.
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(source[j]))
                ++j;
            const std::string word = source.substr(i, j - i);
            const bool rawPrefix = (word == "R" || word == "u8R" ||
                                    word == "uR" || word == "UR" ||
                                    word == "LR");
            if (rawPrefix && j < n && source[j] == '"') {
                // R"delim( ... )delim"
                std::size_t k = j + 1;
                std::string delim;
                while (k < n && source[k] != '(')
                    delim += source[k++];
                const std::string closer = ")" + delim + "\"";
                std::size_t end = source.find(closer, k);
                if (end == std::string::npos)
                    end = n;
                else
                    end += closer.size();
                const int startLine = line;
                for (std::size_t p = i; p < end && p < n; ++p)
                    if (source[p] == '\n')
                        ++line;
                push(TokenKind::String, "", startLine);
                i = end;
                continue;
            }
            // String/char encoding prefixes (u8"", L'x', ...): let the
            // literal scanner below handle the quote; emit no token.
            const bool encPrefix = (word == "u8" || word == "u" ||
                                    word == "U" || word == "L");
            if (encPrefix && j < n && (source[j] == '"' || source[j] == '\''))
            {
                i = j;
                continue;
            }
            push(TokenKind::Identifier, word, line);
            i = j;
            continue;
        }

        // Number: digits plus pp-number continuation (hex, suffixes,
        // digit separators, exponent signs). A separator quote inside a
        // number must not open a char literal.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1]))))
        {
            std::size_t j = i;
            while (j < n) {
                const char d = source[j];
                if (isIdentChar(d) || d == '.') {
                    ++j;
                    continue;
                }
                if (d == '\'' && j + 1 < n && isIdentChar(source[j + 1])) {
                    j += 2;
                    continue;
                }
                if ((d == '+' || d == '-') && j > i &&
                    (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                     source[j - 1] == 'p' || source[j - 1] == 'P'))
                {
                    ++j;
                    continue;
                }
                break;
            }
            push(TokenKind::Number, source.substr(i, j - i), line);
            i = j;
            continue;
        }

        // String literal.
        if (c == '"') {
            std::size_t j = i + 1;
            while (j < n && source[j] != '"') {
                if (source[j] == '\\' && j + 1 < n)
                    ++j;
                else if (source[j] == '\n')
                    ++line; // ill-formed, but keep line counts right
                ++j;
            }
            push(TokenKind::String, "", line);
            i = (j < n) ? j + 1 : n;
            continue;
        }

        // Character literal.
        if (c == '\'') {
            std::size_t j = i + 1;
            while (j < n && source[j] != '\'') {
                if (source[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            push(TokenKind::Char, "", line);
            i = (j < n) ? j + 1 : n;
            continue;
        }

        // Punctuator: longest match first.
        bool matched = false;
        for (const char *mp : kMultiPunct) {
            const std::size_t len = std::char_traits<char>::length(mp);
            if (source.compare(i, len, mp) == 0) {
                push(TokenKind::Punct, mp, line);
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            push(TokenKind::Punct, std::string(1, c), line);
            ++i;
        }
    }
    return out;
}

} // namespace cottage::lint
