/**
 * @file
 * cottage_lint CLI driver, split from main() so the exit semantics
 * (0 = clean, 1 = findings, 2 = bad input) and the --json output can
 * be exercised from the test suite (including as death tests).
 */

#ifndef COTTAGE_LINT_CLI_H
#define COTTAGE_LINT_CLI_H

#include <iosfwd>

namespace cottage::lint {

/** Process exit codes, matching scripts/check_bench.py's convention. */
enum CliExit : int {
    kExitClean = 0,    ///< Scan ran, no findings survived suppression.
    kExitFindings = 1, ///< Scan ran, at least one finding.
    kExitBadInput = 2, ///< Usage error, unreadable/nonexistent input,
                       ///< or an input that matched no source files.
};

/**
 * Run the CLI: parse @p argv, scan, print findings to @p out (text or
 * --json) and diagnostics to @p err. Returns a CliExit value; never
 * calls exit() itself.
 */
int runCli(int argc, const char *const *argv, std::ostream &out,
           std::ostream &err);

} // namespace cottage::lint

#endif // COTTAGE_LINT_CLI_H
