/**
 * @file
 * cottage_lint entry point; all logic lives in cli.cc so the test
 * suite can drive the CLI (including its exit codes) in-process.
 */

#include <iostream>

#include "cli.h"

int
main(int argc, char **argv)
{
    return cottage::lint::runCli(argc, argv, std::cout, std::cerr);
}
