/**
 * @file
 * cottage_lint CLI.
 *
 *     cottage_lint [--root <dir>] [--as <virtual-path>] [paths...]
 *
 * With no paths, scans src/, bench/ and tests/ under --root (default
 * "."). Directories are walked recursively for .h/.cc/.cpp files in
 * sorted order; build trees and the lint fixtures are skipped. Exits 1
 * when any finding survives suppression, 2 on usage/IO errors.
 *
 * --as lints a single file under a pretend repo-relative path, so the
 * path-scoped rules (D2/D3, test exemptions) can be exercised against
 * a file living elsewhere (the fixture suite uses this).
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using cottage::lint::Diagnostic;
using cottage::lint::Linter;

namespace {

/** Default scan set, matching the CI static-analysis job. */
const char *const kDefaultRoots[] = {"src", "bench", "tests"};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/** Subtrees never scanned: build output and the known-bad fixtures. */
bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 || name == "fixtures" ||
           name == ".git";
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Collect source files under @p p (file or directory), sorted. */
void
collect(const fs::path &p, std::vector<fs::path> &out)
{
    if (fs::is_regular_file(p)) {
        out.push_back(p);
        return;
    }
    if (!fs::is_directory(p))
        return;
    std::vector<fs::path> entries;
    for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
        if (it->is_directory() && isSkippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            entries.push_back(it->path());
    }
    std::sort(entries.begin(), entries.end());
    out.insert(out.end(), entries.begin(), entries.end());
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    std::string asPath;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--as" && i + 1 < argc) {
            asPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: cottage_lint [--root <dir>] "
                         "[--as <virtual-path>] [paths...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cottage_lint: unknown flag " << arg << "\n";
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }

    if (!asPath.empty() && inputs.size() != 1) {
        std::cerr << "cottage_lint: --as needs exactly one input file\n";
        return 2;
    }

    std::vector<fs::path> files;
    if (inputs.empty()) {
        for (const char *sub : kDefaultRoots)
            collect(root / sub, files);
    } else {
        for (const std::string &in : inputs)
            collect(fs::path(in).is_absolute() ? fs::path(in) : root / in,
                    files);
    }
    if (files.empty()) {
        std::cerr << "cottage_lint: no source files found under "
                  << root << "\n";
        return 2;
    }

    Linter linter;
    for (const fs::path &file : files) {
        std::string content;
        if (!readFile(file, content)) {
            std::cerr << "cottage_lint: cannot read " << file << "\n";
            return 2;
        }
        std::string rel = asPath;
        if (rel.empty()) {
            const fs::path relPath = file.lexically_relative(root);
            rel = (relPath.empty() || *relPath.begin() == "..")
                      ? file.generic_string()
                      : relPath.generic_string();
        }
        linter.addFile(rel, std::move(content));
    }

    const std::vector<Diagnostic> diags = linter.run();
    for (const Diagnostic &d : diags)
        std::cout << d.format() << "\n";
    std::cout << "cottage_lint: " << files.size() << " file(s), "
              << diags.size() << " finding(s)\n";
    return diags.empty() ? 0 : 1;
}
