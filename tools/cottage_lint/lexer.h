/**
 * @file
 * Minimal C++ tokenizer for cottage_lint.
 *
 * This is not a compiler front end: it produces just enough structure
 * for the project rules — identifier/punctuation tokens with line
 * numbers, with comments, string/char literals and preprocessor lines
 * stripped out of the token stream. Comment text is kept per line so
 * the suppression comments can be recognized, and string/char literals
 * can never produce a false finding (an `assert(` inside a log message
 * is not a call).
 */

#ifndef COTTAGE_LINT_LEXER_H
#define COTTAGE_LINT_LEXER_H

#include <map>
#include <string>
#include <vector>

namespace cottage::lint {

/** Coarse token classification; the rules mostly match on text. */
enum class TokenKind {
    Identifier, ///< Identifier or keyword.
    Number,     ///< Numeric literal (incl. suffixes and separators).
    Punct,      ///< One operator/punctuator, e.g. "::", "<", "(".
    String,     ///< String literal (text omitted, placeholder token).
    Char,       ///< Character literal (text omitted).
};

/** One lexed token. */
struct Token
{
    TokenKind kind;
    std::string text; ///< Spelling; empty for String/Char.
    int line;         ///< 1-based source line of the first character.
};

/** Result of lexing one translation unit. */
struct LexedFile
{
    /** All code tokens in source order. */
    std::vector<Token> tokens;

    /**
     * Comment text per 1-based line. A block comment contributes its
     * full text to every line it spans, so a suppression written inside
     * one is found regardless of formatting.
     */
    std::map<int, std::string> comments;

    /** Lines that carry at least one code token. */
    std::map<int, bool> codeOnLine;
};

/**
 * Lex one source file. Never fails: unterminated constructs are
 * consumed to end of input (the real compiler rejects them anyway).
 */
LexedFile lex(const std::string &source);

} // namespace cottage::lint

#endif // COTTAGE_LINT_LEXER_H
