// Fixture: D5 — std::sort on pointers with the default comparator.
// Expected: exactly one [D5] finding on the sort line.
#include <algorithm>
#include <vector>

void
orderDocs(std::vector<const int *> &docs)
{
    std::sort(docs.begin(), docs.end());
}
