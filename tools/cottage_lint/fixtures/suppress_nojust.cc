// Fixture: suppression without a justification.
// Expected: one [SUP] finding on the allow() line AND the underlying
// [D1] still fires — an unjustified allow() suppresses nothing.
#include <unordered_map>

int
sumKeys(const std::unordered_map<int, int> &counts)
{
    int total = 0;
    // cottage-lint: allow(D1)
    for (const auto &entry : counts)
        total += entry.first;
    return total;
}
