// Fixture: D2 — wall clock outside util/stopwatch.h.
// Expected: exactly one [D2] finding on the steady_clock line.
#include <chrono>

double
wallSeconds()
{
    const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
