// Known-good D7 fixture: the hook guard only reads measured state and
// writes a local of the enclosing function; the measured write happens
// outside any guard.

class QueryTracer;

class FixtureEngine
{
  public:
    long snapshot(QueryTracer *tracer)
    {
        long observed = 0;
        if (tracer) {
            observed = docsScored_;
        }
        return observed;
    }

    void step() { docsScored_ = docsScored_ + 1; }

  private:
    long docsScored_ = 0;
};
