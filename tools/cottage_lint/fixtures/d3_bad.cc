// Fixture: D3 — float in a score path (linted under src/index/).
// Expected: exactly one [D3] finding on the declaration line.

double
shrinkScore(double score)
{
    float narrowed = 0.0;
    narrowed += static_cast<decltype(narrowed)>(score);
    return narrowed;
}
