// Fixture: D4 — assert() instead of COTTAGE_CHECK.
// Expected: exactly one [D4] finding on the assert line.
#include <cassert>

int
halve(int x)
{
    assert(x >= 0);
    return x / 2;
}
