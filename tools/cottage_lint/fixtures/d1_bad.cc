// Fixture: D1 — iterating a hash container in a non-test TU.
// Expected: exactly one [D1] finding on the for-loop line.
#include <unordered_map>

int
sumValues(const std::unordered_map<int, int> &counts)
{
    int total = 0;
    for (const auto &entry : counts)
        total += entry.second;
    return total;
}
