// D8 fixture with a justified suppression on the line above the
// offending submit; the file must lint clean.

struct ThreadPool;

void
accumulate(ThreadPool &pool, double &total)
{
    // cottage-lint: allow(D8): fixture pins the suppression path
    pool.submit([&] { total = total + 1.0; });
}
