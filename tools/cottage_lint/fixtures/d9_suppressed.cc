// D9 fixture with a justified suppression; the file must lint clean.

double
sample()
{
    // cottage-lint: allow(D9): fixture pins the suppression path
    Rng rng;
    return rng.uniform();
}
