// D7 fixture with a justified suppression: same shape as d7_bad.cc but
// the offending line carries an allow-comment, so the file must lint
// clean.

class QueryTracer;

class FixtureEngine
{
  public:
    void search(QueryTracer *tracer)
    {
        if (tracer) {
            // cottage-lint: allow(D7): fixture pins the suppression path
            tracedQueries_ = tracedQueries_ + 1;
        }
    }

  private:
    long tracedQueries_ = 0;
};
