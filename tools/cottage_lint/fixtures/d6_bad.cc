// Fixture: D6 — a raw SSE intrinsic outside src/index/.
// Expected: exactly two [D6] findings on line 9 (the __m128i vector
// type and the _mm_setzero_si128 call are each a use).
#include <tmmintrin.h>

int
peek()
{
    __m128i v = _mm_setzero_si128();
    (void)v;
    return 0;
}
