// Known-good D8 fixture: each task writes only its own indexed slot
// (captured by value), the sanctioned per-worker pattern; the merge
// happens sequentially after the gang.

struct ThreadPool;

void
fill(ThreadPool &pool, double *slots, int count)
{
    for (int i = 0; i < count; ++i) {
        pool.submit([slots, i] { slots[i] = 1.0; });
    }
}
