// Fixture: clean file — every rule satisfied. Expected: no findings.
// Hash containers are probed, never iterated; the sort names its
// comparator; strings and comments mentioning assert( or rand() must
// not be findings.
#include <algorithm>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

// A comment saying assert(x) or rand() is not a call.
const char *kBanner = "do not call rand() or assert(here)";

bool
contains(const std::unordered_set<int> &seen, int doc)
{
    return seen.count(doc) != 0;
}

void
orderValues(std::vector<double> &values)
{
    std::sort(values.begin(), values.end(), std::less<double>());
}

int
scanOrdered(const std::vector<int> &docs)
{
    int last = 0;
    for (int doc : docs)
        last = doc;
    return last;
}
