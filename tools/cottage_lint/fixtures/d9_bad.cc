// Known-bad D9 fixture: a default-constructed generator has no visible
// seed provenance, so the run cannot be replayed from its config.

double
sample()
{
    Rng rng; // line 7: D9
    return rng.uniform();
}
