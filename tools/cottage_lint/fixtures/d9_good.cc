// Known-good D9 fixture: the generator's seed arrives as an explicit
// parameter, so provenance is visible at the construction site.

double
sample(unsigned long seed)
{
    Rng rng(seed);
    return rng.uniform();
}
