// Known-bad D8 fixture: a [&]-default lambda handed to the pool writes
// a captured accumulator without a per-worker slot or a guarded
// member — the unsynchronized shared-mutable pattern.

struct ThreadPool;

void
accumulate(ThreadPool &pool, double &total)
{
    pool.submit([&] { total = total + 1.0; }); // line 10: D8
}
