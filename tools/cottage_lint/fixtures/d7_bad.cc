// Known-bad D7 fixture: a write to measured engine state inside a
// nullable-tracer guard. The test lints this under the virtual path
// src/engine/d7_bad.cc, so FixtureEngine's members count as measured.

class QueryTracer;

class FixtureEngine
{
  public:
    void search(QueryTracer *tracer)
    {
        if (tracer) {
            tracedQueries_ = tracedQueries_ + 1; // line 13: D7
        }
    }

  private:
    long tracedQueries_ = 0;
};
