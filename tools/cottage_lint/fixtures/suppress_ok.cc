// Fixture: justified suppression. Expected: no findings — the
// commutative fold below cannot depend on iteration order.
#include <unordered_map>

int
sumKeys(const std::unordered_map<int, int> &counts)
{
    int total = 0;
    // cottage-lint: allow(D1): commutative integer sum, order-independent
    for (const auto &entry : counts)
        total += entry.first;
    return total;
}
