/**
 * @file
 * cottage_lint CLI implementation.
 *
 *     cottage_lint [--root <dir>] [--as <virtual-path>] [--json]
 *                  [paths...]
 *
 * With no paths, scans src/, bench/, tests/ and tools/ under --root
 * (default "."). Directories are walked recursively for .h/.cc/.cpp
 * files in sorted order; build trees and the lint fixtures are
 * skipped. Exit codes: 0 clean, 1 findings, 2 bad input — and "bad
 * input" includes an explicit path that does not exist or matches no
 * source files, so a typo'd path in CI fails loudly instead of
 * reporting a vacuous "0 findings" (scripts/check_bench.py uses the
 * same convention).
 *
 * --as lints a single file under a pretend repo-relative path, so the
 * path-scoped rules (D2/D3/D7/D9, test exemptions) can be exercised
 * against a file living elsewhere (the fixture suite uses this).
 *
 * --json replaces the human-readable report with a deterministic JSON
 * array of findings, which scripts/check_lint.py diffs against the
 * committed suppression baseline.
 */

#include "cli.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace cottage::lint {

namespace fs = std::filesystem;

namespace {

/** Default scan set, matching the CI static-analysis job. */
const char *const kDefaultRoots[] = {"src", "bench", "tests", "tools"};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/** Subtrees never scanned: build output and the known-bad fixtures. */
bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 || name == "fixtures" ||
           name == ".git";
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Collect source files under @p p (file or directory), sorted. */
void
collect(const fs::path &p, std::vector<fs::path> &out)
{
    if (fs::is_regular_file(p)) {
        out.push_back(p);
        return;
    }
    if (!fs::is_directory(p))
        return;
    std::vector<fs::path> entries;
    for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
        if (it->is_directory() && isSkippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            entries.push_back(it->path());
    }
    std::sort(entries.begin(), entries.end(),
              std::less<fs::path>()); // lexicographic, deterministic
    out.insert(out.end(), entries.begin(), entries.end());
}

/** Minimal JSON string escaping for paths and messages. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

int
runCli(int argc, const char *const *argv, std::ostream &out,
       std::ostream &err)
{
    fs::path root = ".";
    std::string asPath;
    bool json = false;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--as" && i + 1 < argc) {
            asPath = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            out << "usage: cottage_lint [--root <dir>] "
                   "[--as <virtual-path>] [--json] [paths...]\n";
            return kExitClean;
        } else if (!arg.empty() && arg[0] == '-') {
            err << "cottage_lint: unknown flag " << arg << "\n";
            return kExitBadInput;
        } else {
            inputs.push_back(arg);
        }
    }

    if (!asPath.empty() && inputs.size() != 1) {
        err << "cottage_lint: --as needs exactly one input file\n";
        return kExitBadInput;
    }

    std::vector<fs::path> files;
    if (inputs.empty()) {
        for (const char *sub : kDefaultRoots)
            collect(root / sub, files);
        if (files.empty()) {
            err << "cottage_lint: no source files found under " << root
                << "\n";
            return kExitBadInput;
        }
    } else {
        for (const std::string &in : inputs) {
            const fs::path p =
                fs::path(in).is_absolute() ? fs::path(in) : root / in;
            if (!fs::exists(p)) {
                err << "cottage_lint: input path does not exist: " << p
                    << "\n";
                return kExitBadInput;
            }
            const std::size_t before = files.size();
            collect(p, files);
            if (files.size() == before) {
                err << "cottage_lint: input matched no source files: "
                    << p << "\n";
                return kExitBadInput;
            }
        }
    }

    Linter linter;
    for (const fs::path &file : files) {
        std::string content;
        if (!readFile(file, content)) {
            err << "cottage_lint: cannot read " << file << "\n";
            return kExitBadInput;
        }
        std::string rel = asPath;
        if (rel.empty()) {
            const fs::path relPath = file.lexically_relative(root);
            rel = (relPath.empty() || *relPath.begin() == "..")
                      ? file.generic_string()
                      : relPath.generic_string();
        }
        linter.addFile(rel, std::move(content));
    }

    const std::vector<Diagnostic> diags = linter.run();
    if (json) {
        out << "[";
        for (std::size_t i = 0; i < diags.size(); ++i) {
            const Diagnostic &d = diags[i];
            out << (i == 0 ? "\n" : ",\n");
            out << "  {\"file\": \"" << jsonEscape(d.file)
                << "\", \"line\": " << d.line << ", \"rule\": \""
                << jsonEscape(d.rule) << "\", \"message\": \""
                << jsonEscape(d.message) << "\"}";
        }
        out << (diags.empty() ? "]\n" : "\n]\n");
    } else {
        for (const Diagnostic &d : diags)
            out << d.format() << "\n";
        out << "cottage_lint: " << files.size() << " file(s), "
            << diags.size() << " finding(s)\n";
    }
    return diags.empty() ? kExitClean : kExitFindings;
}

} // namespace cottage::lint
