/**
 * @file
 * Trace replay: run one policy over one trace flavor and emit a
 * per-query CSV (arrival, latency, P@10, ISNs used, boosted, C_RES,
 * budget) plus the run summary — the workload a capacity planner or
 * researcher would script against this library.
 *
 * Usage:
 *   trace_replay [--policy=cottage] [--trace=wikipedia|lucene]
 *                [--csv=out.csv] [--trace-out=trace.jsonl]
 *                [--metrics-out=metrics.json] [--power-window-ms=100]
 *                [--docs=] [--queries=] [--qps=] ...
 *
 * Serving mode (--serve=1) routes the trace through the online
 * front-end instead — admission control, result/term-stats caches and
 * load shedding around the engine — re-timed to the offered --qps:
 *   trace_replay --serve=1 --qps=600 [--shed-backlog-ms=250]
 *                [--degrade-backlog-ms=50] [--overload-budget-ms=50]
 *                [--result-cache=1024] [--postings-cache=4096]
 *
 * Scenario mode (--scenario=<name>) serves a multi-tenant SLO
 * scenario — merged per-tenant arrival streams over an optionally
 * hostile cluster (see serve/scenario.h) — and prints the per-tenant
 * rollups. --qps-scale multiplies every tenant's baseline rate:
 *   trace_replay --scenario=flash_crowd [--qps-scale=1] [--json=1]
 * Built-in scenarios: mixed_poisson, diurnal, flash_crowd,
 * straggler_isn, failover.
 */

#include <fstream>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("docs"))
        config.corpus.numDocs = 30000;
    if (!flags.has("queries"))
        config.traceQueries = 3000;
    config.print(std::cout);

    const std::string policyName = flags.getString("policy", "cottage");
    const std::string traceName = flags.getString("trace", "wikipedia");
    const TraceFlavor flavor = traceName == "lucene"
                                   ? TraceFlavor::Lucene
                                   : TraceFlavor::Wikipedia;

    Experiment experiment(std::move(config));

    const std::string scenarioName = flags.getString("scenario", "");
    if (!scenarioName.empty()) {
        const double qpsScale = getPositiveDouble(flags, "qps-scale", 1.0);
        const ScenarioConfig scenario =
            scenarioByName(scenarioName, qpsScale);
        const ScenarioRunResult run =
            experiment.runScenario(policyName, scenario);
        const ServingSummary &sv = run.summary;

        TextTable cluster({"metric", "value"});
        cluster.addRow({"scenario", scenario.name});
        cluster.addRow({"hostile", scenario.hostile ? "yes" : "no"});
        cluster.addRow({"policy", sv.run.policy});
        cluster.addRow({"offered", TextTable::cell(sv.offered)});
        cluster.addRow({"completed", TextTable::cell(sv.completed)});
        cluster.addRow({"shed rate", TextTable::cell(sv.shedRate)});
        cluster.addRow({"degraded", TextTable::cell(sv.degraded)});
        cluster.addRow({"ISNs shed", TextTable::cell(sv.isnsShed)});
        cluster.addRow({"ISNs unavailable",
                        TextTable::cell(sv.isnsUnavailable)});
        cluster.addRow({"avg power W",
                        TextTable::cell(sv.run.avgPowerWatts, 2)});
        std::cout << "\n" << cluster.render();

        TextTable tenants({"tenant", "offered", "shed rate", "p99 ms",
                           "p99.9 ms", "SLO ms", "attainment", "met",
                           "NDCG", "energy J"});
        for (const TenantSummary &t : sv.tenants) {
            tenants.addRow(
                {t.tenant, TextTable::cell(t.offered),
                 TextTable::cell(t.shedRate),
                 TextTable::cell(t.p99LatencySeconds * 1e3),
                 TextTable::cell(t.p999LatencySeconds * 1e3),
                 t.deadlineSeconds == noBudget
                     ? "-"
                     : TextTable::cell(t.deadlineSeconds * 1e3),
                 TextTable::cell(t.sloAttainment),
                 t.sloMet ? "yes" : "no", TextTable::cell(t.avgNdcg),
                 TextTable::cell(t.energyJoules, 1)});
        }
        std::cout << "\n" << tenants.render();

        if (run.metrics) {
            std::cout << "\n" << run.metrics->toAsciiReport();
            std::cout << "wrote metrics to "
                      << experiment.config().metricsOut << "\n";
        }
        if (flags.getBool("json", false))
            std::cout << "\n" << toJson(sv) << "\n";
        return 0;
    }

    if (experiment.config().serving.enabled) {
        const ServingRunResult serving = experiment.runServing(
            policyName, flavor, experiment.config().arrivalQps);
        const ServingSummary &sv = serving.summary;
        TextTable table({"metric", "value"});
        table.addRow({"policy", sv.run.policy});
        table.addRow({"trace", sv.run.trace});
        table.addRow({"offered", TextTable::cell(sv.offered)});
        table.addRow({"completed", TextTable::cell(sv.completed)});
        table.addRow({"shed queries", TextTable::cell(sv.shedQueries)});
        table.addRow({"shed rate", TextTable::cell(sv.shedRate)});
        table.addRow({"degraded", TextTable::cell(sv.degraded)});
        table.addRow({"cache hits", TextTable::cell(sv.cacheHits)});
        table.addRow({"result-cache hit rate",
                      TextTable::cell(sv.resultCacheHitRate)});
        table.addRow({"stats-cache hit rate",
                      TextTable::cell(sv.statsCacheHitRate)});
        table.addRow({"offered QPS", TextTable::cell(sv.offeredQps, 1)});
        table.addRow({"achieved QPS",
                      TextTable::cell(sv.achievedQps, 1)});
        table.addRow({"avg latency ms",
                      TextTable::cell(sv.run.avgLatencySeconds * 1e3)});
        table.addRow({"p95 latency ms",
                      TextTable::cell(sv.run.p95LatencySeconds * 1e3)});
        table.addRow({"p99 latency ms",
                      TextTable::cell(sv.run.p99LatencySeconds * 1e3)});
        table.addRow({"avg P@10", TextTable::cell(sv.run.avgPrecision)});
        table.addRow({"avg power W",
                      TextTable::cell(sv.run.avgPowerWatts, 2)});
        std::cout << "\n" << table.render();
        if (serving.metrics) {
            std::cout << "\n" << serving.metrics->toAsciiReport();
            std::cout << "wrote metrics to "
                      << experiment.config().metricsOut << "\n";
        }
        if (flags.getBool("json", false))
            std::cout << "\n" << toJson(sv) << "\n";
        return 0;
    }

    const RunResult result = experiment.run(policyName, flavor);

    const std::string csvPath = flags.getString("csv", "");
    std::ofstream csvFile;
    std::ostream *csv = nullptr;
    if (!csvPath.empty()) {
        csvFile.open(csvPath);
        if (!csvFile)
            fatal("cannot open " + csvPath);
        csv = &csvFile;
    }
    if (csv != nullptr) {
        *csv << "query,arrival_s,latency_ms,p_at_10,isns_used,"
                "isns_boosted,c_res,budget_ms\n";
        for (const QueryMeasurement &m : result.measurements) {
            *csv << m.id << ',' << m.arrivalSeconds << ','
                 << m.latencySeconds * 1e3 << ',' << m.precisionAtK << ','
                 << m.isnsUsed << ',' << m.isnsBoosted << ','
                 << m.docsSearched << ','
                 << (m.budgetSeconds == noBudget ? -1.0
                                                 : m.budgetSeconds * 1e3)
                 << '\n';
        }
        std::cout << "wrote " << result.measurements.size()
                  << " rows to " << csvPath << "\n";
    }

    const RunSummary &s = result.summary;
    TextTable summary({"metric", "value"});
    summary.addRow({"policy", s.policy});
    summary.addRow({"trace", s.trace});
    summary.addRow({"queries", TextTable::cell(
                                   static_cast<uint64_t>(s.queries))});
    summary.addRow({"avg latency ms",
                    TextTable::cell(s.avgLatencySeconds * 1e3)});
    summary.addRow({"p95 latency ms",
                    TextTable::cell(s.p95LatencySeconds * 1e3)});
    summary.addRow({"p99 latency ms",
                    TextTable::cell(s.p99LatencySeconds * 1e3)});
    summary.addRow({"avg P@10", TextTable::cell(s.avgPrecision)});
    summary.addRow({"avg ISNs/query", TextTable::cell(s.avgIsnsUsed, 2)});
    summary.addRow({"avg boosted/query",
                    TextTable::cell(s.avgIsnsBoosted, 2)});
    summary.addRow({"avg C_RES docs",
                    TextTable::cell(s.avgDocsSearched, 0)});
    summary.addRow({"truncated responses",
                    TextTable::cell(s.truncatedResponses)});
    summary.addRow({"avg P@10 (NDCG)", TextTable::cell(s.avgNdcg)});
    summary.addRow({"avg power W", TextTable::cell(s.avgPowerWatts, 2)});
    summary.addRow({"busy energy J", TextTable::cell(s.energyJoules, 1)});
    std::cout << "\n" << summary.render();

    if (result.trace)
        std::cout << "\nwrote " << result.trace->records().size()
                  << " trace records to " << experiment.config().traceOut
                  << "\n";
    if (result.metrics) {
        std::cout << "\n" << result.metrics->toAsciiReport();
        std::cout << "wrote metrics to "
                  << experiment.config().metricsOut << "\n";
    }

    if (flags.getBool("json", false))
        std::cout << "\n" << toJson(s) << "\n";
    return 0;
}
