/**
 * @file
 * Quickstart: build the reproduction stack on a small corpus, replay a
 * query trace under every policy, and print the headline comparison
 * (latency / P@10 / active ISNs / C_RES / power) — the whole paper in
 * one table.
 *
 * Usage:
 *   quickstart [--docs=20000] [--queries=2000] [--qps=80] [--shards=16]
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("docs"))
        config.corpus.numDocs = 20000;
    if (!flags.has("queries"))
        config.traceQueries = 2000;
    if (!flags.has("train-queries"))
        config.trainQueries = 1500;
    config.print(std::cout);

    Experiment experiment(std::move(config));

    TextTable table({"policy", "avg ms", "p95 ms", "P@10", "ISNs/query",
                     "C_RES", "power W"});
    for (const char *name :
         {"exhaustive", "aggregation", "rank-s", "redde", "taily",
          "cottage", "cottage-isn", "cottage-without-ml"}) {
        const RunResult result =
            experiment.run(name, TraceFlavor::Wikipedia);
        const RunSummary &s = result.summary;
        table.addRow({s.policy, TextTable::cell(s.avgLatencySeconds * 1e3),
                      TextTable::cell(s.p95LatencySeconds * 1e3),
                      TextTable::cell(s.avgPrecision),
                      TextTable::cell(s.avgIsnsUsed, 2),
                      TextTable::cell(s.avgDocsSearched, 0),
                      TextTable::cell(s.avgPowerWatts, 2)});
    }
    std::cout << "\nwikipedia trace, " << experiment.config().traceQueries
              << " queries\n"
              << table.render()
              << "\nidle power: " << experiment.config().power.idleWatts
              << " W\n";
    return 0;
}
