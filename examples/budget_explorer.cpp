/**
 * @file
 * Budget explorer: type (or pass) queries and watch Cottage think —
 * per-ISN quality/latency predictions, Algorithm 1's budget walk, the
 * frequency assignments, and the simulated execution against the true
 * exhaustive result. The debugging lens an operator of this system
 * would reach for.
 *
 * Usage:
 *   budget_explorer --query="canada music"       # one-shot
 *   budget_explorer                               # reads stdin lines
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "core/budget_algorithm.h"
#include "core/cottage_policy.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "util/cli.h"

using namespace cottage;

namespace {

void
explore(Experiment &experiment, CottagePolicy &policy,
        const std::string &text)
{
    Query query;
    query.terms = experiment.corpus().vocabulary().tokenize(text);
    query.arrivalSeconds = 0.0;
    if (query.terms.empty()) {
        std::cout << "no known terms in \"" << text << "\"\n";
        return;
    }

    const auto truth = experiment.engine().globalTopK(query.terms);
    const auto contributions =
        experiment.engine().shardContributions(truth);

    const auto preds = policy.predictions(query, experiment.engine());
    const BudgetDecision decision = determineTimeBudget(preds);

    std::cout << "\nquery \"" << text << "\" ("
              << truth.size() << " true results)\n";
    TextTable table({"ISN", "Q^K pred", "Q^K true", "Q^K/2 pred",
                     "L cur ms", "L boost ms", "fate"});
    const auto fate = [&](ShardId isn) -> std::string {
        if (std::find(decision.selected.begin(), decision.selected.end(),
                      isn) != decision.selected.end())
            return "selected";
        if (std::find(decision.droppedZeroQuality.begin(),
                      decision.droppedZeroQuality.end(),
                      isn) != decision.droppedZeroQuality.end())
            return "cut: zero Q^K";
        return "cut: over budget";
    };
    for (const IsnPrediction &p : preds) {
        table.addRow({TextTable::cell(static_cast<uint64_t>(p.isn)),
                      TextTable::cell(static_cast<uint64_t>(p.qualityK)),
                      TextTable::cell(static_cast<uint64_t>(
                          contributions[p.isn])),
                      TextTable::cell(static_cast<uint64_t>(p.qualityHalf)),
                      TextTable::cell(p.latencyCurrent * 1e3, 2),
                      TextTable::cell(p.latencyBoosted * 1e3, 2),
                      fate(p.isn)});
    }
    std::cout << table.render();

    experiment.cluster().reset();
    const QueryPlan plan = policy.plan(query, experiment.engine());
    const QueryMeasurement m =
        experiment.engine().execute(query, plan, truth);
    std::cout << "budget "
              << (plan.budgetSeconds == noBudget
                      ? std::string("none")
                      : TextTable::cell(plan.budgetSeconds * 1e3, 2) +
                            " ms")
              << " | executed on " << m.isnsUsed << " ISNs ("
              << m.isnsBoosted << " boosted) | latency "
              << TextTable::cell(m.latencySeconds * 1e3, 2)
              << " ms | P@10 " << TextTable::cell(m.precisionAtK, 2)
              << " | C_RES " << m.docsSearched << " docs\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("docs"))
        config.corpus.numDocs = 30000;
    if (!flags.has("train-queries"))
        config.trainQueries = 2000;
    config.traceQueries = 100;
    config.print(std::cout);

    Experiment experiment(std::move(config));
    CottagePolicy policy(experiment.bank(), experiment.config().cottage);

    if (flags.has("query")) {
        explore(experiment, policy, flags.getString("query", ""));
        return 0;
    }

    std::cout << "\nenter queries (one per line, ctrl-d to quit); try "
                 "\"canada\", \"tokyo music\", \"toyota engine\"\n> "
              << std::flush;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (!line.empty())
            explore(experiment, policy, line);
        std::cout << "> " << std::flush;
    }
    return 0;
}
