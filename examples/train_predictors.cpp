/**
 * @file
 * Offline predictor training: build the training sets from a query
 * trace, train one quality and one latency model per ISN, report
 * held-out accuracy, and persist the models to disk (then reload one
 * to verify) — the pipeline a deployment would run at index time.
 *
 * Usage:
 *   train_predictors [--model-dir=/tmp/cottage-models] [--docs=]
 *                    [--train-queries=] [--iterations=]
 */

#include <filesystem>
#include <fstream>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "predict/training.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace cottage;

int
main(int argc, char **argv)
{
    const CliFlags flags(argc, argv);
    ExperimentConfig config = ExperimentConfig::fromFlags(flags);
    if (!flags.has("docs"))
        config.corpus.numDocs = 30000;
    config.traceQueries = 100;
    config.print(std::cout);

    Experiment experiment(std::move(config));

    // Held-out evaluation data with a disjoint seed.
    TraceConfig heldOutConfig;
    heldOutConfig.numQueries = 1200;
    heldOutConfig.vocabSize = experiment.config().corpus.vocabSize;
    heldOutConfig.seed = experiment.config().traceSeed + 9999;
    const QueryTrace heldOut = QueryTrace::generate(heldOutConfig);
    const TrainingSets test = buildTrainingSets(
        experiment.index(), experiment.evaluator(),
        experiment.config().work, heldOut,
        experiment.config().train.numBuckets);

    const PredictorBank &bank = experiment.bank();

    std::cout << "\n=== held-out accuracy per ISN ===\n";
    TextTable table({"ISN", "quality acc", "latency acc (+/-1)"});
    double qSum = 0.0;
    double lSum = 0.0;
    for (ShardId s = 0; s < bank.numShards(); ++s) {
        // The bank's buckets differ from the test build's; relabel the
        // latency set with the bank's edges for a fair score.
        Dataset latencySet(numLatencyFeatures);
        for (const Query &query : heldOut.queries()) {
            const SearchWork work =
                experiment.engine().shardWork(s, query.terms);
            latencySet.add(
                latencyFeatures(experiment.index().termStats(s),
                                query.terms),
                bank.buckets().bucketOf(
                    experiment.config().work.cycles(work)));
        }
        const double quality =
            bank.quality(s).accuracyTopK(test.shards[s].qualityK);
        const double latency =
            bank.latency(s).accuracyWithin(latencySet, 1);
        qSum += quality;
        lSum += latency;
        table.addRow({TextTable::cell(static_cast<uint64_t>(s)),
                      TextTable::cell(quality, 3),
                      TextTable::cell(latency, 3)});
    }
    std::cout << table.render();
    std::cout << "averages: quality "
              << TextTable::cell(qSum / bank.numShards(), 3)
              << ", latency "
              << TextTable::cell(lSum / bank.numShards(), 3) << "\n";

    // Persist the whole bank and verify a reload round-trip.
    const std::string dir =
        flags.getString("model-dir", "/tmp/cottage-models");
    bank.save(dir);
    std::cout << "\nsaved " << 2 * bank.numShards() << " models to " << dir
              << "\n";

    const PredictorBank restored = PredictorBank::load(dir);
    std::size_t agree = 0;
    const Dataset &probe = test.shards[0].qualityK;
    for (std::size_t i = 0; i < probe.size(); ++i) {
        const std::vector<double> features(
            probe.features(i), probe.features(i) + probe.numFeatures());
        agree += restored.quality(0).predictTopK(features) ==
                 bank.quality(0).predictTopK(features);
    }
    std::cout << "reload check: " << agree << "/" << probe.size()
              << " identical quality predictions, latency buckets "
              << restored.buckets().count() << "\n";
    return agree == probe.size() ? 0 : 1;
}
