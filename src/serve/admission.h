/**
 * @file
 * Admission control for the serving front-end: per-ISN load shedding
 * and overload degradation applied to a policy's plan just before
 * dispatch.
 *
 * The ladder has three rungs, from gentle to drastic:
 *
 *  1. Healthy (worst backlog <= degrade threshold): the plan runs
 *     untouched.
 *  2. Degraded (degrade < worst backlog <= shed threshold): the budget
 *     is tightened linearly toward `degradeFloor` as backlog climbs,
 *     leaning on the anytime partial path — answers get worse before
 *     anyone gets turned away. Plans with no deadline first have
 *     `overloadBudgetSeconds` imposed so there is a budget to tighten;
 *     the knob is validated only on this path, so configs that never
 *     need it may leave it at zero. Equal shed and degrade thresholds
 *     are legal: the band collapses and budgets jump straight to the
 *     floor at the threshold.
 *  3. Shed (backlog > shed threshold): an ISN that deep in backlog is
 *     dropped from the plan outright; if every participant is dropped
 *     the query is shed — the aggregator answers immediately with an
 *     empty result instead of joining the queue it cannot clear.
 *
 * ISNs inside a scheduled down window (scenario failure events) are
 * removed before the ladder runs at all: a dead node has no queue to
 * measure, and dispatching to it would be pure loss.
 *
 * After the budget is settled, one more cut: an ISN whose backlog
 * already reaches the (possibly tightened) budget could not START the
 * request before its deadline — it would sit in the queue and be
 * abandoned as a zero-progress truncation, pure wasted dispatch. Such
 * ISNs are shed too. This is what makes shedding actually engage under
 * sustained overload: deadline-bounded execution caps per-worker
 * backlog at roughly the budget itself, so the absolute threshold
 * alone would never trip once degradation is active.
 *
 * Degradation and the cut run to a fixed point over the surviving
 * participant set: cutting an ISN removes its backlog from the degrade
 * depth, so the survivors' budget is re-derived (and may disengage
 * entirely) rather than staying tightened by a node the query no
 * longer dispatches to.
 *
 * Every input is simulated state (queue drain times and availability
 * windows at the dispatch instant), so the decision is a pure function
 * of the query sequence — bit-identical at any host thread count.
 */

#ifndef COTTAGE_SERVE_ADMISSION_H
#define COTTAGE_SERVE_ADMISSION_H

#include <cstdint>

#include "engine/query_plan.h"
#include "sim/cluster.h"

namespace cottage {

/** Thresholds of the shed/degrade ladder. */
struct AdmissionConfig
{
    /** Per-ISN backlog beyond which the ISN is dropped from the plan. */
    double shedBacklogSeconds = 0.25;

    /** Backlog beyond which budgets start tightening. */
    double degradeBacklogSeconds = 0.05;

    /** Smallest fraction the budget is tightened to (at the shed edge). */
    double degradeFloor = 0.25;

    /**
     * Budget imposed on no-deadline plans once degradation engages.
     * Must exceed the degrade threshold for the degrade rung to be
     * reachable by such plans: a backlog deep enough to engage
     * degradation would otherwise always also reach the imposed
     * budget and be zero-progress-cut, collapsing the ladder to
     * healthy-or-shed.
     */
    double overloadBudgetSeconds = 0.1;
};

/** What admission control did to one query's plan. */
struct AdmissionDecision
{
    /** Every participant was shed: reject the query outright. */
    bool shedQuery = false;

    /** Participants dropped for excessive backlog. */
    uint32_t isnsShed = 0;

    /** Participants dropped because their ISN was down at dispatch. */
    uint32_t isnsUnavailable = 0;

    /** True when the budget was tightened. */
    bool degraded = false;

    /** Worst backlog among the ISNs that remain in the plan. */
    double worstBacklogSeconds = 0.0;
};

/**
 * Apply the shed/degrade ladder to @p plan in place, reading each
 * participating ISN's queue backlog at @p dispatchSeconds.
 */
AdmissionDecision applyAdmission(QueryPlan &plan, const ClusterSim &cluster,
                                 double dispatchSeconds,
                                 const AdmissionConfig &config);

} // namespace cottage

#endif // COTTAGE_SERVE_ADMISSION_H
