/**
 * @file
 * Admission control for the serving front-end: per-ISN load shedding
 * and overload degradation applied to a policy's plan just before
 * dispatch.
 *
 * The ladder has three rungs, from gentle to drastic:
 *
 *  1. Healthy (worst backlog <= degrade threshold): the plan runs
 *     untouched.
 *  2. Degraded (degrade < worst backlog <= shed threshold): the budget
 *     is tightened linearly toward `degradeFloor` as backlog climbs,
 *     leaning on the anytime partial path — answers get worse before
 *     anyone gets turned away. Plans with no deadline first have
 *     `overloadBudgetSeconds` imposed so there is a budget to tighten.
 *  3. Shed (backlog > shed threshold): an ISN that deep in backlog is
 *     dropped from the plan outright; if every participant is dropped
 *     the query is shed — the aggregator answers immediately with an
 *     empty result instead of joining the queue it cannot clear.
 *
 * After the budget is settled, one more cut: an ISN whose backlog
 * already reaches the (possibly tightened) budget could not START the
 * request before its deadline — it would sit in the queue and be
 * abandoned as a zero-progress truncation, pure wasted dispatch. Such
 * ISNs are shed too. This is what makes shedding actually engage under
 * sustained overload: deadline-bounded execution caps per-worker
 * backlog at roughly the budget itself, so the absolute threshold
 * alone would never trip once degradation is active.
 *
 * Every input is simulated state (queue drain times at the dispatch
 * instant), so the decision is a pure function of the query sequence —
 * bit-identical at any host thread count.
 */

#ifndef COTTAGE_SERVE_ADMISSION_H
#define COTTAGE_SERVE_ADMISSION_H

#include <cstdint>

#include "engine/query_plan.h"
#include "sim/cluster.h"

namespace cottage {

/** Thresholds of the shed/degrade ladder. */
struct AdmissionConfig
{
    /** Per-ISN backlog beyond which the ISN is dropped from the plan. */
    double shedBacklogSeconds = 0.25;

    /** Backlog beyond which budgets start tightening. */
    double degradeBacklogSeconds = 0.05;

    /** Smallest fraction the budget is tightened to (at the shed edge). */
    double degradeFloor = 0.25;

    /** Budget imposed on no-deadline plans once degradation engages. */
    double overloadBudgetSeconds = 0.05;
};

/** What admission control did to one query's plan. */
struct AdmissionDecision
{
    /** Every participant was shed: reject the query outright. */
    bool shedQuery = false;

    /** Participants dropped for excessive backlog. */
    uint32_t isnsShed = 0;

    /** True when the budget was tightened. */
    bool degraded = false;

    /** Worst backlog among the ISNs that remain in the plan. */
    double worstBacklogSeconds = 0.0;
};

/**
 * Apply the shed/degrade ladder to @p plan in place, reading each
 * participating ISN's queue backlog at @p dispatchSeconds.
 */
AdmissionDecision applyAdmission(QueryPlan &plan, const ClusterSim &cluster,
                                 double dispatchSeconds,
                                 const AdmissionConfig &config);

} // namespace cottage

#endif // COTTAGE_SERVE_ADMISSION_H
