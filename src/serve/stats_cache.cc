#include "serve/stats_cache.h"

#include "index/term_stats.h"
#include "util/logging.h"

namespace cottage {

TermStatsCache::TermStatsCache(const ShardedIndex &index,
                               std::size_t capacity, double fetchSeconds)
    : index_(&index), fetchSeconds_(fetchSeconds), cache_(capacity)
{
    COTTAGE_CHECK_MSG(fetchSeconds >= 0.0,
                      "stats fetch penalty must be non-negative");
}

double
TermStatsCache::probe(const std::vector<TermId> &terms)
{
    double penaltySeconds = 0.0;
    for (TermId term : terms) {
        if (!cache_.enabled()) {
            // Disabled cache: every term comes from the slow tier.
            penaltySeconds += fetchSeconds_;
            continue;
        }
        if (cache_.find(term) != nullptr)
            continue;
        penaltySeconds += fetchSeconds_;
        cache_.insert(term, summarize(term));
    }
    return penaltySeconds;
}

const TermSummary *
TermStatsCache::peek(TermId term) const
{
    return cache_.peek(term);
}

TermSummary
TermStatsCache::summarize(TermId term) const
{
    TermSummary summary;
    for (ShardId shard = 0; shard < index_->numShards(); ++shard) {
        const TermStats *stats = index_->termStats(shard).get(term);
        if (stats == nullptr)
            continue;
        summary.postingLength += stats->postingLength;
        if (stats->maxScore > summary.maxScore)
            summary.maxScore = stats->maxScore;
        summary.idf = stats->idf;
    }
    return summary;
}

} // namespace cottage
