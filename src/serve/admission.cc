#include "serve/admission.h"

#include "util/logging.h"

namespace cottage {

AdmissionDecision
applyAdmission(QueryPlan &plan, const ClusterSim &cluster,
               double dispatchSeconds, const AdmissionConfig &config)
{
    COTTAGE_CHECK_MSG(config.shedBacklogSeconds >
                          config.degradeBacklogSeconds,
                      "shed threshold must exceed degrade threshold");
    COTTAGE_CHECK_MSG(config.degradeFloor > 0.0 &&
                          config.degradeFloor <= 1.0,
                      "degrade floor must lie in (0, 1]");
    COTTAGE_CHECK_MSG(config.overloadBudgetSeconds > 0.0,
                      "overload budget must be positive");

    AdmissionDecision decision;
    std::vector<double> backlogs(plan.isns.size(), 0.0);
    for (ShardId id = 0; id < cluster.numIsns(); ++id) {
        if (id >= plan.isns.size() || !plan.isns[id].participate)
            continue;
        const double backlog =
            cluster.isn(id).backlogSeconds(dispatchSeconds);
        backlogs[id] = backlog;
        if (backlog > config.shedBacklogSeconds) {
            plan.isns[id].participate = false;
            ++decision.isnsShed;
            continue;
        }
        if (backlog > decision.worstBacklogSeconds)
            decision.worstBacklogSeconds = backlog;
    }

    if (plan.participants() == 0) {
        decision.shedQuery = true;
        return decision;
    }

    if (decision.worstBacklogSeconds > config.degradeBacklogSeconds) {
        // Linear tightening: factor 1 at the degrade threshold, the
        // floor at the shed threshold.
        const double span =
            config.shedBacklogSeconds - config.degradeBacklogSeconds;
        const double depth =
            (decision.worstBacklogSeconds - config.degradeBacklogSeconds) /
            span;
        const double factor =
            1.0 - (1.0 - config.degradeFloor) * depth;
        const double base = plan.budgetSeconds == noBudget
                                ? config.overloadBudgetSeconds
                                : plan.budgetSeconds;
        plan.budgetSeconds = base * factor;
        decision.degraded = true;
    }

    // Zero-progress cut: an ISN whose queue cannot drain before the
    // deadline would be abandoned without doing any work — shed it
    // rather than dispatch to it (see the header's rationale).
    if (plan.budgetSeconds != noBudget) {
        for (std::size_t id = 0; id < plan.isns.size(); ++id) {
            if (plan.isns[id].participate &&
                backlogs[id] >= plan.budgetSeconds) {
                plan.isns[id].participate = false;
                ++decision.isnsShed;
            }
        }
        if (plan.participants() == 0)
            decision.shedQuery = true;
    }
    return decision;
}

} // namespace cottage
