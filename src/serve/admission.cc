#include "serve/admission.h"

#include "util/logging.h"

namespace cottage {

AdmissionDecision
applyAdmission(QueryPlan &plan, const ClusterSim &cluster,
               double dispatchSeconds, const AdmissionConfig &config)
{
    COTTAGE_CHECK_MSG(config.shedBacklogSeconds >=
                          config.degradeBacklogSeconds,
                      "shed threshold must not undercut degrade threshold");
    COTTAGE_CHECK_MSG(config.degradeFloor > 0.0 &&
                          config.degradeFloor <= 1.0,
                      "degrade floor must lie in (0, 1]");

    AdmissionDecision decision;
    std::vector<double> backlogs(plan.isns.size(), 0.0);
    for (ShardId id = 0; id < cluster.numIsns(); ++id) {
        if (id >= plan.isns.size() || !plan.isns[id].participate)
            continue;
        if (!cluster.isn(id).availableAt(dispatchSeconds)) {
            plan.isns[id].participate = false;
            ++decision.isnsUnavailable;
            continue;
        }
        const double backlog =
            cluster.isn(id).backlogSeconds(dispatchSeconds);
        backlogs[id] = backlog;
        if (backlog > config.shedBacklogSeconds) {
            plan.isns[id].participate = false;
            ++decision.isnsShed;
        }
    }

    // Degrade-and-cut fixed point: the degrade depth is always
    // measured over the ISNs the query will actually dispatch to.
    // Tightening the budget can push further ISNs past the
    // zero-progress line; shedding those can in turn relax (or fully
    // disengage) the degradation the survivors see, so iterate until
    // the participant set stops shrinking. Terminates because every
    // pass either cuts at least one participant or exits.
    const double originalBudget = plan.budgetSeconds;
    while (plan.participants() > 0) {
        double worst = 0.0;
        for (std::size_t id = 0; id < plan.isns.size(); ++id)
            if (plan.isns[id].participate && backlogs[id] > worst)
                worst = backlogs[id];
        decision.worstBacklogSeconds = worst;

        decision.degraded = worst > config.degradeBacklogSeconds;
        if (decision.degraded) {
            // Linear tightening: factor 1 at the degrade threshold,
            // the floor at the shed threshold. Equal thresholds
            // collapse the band — straight to the floor.
            const double span =
                config.shedBacklogSeconds - config.degradeBacklogSeconds;
            const double depth =
                span > 0.0
                    ? (worst - config.degradeBacklogSeconds) / span
                    : 1.0;
            const double factor =
                1.0 - (1.0 - config.degradeFloor) * depth;
            double base = originalBudget;
            if (base == noBudget) {
                COTTAGE_CHECK_MSG(config.overloadBudgetSeconds > 0.0,
                                  "overload budget must be positive");
                base = config.overloadBudgetSeconds;
            }
            plan.budgetSeconds = base * factor;
        } else {
            plan.budgetSeconds = originalBudget;
        }

        // Zero-progress cut: an ISN whose queue cannot drain before
        // the deadline would be abandoned without doing any work —
        // shed it rather than dispatch to it (see the header's
        // rationale).
        uint32_t cuts = 0;
        if (plan.budgetSeconds != noBudget) {
            for (std::size_t id = 0; id < plan.isns.size(); ++id) {
                if (plan.isns[id].participate &&
                    backlogs[id] >= plan.budgetSeconds) {
                    plan.isns[id].participate = false;
                    ++cuts;
                }
            }
        }
        if (cuts == 0)
            break;
        decision.isnsShed += cuts;
    }

    if (plan.participants() == 0) {
        decision.shedQuery = true;
        decision.degraded = false;
        decision.worstBacklogSeconds = 0.0;
        plan.budgetSeconds = originalBudget;
    }
    return decision;
}

} // namespace cottage
