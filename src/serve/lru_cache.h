/**
 * @file
 * Fixed-capacity LRU cache with deterministic iteration-free innards.
 *
 * The serving front-end's caches (merged-result cache, term-stats /
 * hot-postings cache) both sit on this template. Determinism is a hard
 * contract here, same as everywhere else in the tree: the recency list
 * is an explicit std::list and the key index is an ordered std::map
 * that is only ever probed, never iterated, so cache behaviour — hits,
 * evictions, the order entries age out — is a pure function of the
 * lookup/insert sequence and never of a hash function or allocator.
 *
 * Not thread-safe — and that is a checked contract, not a comment:
 * the serving loop advances the simulated cluster sequentially (the
 * same contract as the cluster sim itself), so its caches are touched
 * from exactly one thread at a time. Every mutable member is
 * GUARDED_BY a zero-cost SerialGate and every method enters the gate,
 * so clang's -Wthread-safety build rejects any new code path that
 * reaches the innards without going through (or documenting) the
 * serialized section (DESIGN.md §5f).
 */

#ifndef COTTAGE_SERVE_LRU_CACHE_H
#define COTTAGE_SERVE_LRU_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <utility>

#include "util/thread_annotations.h"

namespace cottage {

/** Least-recently-used cache of Value keyed by Key (capacity 0 = off). */
template <typename Key, typename Value>
class LruCache
{
  public:
    explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

    /** A capacity of zero disables the cache entirely. */
    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }

    std::size_t
    size() const
    {
        SerialLock section(gate_);
        return entries_.size();
    }

    /** Lookups that found an entry (find() only; peeks don't count). */
    uint64_t
    hits() const
    {
        SerialLock section(gate_);
        return hits_;
    }

    /** Lookups that found nothing. */
    uint64_t
    misses() const
    {
        SerialLock section(gate_);
        return misses_;
    }

    /** Entries pushed out by capacity pressure. */
    uint64_t
    evictions() const
    {
        SerialLock section(gate_);
        return evictions_;
    }

    /** hits / (hits + misses); 0.0 before the first lookup. */
    double
    hitRate() const
    {
        SerialLock section(gate_);
        const uint64_t lookups = hits_ + misses_;
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(hits_) /
                         static_cast<double>(lookups);
    }

    /**
     * Look a key up, counting the hit/miss and promoting a hit to
     * most-recently-used. The returned pointer is valid until the next
     * mutating call (insert/erase/clear). nullptr on miss or when the
     * cache is disabled (a disabled cache counts nothing — its hit
     * rate must read 0, not accumulate phantom misses).
     */
    const Value *
    find(const Key &key)
    {
        if (!enabled())
            return nullptr;
        SerialLock section(gate_);
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        entries_.splice(entries_.begin(), entries_, it->second);
        return &it->second->second;
    }

    /**
     * Look a key up without counting a hit/miss or touching recency —
     * for tests and diagnostics, never the serving path.
     */
    const Value *
    peek(const Key &key) const
    {
        SerialLock section(gate_);
        const auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->second;
    }

    /**
     * Insert (or overwrite) an entry as most-recently-used, evicting
     * the least-recently-used entry if over capacity. No-op when the
     * cache is disabled.
     */
    void
    insert(const Key &key, Value value)
    {
        if (!enabled())
            return;
        SerialLock section(gate_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            entries_.splice(entries_.begin(), entries_, it->second);
            return;
        }
        entries_.emplace_front(key, std::move(value));
        index_.emplace(key, entries_.begin());
        if (entries_.size() > capacity_) {
            index_.erase(entries_.back().first);
            entries_.pop_back();
            ++evictions_;
        }
    }

    /** Drop every entry; lookup/eviction counters keep accumulating. */
    void
    clear()
    {
        SerialLock section(gate_);
        entries_.clear();
        index_.clear();
    }

    /** clear() plus counter reset (fresh serving run). */
    void
    reset()
    {
        clear();
        SerialLock section(gate_);
        hits_ = 0;
        misses_ = 0;
        evictions_ = 0;
    }

  private:
    /** External-serialization capability (runtime no-op); mutable so
     * const probes (peek, counters) can document their section too. */
    mutable SerialGate gate_;

    std::size_t capacity_;
    /** Front = most recently used. */
    std::list<std::pair<Key, Value>> entries_ COTTAGE_GUARDED_BY(gate_);
    std::map<Key, typename std::list<std::pair<Key, Value>>::iterator>
        index_ COTTAGE_GUARDED_BY(gate_);
    uint64_t hits_ COTTAGE_GUARDED_BY(gate_) = 0;
    uint64_t misses_ COTTAGE_GUARDED_BY(gate_) = 0;
    uint64_t evictions_ COTTAGE_GUARDED_BY(gate_) = 0;
};

} // namespace cottage

#endif // COTTAGE_SERVE_LRU_CACHE_H
