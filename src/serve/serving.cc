#include "serve/serving.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "stats/summary.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cottage {

const char *
servingOutcomeName(ServingOutcome outcome)
{
    switch (outcome) {
    case ServingOutcome::CacheHit:
        return "cache_hit";
    case ServingOutcome::Served:
        return "served";
    case ServingOutcome::Degraded:
        return "degraded";
    case ServingOutcome::Shed:
        return "shed";
    }
    return "unknown";
}

ServingFrontEnd::ServingFrontEnd(DistributedEngine &engine,
                                 ServingConfig config)
    : engine_(&engine), config_(config),
      resultCache_(config.resultCacheCapacity),
      statsCache_(engine.index(), config.statsCacheCapacity,
                  config.statsFetchSeconds)
{
    COTTAGE_CHECK_MSG(config_.cacheHitLatencySeconds >= 0.0,
                      "cache hit latency must be non-negative");
    for (const TenantSlo &slo : config_.tenants) {
        COTTAGE_CHECK_MSG(slo.budgetShare > 0.0,
                          "tenant budget share must be positive");
        COTTAGE_CHECK_MSG(slo.latencyPercentile > 0.0 &&
                              slo.latencyPercentile <= 1.0,
                          "SLO percentile must lie in (0, 1]");
        COTTAGE_CHECK_MSG(slo.deadlineSeconds > 0.0,
                          "tenant deadline must be positive");
    }
}

namespace {

/**
 * A response is cacheable only when nothing about it was shaped by the
 * instantaneous load: no admission interference, every participant
 * completed in full, nothing truncated. That makes a later hit
 * byte-identical to re-executing the query on an unloaded cluster.
 */
bool
cacheable(const QueryMeasurement &m, const AdmissionDecision &decision)
{
    return !decision.degraded && decision.isnsShed == 0 &&
           m.isnsUsed > 0 && m.isnsCompleted == m.isnsUsed &&
           m.partialResponses == 0;
}

} // namespace

ServingSummary
ServingFrontEnd::serve(Policy &policy, const QueryTrace &trace,
                       const std::vector<std::vector<ScoredDoc>> &groundTruth,
                       MetricsRegistry *metrics)
{
    COTTAGE_CHECK_MSG(groundTruth.size() >= trace.size(),
                      "ground truth must cover the trace");

    engine_->cluster().reset();
    policy.reset();
    resultCache_.reset();
    statsCache_.reset();
    measurements_.clear();
    measurements_.reserve(trace.size());

    MetricsRegistry *const previousMetrics = engine_->metrics();
    if (metrics != nullptr)
        engine_->setMetrics(metrics);

    const NetworkModel &network = engine_->cluster().network();
    ServingSummary summary;
    summary.offered = trace.size();

    std::vector<QueryMeasurement> responses;
    responses.reserve(trace.size());

    // Per-tenant accumulation (multi-tenant scenarios only). Latencies
    // are collected raw so the rollup can report p99.9 and the SLO's
    // own evaluation percentile, which RunSummary does not carry.
    const bool multiTenant = !config_.tenants.empty();
    struct TenantAccumulator
    {
        std::vector<double> latencies;
        RunningStat latency;
        RunningStat precision;
        RunningStat ndcg;
        uint64_t offered = 0;
        uint64_t cacheHits = 0;
        uint64_t degraded = 0;
        uint64_t shed = 0;
        uint64_t inDeadline = 0;
        double energyJoules = 0.0;
    };
    std::vector<TenantAccumulator> tenantAccs(config_.tenants.size());

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Query &query = trace.query(i);
        uint32_t tenantIndex = 0;
        if (multiTenant) {
            COTTAGE_CHECK_MSG(query.tenant < config_.tenants.size(),
                              "query tenant out of range");
            tenantIndex = query.tenant;
        }
        ServingMeasurement record;
        const std::string key = resultCacheKey(query);

        if (const CachedResult *hit = resultCache_.find(key)) {
            QueryMeasurement &m = record.measurement;
            m.id = query.id;
            m.arrivalSeconds = query.arrivalSeconds;
            m.tenant = query.tenant;
            m.latencySeconds = config_.cacheHitLatencySeconds;
            m.precisionAtK = hit->precisionAtK;
            m.ndcgAtK = hit->ndcgAtK;
            m.results = hit->results;
            record.outcome = ServingOutcome::CacheHit;
            ++summary.cacheHits;
            if (metrics != nullptr) {
                metrics->incr("serve_cache_hits");
                if (metrics->windowSeconds() > 0.0)
                    metrics->addWindowSample(query.arrivalSeconds, 0.0);
            }
        } else {
            QueryPlan plan = policy.plan(query, *engine_);
            if (multiTenant) {
                // Apply the tenant's SLO class: scale whatever finite
                // budget the policy picked by the tenant's share, then
                // cap at the deadline (imposing it on no-deadline
                // plans — the contract binds regardless of policy).
                const TenantSlo &slo = config_.tenants[tenantIndex];
                if (plan.budgetSeconds != noBudget)
                    plan.budgetSeconds *= slo.budgetShare;
                if (slo.deadlineSeconds != noBudget &&
                    plan.budgetSeconds > slo.deadlineSeconds)
                    plan.budgetSeconds = slo.deadlineSeconds;
            }
            plan.decisionOverheadSeconds +=
                statsCache_.probe(query.terms);
            // Mirror the engine's dispatch instant: decision overhead
            // plus the outbound half of the round trip.
            const double dispatchSeconds = query.arrivalSeconds +
                                           plan.decisionOverheadSeconds +
                                           0.5 * network.rttSeconds;
            const AdmissionDecision decision = applyAdmission(
                plan, engine_->cluster(), dispatchSeconds,
                config_.admission);
            record.worstBacklogSeconds = decision.worstBacklogSeconds;
            record.isnsShed = decision.isnsShed;
            record.isnsUnavailable = decision.isnsUnavailable;
            summary.isnsShed += decision.isnsShed;
            summary.isnsUnavailable += decision.isnsUnavailable;
            if (metrics != nullptr && decision.isnsShed > 0)
                metrics->incr("serve_isns_shed", decision.isnsShed);
            if (metrics != nullptr && decision.isnsUnavailable > 0)
                metrics->incr("serve_isns_unavailable",
                              decision.isnsUnavailable);

            if (decision.shedQuery) {
                QueryMeasurement &m = record.measurement;
                m.id = query.id;
                m.arrivalSeconds = query.arrivalSeconds;
                m.tenant = query.tenant;
                // The aggregator rejects after planning; the client
                // still pays the decision and the round trip.
                m.latencySeconds = plan.decisionOverheadSeconds +
                                   network.rttSeconds;
                record.outcome = ServingOutcome::Shed;
                ++summary.shedQueries;
                if (metrics != nullptr) {
                    metrics->incr("serve_shed_queries");
                    if (metrics->windowSeconds() > 0.0)
                        metrics->addWindowSample(query.arrivalSeconds,
                                                 0.0);
                }
            } else {
                const double energyBefore =
                    engine_->cluster().totalEnergyJoules();
                record.measurement =
                    engine_->execute(query, plan, groundTruth[i]);
                policy.observe(record.measurement);
                if (decision.degraded) {
                    record.outcome = ServingOutcome::Degraded;
                    ++summary.degraded;
                    if (metrics != nullptr)
                        metrics->incr("serve_degraded");
                } else {
                    record.outcome = ServingOutcome::Served;
                }
                if (cacheable(record.measurement, decision))
                    resultCache_.insert(
                        key, CachedResult{record.measurement.results,
                                          record.measurement.precisionAtK,
                                          record.measurement.ndcgAtK});
                const double energyDelta =
                    engine_->cluster().totalEnergyJoules() - energyBefore;
                if (multiTenant)
                    tenantAccs[tenantIndex].energyJoules += energyDelta;
                if (metrics != nullptr &&
                    metrics->windowSeconds() > 0.0)
                    metrics->addWindowSample(query.arrivalSeconds,
                                             energyDelta);
            }
        }
        if (multiTenant) {
            TenantAccumulator &acc = tenantAccs[tenantIndex];
            const QueryMeasurement &m = record.measurement;
            const TenantSlo &slo = config_.tenants[tenantIndex];
            ++acc.offered;
            acc.latencies.push_back(m.latencySeconds);
            acc.latency.add(m.latencySeconds);
            acc.precision.add(m.precisionAtK);
            acc.ndcg.add(m.ndcgAtK);
            switch (record.outcome) {
            case ServingOutcome::CacheHit:
                ++acc.cacheHits;
                break;
            case ServingOutcome::Degraded:
                ++acc.degraded;
                break;
            case ServingOutcome::Shed:
                ++acc.shed;
                break;
            case ServingOutcome::Served:
                break;
            }
            // A shed query never meets the SLO; an answered one meets
            // it when it beat the deadline (trivially, with none set).
            if (record.outcome != ServingOutcome::Shed &&
                m.latencySeconds <= slo.deadlineSeconds)
                ++acc.inDeadline;
            if (metrics != nullptr) {
                metrics->incr("serve_tenant_offered_" + slo.name);
                if (record.outcome == ServingOutcome::Shed)
                    metrics->incr("serve_tenant_shed_" + slo.name);
                metrics
                    ->histogram("serve_tenant_latency_s_" + slo.name,
                                1e-4, 10.0, 40)
                    .add(m.latencySeconds);
            }
        }
        responses.push_back(record.measurement);
        measurements_.push_back(std::move(record));
    }

    summary.completed = summary.offered - summary.shedQueries;
    summary.shedRate =
        summary.offered == 0
            ? 0.0
            : static_cast<double>(summary.shedQueries) /
                  static_cast<double>(summary.offered);
    summary.resultCacheHits = resultCache_.hits();
    summary.resultCacheMisses = resultCache_.misses();
    summary.resultCacheEvictions = resultCache_.evictions();
    summary.resultCacheHitRate = resultCache_.hitRate();
    summary.statsCacheHits = statsCache_.hits();
    summary.statsCacheMisses = statsCache_.misses();
    summary.statsCacheEvictions = statsCache_.evictions();
    summary.statsCacheHitRate = statsCache_.hitRate();

    const ClusterSim &cluster = engine_->cluster();
    for (ShardId id = 0; id < cluster.numIsns(); ++id)
        summary.zeroProgressResponses +=
            cluster.isn(id).requestsZeroProgress();

    summary.run = summarizeRun(policy.name(), trace.name(), responses);
    summary.run.energyJoules = cluster.totalEnergyJoules();
    // Same window rule as the replay harness: the run lasts until the
    // last ISN drains, not just until the last arrival.
    double window = trace.durationSeconds();
    for (ShardId id = 0; id < cluster.numIsns(); ++id) {
        const double drain = cluster.isn(id).busyUntilSeconds();
        if (drain > window)
            window = drain;
    }
    summary.run.durationSeconds = window;
    if (summary.run.durationSeconds > 0.0) {
        summary.run.avgPowerWatts =
            cluster.averagePowerWatts(summary.run.durationSeconds);
        summary.offeredQps = static_cast<double>(summary.offered) /
                             summary.run.durationSeconds;
        summary.achievedQps = static_cast<double>(summary.completed) /
                              summary.run.durationSeconds;
    }

    if (multiTenant) {
        summary.tenants.reserve(config_.tenants.size());
        for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
            const TenantSlo &slo = config_.tenants[t];
            TenantAccumulator &acc = tenantAccs[t];
            TenantSummary rollup;
            rollup.tenant = slo.name;
            rollup.deadlineSeconds = slo.deadlineSeconds;
            rollup.latencyPercentile = slo.latencyPercentile;
            rollup.offered = acc.offered;
            rollup.completed = acc.offered - acc.shed;
            rollup.cacheHits = acc.cacheHits;
            rollup.degraded = acc.degraded;
            rollup.shedQueries = acc.shed;
            rollup.shedRate =
                acc.offered == 0
                    ? 0.0
                    : static_cast<double>(acc.shed) /
                          static_cast<double>(acc.offered);
            if (!acc.latencies.empty()) {
                std::sort(acc.latencies.begin(), acc.latencies.end(),
                          std::less<double>());
                rollup.avgLatencySeconds = acc.latency.mean();
                rollup.p50LatencySeconds =
                    percentileSorted(acc.latencies, 0.50);
                rollup.p95LatencySeconds =
                    percentileSorted(acc.latencies, 0.95);
                rollup.p99LatencySeconds =
                    percentileSorted(acc.latencies, 0.99);
                rollup.p999LatencySeconds =
                    percentileSorted(acc.latencies, 0.999);
                rollup.maxLatencySeconds = acc.latencies.back();
                rollup.sloLatencySeconds = percentileSorted(
                    acc.latencies, slo.latencyPercentile);
            }
            rollup.sloAttainment =
                acc.offered == 0
                    ? 0.0
                    : static_cast<double>(acc.inDeadline) /
                          static_cast<double>(acc.offered);
            rollup.sloMet = slo.deadlineSeconds == noBudget ||
                            rollup.sloLatencySeconds <=
                                slo.deadlineSeconds;
            rollup.avgPrecision = acc.precision.mean();
            rollup.avgNdcg = acc.ndcg.mean();
            rollup.energyJoules = acc.energyJoules;
            summary.tenants.push_back(std::move(rollup));
        }
    }

    if (metrics != nullptr) {
        metrics->incr("serve_offered", summary.offered);
        metrics->incr("serve_completed", summary.completed);
        for (const TenantSummary &tenant : summary.tenants) {
            metrics->incr("serve_tenant_completed_" + tenant.tenant,
                          tenant.completed);
            metrics->incr("serve_tenant_degraded_" + tenant.tenant,
                          tenant.degraded);
            metrics->incr("serve_tenant_cache_hits_" + tenant.tenant,
                          tenant.cacheHits);
        }
        metrics->incr("serve_result_cache_hits",
                      summary.resultCacheHits);
        metrics->incr("serve_result_cache_misses",
                      summary.resultCacheMisses);
        metrics->incr("serve_result_cache_evictions",
                      summary.resultCacheEvictions);
        metrics->incr("serve_stats_cache_hits", summary.statsCacheHits);
        metrics->incr("serve_stats_cache_misses",
                      summary.statsCacheMisses);
        metrics->incr("serve_stats_cache_evictions",
                      summary.statsCacheEvictions);
        metrics->incr("serve_zero_progress_responses",
                      summary.zeroProgressResponses);
        engine_->setMetrics(previousMetrics);
    }
    return summary;
}

std::string
toJson(const ServingSummary &s)
{
    std::string out = "{";
    const auto field = [&out](const char *key, const std::string &value,
                              bool quote) {
        if (out.size() > 1)
            out += ",";
        out += "\"";
        out += key;
        out += "\":";
        if (quote)
            out += jsonQuote(value);
        else
            out += value;
    };
    const auto num = [](double v) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.9g", v);
        return std::string(buffer);
    };
    field("policy", s.run.policy, true);
    field("trace", s.run.trace, true);
    field("offered", num(static_cast<double>(s.offered)), false);
    field("completed", num(static_cast<double>(s.completed)), false);
    field("cache_hits", num(static_cast<double>(s.cacheHits)), false);
    field("degraded", num(static_cast<double>(s.degraded)), false);
    field("shed_queries", num(static_cast<double>(s.shedQueries)),
          false);
    field("isns_shed", num(static_cast<double>(s.isnsShed)), false);
    field("isns_unavailable",
          num(static_cast<double>(s.isnsUnavailable)), false);
    field("shed_rate", num(s.shedRate), false);
    field("zero_progress_responses",
          num(static_cast<double>(s.zeroProgressResponses)), false);
    field("result_cache_hits",
          num(static_cast<double>(s.resultCacheHits)), false);
    field("result_cache_misses",
          num(static_cast<double>(s.resultCacheMisses)), false);
    field("result_cache_evictions",
          num(static_cast<double>(s.resultCacheEvictions)), false);
    field("result_cache_hit_rate", num(s.resultCacheHitRate), false);
    field("stats_cache_hits",
          num(static_cast<double>(s.statsCacheHits)), false);
    field("stats_cache_misses",
          num(static_cast<double>(s.statsCacheMisses)), false);
    field("stats_cache_evictions",
          num(static_cast<double>(s.statsCacheEvictions)), false);
    field("stats_cache_hit_rate", num(s.statsCacheHitRate), false);
    field("offered_qps", num(s.offeredQps), false);
    field("achieved_qps", num(s.achievedQps), false);
    field("avg_latency_s", num(s.run.avgLatencySeconds), false);
    field("p50_latency_s", num(s.run.p50LatencySeconds), false);
    field("p95_latency_s", num(s.run.p95LatencySeconds), false);
    field("p99_latency_s", num(s.run.p99LatencySeconds), false);
    field("max_latency_s", num(s.run.maxLatencySeconds), false);
    field("avg_precision", num(s.run.avgPrecision), false);
    field("avg_ndcg", num(s.run.avgNdcg), false);
    field("avg_completed_fraction", num(s.run.avgCompletedFraction),
          false);
    field("truncated_responses",
          num(static_cast<double>(s.run.truncatedResponses)), false);
    field("partial_responses",
          num(static_cast<double>(s.run.partialResponses)), false);
    field("energy_j", num(s.run.energyJoules), false);
    field("duration_s", num(s.run.durationSeconds), false);
    field("avg_power_w", num(s.run.avgPowerWatts), false);
    // Only multi-tenant runs carry rollups; single-tenant serving JSON
    // stays byte-identical to what it was before tenants existed.
    if (!s.tenants.empty()) {
        out += ",\"tenants\":[";
        for (std::size_t t = 0; t < s.tenants.size(); ++t) {
            if (t > 0)
                out += ",";
            out += toJson(s.tenants[t]);
        }
        out += "]";
    }
    out += "}";
    return out;
}

std::string
toJson(const TenantSummary &t)
{
    std::string out = "{";
    const auto field = [&out](const char *key,
                              const std::string &value, bool quote) {
        if (out.size() > 1)
            out += ",";
        out += "\"";
        out += key;
        out += "\":";
        if (quote)
            out += jsonQuote(value);
        else
            out += value;
    };
    const auto num = [](double v) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.9g", v);
        return std::string(buffer);
    };
    field("tenant", t.tenant, true);
    field("deadline_s",
          t.deadlineSeconds == noBudget ? "null"
                                        : num(t.deadlineSeconds),
          false);
    field("slo_percentile", num(t.latencyPercentile), false);
    field("offered", num(static_cast<double>(t.offered)), false);
    field("completed", num(static_cast<double>(t.completed)), false);
    field("cache_hits", num(static_cast<double>(t.cacheHits)), false);
    field("degraded", num(static_cast<double>(t.degraded)), false);
    field("shed_queries", num(static_cast<double>(t.shedQueries)),
          false);
    field("shed_rate", num(t.shedRate), false);
    field("avg_latency_s", num(t.avgLatencySeconds), false);
    field("p50_latency_s", num(t.p50LatencySeconds), false);
    field("p95_latency_s", num(t.p95LatencySeconds), false);
    field("p99_latency_s", num(t.p99LatencySeconds), false);
    field("p999_latency_s", num(t.p999LatencySeconds), false);
    field("max_latency_s", num(t.maxLatencySeconds), false);
    field("slo_latency_s", num(t.sloLatencySeconds), false);
    field("slo_attainment", num(t.sloAttainment), false);
    field("slo_met", t.sloMet ? "true" : "false", false);
    field("avg_precision", num(t.avgPrecision), false);
    field("avg_ndcg", num(t.avgNdcg), false);
    field("energy_j", num(t.energyJoules), false);
    out += "}";
    return out;
}

} // namespace cottage
