#include "serve/scenario.h"

#include <algorithm>

#include "util/logging.h"

namespace cottage {

namespace {

/**
 * The fixed merge order: ascending arrival time, ties broken by
 * tenant then by the query's id within its tenant stream. Total on
 * (tenant, id), so the sorted order is unique — no dependence on the
 * pre-sort layout.
 */
struct MergeOrder
{
    bool
    operator()(const Query &a, const Query &b) const
    {
        if (a.arrivalSeconds != b.arrivalSeconds)
            return a.arrivalSeconds < b.arrivalSeconds;
        if (a.tenant != b.tenant)
            return a.tenant < b.tenant;
        return a.id < b.id;
    }
};

/** Tenant seeds: fixed, distinct, and far apart in seed space. */
constexpr uint64_t kTenantSeedBase = 0x9e3779b97f4a7c15ull;

uint64_t
tenantSeed(uint32_t tenant)
{
    return kTenantSeedBase + 0x100000001b3ull * (tenant + 1);
}

TenantSpec
interactiveTenant(double qpsScale)
{
    TenantSpec spec;
    spec.name = "interactive";
    spec.flavor = TraceFlavor::Wikipedia;
    spec.slo.name = spec.name;
    spec.slo.deadlineSeconds = 20e-3;
    spec.slo.budgetShare = 1.0;
    spec.slo.latencyPercentile = 0.99;
    spec.arrivals.shape = ArrivalShape::Poisson;
    spec.arrivals.qps = 120.0 * qpsScale;
    spec.arrivals.seed = tenantSeed(0);
    return spec;
}

TenantSpec
batchTenant(double qpsScale)
{
    TenantSpec spec;
    spec.name = "batch";
    spec.flavor = TraceFlavor::Lucene;
    spec.slo.name = spec.name;
    spec.slo.deadlineSeconds = noBudget;
    spec.slo.budgetShare = 0.5;
    spec.slo.latencyPercentile = 0.95;
    spec.arrivals.shape = ArrivalShape::Poisson;
    spec.arrivals.qps = 80.0 * qpsScale;
    spec.arrivals.seed = tenantSeed(1);
    return spec;
}

ScenarioConfig
mixedPoissonScenario(double qpsScale)
{
    ScenarioConfig scenario;
    scenario.name = "mixed_poisson";
    scenario.hostile = false;
    scenario.tenants = {interactiveTenant(qpsScale),
                        batchTenant(qpsScale)};
    return scenario;
}

ScenarioConfig
diurnalScenario(double qpsScale)
{
    ScenarioConfig scenario = mixedPoissonScenario(qpsScale);
    scenario.name = "diurnal";
    // The interactive tenant oscillates through the day; batch load
    // stays flat underneath it.
    scenario.tenants[0].arrivals.shape = ArrivalShape::Diurnal;
    scenario.tenants[0].arrivals.diurnalAmplitude = 0.8;
    scenario.tenants[0].arrivals.diurnalPeriodSeconds = 2.0;
    return scenario;
}

ScenarioConfig
flashCrowdScenario(double qpsScale)
{
    ScenarioConfig scenario = mixedPoissonScenario(qpsScale);
    scenario.name = "flash_crowd";
    scenario.hostile = true;
    // A breaking-news spike on the interactive tenant: 8x the base
    // rate for one second, early enough that the whole trace sees the
    // backlog drain afterwards.
    scenario.tenants[0].arrivals.shape = ArrivalShape::FlashCrowd;
    scenario.tenants[0].arrivals.spikeStartSeconds = 0.2;
    scenario.tenants[0].arrivals.spikeDurationSeconds = 1.0;
    scenario.tenants[0].arrivals.spikeMultiplier = 8.0;
    return scenario;
}

ScenarioConfig
stragglerIsnScenario(double qpsScale)
{
    ScenarioConfig scenario = mixedPoissonScenario(qpsScale);
    scenario.name = "straggler_isn";
    scenario.hostile = true;
    // ISN 0 serves at half rate (a sick node); ISN 1 is capped at
    // 1.8 GHz (a heterogeneous ladder). Presets use the first two
    // ISNs only, so any >= 2-shard stack can run them.
    IsnShape straggler;
    straggler.isn = 0;
    straggler.serviceRateMultiplier = 0.5;
    IsnShape capped;
    capped.isn = 1;
    capped.maxFreqGhz = 1.8;
    scenario.shape.isns = {straggler, capped};
    return scenario;
}

ScenarioConfig
powerSkewScenario(double qpsScale)
{
    ScenarioConfig scenario = mixedPoissonScenario(qpsScale);
    scenario.name = "power_skew";
    scenario.hostile = true;
    // Heterogeneous power curves: ISN 0 is a power-hungry part
    // drawing 1.5x the joules per unit of work, ISN 1 an aging node
    // leaking 2 W of extra static power. Work and latency physics are
    // untouched — only the energy/average-power rollups move, which
    // is exactly what the per-tenant energy attribution must surface.
    // First two ISNs only, so any >= 2-shard stack can run it.
    IsnShape hungry;
    hungry.isn = 0;
    hungry.busyPowerScale = 1.5;
    IsnShape leaky;
    leaky.isn = 1;
    leaky.idlePowerExtraWatts = 2.0;
    scenario.shape.isns = {hungry, leaky};
    return scenario;
}

ScenarioConfig
failoverScenario(double qpsScale)
{
    ScenarioConfig scenario = mixedPoissonScenario(qpsScale);
    scenario.name = "failover";
    scenario.hostile = true;
    // ISN 0 fails mid-run and recovers: queries dispatched inside the
    // window lose the shard (admission drops unavailable ISNs), and
    // its queued work drains while it is down.
    IsnShape failing;
    failing.isn = 0;
    DownWindow outage;
    outage.fromSeconds = 0.3;
    outage.toSeconds = 0.8;
    failing.downWindows = {outage};
    scenario.shape.isns = {failing};
    return scenario;
}

} // namespace

MergedArrivals
mergeTenantArrivals(const std::vector<QueryTrace> &perTenant)
{
    COTTAGE_CHECK_MSG(!perTenant.empty(),
                      "a scenario needs at least one tenant");
    MergedArrivals merged;
    std::vector<Query> all;
    std::size_t total = 0;
    for (const QueryTrace &trace : perTenant)
        total += trace.size();
    all.reserve(total);
    for (std::size_t tenant = 0; tenant < perTenant.size(); ++tenant) {
        for (const Query &query : perTenant[tenant].queries()) {
            Query copy = query;
            copy.tenant = static_cast<uint32_t>(tenant);
            all.push_back(std::move(copy));
        }
    }
    std::sort(all.begin(), all.end(), MergeOrder());

    merged.trace.setName("scenario");
    merged.sources.reserve(all.size());
    for (Query &query : all) {
        // The pre-merge id is the position within the tenant's shaped
        // trace (shaping preserves base positions); record it before
        // append() re-stamps the id to the merged position.
        merged.sources.emplace_back(query.tenant,
                                    static_cast<std::size_t>(query.id));
        merged.trace.append(std::move(query));
    }
    return merged;
}

const std::vector<std::string> &
scenarioNames()
{
    static const std::vector<std::string> names = {
        "mixed_poisson", "diurnal", "flash_crowd", "straggler_isn",
        "power_skew", "failover",
    };
    return names;
}

ScenarioConfig
scenarioByName(const std::string &name, double qpsScale)
{
    COTTAGE_CHECK_MSG(qpsScale > 0.0, "qps scale must be positive");
    if (name == "mixed_poisson")
        return mixedPoissonScenario(qpsScale);
    if (name == "diurnal")
        return diurnalScenario(qpsScale);
    if (name == "flash_crowd")
        return flashCrowdScenario(qpsScale);
    if (name == "straggler_isn")
        return stragglerIsnScenario(qpsScale);
    if (name == "power_skew")
        return powerSkewScenario(qpsScale);
    if (name == "failover")
        return failoverScenario(qpsScale);
    fatal("unknown scenario: " + name +
          " (expected one of mixed_poisson, diurnal, flash_crowd, "
          "straggler_isn, power_skew, failover)");
}

} // namespace cottage
