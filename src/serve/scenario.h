/**
 * @file
 * The scenario layer: multi-tenant SLO workloads composed into one
 * deterministically merged arrival stream, optionally layered over a
 * hostile cluster shape (straggler ISNs, mid-run failures,
 * heterogeneous frequency ladders).
 *
 * A scenario binds each tenant to a trace flavor, an SLO class
 * (deadline, budget share, evaluation percentile) and an arrival
 * process (serve/arrivals.h). The harness shapes each tenant's base
 * trace under its private seed, stamps the tenant index on every
 * query, and merges the streams in a FIXED total order — ascending
 * (arrivalSeconds, tenant, original query id) under a named
 * comparator — so the merged trace is a pure function of the spec
 * list. No hash-container iteration, no wall clock, no tie broken by
 * allocation order: the measurement stream is byte-identical at any
 * host thread count (tests/test_parallel.cc pins this).
 *
 * Hostile shapes ride in ClusterShape (sim/cluster.h): per-ISN
 * service-rate multipliers model stragglers, DownWindows model
 * mid-run failure/recovery, per-ISN frequency caps model
 * heterogeneous ladders. The harness applies the shape before serving
 * and clears it after, so scenario runs never leak state into replay
 * mode.
 */

#ifndef COTTAGE_SERVE_SCENARIO_H
#define COTTAGE_SERVE_SCENARIO_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "serve/arrivals.h"
#include "serve/serving.h"
#include "sim/cluster.h"
#include "text/trace.h"

namespace cottage {

/** One tenant of a scenario: workload, contract, arrival process. */
struct TenantSpec
{
    /** Stable tenant name (used in metrics and rollup JSON). */
    std::string name = "tenant";

    /** Which base trace flavor the tenant replays. */
    TraceFlavor flavor = TraceFlavor::Wikipedia;

    /** The tenant's SLO class, applied per query by the front-end. */
    TenantSlo slo;

    /** The tenant's arrival process (private seed). */
    ArrivalSpec arrivals;
};

/** A named multi-tenant workload over an optionally hostile cluster. */
struct ScenarioConfig
{
    std::string name = "scenario";

    /**
     * True when the scenario stresses the cluster beyond a stationary
     * mixed load — a flash crowd, a straggler ISN, a failure window.
     * The bench gate (scripts/check_bench.py --scenarios) requires
     * Cottage to beat the slo-dvfs baseline on at least one hostile
     * shape.
     */
    bool hostile = false;

    /** Tenants, indexed by Query::tenant. */
    std::vector<TenantSpec> tenants;

    /** Per-ISN hostile shape; empty leaves the cluster pristine. */
    ClusterShape shape;
};

/** A merged multi-tenant arrival stream plus its provenance. */
struct MergedArrivals
{
    /**
     * The merged trace: every query stamped with its tenant, ids
     * re-stamped to merged positions, arrivals ascending.
     */
    QueryTrace trace;

    /**
     * Provenance parallel to trace: (tenant index, position in that
     * tenant's shaped trace). The harness uses it to assemble merged
     * ground truth from the per-flavor truth caches — shaped traces
     * keep base-trace positions, so truth stays aligned.
     */
    std::vector<std::pair<uint32_t, std::size_t>> sources;
};

/**
 * Merge per-tenant shaped traces (index = tenant) into one stream
 * ordered by ascending (arrivalSeconds, tenant, original id). The
 * order is total — (tenant, id) is unique — so the merge is
 * deterministic even when arrival clocks collide exactly.
 */
MergedArrivals
mergeTenantArrivals(const std::vector<QueryTrace> &perTenant);

/**
 * Names of the built-in scenarios, in fixed presentation order:
 * mixed_poisson, diurnal, flash_crowd, straggler_isn, failover.
 */
const std::vector<std::string> &scenarioNames();

/**
 * Build a built-in scenario by name; fatal on an unknown name.
 * @p qpsScale multiplies every tenant's baseline rate so benches can
 * match the offered load to the harness size (presets are tuned for
 * the test-scale 8-shard stack at scale 1).
 */
ScenarioConfig scenarioByName(const std::string &name,
                              double qpsScale = 1.0);

} // namespace cottage

#endif // COTTAGE_SERVE_SCENARIO_H
