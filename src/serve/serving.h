/**
 * @file
 * The online serving front-end: admission control, result/term-stats
 * caching and load shedding wrapped around DistributedEngine.
 *
 * Replay mode (the harness's default) measures policies on a fixed
 * open-loop trace and admits every query no matter how deep the queues
 * get. Serving mode models what a production aggregator does instead:
 * probe a merged-result cache, consult (and charge for) term-stats
 * fetches, let the policy plan, then run the admission ladder — degrade
 * budgets first, shed ISNs next, reject the query outright last — and
 * only then advance the cluster. The sustained-throughput bench sweeps
 * this loop over rising QPS to find the latency/QPS/power knee.
 *
 * Hard contract: serving is a separate code path layered ON TOP of the
 * engine. With serving off, the harness never constructs this class,
 * so every measured byte of the existing replay path stays identical
 * (tests/test_serve.cc pins this alongside test_parallel's suites).
 * Within serving mode, all decisions derive from simulated time,
 * cluster state and explicit seeds — bit-identical at any host thread
 * count.
 */

#ifndef COTTAGE_SERVE_SERVING_H
#define COTTAGE_SERVE_SERVING_H

#include <cstdint>
#include <string>
#include <vector>

#include "engine/distributed_engine.h"
#include "metrics/run_stats.h"
#include "policy/policy.h"
#include "serve/admission.h"
#include "serve/result_cache.h"
#include "serve/stats_cache.h"
#include "text/trace.h"

namespace cottage {

/**
 * One tenant's SLO class as the serving loop applies it. The deadline
 * is both the latency contract the tenant is evaluated against and a
 * cap imposed on the plan's budget; the budget share scales whatever
 * finite budget the policy picked (a premium tenant buys headroom, a
 * best-effort tenant donates it); the percentile is the SLO's
 * evaluator — the tail the contract is judged at.
 */
struct TenantSlo
{
    std::string name = "default";

    /** SLO latency target; noBudget = no deadline contract. */
    double deadlineSeconds = noBudget;

    /** Multiplier applied to finite plan budgets (positive). */
    double budgetShare = 1.0;

    /** Latency percentile the SLO is evaluated at. */
    double latencyPercentile = 0.99;
};

/** Per-tenant aggregate of one serving run. */
struct TenantSummary
{
    std::string tenant;

    /** Echo of the tenant's SLO class. */
    double deadlineSeconds = noBudget;
    double latencyPercentile = 0.99;

    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t cacheHits = 0;
    uint64_t degraded = 0;
    uint64_t shedQueries = 0;
    double shedRate = 0.0;

    double avgLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    double p999LatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;

    /** Latency at the SLO's evaluation percentile. */
    double sloLatencySeconds = 0.0;

    /**
     * Fraction of offered queries answered within the deadline (shed
     * queries always miss; with no deadline this is the completion
     * rate).
     */
    double sloAttainment = 0.0;

    /** sloLatencySeconds <= deadline (true when no deadline is set). */
    bool sloMet = true;

    double avgPrecision = 0.0;
    double avgNdcg = 0.0;

    /** Busy energy the tenant's executions drew, joules. */
    double energyJoules = 0.0;
};

/** Serving-mode knobs (harness flags --serve, --qps, --shed-*, ...). */
struct ServingConfig
{
    /** Off by default: the replay path never sees this subsystem. */
    bool enabled = false;

    /** Shed/degrade ladder thresholds. */
    AdmissionConfig admission;

    /** Merged-result cache entries (--result-cache; 0 disables). */
    std::size_t resultCacheCapacity = 0;

    /** Term-stats / hot-postings cache entries (--postings-cache). */
    std::size_t statsCacheCapacity = 0;

    /** Client-observed latency of a result-cache hit. */
    double cacheHitLatencySeconds = 100e-6;

    /** Decision-overhead penalty per term-stats cache miss. */
    double statsFetchSeconds = 200e-6;

    /**
     * Seed of the Poisson arrival re-timing (serve/arrivals.h) the
     * harness applies when sweeping offered QPS. Distinct from the
     * trace seed so re-timed arrivals never correlate with the base
     * trace's own arrival process.
     */
    uint64_t retimeSeed = 1013904223;

    /**
     * Multi-tenant SLO classes, indexed by Query::tenant. Empty (the
     * default) keeps the single-tenant loop byte-identical: no SLO is
     * applied, no per-tenant rollups are built. Non-empty, every
     * query's tenant index must be in range.
     */
    std::vector<TenantSlo> tenants;
};

/** How the front-end disposed of one query. */
enum class ServingOutcome {
    /** Answered from the merged-result cache; the cluster never moved. */
    CacheHit,

    /** Executed under the policy's plan, untouched by admission. */
    Served,

    /** Executed, but with the budget tightened by overload. */
    Degraded,

    /** Rejected outright: every participant was over the shed line. */
    Shed,
};

/** Stable name of an outcome ("cache_hit", "served", ...). */
const char *servingOutcomeName(ServingOutcome outcome);

/** One query's serving-mode record. */
struct ServingMeasurement
{
    ServingOutcome outcome = ServingOutcome::Served;

    /**
     * The response as the client saw it. Cache hits carry the cached
     * ranking at cache-hit latency with zero ISNs used; shed queries
     * carry an empty ranking at reject latency.
     */
    QueryMeasurement measurement;

    /** Worst backlog among the ISNs that stayed in the plan. */
    double worstBacklogSeconds = 0.0;

    /** Participants dropped from this query's plan by admission. */
    uint32_t isnsShed = 0;

    /** Participants dropped because their ISN was down at dispatch. */
    uint32_t isnsUnavailable = 0;
};

/** One serving run's aggregate results. */
struct ServingSummary
{
    /** Latency/quality/energy over ALL responses (shed ones score 0). */
    RunSummary run;

    uint64_t offered = 0;

    /** Responses that carried results (executions + cache hits). */
    uint64_t completed = 0;

    uint64_t cacheHits = 0;
    uint64_t degraded = 0;
    uint64_t shedQueries = 0;

    /** Individual participants dropped across all plans. */
    uint64_t isnsShed = 0;

    /** Participants dropped across all plans for being down. */
    uint64_t isnsUnavailable = 0;

    /** shedQueries / offered. */
    double shedRate = 0.0;

    /** Truncated ISN responses that performed zero work (satellite 1). */
    uint64_t zeroProgressResponses = 0;

    uint64_t resultCacheHits = 0;
    uint64_t resultCacheMisses = 0;
    uint64_t resultCacheEvictions = 0;
    double resultCacheHitRate = 0.0;

    uint64_t statsCacheHits = 0;
    uint64_t statsCacheMisses = 0;
    uint64_t statsCacheEvictions = 0;
    double statsCacheHitRate = 0.0;

    /** offered / duration. */
    double offeredQps = 0.0;

    /** completed / duration. */
    double achievedQps = 0.0;

    /**
     * Per-tenant rollups, parallel to ServingConfig::tenants (empty
     * outside multi-tenant runs — the JSON export then omits the
     * "tenants" key entirely, keeping single-tenant output unchanged).
     */
    std::vector<TenantSummary> tenants;
};

/** One-line JSON object (keys documented in EXPERIMENTS.md). */
std::string toJson(const ServingSummary &summary);

/** One tenant rollup as a JSON object (nested under "tenants"). */
std::string toJson(const TenantSummary &tenant);

/** Admission + caches + shedding around a DistributedEngine. */
class ServingFrontEnd
{
  public:
    /** @param engine Borrowed; must outlive the front-end. */
    ServingFrontEnd(DistributedEngine &engine, ServingConfig config);

    /**
     * Serve a trace end to end, resetting cluster, policy and cache
     * state first. @p groundTruth is indexed by trace position (use
     * the same base trace the truth was computed from — retimeTrace
     * keeps positions aligned). When @p metrics is non-null it is
     * attached to the engine for the run's duration and additionally
     * receives the serve_* counters and the windowed power/QPS series.
     */
    ServingSummary serve(Policy &policy, const QueryTrace &trace,
                         const std::vector<std::vector<ScoredDoc>> &groundTruth,
                         MetricsRegistry *metrics = nullptr);

    /** Per-query records of the last serve() call, in arrival order. */
    const std::vector<ServingMeasurement> &measurements() const
    {
        return measurements_;
    }

    const ServingConfig &config() const { return config_; }
    const ResultCache &resultCache() const { return resultCache_; }
    const TermStatsCache &statsCache() const { return statsCache_; }

  private:
    DistributedEngine *engine_;
    ServingConfig config_;
    ResultCache resultCache_;
    TermStatsCache statsCache_;
    std::vector<ServingMeasurement> measurements_;
};

} // namespace cottage

#endif // COTTAGE_SERVE_SERVING_H
