/**
 * @file
 * Open-loop Poisson arrival re-timing for serving-mode QPS sweeps.
 *
 * The serving bench measures the same query population at rising
 * offered load. Regenerating a trace per QPS point would change the
 * queries alongside the arrival process and confound the sweep, so
 * instead one base trace is RE-TIMED: the query sequence (ids, terms,
 * weights — and therefore the cached ground truth, keyed by query
 * index) is kept verbatim and only the arrival clock is redrawn as a
 * homogeneous Poisson process at the target rate. Arrivals come from
 * util/rng seeded explicitly — never the host clock — so every sweep
 * point is exactly reproducible from its printed (seed, qps) pair.
 */

#ifndef COTTAGE_SERVE_ARRIVALS_H
#define COTTAGE_SERVE_ARRIVALS_H

#include <cstdint>

#include "text/trace.h"

namespace cottage {

/**
 * Re-time @p base as an open-loop Poisson arrival process at
 * @p arrivalQps mean queries per second: each inter-arrival gap is an
 * independent exponential draw from Rng(@p seed). Query content and
 * order are untouched. @p arrivalQps must be positive.
 */
QueryTrace retimeTrace(const QueryTrace &base, double arrivalQps,
                       uint64_t seed);

/** Arrival-process families the scenario layer composes tenants from. */
enum class ArrivalShape {
    /** Stationary Poisson at `qps` (identical to retimeTrace). */
    Poisson,

    /** Sinusoidal rate: qps * (1 + amplitude * sin(2*pi*t/period)). */
    Diurnal,

    /** Step spike: rate jumps to qps * multiplier inside the window. */
    FlashCrowd,
};

/** Stable shape name ("poisson", "diurnal", "flash_crowd"). */
const char *arrivalShapeName(ArrivalShape shape);

/**
 * One tenant's arrival process. Every draw comes from Rng(seed), so
 * each tenant owns an independent, reproducible stream — scenarios
 * give every tenant a distinct seed and the merged arrival order is a
 * pure function of the spec list.
 */
struct ArrivalSpec
{
    ArrivalShape shape = ArrivalShape::Poisson;

    /** Baseline mean rate, queries per second (must be positive). */
    double qps = 100.0;

    /** Seed of this tenant's private arrival stream. */
    uint64_t seed = 1;

    /** Diurnal modulation depth, in [0, 1). */
    double diurnalAmplitude = 0.5;

    /** Diurnal oscillation period, seconds (positive). */
    double diurnalPeriodSeconds = 10.0;

    /** Flash-crowd window start, seconds. */
    double spikeStartSeconds = 0.5;

    /** Flash-crowd window length, seconds (positive). */
    double spikeDurationSeconds = 1.0;

    /** Rate multiplier inside the window (>= 1). */
    double spikeMultiplier = 8.0;
};

/**
 * Re-time @p base under @p spec. Poisson delegates to retimeTrace
 * byte-for-byte; the inhomogeneous shapes draw candidate arrivals at
 * the shape's peak rate and thin them by the instantaneous-to-peak
 * rate ratio (Lewis-Shedler), so the output is still a pure function
 * of (base, spec) — no wall clock anywhere.
 */
QueryTrace shapeArrivals(const QueryTrace &base, const ArrivalSpec &spec);

} // namespace cottage

#endif // COTTAGE_SERVE_ARRIVALS_H
