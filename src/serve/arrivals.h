/**
 * @file
 * Open-loop Poisson arrival re-timing for serving-mode QPS sweeps.
 *
 * The serving bench measures the same query population at rising
 * offered load. Regenerating a trace per QPS point would change the
 * queries alongside the arrival process and confound the sweep, so
 * instead one base trace is RE-TIMED: the query sequence (ids, terms,
 * weights — and therefore the cached ground truth, keyed by query
 * index) is kept verbatim and only the arrival clock is redrawn as a
 * homogeneous Poisson process at the target rate. Arrivals come from
 * util/rng seeded explicitly — never the host clock — so every sweep
 * point is exactly reproducible from its printed (seed, qps) pair.
 */

#ifndef COTTAGE_SERVE_ARRIVALS_H
#define COTTAGE_SERVE_ARRIVALS_H

#include <cstdint>

#include "text/trace.h"

namespace cottage {

/**
 * Re-time @p base as an open-loop Poisson arrival process at
 * @p arrivalQps mean queries per second: each inter-arrival gap is an
 * independent exponential draw from Rng(@p seed). Query content and
 * order are untouched. @p arrivalQps must be positive.
 */
QueryTrace retimeTrace(const QueryTrace &base, double arrivalQps,
                       uint64_t seed);

} // namespace cottage

#endif // COTTAGE_SERVE_ARRIVALS_H
