/**
 * @file
 * Merged-result cache for the serving front-end.
 *
 * The cache maps a query's full retrieval identity — its term sequence
 * plus, for personalized queries, the exact per-term weights — to the
 * merged top-K the engine previously returned for it. Keys are a
 * binary encoding rather than a joined string so that no term/weight
 * combination can collide with another ("12 3" vs "1 23") and weight
 * identity is bit-exact, matching the repo-wide rule that measured
 * quality never depends on formatting.
 *
 * Only fully-completed, non-degraded responses are ever inserted (the
 * front-end enforces this), so a hit is by construction byte-identical
 * to what re-executing the query without load would return — the
 * contract the cache-identity acceptance test pins.
 */

#ifndef COTTAGE_SERVE_RESULT_CACHE_H
#define COTTAGE_SERVE_RESULT_CACHE_H

#include <cstring>
#include <string>
#include <vector>

#include "index/top_k.h"
#include "serve/lru_cache.h"
#include "text/query.h"

namespace cottage {

/** A cached merged response plus its measured quality. */
struct CachedResult
{
    std::vector<ScoredDoc> results;

    /**
     * Quality of the cached ranking against the exhaustive ground
     * truth. Ground truth depends only on query content, which the key
     * encodes exactly, so these numbers transfer to every hit.
     */
    double precisionAtK = 0.0;
    double ndcgAtK = 0.0;
};

/**
 * Binary retrieval-identity key of a query: term ids little-endian,
 * then (personalized queries only) the raw bytes of each weight.
 */
inline std::string
resultCacheKey(const Query &query)
{
    std::string key;
    const bool personalized = query.personalized();
    key.reserve(1 + query.terms.size() * (personalized ? 12 : 4));
    key.push_back(personalized ? '\1' : '\0');
    for (TermId term : query.terms) {
        for (int shift = 0; shift < 32; shift += 8)
            key.push_back(static_cast<char>((term >> shift) & 0xff));
    }
    if (personalized) {
        for (std::size_t i = 0; i < query.terms.size(); ++i) {
            const double weight = query.weight(i);
            char bytes[sizeof(double)];
            std::memcpy(bytes, &weight, sizeof(double));
            key.append(bytes, sizeof(double));
        }
    }
    return key;
}

/** LRU over retrieval-identity keys. */
using ResultCache = LruCache<std::string, CachedResult>;

} // namespace cottage

#endif // COTTAGE_SERVE_RESULT_CACHE_H
