#include "serve/arrivals.h"

#include "util/logging.h"
#include "util/rng.h"

namespace cottage {

QueryTrace
retimeTrace(const QueryTrace &base, double arrivalQps, uint64_t seed)
{
    COTTAGE_CHECK_MSG(arrivalQps > 0.0,
                      "arrival rate must be positive qps");
    Rng rng(seed);
    QueryTrace retimed;
    retimed.setName(base.name());
    double clock = 0.0;
    for (const Query &query : base.queries()) {
        Query copy = query;
        clock += rng.exponential(arrivalQps);
        copy.arrivalSeconds = clock;
        // append() re-stamps ids sequentially; the base trace is
        // already sequential, so ids survive the copy unchanged.
        retimed.append(std::move(copy));
    }
    return retimed;
}

} // namespace cottage
