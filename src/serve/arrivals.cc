#include "serve/arrivals.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace cottage {

QueryTrace
retimeTrace(const QueryTrace &base, double arrivalQps, uint64_t seed)
{
    COTTAGE_CHECK_MSG(arrivalQps > 0.0,
                      "arrival rate must be positive qps");
    Rng rng(seed);
    QueryTrace retimed;
    retimed.setName(base.name());
    double clock = 0.0;
    for (const Query &query : base.queries()) {
        Query copy = query;
        clock += rng.exponential(arrivalQps);
        copy.arrivalSeconds = clock;
        // append() re-stamps ids sequentially; the base trace is
        // already sequential, so ids survive the copy unchanged.
        retimed.append(std::move(copy));
    }
    return retimed;
}

const char *
arrivalShapeName(ArrivalShape shape)
{
    switch (shape) {
    case ArrivalShape::Poisson:
        return "poisson";
    case ArrivalShape::Diurnal:
        return "diurnal";
    case ArrivalShape::FlashCrowd:
        return "flash_crowd";
    }
    return "unknown";
}

namespace {

/** Instantaneous rate of the spec's process at simulated time t. */
double
instantaneousRate(const ArrivalSpec &spec, double t)
{
    switch (spec.shape) {
    case ArrivalShape::Poisson:
        return spec.qps;
    case ArrivalShape::Diurnal: {
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        return spec.qps *
               (1.0 + spec.diurnalAmplitude *
                          std::sin(kTwoPi * t /
                                   spec.diurnalPeriodSeconds));
    }
    case ArrivalShape::FlashCrowd:
        return t >= spec.spikeStartSeconds &&
                       t < spec.spikeStartSeconds +
                               spec.spikeDurationSeconds
                   ? spec.qps * spec.spikeMultiplier
                   : spec.qps;
    }
    return spec.qps;
}

/** The rate the thinning proposal process runs at (>= any instant). */
double
peakRate(const ArrivalSpec &spec)
{
    switch (spec.shape) {
    case ArrivalShape::Poisson:
        return spec.qps;
    case ArrivalShape::Diurnal:
        return spec.qps * (1.0 + spec.diurnalAmplitude);
    case ArrivalShape::FlashCrowd:
        return spec.qps * spec.spikeMultiplier;
    }
    return spec.qps;
}

} // namespace

QueryTrace
shapeArrivals(const QueryTrace &base, const ArrivalSpec &spec)
{
    COTTAGE_CHECK_MSG(spec.qps > 0.0, "arrival rate must be positive");
    if (spec.shape == ArrivalShape::Diurnal) {
        COTTAGE_CHECK_MSG(spec.diurnalAmplitude >= 0.0 &&
                              spec.diurnalAmplitude < 1.0,
                          "diurnal amplitude must lie in [0, 1)");
        COTTAGE_CHECK_MSG(spec.diurnalPeriodSeconds > 0.0,
                          "diurnal period must be positive");
    }
    if (spec.shape == ArrivalShape::FlashCrowd) {
        COTTAGE_CHECK_MSG(spec.spikeMultiplier >= 1.0,
                          "spike multiplier must be >= 1");
        COTTAGE_CHECK_MSG(spec.spikeDurationSeconds > 0.0 &&
                              spec.spikeStartSeconds >= 0.0,
                          "spike window must be well-formed");
    }

    // The stationary case IS retimeTrace: same seed, same bytes. The
    // thinning loop below would add one uniform draw per candidate and
    // change the stream.
    if (spec.shape == ArrivalShape::Poisson)
        return retimeTrace(base, spec.qps, spec.seed);

    // Lewis-Shedler thinning: propose arrivals from a homogeneous
    // process at the peak rate and accept each with probability
    // rate(t)/peak — an exact draw from the inhomogeneous process.
    const double peak = peakRate(spec);
    Rng rng(spec.seed);
    QueryTrace shaped;
    shaped.setName(base.name());
    double clock = 0.0;
    for (const Query &query : base.queries()) {
        for (;;) {
            clock += rng.exponential(peak);
            if (rng.uniform() * peak <= instantaneousRate(spec, clock))
                break;
        }
        Query copy = query;
        copy.arrivalSeconds = clock;
        shaped.append(std::move(copy));
    }
    return shaped;
}

} // namespace cottage
