/**
 * @file
 * Term-statistics / hot-postings cache for the serving front-end.
 *
 * In the paper's deployment, the aggregator-side planner consults
 * per-term statistics (and ISNs pull hot posting metadata) before a
 * query is dispatched. In this reproduction every statistic already
 * lives in memory, so the cache does not change WHAT is computed — it
 * models the latency of WHERE the data comes from: a miss charges a
 * configurable fetch penalty to the query's decision overhead (as if
 * the term's stats block were pulled from slow storage into the hot
 * tier), a hit is free. Hit/miss counts flow into MetricsRegistry and
 * the serving bench JSON.
 *
 * Determinism: the cache is probed sequentially per query in arrival
 * order, the LRU innards never iterate a hash container, and the
 * penalty is pure arithmetic — so serving latencies stay bit-identical
 * at any host thread count. The single-threaded-by-contract discipline
 * is compiler-checked: the wrapped LruCache guards its state with a
 * SerialGate (util/thread_annotations.h), so any probe reached from a
 * pool task fails the -Werror=thread-safety CI cell.
 */

#ifndef COTTAGE_SERVE_STATS_CACHE_H
#define COTTAGE_SERVE_STATS_CACHE_H

#include <cstdint>
#include <vector>

#include "serve/lru_cache.h"
#include "shard/sharded_index.h"
#include "text/types.h"

namespace cottage {

/** Cross-shard summary of one term, the cached "stats block". */
struct TermSummary
{
    /** Total postings across shards. */
    double postingLength = 0.0;

    /** Largest per-shard score bound. */
    double maxScore = 0.0;

    /** Global IDF (identical on every shard that has the term). */
    double idf = 0.0;
};

/** LRU of per-term cross-shard summaries with a miss fetch penalty. */
class TermStatsCache
{
  public:
    /**
     * @param index Sharded collection the summaries are built from
     *        (borrowed; must outlive the cache).
     * @param capacity Terms held; 0 disables the cache (every probe
     *        then charges the full fetch penalty and counts nothing).
     * @param fetchSeconds Decision-overhead penalty per missed term.
     */
    TermStatsCache(const ShardedIndex &index, std::size_t capacity,
                   double fetchSeconds);

    /**
     * Probe every term of a query, inserting summaries for the missed
     * ones, and return the total fetch penalty to add to the query's
     * decision overhead (missed terms * fetchSeconds; with the cache
     * disabled, every term is charged).
     */
    double probe(const std::vector<TermId> &terms);

    /** Cached summary of a term, or nullptr (no counters touched). */
    const TermSummary *peek(TermId term) const;

    bool enabled() const { return cache_.enabled(); }
    uint64_t hits() const { return cache_.hits(); }
    uint64_t misses() const { return cache_.misses(); }
    uint64_t evictions() const { return cache_.evictions(); }
    double hitRate() const { return cache_.hitRate(); }
    std::size_t size() const { return cache_.size(); }

    /** Drop entries and counters (fresh serving run). */
    void reset() { cache_.reset(); }

  private:
    /** Build a term's cross-shard summary from the index. */
    TermSummary summarize(TermId term) const;

    const ShardedIndex *index_;
    double fetchSeconds_;
    LruCache<TermId, TermSummary> cache_;
};

} // namespace cottage

#endif // COTTAGE_SERVE_STATS_CACHE_H
