#include "stats/ks.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace cottage {

double
ksDistance(std::vector<double> sample,
           const std::function<double(double)> &cdf)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end(), std::less<double>());
    const double n = static_cast<double>(sample.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
        const double model = cdf(sample[i]);
        const double below = static_cast<double>(i) / n;
        const double above = static_cast<double>(i + 1) / n;
        worst = std::max(worst, std::fabs(model - below));
        worst = std::max(worst, std::fabs(model - above));
    }
    return worst;
}

} // namespace cottage
