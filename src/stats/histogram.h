/**
 * @file
 * Fixed-bin histograms, linear or logarithmic, used for the Fig. 2(a)
 * latency histogram, the Fig. 6 score histogram, and as the label space
 * of the bucketed latency predictor.
 */

#ifndef COTTAGE_STATS_HISTOGRAM_H
#define COTTAGE_STATS_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cottage {

/**
 * A histogram over [lo, hi) with a fixed number of bins. Values below lo
 * land in the first bin; values at or above hi land in the last bin
 * (saturating, so no sample is ever dropped).
 */
class Histogram
{
  public:
    /** Linear binning: bin width = (hi - lo) / bins. */
    static Histogram linear(double lo, double hi, std::size_t bins);

    /**
     * Logarithmic binning: bin edges grow geometrically from lo to hi.
     * Requires 0 < lo < hi.
     */
    static Histogram logarithmic(double lo, double hi, std::size_t bins);

    /** Add one observation. */
    void add(double value);

    /** Bin index a value would fall into (after saturation). */
    std::size_t binIndex(double value) const;

    /** Lower edge of a bin. */
    double binLow(std::size_t bin) const;

    /** Upper edge of a bin. */
    double binHigh(std::size_t bin) const;

    /** Midpoint of a bin (geometric midpoint for log histograms). */
    double binCenter(std::size_t bin) const;

    std::size_t bins() const { return counts_.size(); }
    uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    uint64_t totalCount() const { return total_; }

    /** Fraction of all samples in a bin; 0 when empty. */
    double fraction(std::size_t bin) const;

    /** All counts, for plotting. */
    const std::vector<uint64_t> &counts() const { return counts_; }

    /**
     * Render as a fixed-width ASCII bar chart, one bin per line, for the
     * bench harnesses' figure output.
     */
    std::string toAscii(std::size_t barWidth = 50) const;

  private:
    Histogram(bool logScale, double lo, double hi, std::size_t bins);

    bool logScale_;
    double lo_;
    double hi_;
    double logLo_ = 0.0;
    double logHi_ = 0.0;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace cottage

#endif // COTTAGE_STATS_HISTOGRAM_H
