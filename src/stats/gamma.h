/**
 * @file
 * Gamma distribution: density, CDF, quantile and parameter fitting.
 *
 * Taily [21] models each query's document-score distribution on a shard
 * as a Gamma; its shard-selection rule and the paper's Fig. 6 misfit
 * analysis (and the Cottage-withoutML ablation) both need a faithful
 * Gamma implementation, which the standard library does not provide.
 */

#ifndef COTTAGE_STATS_GAMMA_H
#define COTTAGE_STATS_GAMMA_H

#include <vector>

namespace cottage {

/**
 * Regularized lower incomplete gamma P(a, x) in [0, 1].
 * Series expansion for x < a + 1, continued fraction otherwise.
 */
double regularizedGammaP(double a, double x);

/** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). */
double regularizedGammaQ(double a, double x);

/** Digamma function psi(x) for x > 0 (recurrence + asymptotic series). */
double digamma(double x);

/**
 * Gamma distribution with shape k > 0 and scale theta > 0
 * (mean = k * theta, variance = k * theta^2).
 */
class GammaDistribution
{
  public:
    GammaDistribution(double shape, double scale);

    double shape() const { return shape_; }
    double scale() const { return scale_; }
    double mean() const { return shape_ * scale_; }
    double variance() const { return shape_ * scale_ * scale_; }

    /** Probability density at x (0 for x < 0). */
    double pdf(double x) const;

    /** P(X <= x). */
    double cdf(double x) const;

    /** P(X > x); this is Taily's "docs above threshold" kernel. */
    double survival(double x) const;

    /** Inverse CDF by bisection; p in (0, 1). */
    double quantile(double p) const;

    /**
     * Method-of-moments fit from a sample mean and *population*
     * variance: shape = mean^2 / var, scale = var / mean. This is
     * exactly how Taily recovers per-query Gamma parameters from term
     * statistics. Degenerate inputs (non-positive mean or variance)
     * yield a near-point-mass distribution.
     */
    static GammaDistribution fitMoments(double sampleMean,
                                        double sampleVariance);

    /** Method-of-moments fit from raw data. */
    static GammaDistribution fitMoments(const std::vector<double> &values);

    /**
     * Maximum-likelihood fit via Newton iteration on
     * log(k) - psi(k) = log(mean) - mean(log x). Falls back to the
     * moments fit when the data are degenerate.
     */
    static GammaDistribution fitMle(const std::vector<double> &values);

  private:
    double shape_;
    double scale_;
};

} // namespace cottage

#endif // COTTAGE_STATS_GAMMA_H
