/**
 * @file
 * Streaming summary statistics and percentile helpers.
 *
 * These back both the feature extraction (score means/variances of
 * Tables I and II) and the experiment reporting (average / p95 / p99
 * latencies of Figs. 10-15).
 */

#ifndef COTTAGE_STATS_SUMMARY_H
#define COTTAGE_STATS_SUMMARY_H

#include <cstddef>
#include <vector>

namespace cottage {

/**
 * Single-pass running statistics using Welford's algorithm for a
 * numerically stable variance.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Fold one observation into the summary. */
    void add(double value);

    /** Merge another summary into this one (parallel Welford). */
    void merge(const RunningStat &other);

    std::size_t count() const { return count_; }
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /** Population variance (divides by n). Zero when count < 1. */
    double variance() const;

    /** Sample variance (divides by n - 1). Zero when count < 2. */
    double sampleVariance() const;

    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile of a data set using linear interpolation between closest
 * ranks. @p q is in [0, 1]. The input is copied and sorted; use
 * percentileSorted when the caller already holds sorted data.
 */
double percentile(std::vector<double> values, double q);

/** Percentile of already ascending-sorted data. */
double percentileSorted(const std::vector<double> &sorted, double q);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Geometric mean of positive values; 0 for empty input. */
double geometricMean(const std::vector<double> &values);

/** Harmonic mean of positive values; 0 for empty input. */
double harmonicMean(const std::vector<double> &values);

/** Population variance; 0 for fewer than 1 value. */
double variance(const std::vector<double> &values);

} // namespace cottage

#endif // COTTAGE_STATS_SUMMARY_H
