#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/logging.h"

namespace cottage {

void
RunningStat::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (count_ < 1)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::sampleVariance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
percentile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end(), std::less<double>());
    return percentileSorted(values, q);
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    COTTAGE_CHECK(q >= 0.0 && q <= 1.0);
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0; // undefined for non-positive inputs
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double invSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0; // undefined for non-positive inputs
        invSum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / invSum;
}

double
variance(const std::vector<double> &values)
{
    RunningStat stat;
    for (double v : values)
        stat.add(v);
    return stat.variance();
}

} // namespace cottage
