#include "stats/gamma.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace cottage {

namespace {

constexpr int maxIterations = 500;
constexpr double convergeEps = 1e-12;

/** Lower incomplete gamma by series expansion (x < a + 1). */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < maxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * convergeEps)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper incomplete gamma by Lentz continued fraction (x >= a + 1). */
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= maxIterations; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < convergeEps)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // namespace

double
regularizedGammaP(double a, double x)
{
    COTTAGE_CHECK_MSG(a > 0.0, "regularizedGammaP needs a > 0");
    if (x <= 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedGammaQ(double a, double x)
{
    COTTAGE_CHECK_MSG(a > 0.0, "regularizedGammaQ needs a > 0");
    if (x <= 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

double
digamma(double x)
{
    COTTAGE_CHECK_MSG(x > 0.0, "digamma needs x > 0");
    double result = 0.0;
    // Recurrence psi(x) = psi(x + 1) - 1/x until the asymptotic series
    // is accurate.
    while (x < 12.0) {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion.
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    result += std::log(x) - 0.5 * inv -
              inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
    return result;
}

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale)
{
    COTTAGE_CHECK_MSG(shape > 0.0, "gamma shape must be positive");
    COTTAGE_CHECK_MSG(scale > 0.0, "gamma scale must be positive");
}

double
GammaDistribution::pdf(double x) const
{
    if (x < 0.0)
        return 0.0;
    if (x == 0.0)
        return shape_ < 1.0 ? std::numeric_limits<double>::infinity()
                            : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
    const double logPdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                          std::lgamma(shape_) - shape_ * std::log(scale_);
    return std::exp(logPdf);
}

double
GammaDistribution::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(shape_, x / scale_);
}

double
GammaDistribution::survival(double x) const
{
    if (x <= 0.0)
        return 1.0;
    return regularizedGammaQ(shape_, x / scale_);
}

double
GammaDistribution::quantile(double p) const
{
    COTTAGE_CHECK_MSG(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    // Bracket: the mean plus enough standard deviations always covers
    // (0, 1 - eps) for a Gamma.
    double lo = 0.0;
    double hi = mean() + 10.0 * std::sqrt(variance()) + scale_;
    while (cdf(hi) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + hi))
            break;
    }
    return 0.5 * (lo + hi);
}

GammaDistribution
GammaDistribution::fitMoments(double sampleMean, double sampleVariance)
{
    // Degenerate inputs get a tight, nearly-point-mass Gamma so callers
    // (Taily on single-document postings) never have to special-case.
    if (sampleMean <= 0.0)
        return GammaDistribution(1.0, 1e-9);
    if (sampleVariance <= 0.0)
        sampleVariance = 1e-9 * sampleMean * sampleMean;
    const double shape = sampleMean * sampleMean / sampleVariance;
    const double scale = sampleVariance / sampleMean;
    return GammaDistribution(shape, scale);
}

GammaDistribution
GammaDistribution::fitMoments(const std::vector<double> &values)
{
    double total = 0.0;
    for (double v : values)
        total += v;
    const double n = static_cast<double>(values.size());
    const double m = values.empty() ? 0.0 : total / n;
    double varSum = 0.0;
    for (double v : values)
        varSum += (v - m) * (v - m);
    const double var = values.empty() ? 0.0 : varSum / n;
    return fitMoments(m, var);
}

GammaDistribution
GammaDistribution::fitMle(const std::vector<double> &values)
{
    if (values.size() < 2)
        return fitMoments(values);
    double sum = 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return fitMoments(values); // MLE needs positive support
        sum += v;
        logSum += std::log(v);
    }
    const double n = static_cast<double>(values.size());
    const double meanValue = sum / n;
    const double s = std::log(meanValue) - logSum / n;
    if (s <= 0.0)
        return fitMoments(values); // all values equal (up to rounding)

    // Initial estimate (Minka 2002), then Newton on
    // f(k) = log(k) - psi(k) - s.
    double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
               (12.0 * s);
    for (int i = 0; i < 100; ++i) {
        const double f = std::log(k) - digamma(k) - s;
        // f'(k) = 1/k - psi'(k); approximate psi' numerically.
        const double h = std::max(1e-6, 1e-6 * k);
        const double fPrime = 1.0 / k - (digamma(k + h) - digamma(k)) / h;
        const double step = f / fPrime;
        const double next = k - step;
        if (next <= 0.0) {
            k *= 0.5;
        } else {
            k = next;
        }
        if (std::fabs(step) < 1e-10 * (1.0 + k))
            break;
    }
    return GammaDistribution(k, meanValue / k);
}

} // namespace cottage
