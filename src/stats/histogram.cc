#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace cottage {

Histogram::Histogram(bool logScale, double lo, double hi, std::size_t bins)
    : logScale_(logScale), lo_(lo), hi_(hi), counts_(bins, 0)
{
    COTTAGE_CHECK_MSG(bins >= 1, "histogram needs at least one bin");
    COTTAGE_CHECK_MSG(lo < hi, "histogram needs lo < hi");
    if (logScale_) {
        COTTAGE_CHECK_MSG(lo > 0.0, "log histogram needs lo > 0");
        logLo_ = std::log(lo_);
        logHi_ = std::log(hi_);
    }
}

Histogram
Histogram::linear(double lo, double hi, std::size_t bins)
{
    return Histogram(false, lo, hi, bins);
}

Histogram
Histogram::logarithmic(double lo, double hi, std::size_t bins)
{
    return Histogram(true, lo, hi, bins);
}

std::size_t
Histogram::binIndex(double value) const
{
    double position;
    if (logScale_) {
        if (value <= lo_)
            return 0;
        position = (std::log(value) - logLo_) / (logHi_ - logLo_);
    } else {
        position = (value - lo_) / (hi_ - lo_);
    }
    if (position < 0.0)
        return 0;
    const auto bin = static_cast<std::size_t>(
        position * static_cast<double>(counts_.size()));
    return std::min(bin, counts_.size() - 1);
}

void
Histogram::add(double value)
{
    ++counts_[binIndex(value)];
    ++total_;
}

double
Histogram::binLow(std::size_t bin) const
{
    COTTAGE_CHECK(bin < counts_.size());
    const double frac =
        static_cast<double>(bin) / static_cast<double>(counts_.size());
    if (logScale_)
        return std::exp(logLo_ + frac * (logHi_ - logLo_));
    return lo_ + frac * (hi_ - lo_);
}

double
Histogram::binHigh(std::size_t bin) const
{
    COTTAGE_CHECK(bin < counts_.size());
    const double frac =
        static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
    if (logScale_)
        return std::exp(logLo_ + frac * (logHi_ - logLo_));
    return lo_ + frac * (hi_ - lo_);
}

double
Histogram::binCenter(std::size_t bin) const
{
    if (logScale_)
        return std::sqrt(binLow(bin) * binHigh(bin));
    return 0.5 * (binLow(bin) + binHigh(bin));
}

double
Histogram::fraction(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string
Histogram::toAscii(std::size_t barWidth) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::string out;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const auto stars = static_cast<std::size_t>(
            static_cast<double>(counts_[b]) / static_cast<double>(peak) *
            static_cast<double>(barWidth));
        out += strformat("[%10.3f, %10.3f) %8llu | ", binLow(b), binHigh(b),
                         static_cast<unsigned long long>(counts_[b]));
        out.append(stars, '#');
        out += '\n';
    }
    return out;
}

} // namespace cottage
