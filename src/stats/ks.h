/**
 * @file
 * Kolmogorov-Smirnov distance between an empirical sample and a model
 * CDF. Used by the Fig. 6 reproduction to quantify how badly a fitted
 * Gamma matches a real per-query score distribution (the misfit that
 * motivates Cottage's learned quality predictor).
 */

#ifndef COTTAGE_STATS_KS_H
#define COTTAGE_STATS_KS_H

#include <functional>
#include <vector>

namespace cottage {

/**
 * Supremum distance between the empirical CDF of @p sample and the
 * model @p cdf. The sample is copied and sorted. Returns 0 for an empty
 * sample.
 */
double ksDistance(std::vector<double> sample,
                  const std::function<double(double)> &cdf);

} // namespace cottage

#endif // COTTAGE_STATS_KS_H
