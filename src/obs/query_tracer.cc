#include "obs/query_tracer.h"

#include <cstdio>
#include <ostream>

#include "util/string_util.h"

namespace cottage {

namespace {

/**
 * Shortest round-trippable double representation, matching the
 * run-summary JSON emitter so the two outputs diff cleanly.
 */
std::string
num(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return std::string(buffer);
}

} // namespace

void
QueryTracer::record(QueryTraceRecord record)
{
    SerialLock section(gate_);
    if (sink_ != nullptr) {
        *sink_ << toJsonLine(record, sinkPolicy_, sinkTrace_) << '\n';
        if (++sinkUnflushed_ >= sinkFlushEvery_) {
            sink_->flush();
            sinkUnflushed_ = 0;
        }
    }
    records_.push_back(std::move(record));
}

void
QueryTracer::streamTo(std::ostream *out, std::string policy,
                      std::string trace, std::size_t flushEvery)
{
    SerialLock section(gate_);
    if (sink_ != nullptr)
        sink_->flush();
    sink_ = out;
    sinkPolicy_ = std::move(policy);
    sinkTrace_ = std::move(trace);
    sinkFlushEvery_ = flushEvery > 0 ? flushEvery : 1;
    sinkUnflushed_ = 0;
}

void
QueryTracer::flushSink()
{
    SerialLock section(gate_);
    if (sink_ != nullptr) {
        sink_->flush();
        sinkUnflushed_ = 0;
    }
}

std::string
QueryTracer::toJsonLine(const QueryTraceRecord &record,
                        const std::string &policy,
                        const std::string &trace)
{
    std::string out = "{";
    out += "\"query\":" + num(static_cast<double>(record.id));
    out += ",\"tenant\":" + num(static_cast<double>(record.tenant));
    out += ",\"policy\":" + jsonQuote(policy);
    out += ",\"trace\":" + jsonQuote(trace);
    out += ",\"arrival_s\":" + num(record.arrivalSeconds);
    out += ",\"dispatch_s\":" + num(record.dispatchSeconds);
    out += ",\"budget_s\":";
    out += record.budgetSeconds < 0.0 ? "null" : num(record.budgetSeconds);
    out += ",\"decision_s\":" + num(record.decisionOverheadSeconds);
    out += ",\"rtt_s\":" + num(record.rttSeconds);
    out += ",\"waited_s\":" + num(record.waitedSeconds);
    out += ",\"merge_s\":" + num(record.mergeSeconds);
    out += ",\"latency_s\":" + num(record.latencySeconds);
    out += ",\"isns\":[";
    for (std::size_t i = 0; i < record.isns.size(); ++i) {
        const IsnSpan &span = record.isns[i];
        if (i > 0)
            out += ",";
        out += "{\"isn\":" + num(static_cast<double>(span.isn));
        out += ",\"queue_wait_s\":" + num(span.queueWaitSeconds);
        out += ",\"start_s\":" + num(span.serviceStartSeconds);
        out += ",\"finish_s\":" + num(span.serviceFinishSeconds);
        out += ",\"busy_s\":" + num(span.busySeconds);
        out += ",\"cycles\":" + num(span.cycles);
        out += ",\"freq_ghz\":" + num(span.freqGhz);
        out += ",\"cores\":" + num(static_cast<double>(span.cores));
        out += ",\"boosted\":";
        out += span.boosted ? "true" : "false";
        out += ",\"energy_j\":" + num(span.energyJoules);
        out += ",\"completed\":";
        out += span.completed ? "true" : "false";
        out += ",\"fraction\":" + num(span.completedFraction);
        out += ",\"docs\":" + num(static_cast<double>(span.docsScored));
        out += ",\"docs_skipped\":" +
               num(static_cast<double>(span.docsSkipped));
        out += ",\"blocks_decoded\":" +
               num(static_cast<double>(span.blocksDecoded));
        out += ",\"blocks_skipped\":" +
               num(static_cast<double>(span.blocksSkipped));
        out += ",\"partial\":";
        out += span.partial ? "true" : "false";
        out += "}";
    }
    out += "]}";
    return out;
}

void
QueryTracer::writeJsonl(std::ostream &out, const std::string &policy,
                        const std::string &trace) const
{
    // Flush per batch, not per line: the tail of the export must not
    // depend on a destructor the caller may never reach (mid-run
    // abort), while per-line flushing would syscall-bind large dumps.
    constexpr std::size_t kFlushBatch = 256;
    std::size_t unflushed = 0;
    for (const QueryTraceRecord &record : records_) {
        out << toJsonLine(record, policy, trace) << '\n';
        if (++unflushed >= kFlushBatch) {
            out.flush();
            unflushed = 0;
        }
    }
    out.flush();
}

} // namespace cottage
