/**
 * @file
 * Named counters, log-scale histograms and a windowed power/QPS time
 * series for one replay run.
 *
 * The registry is the aggregate face of the observability layer: the
 * engine bumps counters and histogram samples while it advances the
 * cluster sim (sequentially, so recording is deterministic at any host
 * thread count), the harness folds in end-of-run cluster state
 * (per-ISN utilisation, energy windows), and the result is exported as
 * one JSON object per run (`--metrics-out`) or an ASCII report next to
 * the harness tables.
 *
 * The registry is externally serialized (never locked at runtime);
 * its members are GUARDED_BY a zero-cost SerialGate so the
 * -Werror=thread-safety CI cell proves that discipline at compile
 * time (DESIGN.md §5f).
 *
 * Names are ordered (std::map) so every export is deterministic.
 * Histograms reuse stats/histogram.h — the same saturating fixed-bin
 * type the paper figures and the latency-predictor label space use.
 */

#ifndef COTTAGE_OBS_METRICS_REGISTRY_H
#define COTTAGE_OBS_METRICS_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "util/thread_annotations.h"

namespace cottage {

/** One window of the power/QPS time series. */
struct MetricsWindow
{
    /** Busy energy drawn by queries dispatched in the window, joules. */
    double energyJoules = 0.0;

    /** Queries that arrived in the window. */
    uint64_t queries = 0;
};

/** Counters + histograms + windowed power/QPS for one run. */
class MetricsRegistry
{
  public:
    /** Add to a counter, creating it at zero on first use. */
    void incr(const std::string &name, uint64_t delta = 1);

    /** A counter's value; 0 if it was never touched. */
    uint64_t counter(const std::string &name) const;

    /**
     * The histogram registered under a name, created on first use with
     * the given shape (log-scale over [lo, hi) by default). Later
     * calls ignore the shape arguments and return the existing
     * histogram.
     */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t bins, bool logScale = true);

    /** Registered histogram, or nullptr. */
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Configure the power/QPS series. @p windowSeconds is the bucket
     * width (`--power-window-ms`); @p idleWatts is the package idle
     * floor added when a window's energy is converted to average
     * power.
     */
    void configureWindows(double windowSeconds, double idleWatts);

    double
    windowSeconds() const
    {
        SerialLock section(gate_);
        return windowSeconds_;
    }

    /**
     * Attribute a query (and the busy energy its execution drew) to
     * the window containing @p timeSeconds. The series grows on
     * demand.
     */
    void addWindowSample(double timeSeconds, double energyJoules,
                         uint64_t queries = 1);

    const std::vector<MetricsWindow> &
    windows() const
    {
        SerialLock section(gate_);
        return windows_;
    }

    /** Average package power over one window (idle + busy), watts. */
    double windowPowerWatts(std::size_t window) const;

    /** Drop all counters, histograms and windows. */
    void clear();

    /**
     * Single-line JSON object: run labels, counters, histogram shapes
     * and counts, and the window series (energy, queries, power).
     * Schema documented in EXPERIMENTS.md.
     */
    std::string toJson(const std::string &policy,
                       const std::string &trace) const;

    /**
     * Human-readable report: a counter table, each histogram as an
     * ASCII bar chart, and a summary of the power/QPS series. Rendered
     * by the harness next to its run tables.
     */
    std::string toAsciiReport() const;

  private:
    /** windowPowerWatts body shared with the exporters, which already
     * hold the gate (a second scoped acquire would be a double-lock to
     * the analysis). */
    double windowPowerLocked(std::size_t window) const
        COTTAGE_REQUIRES(gate_);

    /**
     * External-serialization capability (DESIGN.md §5d/§5f): the
     * engine records metrics strictly inside its sequential
     * shard-order loop, so there is nothing to lock at runtime — but
     * the members are GUARDED_BY the gate so a future caller that
     * bumps a counter from inside a pool task fails the
     * -Werror=thread-safety build instead of racing the replay.
     */
    mutable SerialGate gate_;

    std::map<std::string, uint64_t> counters_ COTTAGE_GUARDED_BY(gate_);
    std::map<std::string, Histogram> histograms_ COTTAGE_GUARDED_BY(gate_);
    double windowSeconds_ COTTAGE_GUARDED_BY(gate_) = 0.0;
    double idleWatts_ COTTAGE_GUARDED_BY(gate_) = 0.0;
    std::vector<MetricsWindow> windows_ COTTAGE_GUARDED_BY(gate_);
};

} // namespace cottage

#endif // COTTAGE_OBS_METRICS_REGISTRY_H
