#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace cottage {

namespace {

std::string
num(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return std::string(buffer);
}

} // namespace

void
MetricsRegistry::incr(const std::string &name, uint64_t delta)
{
    SerialLock section(gate_);
    counters_[name] += delta;
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    SerialLock section(gate_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double lo, double hi,
                           std::size_t bins, bool logScale)
{
    SerialLock section(gate_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, logScale ? Histogram::logarithmic(lo, hi,
                                                                  bins)
                                         : Histogram::linear(lo, hi, bins))
                 .first;
    }
    return it->second;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    SerialLock section(gate_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::configureWindows(double windowSeconds, double idleWatts)
{
    COTTAGE_CHECK_MSG(windowSeconds > 0.0,
                      "power window must be positive");
    SerialLock section(gate_);
    windowSeconds_ = windowSeconds;
    idleWatts_ = idleWatts;
    windows_.clear();
}

void
MetricsRegistry::addWindowSample(double timeSeconds, double energyJoules,
                                 uint64_t queries)
{
    SerialLock section(gate_);
    COTTAGE_CHECK_MSG(windowSeconds_ > 0.0,
                      "window series not configured");
    const auto index = static_cast<std::size_t>(
        std::max(0.0, timeSeconds) / windowSeconds_);
    if (index >= windows_.size())
        windows_.resize(index + 1);
    windows_[index].energyJoules += energyJoules;
    windows_[index].queries += queries;
}

double
MetricsRegistry::windowPowerWatts(std::size_t window) const
{
    SerialLock section(gate_);
    return windowPowerLocked(window);
}

double
MetricsRegistry::windowPowerLocked(std::size_t window) const
{
    COTTAGE_CHECK(window < windows_.size());
    return idleWatts_ + windows_[window].energyJoules / windowSeconds_;
}

void
MetricsRegistry::clear()
{
    SerialLock section(gate_);
    counters_.clear();
    histograms_.clear();
    windows_.clear();
}

std::string
MetricsRegistry::toJson(const std::string &policy,
                        const std::string &trace) const
{
    SerialLock section(gate_);
    std::string out = "{";
    out += "\"policy\":" + jsonQuote(policy);
    out += ",\"trace\":" + jsonQuote(trace);

    out += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        if (!first)
            out += ",";
        first = false;
        out += jsonQuote(name) + ":" +
               num(static_cast<double>(value));
    }
    out += "}";

    out += ",\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : histograms_) {
        if (!first)
            out += ",";
        first = false;
        out += jsonQuote(name) + ":{";
        out += "\"lo\":" + num(histogram.binLow(0));
        out += ",\"hi\":" + num(histogram.binHigh(histogram.bins() - 1));
        out += ",\"total\":" +
               num(static_cast<double>(histogram.totalCount()));
        out += ",\"counts\":[";
        for (std::size_t b = 0; b < histogram.bins(); ++b) {
            if (b > 0)
                out += ",";
            out += num(static_cast<double>(histogram.count(b)));
        }
        out += "]}";
    }
    out += "}";

    out += ",\"windows\":{";
    out += "\"window_s\":" + num(windowSeconds_);
    out += ",\"idle_w\":" + num(idleWatts_);
    out += ",\"energy_j\":[";
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        if (w > 0)
            out += ",";
        out += num(windows_[w].energyJoules);
    }
    out += "],\"queries\":[";
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        if (w > 0)
            out += ",";
        out += num(static_cast<double>(windows_[w].queries));
    }
    out += "],\"power_w\":[";
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        if (w > 0)
            out += ",";
        out += num(windowPowerLocked(w));
    }
    out += "]}}";
    return out;
}

std::string
MetricsRegistry::toAsciiReport() const
{
    SerialLock section(gate_);
    std::string out;
    if (!counters_.empty()) {
        out += "counters:\n";
        for (const auto &[name, value] : counters_)
            out += strformat("  %-28s %12llu\n", name.c_str(),
                             static_cast<unsigned long long>(value));
    }
    for (const auto &[name, histogram] : histograms_) {
        out += strformat("histogram %s (%llu samples):\n", name.c_str(),
                         static_cast<unsigned long long>(
                             histogram.totalCount()));
        out += histogram.toAscii();
    }
    if (!windows_.empty()) {
        double peakPower = 0.0;
        double peakQps = 0.0;
        double totalEnergy = 0.0;
        uint64_t totalQueries = 0;
        for (std::size_t w = 0; w < windows_.size(); ++w) {
            peakPower = std::max(peakPower, windowPowerLocked(w));
            peakQps = std::max(
                peakQps, static_cast<double>(windows_[w].queries) /
                             windowSeconds_);
            totalEnergy += windows_[w].energyJoules;
            totalQueries += windows_[w].queries;
        }
        const double span =
            static_cast<double>(windows_.size()) * windowSeconds_;
        out += strformat(
            "power/qps series: %zu windows of %.0f ms, avg %.2f W "
            "(peak %.2f W), avg %.1f qps (peak %.1f qps)\n",
            windows_.size(), windowSeconds_ * 1e3,
            idleWatts_ + totalEnergy / span, peakPower,
            static_cast<double>(totalQueries) / span, peakQps);
    }
    return out;
}

} // namespace cottage
