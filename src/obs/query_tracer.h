/**
 * @file
 * Per-query trace recording for the cluster replay.
 *
 * One QueryTraceRecord per executed query, carrying the aggregator's
 * timeline (decision overhead, dispatch, wait, merge) and one IsnSpan
 * per participating ISN (queue wait, service interval, frequency,
 * cycles, energy, truncation/partial flags). The engine fills the
 * record while it advances the cluster sim — sequentially, in shard
 * order — so the recorded stream is deterministic at any host thread
 * count and recording never perturbs a measured value: the tracer only
 * reads what the simulation already computed.
 *
 * Zero cost when off: the engine holds a nullable pointer and the
 * whole subsystem is a single branch per query when no tracer is
 * attached.
 */

#ifndef COTTAGE_OBS_QUERY_TRACER_H
#define COTTAGE_OBS_QUERY_TRACER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "text/types.h"
#include "util/thread_annotations.h"

namespace cottage {

/** One ISN's slice of a query's execution timeline. */
struct IsnSpan
{
    /** Which ISN (ascending within a record). */
    ShardId isn = 0;

    /** Seconds the request waited for a worker core. */
    double queueWaitSeconds = 0.0;

    /** Absolute service start (>= the query's dispatch time). */
    double serviceStartSeconds = 0.0;

    /** Absolute service finish (or the deadline cutoff). */
    double serviceFinishSeconds = 0.0;

    /** Seconds the core actually computed. */
    double busySeconds = 0.0;

    /** Cycles the full evaluation would have cost. */
    double cycles = 0.0;

    /** Frequency the request ran at (GHz). */
    double freqGhz = 0.0;

    /** Worker cores the request spanned (intra-query parallelism). */
    uint32_t cores = 1;

    /** True if the request ran above the ladder's default frequency. */
    bool boosted = false;

    /** Busy energy this request drew, joules. */
    double energyJoules = 0.0;

    /** True if the full service finished before the deadline. */
    bool completed = true;

    /** Completed service fraction (1.0 when completed). */
    double completedFraction = 1.0;

    /**
     * Documents this ISN's response actually contributed to the merge
     * (the anytime prefix for truncated responses).
     */
    uint64_t docsScored = 0;

    /** Candidates this ISN's evaluation seeked past without scoring. */
    uint64_t docsSkipped = 0;

    /** Posting blocks decoded (block-max evaluators; 0 for flat). */
    uint64_t blocksDecoded = 0;

    /** Posting blocks skipped undecoded via block maxima. */
    uint64_t blocksSkipped = 0;

    /**
     * True if a truncated response still contributed a non-empty
     * anytime partial top-K.
     */
    bool partial = false;
};

/** The full execution timeline of one query. */
struct QueryTraceRecord
{
    QueryId id = 0;

    /** Owning tenant (0 outside multi-tenant scenarios). */
    uint32_t tenant = 0;

    /** Client arrival time. */
    double arrivalSeconds = 0.0;

    /** When the request reached the ISNs (arrival + decision + rtt/2). */
    double dispatchSeconds = 0.0;

    /** Relative budget; negative means "no deadline". */
    double budgetSeconds = -1.0;

    /** Aggregator-side prediction/optimizer overhead span. */
    double decisionOverheadSeconds = 0.0;

    /** Full aggregator<->ISN round trip charged to the query. */
    double rttSeconds = 0.0;

    /** Seconds the aggregator waited after dispatch for responses. */
    double waitedSeconds = 0.0;

    /** Aggregator-side merge span. */
    double mergeSeconds = 0.0;

    /**
     * Client-observed latency. Reconciles exactly:
     * decisionOverheadSeconds + rttSeconds + waitedSeconds +
     * mergeSeconds.
     */
    double latencySeconds = 0.0;

    /** Participating ISN spans, in ascending shard order. */
    std::vector<IsnSpan> isns;
};

/**
 * Collects trace records for one replay. Records accumulate in
 * execution order (the harness replays queries sequentially in arrival
 * order, so this is also arrival order).
 */
class QueryTracer
{
  public:
    /**
     * Append one record. With a sink attached (streamTo), the record's
     * JSONL line is also written out immediately and the sink is
     * flushed every flushEvery records, so a mid-run abort loses at
     * most one batch instead of the whole buffered tail.
     */
    void record(QueryTraceRecord record);

    /**
     * Attach a streaming sink (nullptr detaches): every subsequent
     * record() writes its JSONL line to @p out as it arrives, with an
     * explicit flush() after each batch of @p flushEvery records (and
     * on detach). The in-memory record list still accumulates, so
     * records()/writeJsonl() behave exactly as without a sink. The
     * stream must outlive the tracer (or be detached first).
     */
    void streamTo(std::ostream *out, std::string policy,
                  std::string trace, std::size_t flushEvery = 64);

    /** Flush any pending streamed lines to the sink. No-op when detached. */
    void flushSink();

    const std::vector<QueryTraceRecord> &
    records() const
    {
        SerialLock section(gate_);
        return records_;
    }

    /** Drop all records (fresh run). */
    void
    clear()
    {
        SerialLock section(gate_);
        records_.clear();
    }

    /**
     * One JSONL line (no trailing newline) for a record. The policy
     * and trace labels identify the run the record came from; string
     * fields are JSON-escaped. Schema documented in EXPERIMENTS.md.
     */
    static std::string toJsonLine(const QueryTraceRecord &record,
                                  const std::string &policy,
                                  const std::string &trace);

    /**
     * Write every record as one JSONL line, in order, flushing after
     * each batch of lines and at the end — the buffered tail of a
     * JSONL export must never depend on a stream destructor running.
     */
    void writeJsonl(std::ostream &out, const std::string &policy,
                    const std::string &trace) const;

  private:
    /**
     * External-serialization capability (DESIGN.md §5f): the engine
     * records strictly inside its sequential shard-order loop, so the
     * record list and the streaming sink are single-threaded by
     * contract. GUARDED_BY makes that contract compiler-checked — a
     * record() or flushSink() reached from a pool task fails the
     * -Werror=thread-safety cell (interleaved JSONL lines would
     * corrupt the sink stream byte-for-byte).
     */
    mutable SerialGate gate_;

    std::vector<QueryTraceRecord> records_ COTTAGE_GUARDED_BY(gate_);

    /** Streaming sink state (streamTo). */
    std::ostream *sink_ COTTAGE_GUARDED_BY(gate_) = nullptr;
    std::string sinkPolicy_ COTTAGE_GUARDED_BY(gate_);
    std::string sinkTrace_ COTTAGE_GUARDED_BY(gate_);
    std::size_t sinkFlushEvery_ COTTAGE_GUARDED_BY(gate_) = 64;
    std::size_t sinkUnflushed_ COTTAGE_GUARDED_BY(gate_) = 0;
};

} // namespace cottage

#endif // COTTAGE_OBS_QUERY_TRACER_H
