#include "predict/features.h"

#include <algorithm>

#include "util/logging.h"

namespace cottage {

namespace {

const char *const qualityNames[numQualityFeatures] = {
    "first-quartile-score", "arithmetic-average-score", "median-score",
    "geometric-average-score", "harmonic-average-score",
    "third-quartile-score", "kth-score", "max-score", "score-variance",
    "posting-list-length",
};

const char *const latencyNames[numLatencyFeatures] = {
    "posting-list-length", "documents-ever-in-top-k", "local-score-maxima",
    "local-score-maxima-above-mean", "number-of-max-score", "query-length",
    "documents-in-5pct-of-max-score", "documents-in-5pct-of-kth-score",
    "arithmetic-average-score", "geometric-average-score",
    "harmonic-average-score", "max-score", "estimated-max-score",
    "score-variance", "idf",
};

/** Fold one term's value into a MAX-aggregated slot. */
void
foldMax(double &slot, double value)
{
    slot = std::max(slot, value);
}

/**
 * Compress a count-valued feature. Posting lengths and the other
 * document-count features span four orders of magnitude; the MLPs
 * train far better on log-compressed counts (z-scoring alone cannot
 * linearize a Zipf tail). Scores are left untouched.
 */
double
logCount(double value)
{
    return std::log1p(value);
}

} // namespace

const char *
qualityFeatureName(std::size_t index)
{
    COTTAGE_CHECK(index < numQualityFeatures);
    return qualityNames[index];
}

const char *
latencyFeatureName(std::size_t index)
{
    COTTAGE_CHECK(index < numLatencyFeatures);
    return latencyNames[index];
}

std::vector<double>
qualityFeatures(const TermStatsStore &stats,
                const std::vector<WeightedTerm> &terms)
{
    std::vector<double> features(numQualityFeatures, 0.0);
    for (const WeightedTerm &wt : terms) {
        const TermStats *ts = stats.get(wt.term);
        if (ts == nullptr)
            continue;
        const double w = wt.weight;
        foldMax(features[0], w * ts->firstQuartile);
        foldMax(features[1], w * ts->meanScore);
        foldMax(features[2], w * ts->median);
        foldMax(features[3], w * ts->geoMeanScore);
        foldMax(features[4], w * ts->harmMeanScore);
        foldMax(features[5], w * ts->thirdQuartile);
        foldMax(features[6], w * ts->kthScore);
        foldMax(features[7], w * ts->maxScore);
        foldMax(features[8], w * w * ts->scoreVariance);
        foldMax(features[9], logCount(ts->postingLength));
    }
    return features;
}

std::vector<double>
qualityFeatures(const TermStatsStore &stats, const std::vector<TermId> &terms)
{
    return qualityFeatures(stats, toWeighted(terms));
}

std::vector<double>
latencyFeatures(const TermStatsStore &stats,
                const std::vector<WeightedTerm> &terms)
{
    std::vector<double> features(numLatencyFeatures, 0.0);
    features[5] = static_cast<double>(terms.size()); // query length
    for (const WeightedTerm &wt : terms) {
        const TermStats *ts = stats.get(wt.term);
        if (ts == nullptr)
            continue;
        const double w = wt.weight;
        foldMax(features[0], logCount(ts->postingLength));
        foldMax(features[1], logCount(ts->docsEverInTopK));
        foldMax(features[2], logCount(ts->localMaxima));
        foldMax(features[3], logCount(ts->localMaximaAboveMean));
        foldMax(features[4], logCount(ts->numMaxScore));
        foldMax(features[6], logCount(ts->docsNearMax));
        foldMax(features[7], logCount(ts->docsNearKth));
        foldMax(features[8], w * ts->meanScore);
        foldMax(features[9], w * ts->geoMeanScore);
        foldMax(features[10], w * ts->harmMeanScore);
        foldMax(features[11], w * ts->maxScore);
        foldMax(features[12], w * ts->estimatedMaxScore);
        foldMax(features[13], w * w * ts->scoreVariance);
        foldMax(features[14], w * ts->idf);
    }
    return features;
}

std::vector<double>
latencyFeatures(const TermStatsStore &stats, const std::vector<TermId> &terms)
{
    return latencyFeatures(stats, toWeighted(terms));
}

} // namespace cottage
