/**
 * @file
 * Query-feature extraction for the two predictors, following the
 * paper's Tables I and II exactly. All features derive from per-term,
 * per-shard statistics computed at indexing time (TermStatsStore);
 * multi-term queries aggregate per-term values with the MAX operator,
 * the paper's choice (§III-C).
 */

#ifndef COTTAGE_PREDICT_FEATURES_H
#define COTTAGE_PREDICT_FEATURES_H

#include <cstddef>
#include <string>
#include <vector>

#include "index/evaluator.h"
#include "index/term_stats.h"
#include "text/types.h"

namespace cottage {

/** Number of quality-prediction features (Table I). */
constexpr std::size_t numQualityFeatures = 10;

/** Number of latency-prediction features (Table II). */
constexpr std::size_t numLatencyFeatures = 15;

/** Human-readable name of a Table I feature (for reports). */
const char *qualityFeatureName(std::size_t index);

/** Human-readable name of a Table II feature (for reports). */
const char *latencyFeatureName(std::size_t index);

/**
 * Table I feature vector of a query on one shard. Terms absent from
 * the shard contribute zeros (MAX-neutral).
 */
std::vector<double> qualityFeatures(const TermStatsStore &stats,
                                    const std::vector<TermId> &terms);

/**
 * Personalized variant (the paper's future-work extension): each
 * term's score-valued statistics scale with its user-profile weight
 * (variance with weight squared); count-valued features are weight
 * independent. With unit weights this equals the plain form.
 */
std::vector<double> qualityFeatures(const TermStatsStore &stats,
                                    const std::vector<WeightedTerm> &terms);

/**
 * Table II feature vector of a query on one shard. Query length is the
 * only non-MAX feature (it is a property of the query itself).
 */
std::vector<double> latencyFeatures(const TermStatsStore &stats,
                                    const std::vector<TermId> &terms);

/** Personalized variant; see the quality overload. */
std::vector<double> latencyFeatures(const TermStatsStore &stats,
                                    const std::vector<WeightedTerm> &terms);

} // namespace cottage

#endif // COTTAGE_PREDICT_FEATURES_H
