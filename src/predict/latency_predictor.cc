#include "predict/latency_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/logging.h"

namespace cottage {

CycleBuckets::CycleBuckets(double minCycles, double maxCycles,
                           std::size_t count)
    : minCycles_(minCycles), maxCycles_(maxCycles), count_(count)
{
    COTTAGE_CHECK_MSG(minCycles > 0.0, "cycle buckets need minCycles > 0");
    COTTAGE_CHECK_MSG(maxCycles > minCycles, "cycle bucket range inverted");
    COTTAGE_CHECK_MSG(count >= 2, "need at least two cycle buckets");
    logMin_ = std::log(minCycles_);
    logMax_ = std::log(maxCycles_);
}

uint32_t
CycleBuckets::bucketOf(double cycles) const
{
    if (cycles <= minCycles_)
        return 0;
    const double position =
        (std::log(cycles) - logMin_) / (logMax_ - logMin_);
    if (position >= 1.0)
        return static_cast<uint32_t>(count_ - 1);
    return static_cast<uint32_t>(position * static_cast<double>(count_));
}

double
CycleBuckets::representativeCycles(uint32_t bucket) const
{
    COTTAGE_CHECK(bucket < count_);
    const double width = (logMax_ - logMin_) / static_cast<double>(count_);
    return std::exp(logMin_ + (static_cast<double>(bucket) + 0.5) * width);
}

double
CycleBuckets::upperCycles(uint32_t bucket) const
{
    COTTAGE_CHECK(bucket < count_);
    const double width = (logMax_ - logMin_) / static_cast<double>(count_);
    return std::exp(logMin_ + (static_cast<double>(bucket) + 1.0) * width);
}

namespace {

MlpConfig
modelConfig(const CycleBuckets &buckets,
            const std::vector<std::size_t> &hiddenLayers, uint64_t seed)
{
    MlpConfig config;
    config.inputDim = numLatencyFeatures;
    config.numClasses = buckets.count();
    config.hiddenLayers = hiddenLayers;
    config.seed = seed;
    return config;
}

} // namespace

LatencyPredictor::LatencyPredictor(
    const CycleBuckets &buckets,
    const std::vector<std::size_t> &hiddenLayers, uint64_t seed)
    : buckets_(buckets),
      model_(modelConfig(buckets, hiddenLayers, seed))
{
}

double
LatencyPredictor::train(const Dataset &data, std::size_t iterations,
                        const AdamConfig &adam)
{
    model_.fitNormalization(data);
    return model_.train(data, iterations, adam);
}

uint32_t
LatencyPredictor::predictBucket(const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == numLatencyFeatures);
    return model_.predict(features.data());
}

double
LatencyPredictor::predictCycles(const std::vector<double> &features) const
{
    return buckets_.representativeCycles(predictBucket(features));
}

double
LatencyPredictor::predictCyclesConservative(
    const std::vector<double> &features) const
{
    // Upper edge of the predicted bucket: exactly one log-bucket of
    // headroom over the bucket's lower edge. The classifier saturates
    // at the top bucket, so the edge is always defined; any further
    // safety margin belongs to the caller (CottageConfig::budgetSlack),
    // not the predictor.
    return buckets_.upperCycles(predictBucket(features));
}

double
LatencyPredictor::expectedCycles(const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == numLatencyFeatures);
    const std::vector<double> probs = model_.probabilities(features.data());
    double cycles = 0.0;
    for (uint32_t b = 0; b < probs.size(); ++b)
        cycles += probs[b] * buckets_.representativeCycles(b);
    return cycles;
}

double
LatencyPredictor::accuracyWithin(const Dataset &data,
                                 uint32_t tolerance) const
{
    COTTAGE_CHECK(!data.empty());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto predicted =
            static_cast<int64_t>(model_.predict(data.features(i)));
        const auto truth = static_cast<int64_t>(data.label(i));
        if (std::llabs(predicted - truth) <=
            static_cast<int64_t>(tolerance)) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(data.size());
}

void
LatencyPredictor::save(std::ostream &out) const
{
    out.precision(17);
    out << "cottage-latency " << buckets_.minCycles() << ' '
        << buckets_.maxCycles() << ' ' << buckets_.count() << '\n';
    model_.save(out);
}

LatencyPredictor
LatencyPredictor::load(std::istream &in)
{
    std::string magic;
    double minCycles = 0.0;
    double maxCycles = 0.0;
    std::size_t count = 0;
    in >> magic >> minCycles >> maxCycles >> count;
    if (magic != "cottage-latency")
        fatal("not a cottage latency-predictor file");
    const CycleBuckets buckets(minCycles, maxCycles, count);
    LatencyPredictor predictor(buckets, {1}, 0);
    predictor.model_ = MlpClassifier::load(in);
    return predictor;
}

} // namespace cottage
