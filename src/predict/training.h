/**
 * @file
 * Offline training pipeline for the per-ISN predictors.
 *
 * Labels come from running the training queries for real: the global
 * exhaustive top-K gives each shard's true quality contribution, and
 * the evaluator's work counters give each shard's true cycle cost.
 * This mirrors the paper's setup of "training the model with a large
 * amount of observed samples from the past".
 */

#ifndef COTTAGE_PREDICT_TRAINING_H
#define COTTAGE_PREDICT_TRAINING_H

#include <memory>
#include <vector>

#include "index/evaluator.h"
#include "nn/dataset.h"
#include "predict/latency_predictor.h"
#include "predict/quality_predictor.h"
#include "shard/sharded_index.h"
#include "sim/work_model.h"
#include "text/trace.h"

namespace cottage {

/** The three labeled datasets of one shard. */
struct ShardDatasets
{
    ShardDatasets()
        : qualityK(numQualityFeatures), qualityHalf(numQualityFeatures),
          latency(numLatencyFeatures)
    {
    }

    Dataset qualityK;    ///< Table I features, labels = docs in top-K
    Dataset qualityHalf; ///< Table I features, labels = docs in top-K/2
    Dataset latency;     ///< Table II features, labels = cycle buckets
};

/** Output of the dataset builder. */
struct TrainingSets
{
    std::vector<ShardDatasets> shards;
    CycleBuckets buckets{1.0, 2.0, 2}; // replaced by build()
};

/**
 * Build labeled datasets for every shard by executing a query trace
 * (retrieval only; no simulator state involved).
 *
 * @param index The sharded collection.
 * @param evaluator Retrieval strategy whose work defines latency labels.
 * @param work Cycle cost model.
 * @param trace Training queries.
 * @param numBuckets Latency label resolution.
 */
TrainingSets buildTrainingSets(const ShardedIndex &index,
                               const Evaluator &evaluator,
                               const WorkModel &work,
                               const QueryTrace &trace,
                               std::size_t numBuckets);

/** Hyper-parameters for training the predictor bank. */
struct PredictorTrainConfig
{
    /**
     * Hidden widths of every MLP. The paper uses five layers of 128;
     * the default here is smaller so the full 16-ISN bank trains in
     * seconds on one core — benches that reproduce Fig. 7/8 use the
     * paper architecture explicitly.
     */
    std::vector<std::size_t> hiddenLayers = {64, 64};

    /** Minibatch Adam steps per model. */
    std::size_t iterations = 1500;

    /** Latency label buckets. */
    std::size_t numBuckets = 20;

    /** Seed for weight initialization (per-shard offsets applied). */
    uint64_t seed = 2024;

    /** Optimizer settings. */
    AdamConfig adam;
};

/**
 * The trained per-ISN predictors Cottage consults: one quality and one
 * latency model per shard, as in the paper's distributed design.
 */
class PredictorBank
{
  public:
    /**
     * Build datasets from @p trainTrace and train every model.
     */
    PredictorBank(const ShardedIndex &index, const Evaluator &evaluator,
                  const WorkModel &work, const QueryTrace &trainTrace,
                  const PredictorTrainConfig &config = {});

    ShardId numShards() const { return static_cast<ShardId>(quality_.size()); }
    const QualityPredictor &quality(ShardId shard) const;
    const LatencyPredictor &latency(ShardId shard) const;
    const CycleBuckets &buckets() const { return buckets_; }

    /**
     * Wall-clock decision overhead the aggregator pays per query for
     * the coordination round (prediction inference + one RTT),
     * matching the paper's ~150 us envelope. Configurable because it
     * is a property of the deployment, not of the model.
     */
    double inferenceOverheadSeconds() const { return inferenceOverhead_; }
    void setInferenceOverheadSeconds(double seconds);

    /**
     * Measured parallel-work inflation per core count: running the
     * evaluator across c slices re-scores more candidates than the
     * sequential pass (each slice's pruning threshold warms up
     * independently), so a c-core request costs
     * predictedCycles * coreCycleFactor(c). 1-indexed by core count
     * (entry 0 is one core and must be 1.0); entries are >= 1 so the
     * predictor stays conservative. Calibrated by the harness from
     * the real parallel driver; the default {1.0} models no inflation.
     */
    const std::vector<double> &coreCycleFactors() const
    {
        return coreCycleFactors_;
    }
    double coreCycleFactor(uint32_t cores) const;
    void setCoreCycleFactors(std::vector<double> factors);

    /**
     * Persist the whole bank (one quality + one latency model per ISN
     * plus a manifest) into a directory, creating it if needed.
     */
    void save(const std::string &directory) const;

    /** Restore a bank saved with save(). Fatal on malformed input. */
    static PredictorBank load(const std::string &directory);

  private:
    PredictorBank() = default;

    std::vector<std::unique_ptr<QualityPredictor>> quality_;
    std::vector<std::unique_ptr<LatencyPredictor>> latency_;
    CycleBuckets buckets_{1.0, 2.0, 2};
    double inferenceOverhead_ = 150e-6;
    std::vector<double> coreCycleFactors_{1.0};
};

} // namespace cottage

#endif // COTTAGE_PREDICT_TRAINING_H
