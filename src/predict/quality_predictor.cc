#include "predict/quality_predictor.h"

#include <istream>
#include <ostream>

#include "util/logging.h"

namespace cottage {

namespace {

MlpConfig
headConfig(std::size_t k, std::size_t numClasses,
           const std::vector<std::size_t> &hiddenLayers, uint64_t seed)
{
    COTTAGE_CHECK_MSG(k >= 2, "quality predictor needs K >= 2");
    MlpConfig config;
    config.inputDim = numQualityFeatures;
    config.numClasses = numClasses;
    config.hiddenLayers = hiddenLayers;
    config.seed = seed;
    return config;
}

} // namespace

QualityPredictor::QualityPredictor(
    std::size_t k, const std::vector<std::size_t> &hiddenLayers,
    uint64_t seed)
    : k_(k),
      headK_(headConfig(k, k + 1, hiddenLayers, seed)),
      headHalf_(headConfig(k, k / 2 + 1, hiddenLayers, seed ^ 0xabcdefull))
{
}

QualityPredictor::QualityPredictor(std::size_t k, MlpClassifier headK,
                                   MlpClassifier headHalf)
    : k_(k), headK_(std::move(headK)), headHalf_(std::move(headHalf))
{
}

double
QualityPredictor::train(const Dataset &topK, const Dataset &topHalf,
                        std::size_t iterations, const AdamConfig &adam)
{
    headK_.fitNormalization(topK);
    headHalf_.fitNormalization(topHalf);
    const double loss = headK_.train(topK, iterations, adam);
    headHalf_.train(topHalf, iterations, adam);
    return loss;
}

uint32_t
QualityPredictor::predictTopK(const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == numQualityFeatures);
    return headK_.predict(features.data());
}

uint32_t
QualityPredictor::predictTopHalf(const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == numQualityFeatures);
    return headHalf_.predict(features.data());
}

double
QualityPredictor::probNonzeroTopK(const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == numQualityFeatures);
    return 1.0 - headK_.probabilities(features.data())[0];
}

double
QualityPredictor::probNonzeroTopHalf(
    const std::vector<double> &features) const
{
    COTTAGE_CHECK(features.size() == numQualityFeatures);
    return 1.0 - headHalf_.probabilities(features.data())[0];
}

double
QualityPredictor::accuracyTopK(const Dataset &data) const
{
    return headK_.accuracy(data);
}

double
QualityPredictor::accuracyTopHalf(const Dataset &data) const
{
    return headHalf_.accuracy(data);
}

void
QualityPredictor::save(std::ostream &out) const
{
    out << "cottage-quality " << k_ << '\n';
    headK_.save(out);
    headHalf_.save(out);
}

QualityPredictor
QualityPredictor::load(std::istream &in)
{
    std::string magic;
    std::size_t k = 0;
    in >> magic >> k;
    if (magic != "cottage-quality" || k < 2)
        fatal("not a cottage quality-predictor file");
    MlpClassifier headK = MlpClassifier::load(in);
    MlpClassifier headHalf = MlpClassifier::load(in);
    return QualityPredictor(k, std::move(headK), std::move(headHalf));
}

} // namespace cottage
