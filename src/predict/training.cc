#include "predict/training.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "index/top_k.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cottage {

TrainingSets
buildTrainingSets(const ShardedIndex &index, const Evaluator &evaluator,
                  const WorkModel &work, const QueryTrace &trace,
                  std::size_t numBuckets)
{
    COTTAGE_CHECK_MSG(trace.size() >= 10, "training trace too small");
    const ShardId numShards = index.numShards();
    const std::size_t k = index.topK();

    TrainingSets sets;
    sets.shards.resize(numShards);

    // Pass 1: run every training query on every shard once, recording
    // per-shard work (cycles) and the merged global ranking. Queries
    // are independent, so the trace fans out over the pool with one
    // slot per query; the min/max cycle reduction happens sequentially
    // afterwards so the bucket edges stay bit-identical at any thread
    // count.
    std::vector<std::vector<double>> cyclesPerQuery(
        trace.size(), std::vector<double>(numShards, 0.0));
    std::vector<std::vector<uint32_t>> labelK(
        trace.size(), std::vector<uint32_t>(numShards, 0));
    std::vector<std::vector<uint32_t>> labelHalf(
        trace.size(), std::vector<uint32_t>(numShards, 0));

    ThreadPool::global().parallelFor(0, trace.size(), [&](std::size_t q) {
        const Query &query = trace.query(q);
        std::vector<WeightedTerm> weighted;
        weighted.reserve(query.terms.size());
        for (std::size_t i = 0; i < query.terms.size(); ++i)
            weighted.push_back({query.terms[i], query.weight(i)});
        TopKHeap merged(k);
        for (ShardId s = 0; s < numShards; ++s) {
            const SearchResult result =
                evaluator.search(index.shard(s), weighted, k);
            cyclesPerQuery[q][s] = work.cycles(result.work);
            for (const ScoredDoc &hit : result.topK)
                merged.push(hit);
        }
        const std::vector<ScoredDoc> ranking = merged.extractSorted();
        for (std::size_t rank = 0; rank < ranking.size(); ++rank) {
            const ShardId owner = index.shardOf(ranking[rank].doc);
            ++labelK[q][owner];
            if (rank < k / 2)
                ++labelHalf[q][owner];
        }
    });

    double minCycles = 1e300;
    double maxCycles = 0.0;
    for (std::size_t q = 0; q < trace.size(); ++q) {
        for (ShardId s = 0; s < numShards; ++s) {
            minCycles = std::min(minCycles, cyclesPerQuery[q][s]);
            maxCycles = std::max(maxCycles, cyclesPerQuery[q][s]);
        }
    }

    // Bucket the observed cycle range with some headroom so unseen
    // heavier queries still land inside the top bucket sensibly.
    sets.buckets = CycleBuckets(std::max(1.0, minCycles * 0.8),
                                maxCycles * 1.25, numBuckets);

    // Pass 2: materialize per-shard datasets (one slot per shard).
    ThreadPool::global().parallelFor(0, numShards, [&](std::size_t sIdx) {
        const ShardId s = static_cast<ShardId>(sIdx);
        const TermStatsStore &stats = index.termStats(s);
        ShardDatasets &shard = sets.shards[s];
        for (std::size_t q = 0; q < trace.size(); ++q) {
            const Query &query = trace.query(q);
            std::vector<WeightedTerm> weighted;
            weighted.reserve(query.terms.size());
            for (std::size_t i = 0; i < query.terms.size(); ++i)
                weighted.push_back({query.terms[i], query.weight(i)});
            const std::vector<double> qf =
                qualityFeatures(stats, weighted);
            const std::vector<double> lf =
                latencyFeatures(stats, weighted);
            shard.qualityK.add(qf, std::min<uint32_t>(
                                       labelK[q][s],
                                       static_cast<uint32_t>(k)));
            shard.qualityHalf.add(
                qf, std::min<uint32_t>(labelHalf[q][s],
                                       static_cast<uint32_t>(k / 2)));
            shard.latency.add(lf,
                              sets.buckets.bucketOf(cyclesPerQuery[q][s]));
        }
    });
    return sets;
}

PredictorBank::PredictorBank(const ShardedIndex &index,
                             const Evaluator &evaluator,
                             const WorkModel &work,
                             const QueryTrace &trainTrace,
                             const PredictorTrainConfig &config)
{
    const TrainingSets sets = buildTrainingSets(
        index, evaluator, work, trainTrace, config.numBuckets);
    buckets_ = sets.buckets;

    const ShardId numShards = index.numShards();
    quality_.resize(numShards);
    latency_.resize(numShards);
    // Per-ISN models with per-ISN seeds, as in the paper ("each ISN
    // has a separate neural network model trained with its own index
    // data"). Each shard's training is self-contained (own datasets,
    // own RNG seed), so the bank trains in parallel, one slot per
    // shard, with weights identical to the sequential run.
    ThreadPool::global().parallelFor(0, numShards, [&](std::size_t sIdx) {
        const ShardId s = static_cast<ShardId>(sIdx);
        auto qp = std::make_unique<QualityPredictor>(
            index.topK(), config.hiddenLayers, config.seed + 17 * s);
        qp->train(sets.shards[s].qualityK, sets.shards[s].qualityHalf,
                  config.iterations, config.adam);
        quality_[s] = std::move(qp);

        auto lp = std::make_unique<LatencyPredictor>(
            buckets_, config.hiddenLayers, config.seed + 17 * s + 7);
        lp->train(sets.shards[s].latency, config.iterations, config.adam);
        latency_[s] = std::move(lp);
    });
}

const QualityPredictor &
PredictorBank::quality(ShardId shard) const
{
    COTTAGE_CHECK(shard < quality_.size());
    return *quality_[shard];
}

const LatencyPredictor &
PredictorBank::latency(ShardId shard) const
{
    COTTAGE_CHECK(shard < latency_.size());
    return *latency_[shard];
}

void
PredictorBank::setInferenceOverheadSeconds(double seconds)
{
    COTTAGE_CHECK_MSG(seconds >= 0.0, "overhead cannot be negative");
    inferenceOverhead_ = seconds;
}

double
PredictorBank::coreCycleFactor(uint32_t cores) const
{
    COTTAGE_CHECK_MSG(cores >= 1, "core count must be positive");
    const std::size_t index =
        std::min<std::size_t>(cores - 1, coreCycleFactors_.size() - 1);
    return coreCycleFactors_[index];
}

void
PredictorBank::setCoreCycleFactors(std::vector<double> factors)
{
    COTTAGE_CHECK_MSG(!factors.empty(), "need at least the 1-core factor");
    COTTAGE_CHECK_MSG(factors.front() == 1.0,
                      "the 1-core factor must be exactly 1");
    for (double factor : factors)
        COTTAGE_CHECK_MSG(factor >= 1.0,
                          "core cycle factors must be >= 1 to stay "
                          "conservative");
    coreCycleFactors_ = std::move(factors);
}

void
PredictorBank::save(const std::string &directory) const
{
    std::filesystem::create_directories(directory);
    {
        std::ofstream meta(directory + "/bank.meta");
        if (!meta)
            fatal("cannot write " + directory + "/bank.meta");
        meta.precision(17);
        meta << "cottage-bank 1\n"
             << numShards() << ' ' << inferenceOverhead_ << '\n';
    }
    for (ShardId s = 0; s < numShards(); ++s) {
        std::ofstream qout(
            strformat("%s/quality-%02u.model", directory.c_str(), s));
        if (!qout)
            fatal("cannot write quality model for ISN " +
                  std::to_string(s));
        quality_[s]->save(qout);
        std::ofstream lout(
            strformat("%s/latency-%02u.model", directory.c_str(), s));
        if (!lout)
            fatal("cannot write latency model for ISN " +
                  std::to_string(s));
        latency_[s]->save(lout);
    }
}

PredictorBank
PredictorBank::load(const std::string &directory)
{
    std::ifstream meta(directory + "/bank.meta");
    if (!meta)
        fatal("cannot read " + directory + "/bank.meta");
    std::string magic;
    int version = 0;
    std::size_t shards = 0;
    PredictorBank bank;
    meta >> magic >> version >> shards >> bank.inferenceOverhead_;
    if (magic != "cottage-bank" || version != 1 || shards == 0)
        fatal("not a cottage predictor-bank directory");

    for (ShardId s = 0; s < shards; ++s) {
        std::ifstream qin(
            strformat("%s/quality-%02u.model", directory.c_str(), s));
        if (!qin)
            fatal("missing quality model for ISN " + std::to_string(s));
        bank.quality_.push_back(std::make_unique<QualityPredictor>(
            QualityPredictor::load(qin)));
        std::ifstream lin(
            strformat("%s/latency-%02u.model", directory.c_str(), s));
        if (!lin)
            fatal("missing latency model for ISN " + std::to_string(s));
        bank.latency_.push_back(std::make_unique<LatencyPredictor>(
            LatencyPredictor::load(lin)));
    }
    bank.buckets_ = bank.latency_.front()->buckets();
    return bank;
}

} // namespace cottage
