/**
 * @file
 * Per-ISN quality predictor (paper §III-B).
 *
 * Predicts how many of an ISN's documents will appear in the final
 * client-side top-K results, as a (K+1)-way classification over Table I
 * features. Cottage's optimizer additionally needs the contribution to
 * the more important top-K/2 prefix (Fig. 9), so the predictor carries
 * a second head trained on top-K/2 labels.
 */

#ifndef COTTAGE_PREDICT_QUALITY_PREDICTOR_H
#define COTTAGE_PREDICT_QUALITY_PREDICTOR_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/mlp.h"
#include "predict/features.h"

namespace cottage {

/** Two-headed MLP quality model for one ISN. */
class QualityPredictor
{
  public:
    /**
     * @param k Result depth K; labels are counts in [0, K].
     * @param hiddenLayers MLP hidden widths (paper: five x 128).
     * @param seed Weight-initialization seed.
     */
    QualityPredictor(std::size_t k,
                     const std::vector<std::size_t> &hiddenLayers,
                     uint64_t seed);

    std::size_t k() const { return k_; }

    /**
     * Train both heads. Labels in @p topK must be contributions to the
     * global top-K; labels in @p topHalf to the global top-K/2.
     * Returns the final training loss of the top-K head.
     */
    double train(const Dataset &topK, const Dataset &topHalf,
                 std::size_t iterations, const AdamConfig &adam = {});

    /** Predicted number of documents in the final top-K (Q^K). */
    uint32_t predictTopK(const std::vector<double> &features) const;

    /** Predicted number of documents in the final top-K/2 (Q^{K/2}). */
    uint32_t predictTopHalf(const std::vector<double> &features) const;

    /**
     * Probability that the ISN contributes at least one document to
     * the top-K (1 - P[class 0]). Selection rules that must not
     * silently drop borderline contributors threshold on this instead
     * of taking the argmax.
     */
    double probNonzeroTopK(const std::vector<double> &features) const;

    /** Probability of a non-zero top-K/2 contribution. */
    double probNonzeroTopHalf(const std::vector<double> &features) const;

    /** Exact-label accuracy of the top-K head on a dataset. */
    double accuracyTopK(const Dataset &data) const;

    /** Exact-label accuracy of the top-K/2 head on a dataset. */
    double accuracyTopHalf(const Dataset &data) const;

    /** Serialize both heads. */
    void save(std::ostream &out) const;

    /** Restore a predictor saved with save(). */
    static QualityPredictor load(std::istream &in);

  private:
    QualityPredictor(std::size_t k, MlpClassifier headK,
                     MlpClassifier headHalf);

    std::size_t k_;
    MlpClassifier headK_;
    MlpClassifier headHalf_;
};

} // namespace cottage

#endif // COTTAGE_PREDICT_QUALITY_PREDICTOR_H
