/**
 * @file
 * Per-ISN service-time predictor (paper §III-C).
 *
 * Predicts the *cycles* a query will cost the ISN, as classification
 * over log-spaced cycle buckets (the paper's latency predictor has
 * "more neurons on the output layer due to the higher variability").
 * Predicting cycles instead of seconds makes the model frequency-
 * independent: service time at frequency f is cycles / f (Eq. 1), and
 * equivalent latency adds the queue backlog (Eq. 2) — both are
 * computed by the caller from the cycle prediction.
 */

#ifndef COTTAGE_PREDICT_LATENCY_PREDICTOR_H
#define COTTAGE_PREDICT_LATENCY_PREDICTOR_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/mlp.h"
#include "predict/features.h"

namespace cottage {

/** Log-spaced cycle buckets shared by training labels and outputs. */
class CycleBuckets
{
  public:
    /**
     * @param minCycles Lower edge of the first bucket (> 0).
     * @param maxCycles Upper edge of the last bucket.
     * @param count Number of buckets.
     */
    CycleBuckets(double minCycles, double maxCycles, std::size_t count);

    std::size_t count() const { return count_; }
    double minCycles() const { return minCycles_; }
    double maxCycles() const { return maxCycles_; }

    /** Bucket a cycle count falls into (saturating at both ends). */
    uint32_t bucketOf(double cycles) const;

    /** Geometric center of a bucket: the cycle value it stands for. */
    double representativeCycles(uint32_t bucket) const;

    /**
     * Upper edge of a bucket. Budget decisions use this conservative
     * value: under-estimating a service time turns into a missed
     * deadline and a dropped response, which costs quality directly.
     */
    double upperCycles(uint32_t bucket) const;

  private:
    double minCycles_;
    double maxCycles_;
    std::size_t count_;
    double logMin_;
    double logMax_;
};

/** MLP cycle-bucket classifier for one ISN. */
class LatencyPredictor
{
  public:
    LatencyPredictor(const CycleBuckets &buckets,
                     const std::vector<std::size_t> &hiddenLayers,
                     uint64_t seed);

    const CycleBuckets &buckets() const { return buckets_; }

    /** Train on Table II features with bucket labels. */
    double train(const Dataset &data, std::size_t iterations,
                 const AdamConfig &adam = {});

    /** Most probable bucket. */
    uint32_t predictBucket(const std::vector<double> &features) const;

    /** Representative cycles of the most probable bucket. */
    double predictCycles(const std::vector<double> &features) const;

    /**
     * Conservative prediction: the upper edge of the most probable
     * bucket — exactly one log-bucket width above its lower edge.
     * Additional safety margin against under-prediction is the
     * caller's job (CottageConfig::budgetSlack); stacking it here
     * would double-count the slack and inflate every budget.
     */
    double predictCyclesConservative(
        const std::vector<double> &features) const;

    /** Probability-weighted expected cycles (smoother estimate). */
    double expectedCycles(const std::vector<double> &features) const;

    /**
     * Fraction of samples predicted within +/- @p tolerance buckets
     * of the truth. tolerance 0 is exact-label accuracy; the paper's
     * "87% accurate latency prediction" corresponds to tolerance 1 on
     * our bucketing.
     */
    double accuracyWithin(const Dataset &data, uint32_t tolerance) const;

    /** Serialize buckets + model. */
    void save(std::ostream &out) const;

    /** Restore a predictor saved with save(). */
    static LatencyPredictor load(std::istream &in);

  private:
    CycleBuckets buckets_;
    MlpClassifier model_;
};

} // namespace cottage

#endif // COTTAGE_PREDICT_LATENCY_PREDICTOR_H
