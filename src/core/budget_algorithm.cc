#include "core/budget_algorithm.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace cottage {

BudgetDecision
determineTimeBudget(std::vector<IsnPrediction> predictions)
{
    BudgetDecision decision;

    // Stage 1 (lines 3-11): rank by Q^K and cut zero-contribution ISNs.
    std::sort(predictions.begin(), predictions.end(),
              [](const IsnPrediction &a, const IsnPrediction &b) {
                  if (a.qualityK != b.qualityK)
                      return a.qualityK > b.qualityK;
                  return a.isn < b.isn;
              });
    std::vector<IsnPrediction> survivors;
    survivors.reserve(predictions.size());
    for (const IsnPrediction &prediction : predictions) {
        if (prediction.qualityK == 0)
            decision.droppedZeroQuality.push_back(prediction.isn);
        else
            survivors.push_back(prediction);
    }
    if (survivors.empty())
        return decision;

    // Stage 2 (line 12): descending boosted latency.
    std::sort(survivors.begin(), survivors.end(),
              [](const IsnPrediction &a, const IsnPrediction &b) {
                  if (a.latencyBoosted != b.latencyBoosted)
                      return a.latencyBoosted > b.latencyBoosted;
                  return a.isn < b.isn;
              });

    // Stage 3 (lines 13-21): shrink T down the list until the first
    // ISN with a top-K/2 contribution pins it.
    double budget = survivors.front().latencyBoosted;
    for (const IsnPrediction &prediction : survivors) {
        budget = prediction.latencyBoosted;
        if (prediction.qualityHalf != 0)
            break;
    }
    decision.budgetSeconds = budget;

    for (const IsnPrediction &prediction : survivors) {
        // Strictly slower-than-budget ISNs cannot respond in time even
        // when boosted; dispatching them would waste work.
        if (prediction.latencyBoosted > budget)
            decision.droppedOverBudget.push_back(prediction.isn);
        else
            decision.selected.push_back(prediction.isn);
    }
    return decision;
}

CoreFreqChoice
chooseCoresAndFrequency(const std::vector<double> &backlogByCores,
                        double serviceCycles, double budgetSeconds,
                        const FrequencyLadder &ladder,
                        const SpeedupCurve &speedup,
                        const PowerModel &power, uint32_t maxCores,
                        double powerCapWatts,
                        const std::vector<double> &coreCycleFactors,
                        bool dvfsPowerSaving)
{
    COTTAGE_CHECK_MSG(maxCores >= 1, "need at least one core");
    COTTAGE_CHECK_MSG(serviceCycles >= 0.0, "negative predicted work");
    COTTAGE_CHECK_MSG(!backlogByCores.empty(),
                      "need a backlog for at least one core count");

    const auto factorOf = [&](uint32_t cores) {
        if (coreCycleFactors.empty())
            return 1.0;
        const std::size_t index =
            std::min<std::size_t>(cores - 1, coreCycleFactors.size() - 1);
        return coreCycleFactors[index];
    };
    const auto backlogOf = [&](uint32_t cores) {
        const std::size_t index =
            std::min<std::size_t>(cores - 1, backlogByCores.size() - 1);
        return backlogByCores[index];
    };

    // Grid walk, cores then frequency, both ascending. Strict < on
    // both objectives makes the earliest minimum win, so ties resolve
    // to fewer cores, then lower frequency — the cheaper hardware
    // commitment.
    CoreFreqChoice best;        // min energy among feasible
    CoreFreqChoice fastest;     // min latency under the cap (fallback)
    bool anyFeasible = false;
    bool anyUnderCap = false;
    double bestEnergy = std::numeric_limits<double>::infinity();
    double fastestLatency = std::numeric_limits<double>::infinity();

    for (uint32_t cores = 1; cores <= maxCores; ++cores) {
        const double cycles = serviceCycles * factorOf(cores);
        const double perHz = cycles / speedup.speedup(cores);
        const double backlog = backlogOf(cores);
        // Work-conserving gang rule: a gang may only take workers that
        // would otherwise idle — a candidate that has to *wait* for its
        // width is out. Ganging burns c/S(c) times the core-seconds of
        // a single-core dispatch, so under congestion the min-energy
        // objective would otherwise keep shrinking the node's
        // throughput exactly when throughput is scarcest (the
        // flash-crowd death spiral: gangs -> less capacity -> more
        // backlog -> bigger budgets -> more gangs).
        if (cores > 1 && backlog > backlogOf(1))
            continue;
        for (double step : ladder.steps()) {
            if (!dvfsPowerSaving && step < ladder.defaultGhz())
                continue;
            const double watts = power.activePowerWatts(step, cores);
            if (watts > powerCapWatts)
                continue;
            anyUnderCap = true;
            const double service = perHz / (step * 1e9);
            const double latency = backlog + service;
            const double energy = service * watts;
            if (latency <= budgetSeconds && energy < bestEnergy) {
                anyFeasible = true;
                bestEnergy = energy;
                best = {cores, step, true, latency, energy};
            }
            if (latency < fastestLatency) {
                fastestLatency = latency;
                fastest = {cores, step, false, latency, energy};
            }
        }
    }

    if (anyFeasible)
        return best;
    if (anyUnderCap)
        return fastest;

    // The cap excluded the whole grid: degenerate to the pre-parallel
    // fallback (one core, boosted) rather than refusing to plan.
    CoreFreqChoice fallback;
    fallback.cores = 1;
    fallback.freqGhz = ladder.maxGhz();
    fallback.meetsBudget = false;
    const double service = serviceCycles / (ladder.maxGhz() * 1e9);
    fallback.latencySeconds = backlogOf(1) + service;
    fallback.energyJoules =
        service * power.activePowerWatts(ladder.maxGhz(), 1);
    return fallback;
}

} // namespace cottage
