#include "core/budget_algorithm.h"

#include <algorithm>

namespace cottage {

BudgetDecision
determineTimeBudget(std::vector<IsnPrediction> predictions)
{
    BudgetDecision decision;

    // Stage 1 (lines 3-11): rank by Q^K and cut zero-contribution ISNs.
    std::sort(predictions.begin(), predictions.end(),
              [](const IsnPrediction &a, const IsnPrediction &b) {
                  if (a.qualityK != b.qualityK)
                      return a.qualityK > b.qualityK;
                  return a.isn < b.isn;
              });
    std::vector<IsnPrediction> survivors;
    survivors.reserve(predictions.size());
    for (const IsnPrediction &prediction : predictions) {
        if (prediction.qualityK == 0)
            decision.droppedZeroQuality.push_back(prediction.isn);
        else
            survivors.push_back(prediction);
    }
    if (survivors.empty())
        return decision;

    // Stage 2 (line 12): descending boosted latency.
    std::sort(survivors.begin(), survivors.end(),
              [](const IsnPrediction &a, const IsnPrediction &b) {
                  if (a.latencyBoosted != b.latencyBoosted)
                      return a.latencyBoosted > b.latencyBoosted;
                  return a.isn < b.isn;
              });

    // Stage 3 (lines 13-21): shrink T down the list until the first
    // ISN with a top-K/2 contribution pins it.
    double budget = survivors.front().latencyBoosted;
    for (const IsnPrediction &prediction : survivors) {
        budget = prediction.latencyBoosted;
        if (prediction.qualityHalf != 0)
            break;
    }
    decision.budgetSeconds = budget;

    for (const IsnPrediction &prediction : survivors) {
        // Strictly slower-than-budget ISNs cannot respond in time even
        // when boosted; dispatching them would waste work.
        if (prediction.latencyBoosted > budget)
            decision.droppedOverBudget.push_back(prediction.isn);
        else
            decision.selected.push_back(prediction.isn);
    }
    return decision;
}

} // namespace cottage
