/**
 * @file
 * Cottage-withoutML ablation (paper §V-D): the coordinated budget
 * machinery of Cottage is kept intact, but the learned quality
 * predictor is replaced by Taily's Gamma-distribution estimate.
 * Isolates the value of the ML quality model: with the distribution
 * fit, shard cutoffs become imprecise and both quality and resource
 * usage degrade (Fig. 15).
 */

#ifndef COTTAGE_CORE_COTTAGE_WITHOUT_ML_POLICY_H
#define COTTAGE_CORE_COTTAGE_WITHOUT_ML_POLICY_H

#include <cmath>

#include "core/cottage_policy.h"
#include "policy/taily_estimator.h"
#include "policy/taily_policy.h"

namespace cottage {

/** Cottage with Gamma-estimated (non-ML) quality predictions. */
class CottageWithoutMlPolicy : public CottagePolicy
{
  public:
    /**
     * @param taily The same estimation parameters the Taily baseline
     *        runs with (the ablation swaps the predictor, not its
     *        tuning).
     */
    CottageWithoutMlPolicy(const PredictorBank &bank,
                           const ShardedIndex &index,
                           CottageConfig config = {},
                           TailyConfig taily = {})
        : CottagePolicy(bank, config), taily_(taily),
          estimator_(index, taily.unionSemantics)
    {
    }

    const char *name() const override { return "cottage-without-ml"; }

  protected:
    void
    qualityEstimates(const Query &query, const DistributedEngine &engine,
                     std::vector<uint32_t> &qualityK,
                     std::vector<uint32_t> &qualityHalf) const override
    {
        // Same Gamma machinery and cutoff tuning as the Taily
        // baseline; the halved ranking depth supplies the top-K/2
        // signal Algorithm 1 needs.
        const std::vector<WeightedTerm> terms =
            DistributedEngine::weightedTerms(query);
        const std::vector<double> expectedK =
            estimator_.expectedTopContributions(terms,
                                                taily_.rankingDepth);
        const std::vector<double> expectedHalf =
            estimator_.expectedTopContributions(terms,
                                                taily_.rankingDepth / 2.0);

        const ShardId numShards = engine.index().numShards();
        qualityK.resize(numShards);
        qualityHalf.resize(numShards);
        for (ShardId s = 0; s < numShards; ++s) {
            qualityK[s] = expectedK[s] >= taily_.docCutoff
                              ? static_cast<uint32_t>(
                                    std::ceil(expectedK[s]))
                              : 0;
            qualityHalf[s] = expectedHalf[s] >= taily_.docCutoff
                                 ? static_cast<uint32_t>(
                                       std::ceil(expectedHalf[s]))
                                 : 0;
        }
    }

  private:
    TailyConfig taily_;
    TailyEstimator estimator_;
};

} // namespace cottage

#endif // COTTAGE_CORE_COTTAGE_WITHOUT_ML_POLICY_H
