/**
 * @file
 * Oracle selection: Algorithm 1 with perfect knowledge — the true
 * per-shard contributions (from the exhaustive merge) and the true
 * service cycles. Not in the paper; it upper-bounds what Cottage could
 * achieve with perfect predictors, isolating the headroom left to
 * prediction accuracy (the ablation bench_ablation_oracle runs).
 */

#ifndef COTTAGE_CORE_ORACLE_POLICY_H
#define COTTAGE_CORE_ORACLE_POLICY_H

#include "policy/policy.h"

namespace cottage {

/** Algorithm 1 over ground-truth quality and work. */
class OraclePolicy : public Policy
{
  public:
    /**
     * @param budgetSlack Deadline multiplier, as in CottageConfig.
     *        With exact cycles even 1.0 is safe; the small default
     *        absorbs floating-point slack only.
     */
    explicit OraclePolicy(double budgetSlack = 1.01)
        : budgetSlack_(budgetSlack)
    {
    }

    const char *name() const override { return "oracle"; }

    QueryPlan plan(const Query &query,
                   const DistributedEngine &engine) override;

  private:
    double budgetSlack_;
};

} // namespace cottage

#endif // COTTAGE_CORE_ORACLE_POLICY_H
