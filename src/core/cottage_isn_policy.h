/**
 * @file
 * Cottage-ISN ablation (paper §V-D): the learned quality predictor
 * stays, but the aggregator-side coordination is removed. Each ISN
 * decides *independently* whether to serve the query (participate iff
 * its own predicted Q^K > 0); there is no global budget, no straggler
 * cut and no frequency boosting, because no component has the global
 * view needed to pick them. Isolates the value of coordination.
 */

#ifndef COTTAGE_CORE_COTTAGE_ISN_POLICY_H
#define COTTAGE_CORE_COTTAGE_ISN_POLICY_H

#include "policy/policy.h"
#include "predict/training.h"

namespace cottage {

/** Per-ISN local decisions; no aggregator optimization. */
class CottageIsnPolicy : public Policy
{
  public:
    /**
     * @param participationThreshold Same recall-biased non-zero
     *        probability rule the full Cottage uses (CottageConfig).
     */
    explicit CottageIsnPolicy(const PredictorBank &bank,
                              double participationThreshold = 0.15)
        : bank_(&bank), threshold_(participationThreshold)
    {
    }

    const char *name() const override { return "cottage-isn"; }

    QueryPlan
    plan(const Query &query, const DistributedEngine &engine) override
    {
        const ShardId numShards = engine.index().numShards();
        QueryPlan plan = QueryPlan::allIsns(numShards);
        // Local inference only: no extra coordination round trip.
        plan.decisionOverheadSeconds = bank_->inferenceOverheadSeconds();

        bool anySelected = false;
        const std::vector<WeightedTerm> terms =
            DistributedEngine::weightedTerms(query);
        for (ShardId s = 0; s < numShards; ++s) {
            const std::vector<double> features =
                qualityFeatures(engine.index().termStats(s), terms);
            const QualityPredictor &predictor = bank_->quality(s);
            plan.isns[s].participate =
                predictor.predictTopK(features) > 0 ||
                predictor.probNonzeroTopK(features) >= threshold_;
            anySelected |= plan.isns[s].participate;
        }
        if (!anySelected) {
            for (IsnDirective &directive : plan.isns)
                directive.participate = true;
        }
        return plan;
    }

  private:
    const PredictorBank *bank_;
    double threshold_;
};

} // namespace cottage

#endif // COTTAGE_CORE_COTTAGE_ISN_POLICY_H
