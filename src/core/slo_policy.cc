#include "core/slo_policy.h"

#include "util/logging.h"

namespace cottage {

QueryPlan
SloDvfsPolicy::plan(const Query &query, const DistributedEngine &engine)
{
    COTTAGE_CHECK_MSG(slo_ > 0.0, "SLO must be positive");
    const ShardId numShards = engine.index().numShards();
    const FrequencyLadder &ladder = engine.cluster().ladder();

    QueryPlan plan = QueryPlan::allIsns(numShards);
    plan.budgetSeconds = slo_;
    // Local inference only; no coordination round.
    plan.decisionOverheadSeconds = bank_->inferenceOverheadSeconds();

    const std::vector<WeightedTerm> terms =
        DistributedEngine::weightedTerms(query);
    for (ShardId s = 0; s < numShards; ++s) {
        const std::vector<double> features =
            latencyFeatures(engine.index().termStats(s), terms);
        const double cycles =
            bank_->latency(s).predictCyclesConservative(features);
        const IsnServerSim &server = engine.cluster().isn(s);
        const double backlog =
            server.backlogSeconds(query.arrivalSeconds);

        double chosen = ladder.maxGhz();
        for (double step : ladder.steps()) {
            if (backlog + cycles / (step * 1e9) <= slo_) {
                chosen = step;
                break;
            }
        }
        plan.isns[s].freqGhz = chosen;
    }
    return plan;
}

} // namespace cottage
