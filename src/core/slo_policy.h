/**
 * @file
 * SLO-DVFS baseline: the prior power-management regime Cottage argues
 * against (Pegasus [11] / TimeTrader [12] / Rubik [13]), where the
 * time budget is *given a priori* as a fixed latency SLO. Every ISN
 * serves every query and independently picks the lowest frequency
 * whose predicted equivalent latency still meets the SLO — saving
 * power but never cutting ISNs or shaping the budget per query.
 */

#ifndef COTTAGE_CORE_SLO_POLICY_H
#define COTTAGE_CORE_SLO_POLICY_H

#include "policy/policy.h"
#include "predict/training.h"

namespace cottage {

/** Fixed-deadline per-ISN DVFS (no selection, no per-query budget). */
class SloDvfsPolicy : public Policy
{
  public:
    /**
     * @param bank Latency predictors the DVFS governor consults.
     * @param sloSeconds The fixed deadline every query gets.
     */
    SloDvfsPolicy(const PredictorBank &bank, double sloSeconds)
        : bank_(&bank), slo_(sloSeconds)
    {
    }

    const char *name() const override { return "slo-dvfs"; }

    double sloSeconds() const { return slo_; }

    QueryPlan plan(const Query &query,
                   const DistributedEngine &engine) override;

  private:
    const PredictorBank *bank_;
    double slo_;
};

} // namespace cottage

#endif // COTTAGE_CORE_SLO_POLICY_H
