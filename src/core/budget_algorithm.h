/**
 * @file
 * Cottage's time-budget determination — Algorithm 1 of the paper,
 * verbatim, as a pure function so it can be tested and benchmarked in
 * isolation.
 *
 * Inputs are the four per-ISN predictions <Q^K, Q^{K/2}, L^current,
 * L^boosted>; the output is the query's time budget T plus the
 * partition of ISNs into selected / dropped sets:
 *
 *   1. Rank ISNs by Q^K; drop those contributing nothing to the top-K.
 *   2. Re-rank survivors by descending boosted latency.
 *   3. Walk from the slowest down; the first ISN that contributes to
 *      the top-K/2 fixes T at its boosted latency. Slower ISNs (which
 *      only contribute to the bottom half of the ranking) are
 *      sacrificed for responsiveness.
 */

#ifndef COTTAGE_CORE_BUDGET_ALGORITHM_H
#define COTTAGE_CORE_BUDGET_ALGORITHM_H

#include <cstdint>
#include <vector>

#include "sim/frequency.h"
#include "sim/power_model.h"
#include "sim/speedup.h"
#include "text/types.h"

namespace cottage {

/** The four predictions one ISN reports to the aggregator (step 3). */
struct IsnPrediction
{
    ShardId isn = 0;

    /** Predicted documents in the final top-K (Q^K). */
    uint32_t qualityK = 0;

    /** Predicted documents in the final top-K/2 (Q^{K/2}). */
    uint32_t qualityHalf = 0;

    /** Equivalent latency at the current frequency, seconds. */
    double latencyCurrent = 0.0;

    /** Equivalent latency at the highest frequency, seconds. */
    double latencyBoosted = 0.0;

    /**
     * Queue backlog ahead of this request, seconds. Not part of the
     * paper's 4-tuple, but needed for per-request frequency
     * assignment: queued work runs at its already-assigned
     * frequencies, so only the service portion of the equivalent
     * latency rescales with f.
     */
    double backlogSeconds = 0.0;

    /** Predicted service cycles (the rescalable portion). */
    double serviceCycles = 0.0;
};

/** Output of Algorithm 1. */
struct BudgetDecision
{
    /** The chosen time budget T (seconds). Zero when nothing survives. */
    double budgetSeconds = 0.0;

    /** ISNs to dispatch: Q^K > 0 and boosted latency within T. */
    std::vector<ShardId> selected;

    /** ISNs cut in stage 1 (zero predicted top-K contribution). */
    std::vector<ShardId> droppedZeroQuality;

    /**
     * ISNs cut in stage 2: they contribute to the top-K but only to
     * its bottom half, and even boosted they would stretch the budget
     * (the ISN-7 case of Fig. 9).
     */
    std::vector<ShardId> droppedOverBudget;
};

/**
 * Run Algorithm 1 on a set of ISN predictions. O(n log n) in the
 * number of ISNs. An empty prediction set (or all-zero qualities)
 * yields an empty selection with budget 0 — callers decide the
 * fallback.
 */
BudgetDecision determineTimeBudget(std::vector<IsnPrediction> predictions);

/** One ISN's joint operating point for a request (step 6, extended). */
struct CoreFreqChoice
{
    /** Worker cores the request should span. */
    uint32_t cores = 1;

    /** Ladder frequency the request should run at, GHz. */
    double freqGhz = 0.0;

    /** True if the predicted equivalent latency meets the budget. */
    bool meetsBudget = false;

    /** Predicted equivalent latency at the chosen point, seconds. */
    double latencySeconds = 0.0;

    /** Predicted busy energy of the service at the chosen point, J. */
    double energyJoules = 0.0;
};

/**
 * Step 6 of the Cottage protocol, extended to intra-query parallelism:
 * search the (cores, frequency) grid for the minimum-energy operating
 * point whose predicted equivalent latency meets the budget under an
 * active-power cap.
 *
 * The candidate service time at (c, f) is
 *
 *   serviceCycles * coreCycleFactor(c) / (f * 1e9) / S(c)
 *
 * — the predicted single-core cycles inflated by the measured parallel
 * work overhead (per-slice pruning thresholds warm up independently),
 * sped up by the calibrated sublinear curve S. Its busy energy is that
 * service time at the McPAT-style active power P_uncore + c * P_dyn(f),
 * which is also the quantity capped by @p powerCapWatts.
 *
 * Selection: among feasible points (latency <= budget, power <= cap)
 * the strictly minimum-energy one wins; ties resolve to fewer cores,
 * then lower frequency (the grid iterates cores then frequency,
 * ascending). When nothing is feasible the fallback is the
 * minimum-latency point under the power cap (meetsBudget = false) —
 * the multi-core generalization of "boost to the ladder top". A cap so
 * low it excludes every candidate degenerates to 1 core at the ladder
 * top, the pre-parallel fallback.
 *
 * At maxCores = 1 with default factors and no uncore power this is
 * provably the pre-parallel step-6 loop (energy at one core is
 * strictly increasing in f, so min-energy = slowest feasible step):
 * byte-identical plans, by construction.
 *
 * @param backlogByCores Queue backlog ahead of the request, seconds,
 *        indexed by core count minus one: a c-core gang starts when
 *        the c-th earliest worker frees (IsnServerSim::backlogSeconds
 *        with cores), so wider gangs generally wait longer. Requests
 *        wider than the vector use its last entry; must be non-empty.
 *        Feeding every entry the single-core backlog reproduces the
 *        (wrong) flat model — and the flash-crowd p99 blowup it causes.
 * @param serviceCycles Predicted single-core service cycles.
 * @param budgetSeconds Algorithm 1's time budget T.
 * @param ladder The cluster P-state ladder (steps ascend).
 * @param speedup The ISN's calibrated intra-query speedup curve.
 * @param power The package power model.
 * @param maxCores Widest gang the policy may request (>= 1; callers
 *        clamp to the ISN's worker complement).
 * @param powerCapWatts Per-ISN active-power ceiling (infinity = none).
 * @param coreCycleFactors Work inflation per core count, 1-indexed by
 *        cores (entry 0 is 1 core); values >= 1. Requests wider than
 *        the vector use its last entry; empty means no inflation.
 * @param dvfsPowerSaving When false, frequencies below the ladder
 *        default are excluded (mirrors CottageConfig::dvfsPowerSaving).
 */
CoreFreqChoice chooseCoresAndFrequency(
    const std::vector<double> &backlogByCores, double serviceCycles,
    double budgetSeconds, const FrequencyLadder &ladder,
    const SpeedupCurve &speedup, const PowerModel &power,
    uint32_t maxCores, double powerCapWatts,
    const std::vector<double> &coreCycleFactors, bool dvfsPowerSaving);

} // namespace cottage

#endif // COTTAGE_CORE_BUDGET_ALGORITHM_H
