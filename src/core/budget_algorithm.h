/**
 * @file
 * Cottage's time-budget determination — Algorithm 1 of the paper,
 * verbatim, as a pure function so it can be tested and benchmarked in
 * isolation.
 *
 * Inputs are the four per-ISN predictions <Q^K, Q^{K/2}, L^current,
 * L^boosted>; the output is the query's time budget T plus the
 * partition of ISNs into selected / dropped sets:
 *
 *   1. Rank ISNs by Q^K; drop those contributing nothing to the top-K.
 *   2. Re-rank survivors by descending boosted latency.
 *   3. Walk from the slowest down; the first ISN that contributes to
 *      the top-K/2 fixes T at its boosted latency. Slower ISNs (which
 *      only contribute to the bottom half of the ranking) are
 *      sacrificed for responsiveness.
 */

#ifndef COTTAGE_CORE_BUDGET_ALGORITHM_H
#define COTTAGE_CORE_BUDGET_ALGORITHM_H

#include <cstdint>
#include <vector>

#include "text/types.h"

namespace cottage {

/** The four predictions one ISN reports to the aggregator (step 3). */
struct IsnPrediction
{
    ShardId isn = 0;

    /** Predicted documents in the final top-K (Q^K). */
    uint32_t qualityK = 0;

    /** Predicted documents in the final top-K/2 (Q^{K/2}). */
    uint32_t qualityHalf = 0;

    /** Equivalent latency at the current frequency, seconds. */
    double latencyCurrent = 0.0;

    /** Equivalent latency at the highest frequency, seconds. */
    double latencyBoosted = 0.0;

    /**
     * Queue backlog ahead of this request, seconds. Not part of the
     * paper's 4-tuple, but needed for per-request frequency
     * assignment: queued work runs at its already-assigned
     * frequencies, so only the service portion of the equivalent
     * latency rescales with f.
     */
    double backlogSeconds = 0.0;

    /** Predicted service cycles (the rescalable portion). */
    double serviceCycles = 0.0;
};

/** Output of Algorithm 1. */
struct BudgetDecision
{
    /** The chosen time budget T (seconds). Zero when nothing survives. */
    double budgetSeconds = 0.0;

    /** ISNs to dispatch: Q^K > 0 and boosted latency within T. */
    std::vector<ShardId> selected;

    /** ISNs cut in stage 1 (zero predicted top-K contribution). */
    std::vector<ShardId> droppedZeroQuality;

    /**
     * ISNs cut in stage 2: they contribute to the top-K but only to
     * its bottom half, and even boosted they would stretch the budget
     * (the ISN-7 case of Fig. 9).
     */
    std::vector<ShardId> droppedOverBudget;
};

/**
 * Run Algorithm 1 on a set of ISN predictions. O(n log n) in the
 * number of ISNs. An empty prediction set (or all-zero qualities)
 * yields an empty selection with budget 0 — callers decide the
 * fallback.
 */
BudgetDecision determineTimeBudget(std::vector<IsnPrediction> predictions);

} // namespace cottage

#endif // COTTAGE_CORE_BUDGET_ALGORITHM_H
