#include "core/oracle_policy.h"

#include "core/budget_algorithm.h"

namespace cottage {

QueryPlan
OraclePolicy::plan(const Query &query, const DistributedEngine &engine)
{
    const ShardId numShards = engine.index().numShards();
    const FrequencyLadder &ladder = engine.cluster().ladder();
    const std::size_t k = engine.topK();

    // Ground truth: exact contributions and exact work.
    const std::vector<ScoredDoc> truth = engine.globalTopK(query);
    std::vector<uint32_t> contributionsK(numShards, 0);
    std::vector<uint32_t> contributionsHalf(numShards, 0);
    for (std::size_t rank = 0; rank < truth.size(); ++rank) {
        const ShardId owner = engine.index().shardOf(truth[rank].doc);
        ++contributionsK[owner];
        if (rank < k / 2)
            ++contributionsHalf[owner];
    }

    // Batch path: one parallel fan-out instead of a sequential
    // per-shard evaluation loop.
    const std::vector<SearchWork> shardWork = engine.shardWorkAll(query);
    std::vector<IsnPrediction> predictions(numShards);
    for (ShardId s = 0; s < numShards; ++s) {
        IsnPrediction &p = predictions[s];
        p.isn = s;
        p.qualityK = contributionsK[s];
        p.qualityHalf = contributionsHalf[s];
        p.serviceCycles = engine.workModel().cycles(shardWork[s]);
        const IsnServerSim &server = engine.cluster().isn(s);
        p.backlogSeconds = server.backlogSeconds(query.arrivalSeconds);
        p.latencyCurrent = p.backlogSeconds +
                           p.serviceCycles /
                               (server.currentFreqGhz() * 1e9);
        p.latencyBoosted =
            p.backlogSeconds + p.serviceCycles / (ladder.maxGhz() * 1e9);
    }

    const BudgetDecision decision = determineTimeBudget(predictions);
    if (decision.selected.empty())
        return QueryPlan::allIsns(numShards);

    QueryPlan plan;
    plan.isns.assign(numShards, IsnDirective{});
    for (IsnDirective &directive : plan.isns)
        directive.participate = false;
    plan.budgetSeconds = decision.budgetSeconds * budgetSlack_;
    // No prediction round: the oracle is free (that is the point).
    plan.decisionOverheadSeconds = 0.0;

    for (ShardId isn : decision.selected) {
        IsnDirective &directive = plan.isns[isn];
        directive.participate = true;
        const IsnPrediction &p = predictions[isn];
        double chosen = ladder.maxGhz();
        for (double step : ladder.steps()) {
            const double latency =
                p.backlogSeconds + p.serviceCycles / (step * 1e9);
            if (latency <= decision.budgetSeconds) {
                chosen = step;
                break;
            }
        }
        directive.freqGhz = chosen;
    }
    return plan;
}

} // namespace cottage
