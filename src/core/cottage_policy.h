/**
 * @file
 * The full Cottage policy: the coordinated aggregator<->ISN protocol of
 * Fig. 5 driving Algorithm 1, plus frequency assignment (boosting slow
 * high-quality ISNs, slowing fast ones down to the budget for power).
 *
 * Per query:
 *   step 1-2  each ISN evaluates its quality (Q^K, Q^{K/2}) and cycle
 *             predictors on indexing-time term statistics;
 *   step 3    predictions return to the aggregator; latencies are
 *             "equivalent latencies" — queue backlog plus service time
 *             scaled by frequency (Eqs. 1-2);
 *   step 4    Algorithm 1 picks the budget T and the ISN cut;
 *   step 5-6  selected ISNs pick the lowest frequency that still meets
 *             T (boost = the ladder top when needed) and execute;
 *   step 7    the engine merges responses, dropping stragglers at T.
 */

#ifndef COTTAGE_CORE_COTTAGE_POLICY_H
#define COTTAGE_CORE_COTTAGE_POLICY_H

#include <cstdint>
#include <limits>
#include <vector>

#include "core/budget_algorithm.h"
#include "policy/policy.h"
#include "predict/training.h"

namespace cottage {

/** Cottage deployment knobs. */
struct CottageConfig
{
    /**
     * Multiplier applied to Algorithm 1's budget before dispatch,
     * absorbing cycle-bucket quantization error. 1.0 = paper-exact.
     */
    double budgetSlack = 1.5;

    /**
     * When true, ISNs whose equivalent latency fits the budget at a
     * lower-than-default frequency run there (the DVFS power saving of
     * step 6, after [30], [14]). When false, ISNs run at default or
     * boost, never below.
     */
    bool dvfsPowerSaving = true;

    /**
     * An ISN counts as a top-K contributor when its predicted
     * probability of a non-zero contribution exceeds this. Below 0.5
     * the rule is recall-biased: borderline contributors stay selected
     * (dropping a real contributor costs P@10 directly; keeping a
     * non-contributor only costs some work).
     */
    double participationThreshold = 0.15;

    /** Same threshold for the top-K/2 budget-pinning test. */
    double halfThreshold = 0.2;

    /**
     * Widest intra-query gang step 6 may assign per ISN (clamped to
     * each ISN's worker complement). 1 (the default) disables the
     * (cores x frequency) grid and reproduces the paper's
     * frequency-only assignment byte for byte.
     */
    uint32_t maxCoresPerQuery = 1;

    /**
     * Per-ISN active-power ceiling for the grid search, watts
     * (infinity = uncapped). Lets a deployment trade the widest gangs
     * away under a power budget without touching the deadline.
     */
    double isnPowerCapWatts = std::numeric_limits<double>::infinity();
};

/** Coordinated time-budget assignment (the paper's contribution). */
class CottagePolicy : public Policy
{
  public:
    /**
     * @param bank Trained per-ISN predictors (borrowed; must outlive).
     * @param config Deployment knobs.
     */
    CottagePolicy(const PredictorBank &bank, CottageConfig config = {});

    const char *name() const override { return "cottage"; }

    QueryPlan plan(const Query &query,
                   const DistributedEngine &engine) override;

    /**
     * The per-ISN predictions Cottage would report for a query — the
     * raw material of Fig. 9. Exposed for benches and tests.
     */
    std::vector<IsnPrediction>
    predictions(const Query &query, const DistributedEngine &engine) const;

  protected:
    /**
     * Quality estimates (Q^K, Q^{K/2}) per shard. Virtual so the
     * Cottage-withoutML ablation can swap the learned predictor for
     * Taily's Gamma estimate while keeping everything else identical.
     */
    virtual void qualityEstimates(const Query &query,
                                  const DistributedEngine &engine,
                                  std::vector<uint32_t> &qualityK,
                                  std::vector<uint32_t> &qualityHalf) const;

    const PredictorBank &bank() const { return *bank_; }
    const CottageConfig &cottageConfig() const { return config_; }

  private:
    const PredictorBank *bank_;
    CottageConfig config_;
};

} // namespace cottage

#endif // COTTAGE_CORE_COTTAGE_POLICY_H
