#include "core/cottage_policy.h"

#include <algorithm>

#include "util/logging.h"

namespace cottage {

CottagePolicy::CottagePolicy(const PredictorBank &bank, CottageConfig config)
    : bank_(&bank), config_(config)
{
    COTTAGE_CHECK_MSG(config.budgetSlack >= 1.0,
                      "budget slack below 1 guarantees deadline misses");
}

void
CottagePolicy::qualityEstimates(const Query &query,
                                const DistributedEngine &engine,
                                std::vector<uint32_t> &qualityK,
                                std::vector<uint32_t> &qualityHalf) const
{
    const ShardId numShards = engine.index().numShards();
    qualityK.resize(numShards);
    qualityHalf.resize(numShards);
    const std::vector<WeightedTerm> terms =
        DistributedEngine::weightedTerms(query);
    for (ShardId s = 0; s < numShards; ++s) {
        const std::vector<double> features =
            cottage::qualityFeatures(engine.index().termStats(s), terms);
        const QualityPredictor &predictor = bank_->quality(s);
        qualityK[s] = predictor.predictTopK(features);
        qualityHalf[s] = predictor.predictTopHalf(features);
        // Recall-biased floor: a shard whose non-zero probability
        // clears the threshold is treated as a contributor even when
        // the argmax says 0 (see CottageConfig).
        if (qualityK[s] == 0 &&
            predictor.probNonzeroTopK(features) >=
                config_.participationThreshold) {
            qualityK[s] = 1;
        }
        if (qualityHalf[s] == 0 &&
            predictor.probNonzeroTopHalf(features) >=
                config_.halfThreshold) {
            qualityHalf[s] = 1;
        }
    }
}

std::vector<IsnPrediction>
CottagePolicy::predictions(const Query &query,
                           const DistributedEngine &engine) const
{
    const ShardId numShards = engine.index().numShards();
    const FrequencyLadder &ladder = engine.cluster().ladder();

    std::vector<uint32_t> qualityK;
    std::vector<uint32_t> qualityHalf;
    qualityEstimates(query, engine, qualityK, qualityHalf);

    const std::vector<WeightedTerm> terms =
        DistributedEngine::weightedTerms(query);
    std::vector<IsnPrediction> predictions(numShards);
    for (ShardId s = 0; s < numShards; ++s) {
        IsnPrediction &prediction = predictions[s];
        prediction.isn = s;
        prediction.qualityK = qualityK[s];
        prediction.qualityHalf = qualityHalf[s];

        const std::vector<double> features =
            cottage::latencyFeatures(engine.index().termStats(s), terms);
        // Conservative (bucket-upper-edge) prediction: a missed
        // deadline drops the whole response, so under-prediction is
        // the expensive direction.
        const double predictedCycles =
            bank_->latency(s).predictCyclesConservative(features);

        // Equivalent latency (Eq. 2): queue backlog ahead of this
        // request plus its own frequency-scaled service time. Queued
        // requests keep the frequencies they were dispatched with, so
        // the backlog term is fixed in seconds and only the service
        // term rescales (a refinement of Eq. 2, which assumes the
        // whole queue shares one frequency).
        const IsnServerSim &server = engine.cluster().isn(s);
        prediction.backlogSeconds =
            server.backlogSeconds(query.arrivalSeconds);
        prediction.serviceCycles = predictedCycles;
        prediction.latencyCurrent =
            prediction.backlogSeconds +
            predictedCycles / (server.currentFreqGhz() * 1e9);
        prediction.latencyBoosted =
            prediction.backlogSeconds +
            predictedCycles / (ladder.maxGhz() * 1e9);
    }
    return predictions;
}

QueryPlan
CottagePolicy::plan(const Query &query, const DistributedEngine &engine)
{
    const ShardId numShards = engine.index().numShards();
    const FrequencyLadder &ladder = engine.cluster().ladder();

    QueryPlan plan;
    plan.isns.assign(numShards, IsnDirective{});
    // Step 2-5 coordination cost: predictor inference plus the extra
    // prediction round trip between aggregator and ISNs.
    plan.decisionOverheadSeconds = bank_->inferenceOverheadSeconds() +
                                   engine.cluster().network().rttSeconds;

    const std::vector<IsnPrediction> preds = predictions(query, engine);
    const BudgetDecision decision = determineTimeBudget(preds);

    if (decision.selected.empty()) {
        // Every ISN predicted zero contribution — a misprediction by
        // construction (some shard owns each top-K doc). Degenerate to
        // exhaustive search rather than answering with nothing.
        return QueryPlan::allIsns(numShards);
    }

    // The slack widens only the aggregator's wait deadline; frequency
    // selection still targets the raw Algorithm-1 budget, so the slack
    // acts as a safety margin against one-bucket under-predictions.
    plan.budgetSeconds = decision.budgetSeconds * config_.budgetSlack;

    // Nothing outside the selection participates.
    for (IsnDirective &directive : plan.isns)
        directive.participate = false;

    for (ShardId isn : decision.selected) {
        IsnDirective &directive = plan.isns[isn];
        directive.participate = true;

        // Step 6, extended: search the (cores x frequency) grid for
        // the minimum-energy operating point that meets the budget
        // under the power cap. At maxCoresPerQuery = 1 this is exactly
        // the paper's "slowest ladder frequency that still meets the
        // budget, boost when even that is required" loop.
        const IsnPrediction &prediction = preds[isn];
        const IsnServerSim &server = engine.cluster().isn(isn);
        const uint32_t maxCores =
            std::min(config_.maxCoresPerQuery, server.workers());
        // Backlog per candidate gang width: a c-core gang starts only
        // when the c-th earliest worker frees, so wider gangs see a
        // longer queue. Entry 0 equals the prediction's single-core
        // backlog by construction.
        std::vector<double> backlogByCores(maxCores);
        for (uint32_t c = 1; c <= maxCores; ++c)
            backlogByCores[c - 1] =
                server.backlogSeconds(query.arrivalSeconds, c);
        const CoreFreqChoice choice = chooseCoresAndFrequency(
            backlogByCores, prediction.serviceCycles,
            decision.budgetSeconds, ladder, server.speedupCurve(),
            engine.cluster().power(), maxCores, config_.isnPowerCapWatts,
            bank_->coreCycleFactors(), config_.dvfsPowerSaving);
        directive.freqGhz = choice.freqGhz;
        directive.cores = choice.cores;
    }
    return plan;
}

} // namespace cottage
