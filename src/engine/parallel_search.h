/**
 * @file
 * Intra-query parallel traversal driver: range-partition one shard's
 * postings traversal across `k` workers on ThreadPool::global().
 *
 * Each worker runs the configured evaluator over a contiguous slice of
 * the shard's dense local-doc space with its own scratch slab, then
 * the per-worker partial top-K heaps and SearchWork counters merge in
 * FIXED worker-index order — so the merged result is bit-identical at
 * any thread count, and the merged top-K (ids AND score doubles) is
 * bit-identical to the sequential evaluation at any `k` (each slice's
 * pruning is rank-safe over its range; per-document score summation
 * order is unchanged). See DESIGN.md §5j for the full contract.
 *
 * The anytime cap is prorated per slice (balanced split): k cores
 * advance through their slices at the same modeled rate, so a capped
 * parallel run stops each slice at ~cap/k scored candidates — the
 * deterministic analogue of "the deadline fired while every core had
 * done a 1/k share".
 */

#ifndef COTTAGE_ENGINE_PARALLEL_SEARCH_H
#define COTTAGE_ENGINE_PARALLEL_SEARCH_H

#include <cstdint>

#include "index/evaluator.h"

namespace cottage {

/**
 * Slice @p slice of @p cores over a dense local-doc space of
 * @p numDocs documents: a balanced contiguous split. The last slice's
 * end is the open DocRange sentinel so it takes the evaluators'
 * cheap no-boundary paths.
 */
DocRange sliceRange(uint32_t numDocs, uint32_t cores, uint32_t slice);

/**
 * Per-slice share of an anytime cap: balanced split of
 * @p maxScoredDocs over @p cores slices, the first (cap mod cores)
 * slices taking one extra. noDocCap passes through unchanged.
 */
uint64_t sliceDocCap(uint64_t maxScoredDocs, uint32_t cores,
                     uint32_t slice);

/**
 * Evaluate one query on one shard across @p cores document slices.
 * cores <= 1 is exactly the sequential path (same bytes, no pool
 * round-trip). The aggregate SearchWork is the worker-index-ordered
 * sum of the slice counters — at k > 1 it exceeds the sequential
 * work (each slice's pruning threshold warms up independently),
 * which is precisely the parallel-overhead the simulator's speedup
 * curve is calibrated against.
 */
SearchResult parallelShardSearch(const Evaluator &evaluator,
                                 const InvertedIndex &index,
                                 const std::vector<WeightedTerm> &terms,
                                 std::size_t k, uint64_t maxScoredDocs,
                                 uint32_t cores);

} // namespace cottage

#endif // COTTAGE_ENGINE_PARALLEL_SEARCH_H
