/**
 * @file
 * The distributed search engine: a partition-aggregate execution loop
 * over the sharded index and the simulated cluster.
 *
 * Retrieval is real (the configured evaluator runs over real posting
 * lists and its merged top-K is bit-exact); time and energy come from
 * the cluster simulator driven by the evaluator's work counters. This
 * split lets every policy be compared on true quality while keeping
 * latency/power deterministic.
 */

#ifndef COTTAGE_ENGINE_DISTRIBUTED_ENGINE_H
#define COTTAGE_ENGINE_DISTRIBUTED_ENGINE_H

#include <memory>
#include <vector>

#include "engine/query_plan.h"
#include "index/evaluator.h"
#include "obs/metrics_registry.h"
#include "obs/query_tracer.h"
#include "shard/sharded_index.h"
#include "sim/cluster.h"
#include "sim/work_model.h"
#include "text/query.h"

namespace cottage {

/** Aggregator + ISNs over a sharded index and a simulated cluster. */
class DistributedEngine
{
  public:
    /**
     * @param index The sharded collection (borrowed; must outlive).
     * @param cluster The simulated cluster (borrowed; must outlive);
     *        its ISN count must match the index's shard count.
     * @param evaluator Retrieval strategy every ISN runs (borrowed).
     * @param work Cost model converting evaluator work to cycles.
     * @param anytimePartials Whether a deadline-missing ISN responds
     *        with its best-so-far partial top-K (the paper's anytime
     *        early-termination contract, default) or its whole
     *        response is dropped (the pre-anytime degradation model,
     *        kept for comparison experiments).
     */
    DistributedEngine(const ShardedIndex &index, ClusterSim &cluster,
                      const Evaluator &evaluator, WorkModel work = {},
                      bool anytimePartials = true);

    /**
     * Execute one query under a plan, advancing the cluster state.
     *
     * A participating ISN that misses the deadline is truncated by the
     * simulator; the engine converts its completed service fraction
     * into a docs cap (WorkModel::docsCapForFraction) and re-runs the
     * evaluator capped to recover the exact anytime partial top-K the
     * ISN would have returned. Work accounting (docsSearched) is
     * prorated to that prefix; energy is already prorated by the
     * simulator's busy-interval meter.
     *
     * @param query The query (its arrivalSeconds stamps the dispatch).
     * @param plan Participation, frequencies and budget. Any explicit
     *        per-ISN frequency must be a FrequencyLadder step.
     * @param groundTruth The exhaustive global top-K for this query
     *        (use globalTopK() / a cached copy) used to measure P@K.
     */
    QueryMeasurement execute(const Query &query, const QueryPlan &plan,
                             const std::vector<ScoredDoc> &groundTruth);

    /** Toggle the anytime-partial-results contract (default on). */
    void setAnytimePartials(bool enabled) { anytimePartials_ = enabled; }
    bool anytimePartials() const { return anytimePartials_; }

    /**
     * Cores an ISN spans per request when the plan leaves the choice
     * to the engine (IsnDirective::cores == 0). Wired from
     * --isn-cores; 1 (the default) keeps the sequential traversal and
     * every measured byte of it. Values > 1 route phase 1 and the
     * anytime re-run through parallelShardSearch, whose merged top-K
     * and work counters are bit-identical at any host thread count.
     */
    void setDefaultIsnCores(uint32_t cores);
    uint32_t defaultIsnCores() const { return defaultIsnCores_; }

    /**
     * Attach a per-query tracer (nullptr detaches). While attached,
     * every execute() appends one QueryTraceRecord with per-ISN spans
     * in ascending shard order. Recording only reads values the
     * simulation already computed, during the sequential cluster
     * advance, so it is deterministic at any host thread count and
     * never perturbs a measured byte (tests/test_obs.cc,
     * tests/test_parallel.cc).
     */
    void setTracer(QueryTracer *tracer) { tracer_ = tracer; }
    QueryTracer *tracer() const { return tracer_; }

    /**
     * Attach a metrics registry (nullptr detaches). While attached,
     * execute() bumps the engine-side counters/histograms documented
     * in EXPERIMENTS.md ("Observability"): per-query latency, per-ISN
     * queue backlog at dispatch, service time, boost and truncation
     * counts. Same determinism contract as the tracer.
     */
    void setMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }
    MetricsRegistry *metrics() const { return metrics_; }

    /**
     * The exhaustive global top-K for a set of terms: every shard's
     * full top-K merged. This is the paper's quality ground truth;
     * it performs no simulation and leaves cluster state untouched.
     * The per-shard evaluations fan out over ThreadPool::global();
     * the merge is order-invariant so the result is unaffected.
     */
    std::vector<ScoredDoc> globalTopK(const std::vector<TermId> &terms) const;

    /** Ground truth honouring a query's personalization weights. */
    std::vector<ScoredDoc> globalTopK(const Query &query) const;

    /**
     * Per-shard contribution counts to a given global ranking
     * (how many of its documents each ISN owns) — the quality labels
     * of §III-B and the Fig. 2(b) distribution.
     */
    std::vector<uint32_t>
    shardContributions(const std::vector<ScoredDoc> &ranking) const;

    /**
     * Predicted-work helper: run the evaluator for one shard without
     * touching the simulator, returning its work counters. Used by
     * training-set builders and oracle policies.
     */
    SearchWork shardWork(ShardId shard,
                         const std::vector<TermId> &terms) const;

    /** shardWork honouring a query's personalization weights. */
    SearchWork shardWork(ShardId shard, const Query &query) const;

    /**
     * shardWork for every shard at once, fanned out over the pool.
     * Batch path for oracle policies and training-set builders that
     * need the full per-shard work vector anyway.
     */
    std::vector<SearchWork>
    shardWorkAll(const std::vector<TermId> &terms) const;

    /** shardWorkAll honouring a query's personalization weights. */
    std::vector<SearchWork> shardWorkAll(const Query &query) const;

    /** A query's terms with their weights attached. */
    static std::vector<WeightedTerm> weightedTerms(const Query &query);

    const ShardedIndex &index() const { return *index_; }
    ClusterSim &cluster() { return *cluster_; }
    const ClusterSim &cluster() const { return *cluster_; }
    const WorkModel &workModel() const { return work_; }
    const Evaluator &evaluator() const { return *evaluator_; }
    std::size_t topK() const { return index_->topK(); }

  private:
    /** Every shard's evaluation of @p terms, fanned out over the pool. */
    std::vector<SearchResult>
    searchAllShards(const std::vector<WeightedTerm> &terms) const;

    /** Deterministic (ascending-shard) merge into the global top-K. */
    std::vector<ScoredDoc>
    mergeShardResults(const std::vector<SearchResult> &results) const;

    const ShardedIndex *index_;
    ClusterSim *cluster_;
    const Evaluator *evaluator_;
    WorkModel work_;
    bool anytimePartials_;
    uint32_t defaultIsnCores_ = 1;
    QueryTracer *tracer_ = nullptr;
    MetricsRegistry *metrics_ = nullptr;
};

} // namespace cottage

#endif // COTTAGE_ENGINE_DISTRIBUTED_ENGINE_H
