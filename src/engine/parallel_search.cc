#include "engine/parallel_search.h"

#include <limits>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace cottage {

DocRange
sliceRange(uint32_t numDocs, uint32_t cores, uint32_t slice)
{
    COTTAGE_CHECK_MSG(cores >= 1 && slice < cores,
                      "slice index out of range");
    DocRange range;
    range.begin = static_cast<LocalDocId>(
        static_cast<uint64_t>(numDocs) * slice / cores);
    range.end =
        slice + 1 == cores
            ? std::numeric_limits<LocalDocId>::max()
            : static_cast<LocalDocId>(static_cast<uint64_t>(numDocs) *
                                      (slice + 1) / cores);
    return range;
}

uint64_t
sliceDocCap(uint64_t maxScoredDocs, uint32_t cores, uint32_t slice)
{
    COTTAGE_CHECK_MSG(cores >= 1 && slice < cores,
                      "slice index out of range");
    if (maxScoredDocs == noDocCap)
        return noDocCap;
    const uint64_t base = maxScoredDocs / cores;
    const uint64_t extra = maxScoredDocs % cores;
    return base + (slice < extra ? 1 : 0);
}

SearchResult
parallelShardSearch(const Evaluator &evaluator,
                    const InvertedIndex &index,
                    const std::vector<WeightedTerm> &terms, std::size_t k,
                    uint64_t maxScoredDocs, uint32_t cores)
{
    COTTAGE_CHECK_MSG(cores >= 1, "cores must be positive");
    if (cores == 1)
        return evaluator.search(index, terms, k, maxScoredDocs);

    // Slot-per-slice results; the pool schedules execution only.
    std::vector<SearchResult> partials(cores);
    const uint32_t numDocs = index.numDocs();
    ThreadPool::global().parallelFor(
        0, cores, [&](std::size_t slice) {
            const auto s = static_cast<uint32_t>(slice);
            partials[slice] = evaluator.search(
                index, terms, k, sliceDocCap(maxScoredDocs, cores, s),
                sliceRange(numDocs, cores, s));
        });

    // Fixed worker-index-order merge: slices hold disjoint documents,
    // so the global top-K selection under the (score, doc) total order
    // equals the sequential evaluation's exactly.
    SearchResult merged;
    TopKHeap heap(k);
    for (const SearchResult &partial : partials) {
        for (const ScoredDoc &hit : partial.topK)
            heap.push(hit);
        merged.work += partial.work;
    }
    merged.topK = heap.extractSorted();
    return merged;
}

} // namespace cottage
