/**
 * @file
 * The decision a selection/budget policy hands to the engine for one
 * query, and the measurement record the engine hands back. These two
 * structs are the contract between src/policy (and src/core) and the
 * execution engine.
 */

#ifndef COTTAGE_ENGINE_QUERY_PLAN_H
#define COTTAGE_ENGINE_QUERY_PLAN_H

#include <cstdint>
#include <limits>
#include <vector>

#include "index/top_k.h"
#include "text/types.h"

namespace cottage {

/** "No deadline" sentinel. */
constexpr double noBudget = std::numeric_limits<double>::infinity();

/** Per-ISN dispatch directive. */
struct IsnDirective
{
    /** Whether the ISN receives (and executes) the query at all. */
    bool participate = true;

    /**
     * Core frequency for this request, GHz. Zero means "the ISN's
     * current operating frequency" (no DVFS action).
     */
    double freqGhz = 0.0;

    /**
     * Worker cores this request spans at the ISN (intra-query
     * parallelism: the engine range-partitions the traversal across
     * this many slices and the simulator charges a gang of this many
     * cores). Zero means "the engine's default" (--isn-cores; 1 when
     * unset). A non-zero value is validated at dispatch against the
     * ISN's worker count, exactly like freqGhz against the ladder.
     */
    uint32_t cores = 0;
};

/** A policy's decision for one query. */
struct QueryPlan
{
    /** One directive per ISN (size must equal the shard count). */
    std::vector<IsnDirective> isns;

    /**
     * Relative time budget: the aggregator stops waiting this many
     * seconds after dispatch. noBudget disables the deadline.
     */
    double budgetSeconds = noBudget;

    /**
     * Aggregator-side decision latency added before dispatch
     * (prediction round-trip + optimizer for Cottage; ~0 for the
     * baselines).
     */
    double decisionOverheadSeconds = 0.0;

    /** Convenience: a plan where every ISN participates untouched. */
    static QueryPlan
    allIsns(std::size_t numIsns)
    {
        QueryPlan plan;
        plan.isns.assign(numIsns, IsnDirective{});
        return plan;
    }

    /** Number of participating ISNs. */
    uint32_t
    participants() const
    {
        uint32_t count = 0;
        for (const IsnDirective &directive : isns)
            count += directive.participate;
        return count;
    }
};

/** Everything measured while executing one query. */
struct QueryMeasurement
{
    QueryId id = 0;
    double arrivalSeconds = 0.0;

    /** Owning tenant (copied from the query; 0 outside scenarios). */
    uint32_t tenant = 0;

    /** Client-observed latency (decision + network + wait + merge). */
    double latencySeconds = 0.0;

    /** The budget the plan imposed (noBudget if none). */
    double budgetSeconds = noBudget;

    /** ISNs the query was dispatched to. */
    uint32_t isnsUsed = 0;

    /** ISNs whose response made it back before the deadline. */
    uint32_t isnsCompleted = 0;

    /**
     * Deadline-missing ISNs that still contributed a non-empty anytime
     * partial top-K to the merge (the paper's early-termination
     * contract; isnsCompleted + partialResponses <= isnsUsed).
     */
    uint32_t partialResponses = 0;

    /** ISNs that ran above the default frequency. */
    uint32_t isnsBoosted = 0;

    /** ISNs that ran the query across more than one core. */
    uint32_t isnsParallel = 0;

    /**
     * Mean completed service fraction across used ISNs: 1.0 when every
     * response completed, the simulator's per-request fraction for
     * truncated ones (1.0 when no ISN participates).
     */
    double completedFraction = 1.0;

    /**
     * Documents scored across used ISNs (the paper's C_RES). Truncated
     * ISNs count only the documents their anytime prefix actually
     * evaluated, not the full evaluation they were cut off from.
     */
    uint64_t docsSearched = 0;

    /**
     * Candidate documents passed over by pruning seeks across used
     * ISNs without being scored (the visible half of what dynamic
     * pruning saved). Like docsSearched, truncated ISNs contribute
     * only their anytime prefix's skips.
     */
    uint64_t docsSkipped = 0;

    /** Posting blocks decoded across used ISNs (block-max evaluators). */
    uint64_t blocksDecoded = 0;

    /** Posting blocks skipped undecoded across used ISNs. */
    uint64_t blocksSkipped = 0;

    /** Overlap with the exhaustive global top-K, in [0, 1] (P@K). */
    double precisionAtK = 0.0;

    /**
     * Rank-aware quality: binary NDCG@K against the exhaustive global
     * top-K (a hit's gain is 1, discounted by log2(rank + 1),
     * normalized by the ideal ordering). Stricter than P@K: losing a
     * rank-1 document costs more than losing rank 10.
     */
    double ndcgAtK = 0.0;

    /** The merged ranking actually returned to the client. */
    std::vector<ScoredDoc> results;
};

} // namespace cottage

#endif // COTTAGE_ENGINE_QUERY_PLAN_H
