#include "engine/distributed_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "engine/parallel_search.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cottage {

DistributedEngine::DistributedEngine(const ShardedIndex &index,
                                     ClusterSim &cluster,
                                     const Evaluator &evaluator,
                                     WorkModel work, bool anytimePartials)
    : index_(&index), cluster_(&cluster), evaluator_(&evaluator),
      work_(work), anytimePartials_(anytimePartials)
{
    COTTAGE_CHECK_MSG(index.numShards() == cluster.numIsns(),
                      "cluster size must match shard count");
}

void
DistributedEngine::setDefaultIsnCores(uint32_t cores)
{
    COTTAGE_CHECK_MSG(cores >= 1, "default ISN cores must be positive");
    defaultIsnCores_ = cores;
}

std::vector<WeightedTerm>
DistributedEngine::weightedTerms(const Query &query)
{
    std::vector<WeightedTerm> weighted;
    weighted.reserve(query.terms.size());
    for (std::size_t i = 0; i < query.terms.size(); ++i)
        weighted.push_back({query.terms[i], query.weight(i)});
    return weighted;
}

std::vector<SearchResult>
DistributedEngine::searchAllShards(
    const std::vector<WeightedTerm> &terms) const
{
    const ShardId numShards = index_->numShards();
    std::vector<SearchResult> results(numShards);
    ThreadPool::global().parallelFor(0, numShards, [&](std::size_t s) {
        results[s] = evaluator_->search(
            index_->shard(static_cast<ShardId>(s)), terms, index_->topK());
    });
    return results;
}

std::vector<ScoredDoc>
DistributedEngine::mergeShardResults(
    const std::vector<SearchResult> &results) const
{
    // Merge in ascending shard order. The (score, doc) total order
    // makes the merged set order-invariant anyway (tests assert it),
    // but a fixed order keeps the determinism argument trivial.
    TopKHeap merged(index_->topK());
    for (const SearchResult &result : results)
        for (const ScoredDoc &hit : result.topK)
            merged.push(hit);
    return merged.extractSorted();
}

std::vector<ScoredDoc>
DistributedEngine::globalTopK(const std::vector<TermId> &terms) const
{
    return mergeShardResults(searchAllShards(toWeighted(terms)));
}

std::vector<ScoredDoc>
DistributedEngine::globalTopK(const Query &query) const
{
    return mergeShardResults(searchAllShards(weightedTerms(query)));
}

std::vector<uint32_t>
DistributedEngine::shardContributions(
    const std::vector<ScoredDoc> &ranking) const
{
    std::vector<uint32_t> contributions(index_->numShards(), 0);
    for (const ScoredDoc &hit : ranking)
        ++contributions[index_->shardOf(hit.doc)];
    return contributions;
}

SearchWork
DistributedEngine::shardWork(ShardId shard,
                             const std::vector<TermId> &terms) const
{
    return evaluator_->search(index_->shard(shard), terms, index_->topK())
        .work;
}

SearchWork
DistributedEngine::shardWork(ShardId shard, const Query &query) const
{
    return evaluator_
        ->search(index_->shard(shard), weightedTerms(query),
                 index_->topK())
        .work;
}

std::vector<SearchWork>
DistributedEngine::shardWorkAll(const std::vector<TermId> &terms) const
{
    const std::vector<SearchResult> results =
        searchAllShards(toWeighted(terms));
    std::vector<SearchWork> work(results.size());
    for (std::size_t s = 0; s < results.size(); ++s)
        work[s] = results[s].work;
    return work;
}

std::vector<SearchWork>
DistributedEngine::shardWorkAll(const Query &query) const
{
    const std::vector<SearchResult> results =
        searchAllShards(weightedTerms(query));
    std::vector<SearchWork> work(results.size());
    for (std::size_t s = 0; s < results.size(); ++s)
        work[s] = results[s].work;
    return work;
}

QueryMeasurement
DistributedEngine::execute(const Query &query, const QueryPlan &plan,
                           const std::vector<ScoredDoc> &groundTruth)
{
    COTTAGE_CHECK_MSG(plan.isns.size() == index_->numShards(),
                      "plan size must match shard count");

    QueryMeasurement measurement;
    measurement.id = query.id;
    measurement.arrivalSeconds = query.arrivalSeconds;
    measurement.tenant = query.tenant;
    measurement.budgetSeconds = plan.budgetSeconds;

    const NetworkModel &network = cluster_->network();
    // Dispatch happens after the policy's decision work and half a
    // round trip to the ISNs.
    const double dispatch = query.arrivalSeconds +
                            plan.decisionOverheadSeconds +
                            0.5 * network.rttSeconds;
    const double deadline = plan.budgetSeconds == noBudget
                                ? noBudget
                                : dispatch + plan.budgetSeconds;

    const ShardId numShards = index_->numShards();
    const std::vector<WeightedTerm> terms = weightedTerms(query);

    // Cores pre-pass: resolve each ISN's intra-query width before any
    // parallel work so phases 1/2a/2b agree on it. Like the frequency
    // check below, a plan may leave the width to the engine (0), but
    // anything it does pick must fit the ISN's worker complement — an
    // oversubscribed gang would silently corrupt the service model.
    std::vector<uint32_t> coresOf(numShards, 1);
    for (ShardId s = 0; s < numShards; ++s) {
        const IsnDirective &directive = plan.isns[s];
        if (!directive.participate)
            continue;
        const uint32_t cores =
            directive.cores > 0 ? directive.cores : defaultIsnCores_;
        COTTAGE_CHECK_MSG(cores <= cluster_->isn(s).workers(),
                          "plan cores " << cores << " for ISN " << s
                                        << " exceed its "
                                        << cluster_->isn(s).workers()
                                        << " workers");
        coresOf[s] = cores;
    }

    // Phase 1 — the real retrieval, fanned out across the pool. The
    // evaluator is pure over the immutable index, so each shard's
    // result is independent of scheduling; non-participants stay
    // empty slots. Multi-core ISNs traverse through the parallel
    // driver, whose merged top-K and work counters are themselves
    // bit-identical at any host thread count (cores = 1 is exactly
    // the sequential call).
    std::vector<SearchResult> results(numShards);
    ThreadPool::global().parallelFor(0, numShards, [&](std::size_t s) {
        if (plan.isns[s].participate)
            results[s] = parallelShardSearch(
                *evaluator_, index_->shard(static_cast<ShardId>(s)),
                terms, index_->topK(), noDocCap, coresOf[s]);
    });

    // Phase 2a — the simulated cluster, advanced sequentially in
    // ascending shard order so the ISN queue/energy state is
    // bit-identical to the single-threaded replay. Deadline misses do
    // not drop the response: the simulator reports what fraction of
    // the service fit the budget, and the work model converts that
    // fraction into a deterministic anytime docs cap.
    double slowestResponse = 0.0; // relative to dispatch
    bool anyMissed = false;
    double fractionSum = 0.0;
    std::vector<uint64_t> partialCap(numShards, 0);
    std::vector<char> completed(numShards, 0);

    // Observability: recording happens entirely inside this sequential
    // shard-order loop (and the fixed-order merge below), so the span
    // stream and every metric sample are deterministic at any host
    // thread count. Both hooks only read values the simulation already
    // computed — with them detached, not one measured byte changes.
    QueryTraceRecord record;
    std::vector<int> spanOf;
    if (tracer_ != nullptr) {
        record.id = query.id;
        record.tenant = query.tenant;
        record.arrivalSeconds = query.arrivalSeconds;
        record.dispatchSeconds = dispatch;
        record.budgetSeconds =
            plan.budgetSeconds == noBudget ? -1.0 : plan.budgetSeconds;
        record.decisionOverheadSeconds = plan.decisionOverheadSeconds;
        record.rttSeconds = network.rttSeconds;
        record.mergeSeconds = network.mergeSeconds;
        spanOf.assign(numShards, -1);
    }

    for (ShardId s = 0; s < numShards; ++s) {
        const IsnDirective &directive = plan.isns[s];
        if (!directive.participate)
            continue;
        ++measurement.isnsUsed;

        IsnServerSim &server = cluster_->isn(s);
        const double backlog = metrics_ != nullptr
                                   ? server.backlogSeconds(dispatch)
                                   : 0.0;
        // A plan may leave the frequency to the ISN (0), but anything
        // it does pick must be a real P-state: a fabricated frequency
        // would silently corrupt the service-time and power models.
        COTTAGE_CHECK_MSG(
            directive.freqGhz == 0.0 ||
                cluster_->ladder().contains(directive.freqGhz),
            "plan frequency " << directive.freqGhz
                              << " GHz for ISN " << s
                              << " is not a ladder step");
        const double freq = directive.freqGhz > 0.0
                                ? directive.freqGhz
                                : server.currentFreqGhz();
        if (freq > cluster_->ladder().defaultGhz() + 1e-12)
            ++measurement.isnsBoosted;

        if (coresOf[s] > 1)
            ++measurement.isnsParallel;

        const SearchResult &result = results[s];
        const IsnExecution exec =
            server.execute(dispatch, work_.cycles(result.work), freq,
                           deadline, coresOf[s]);
        fractionSum += exec.completedFraction;

        if (tracer_ != nullptr) {
            IsnSpan span;
            span.isn = s;
            span.queueWaitSeconds = exec.startSeconds - dispatch;
            span.serviceStartSeconds = exec.startSeconds;
            span.serviceFinishSeconds = exec.finishSeconds;
            span.busySeconds = exec.busySeconds;
            span.cycles = work_.cycles(result.work);
            span.freqGhz = exec.freqGhz;
            span.cores = exec.cores;
            span.boosted =
                freq > cluster_->ladder().defaultGhz() + 1e-12;
            span.energyJoules = exec.energyJoules;
            span.completed = exec.completed;
            span.completedFraction = exec.completedFraction;
            spanOf[s] = static_cast<int>(record.isns.size());
            record.isns.push_back(span);
        }
        if (metrics_ != nullptr) {
            metrics_->histogram("backlog_at_dispatch_s", 1e-6, 1.0, 30)
                .add(backlog);
            metrics_->histogram("service_busy_s", 1e-5, 1.0, 30)
                .add(exec.busySeconds);
        }

        if (exec.completed) {
            completed[s] = 1;
            ++measurement.isnsCompleted;
            slowestResponse =
                std::max(slowestResponse, exec.finishSeconds - dispatch);
        } else {
            anyMissed = true;
            partialCap[s] = work_.docsCapForFraction(
                result.work, exec.completedFraction);
        }
    }

    // Phase 2b — truncated ISNs re-run their evaluator capped at the
    // docs the deadline allowed, recovering the exact best-so-far
    // top-K the anytime ISN would have responded with. The capped
    // evaluation is pure (a deterministic prefix replay of phase 1),
    // so it fans out over the pool without touching the contract.
    //
    // The prefix is always the CANONICAL (single-slice) traversal
    // order, even when the full run ganged cores: intra-ISN workers
    // share their top-K threshold through the shared heap, so a
    // truncated gang's best-so-far is the warm-threshold prefix of the
    // traversal — not `cores` independent cold-start slice prefixes,
    // each of which would re-pay the pruning warmup and waste the docs
    // budget on candidates a shared threshold had already ruled out.
    // This also makes the truncated response's bytes independent of
    // the planned gang width, by construction.
    std::vector<SearchResult> partials(numShards);
    if (anyMissed && anytimePartials_) {
        ThreadPool::global().parallelFor(0, numShards, [&](std::size_t s) {
            if (plan.isns[s].participate && !completed[s]) {
                partials[s] = parallelShardSearch(
                    *evaluator_, index_->shard(static_cast<ShardId>(s)),
                    terms, index_->topK(), partialCap[s], 1);
            }
        });
    }

    // Phase 2c — fixed-order merge and prorated work accounting.
    // Truncated ISNs contribute (and count) only their anytime prefix,
    // so C_RES reflects work actually performed before the cutoff
    // (energy already does, via the simulator's busy-interval meter).
    TopKHeap merged(index_->topK());
    for (ShardId s = 0; s < numShards; ++s) {
        if (!plan.isns[s].participate)
            continue;
        IsnSpan *span = tracer_ != nullptr && spanOf[s] >= 0
                            ? &record.isns[static_cast<std::size_t>(
                                  spanOf[s])]
                            : nullptr;
        if (completed[s]) {
            measurement.docsSearched += results[s].work.docsScored;
            measurement.docsSkipped += results[s].work.docsSkipped;
            measurement.blocksDecoded += results[s].work.blocksDecoded;
            measurement.blocksSkipped += results[s].work.blocksSkipped;
            if (span != nullptr) {
                span->docsScored = results[s].work.docsScored;
                span->docsSkipped = results[s].work.docsSkipped;
                span->blocksDecoded = results[s].work.blocksDecoded;
                span->blocksSkipped = results[s].work.blocksSkipped;
            }
            for (const ScoredDoc &hit : results[s].topK)
                merged.push(hit);
        } else if (anytimePartials_) {
            measurement.docsSearched += partials[s].work.docsScored;
            measurement.docsSkipped += partials[s].work.docsSkipped;
            measurement.blocksDecoded += partials[s].work.blocksDecoded;
            measurement.blocksSkipped += partials[s].work.blocksSkipped;
            if (!partials[s].topK.empty())
                ++measurement.partialResponses;
            if (span != nullptr) {
                span->docsScored = partials[s].work.docsScored;
                span->docsSkipped = partials[s].work.docsSkipped;
                span->blocksDecoded = partials[s].work.blocksDecoded;
                span->blocksSkipped = partials[s].work.blocksSkipped;
                span->partial = !partials[s].topK.empty();
            }
            for (const ScoredDoc &hit : partials[s].topK)
                merged.push(hit);
        } else {
            // Drop-whole-response mode keeps the prorated accounting:
            // the ISN still burned cycles until the cutoff even though
            // its response is discarded.
            measurement.docsSearched += partialCap[s];
            if (span != nullptr)
                span->docsScored = partialCap[s];
        }
    }
    measurement.completedFraction =
        measurement.isnsUsed > 0
            ? fractionSum / static_cast<double>(measurement.isnsUsed)
            : 1.0;

    // The aggregator returns when the last awaited response arrives,
    // or at the budget if any participant missed it.
    double waited = slowestResponse;
    if (anyMissed && plan.budgetSeconds != noBudget)
        waited = plan.budgetSeconds;

    measurement.latencySeconds = plan.decisionOverheadSeconds +
                                 network.rttSeconds + waited +
                                 network.mergeSeconds;
    measurement.results = merged.extractSorted();

    if (tracer_ != nullptr) {
        record.waitedSeconds = waited;
        record.latencySeconds = measurement.latencySeconds;
        tracer_->record(std::move(record));
    }
    if (metrics_ != nullptr) {
        metrics_->incr("queries");
        metrics_->incr("isns_dispatched", measurement.isnsUsed);
        metrics_->incr("isns_boosted", measurement.isnsBoosted);
        metrics_->incr("isns_parallel", measurement.isnsParallel);
        metrics_->incr("responses_truncated",
                       measurement.isnsUsed - measurement.isnsCompleted);
        metrics_->incr("partial_responses", measurement.partialResponses);
        metrics_->incr("docs_scored", measurement.docsSearched);
        metrics_->incr("docs_skipped", measurement.docsSkipped);
        metrics_->incr("blocks_decoded", measurement.blocksDecoded);
        metrics_->incr("blocks_skipped", measurement.blocksSkipped);
        metrics_->histogram("latency_s", 1e-4, 10.0, 40)
            .add(measurement.latencySeconds);
    }

    // P@K and binary NDCG@K against the exhaustive ground truth. Truth
    // membership is a hash-set probe: the result walk stays in rank
    // order, so the DCG summation order (and hence every bit of the
    // quality metrics) is identical to the former O(K^2) scan. The set
    // is only ever probed with count(), never iterated, which keeps it
    // clean under cottage_lint rule D1 (hash iteration order must not
    // reach measured output).
    if (!groundTruth.empty()) {
        std::unordered_set<DocId> truthDocs;
        truthDocs.reserve(groundTruth.size());
        for (const ScoredDoc &truth : groundTruth)
            truthDocs.insert(truth.doc);
        std::size_t overlap = 0;
        double dcg = 0.0;
        for (std::size_t rank = 0; rank < measurement.results.size();
             ++rank) {
            if (truthDocs.count(measurement.results[rank].doc) != 0) {
                ++overlap;
                dcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
            }
        }
        double idealDcg = 0.0;
        for (std::size_t rank = 0; rank < groundTruth.size(); ++rank)
            idealDcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
        measurement.precisionAtK = static_cast<double>(overlap) /
                                   static_cast<double>(groundTruth.size());
        measurement.ndcgAtK = dcg / idealDcg;
    } else {
        // A query matching nothing anywhere is trivially perfect.
        measurement.precisionAtK = 1.0;
        measurement.ndcgAtK = 1.0;
    }
    return measurement;
}

} // namespace cottage
