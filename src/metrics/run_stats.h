/**
 * @file
 * Aggregation of per-query measurements into the summary rows the
 * paper's evaluation figures report: average / tail latency, P@10,
 * selected ISNs, C_RES, power.
 */

#ifndef COTTAGE_METRICS_RUN_STATS_H
#define COTTAGE_METRICS_RUN_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "engine/query_plan.h"

namespace cottage {

/** One (policy, trace) experiment's aggregate results. */
struct RunSummary
{
    std::string policy;
    std::string trace;
    std::size_t queries = 0;

    double avgLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;

    /** Mean P@K against the exhaustive ground truth. */
    double avgPrecision = 0.0;

    /** Mean binary NDCG@K (rank-aware quality). */
    double avgNdcg = 0.0;

    /** Mean ISNs dispatched per query (Fig. 13). */
    double avgIsnsUsed = 0.0;

    /** Mean ISNs boosted above the default frequency per query. */
    double avgIsnsBoosted = 0.0;

    /** Mean documents scored per query across used ISNs (C_RES). */
    double avgDocsSearched = 0.0;

    /** Mean candidates seeked past per query (pruning savings). */
    double avgDocsSkipped = 0.0;

    /** Mean posting blocks decoded per query (block-max evaluators). */
    double avgBlocksDecoded = 0.0;

    /** Mean posting blocks skipped undecoded per query. */
    double avgBlocksSkipped = 0.0;

    /** Responses truncated at the budget across the whole run. */
    uint64_t truncatedResponses = 0;

    /**
     * Truncated responses that still contributed a non-empty anytime
     * partial top-K (equals truncatedResponses minus responses whose
     * budget share allowed zero documents).
     */
    uint64_t partialResponses = 0;

    /**
     * Mean per-query completed service fraction across used ISNs
     * (1.0 = every response ran to completion).
     */
    double avgCompletedFraction = 0.0;

    /** Mean budget over the queries that had one (0 if none did). */
    double avgBudgetSeconds = 0.0;

    /** Cluster busy energy over the replay window, joules. */
    double energyJoules = 0.0;

    /** Replay window length, seconds. */
    double durationSeconds = 0.0;

    /** Average package power over the window (idle + busy), watts. */
    double avgPowerWatts = 0.0;
};

/**
 * Fold a run's measurements into a summary. Energy/duration/power
 * fields are filled by the caller (they live in the cluster, not the
 * per-query records).
 */
RunSummary summarizeRun(const std::string &policy, const std::string &trace,
                        const std::vector<QueryMeasurement> &measurements);

/** Latency series (seconds) of a run, in arrival order. */
std::vector<double>
latencySeries(const std::vector<QueryMeasurement> &measurements);

/**
 * Serialize a summary as a single-line JSON object (for scripting and
 * plotting pipelines). Keys are stable snake_case names.
 */
std::string toJson(const RunSummary &summary);

} // namespace cottage

#endif // COTTAGE_METRICS_RUN_STATS_H
