#include "metrics/run_stats.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "stats/summary.h"
#include "util/string_util.h"

namespace cottage {

RunSummary
summarizeRun(const std::string &policy, const std::string &trace,
             const std::vector<QueryMeasurement> &measurements)
{
    RunSummary summary;
    summary.policy = policy;
    summary.trace = trace;
    summary.queries = measurements.size();
    if (measurements.empty())
        return summary;

    std::vector<double> latencies;
    latencies.reserve(measurements.size());
    RunningStat precision;
    RunningStat ndcg;
    RunningStat isnsUsed;
    RunningStat isnsBoosted;
    RunningStat docsSearched;
    RunningStat docsSkipped;
    RunningStat blocksDecoded;
    RunningStat blocksSkipped;
    RunningStat budgets;
    RunningStat completedFraction;
    for (const QueryMeasurement &m : measurements) {
        latencies.push_back(m.latencySeconds);
        precision.add(m.precisionAtK);
        ndcg.add(m.ndcgAtK);
        isnsUsed.add(static_cast<double>(m.isnsUsed));
        isnsBoosted.add(static_cast<double>(m.isnsBoosted));
        docsSearched.add(static_cast<double>(m.docsSearched));
        docsSkipped.add(static_cast<double>(m.docsSkipped));
        blocksDecoded.add(static_cast<double>(m.blocksDecoded));
        blocksSkipped.add(static_cast<double>(m.blocksSkipped));
        completedFraction.add(m.completedFraction);
        if (m.budgetSeconds != noBudget)
            budgets.add(m.budgetSeconds);
        summary.truncatedResponses +=
            m.isnsUsed - m.isnsCompleted;
        summary.partialResponses += m.partialResponses;
    }
    std::sort(latencies.begin(), latencies.end(), std::less<double>());
    summary.avgLatencySeconds = mean(latencies);
    summary.p50LatencySeconds = percentileSorted(latencies, 0.50);
    summary.p95LatencySeconds = percentileSorted(latencies, 0.95);
    summary.p99LatencySeconds = percentileSorted(latencies, 0.99);
    summary.maxLatencySeconds = latencies.back();
    summary.avgPrecision = precision.mean();
    summary.avgNdcg = ndcg.mean();
    summary.avgIsnsUsed = isnsUsed.mean();
    summary.avgIsnsBoosted = isnsBoosted.mean();
    summary.avgDocsSearched = docsSearched.mean();
    summary.avgDocsSkipped = docsSkipped.mean();
    summary.avgBlocksDecoded = blocksDecoded.mean();
    summary.avgBlocksSkipped = blocksSkipped.mean();
    summary.avgBudgetSeconds = budgets.mean();
    summary.avgCompletedFraction = completedFraction.mean();
    return summary;
}

std::string
toJson(const RunSummary &s)
{
    std::string out = "{";
    const auto field = [&out](const char *key, const std::string &value,
                              bool quote) {
        if (out.size() > 1)
            out += ",";
        out += "\"";
        out += key;
        out += "\":";
        if (quote)
            out += jsonQuote(value);
        else
            out += value;
    };
    const auto num = [](double v) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.9g", v);
        return std::string(buffer);
    };
    field("policy", s.policy, true);
    field("trace", s.trace, true);
    field("queries", num(static_cast<double>(s.queries)), false);
    field("avg_latency_s", num(s.avgLatencySeconds), false);
    field("p50_latency_s", num(s.p50LatencySeconds), false);
    field("p95_latency_s", num(s.p95LatencySeconds), false);
    field("p99_latency_s", num(s.p99LatencySeconds), false);
    field("max_latency_s", num(s.maxLatencySeconds), false);
    field("avg_precision", num(s.avgPrecision), false);
    field("avg_ndcg", num(s.avgNdcg), false);
    field("avg_isns_used", num(s.avgIsnsUsed), false);
    field("avg_isns_boosted", num(s.avgIsnsBoosted), false);
    field("avg_docs_searched", num(s.avgDocsSearched), false);
    field("avg_docs_skipped", num(s.avgDocsSkipped), false);
    field("avg_blocks_decoded", num(s.avgBlocksDecoded), false);
    field("avg_blocks_skipped", num(s.avgBlocksSkipped), false);
    field("truncated_responses",
          num(static_cast<double>(s.truncatedResponses)), false);
    field("partial_responses",
          num(static_cast<double>(s.partialResponses)), false);
    field("avg_completed_fraction", num(s.avgCompletedFraction), false);
    field("avg_budget_s", num(s.avgBudgetSeconds), false);
    field("energy_j", num(s.energyJoules), false);
    field("duration_s", num(s.durationSeconds), false);
    field("avg_power_w", num(s.avgPowerWatts), false);
    out += "}";
    return out;
}

std::vector<double>
latencySeries(const std::vector<QueryMeasurement> &measurements)
{
    std::vector<double> series;
    series.reserve(measurements.size());
    for (const QueryMeasurement &m : measurements)
        series.push_back(m.latencySeconds);
    return series;
}

} // namespace cottage
