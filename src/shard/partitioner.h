/**
 * @file
 * Document-to-shard partitioning policies.
 *
 * The paper partitions a Wikipedia dump across 16 ISNs (random
 * document allocation, the common web-search layout [24]); topical
 * allocation is what selective-search literature uses. Both are
 * provided so the Rank-S/Taily comparisons can be studied under either
 * layout.
 */

#ifndef COTTAGE_SHARD_PARTITIONER_H
#define COTTAGE_SHARD_PARTITIONER_H

#include <vector>

#include "text/corpus.h"
#include "text/types.h"

namespace cottage {

/** How documents are assigned to shards. */
enum class PartitionPolicy {
    /** doc i -> shard i mod n (deterministic spread). */
    RoundRobin,

    /** Seeded uniform random assignment. */
    Random,

    /**
     * Topical: contiguous blocks of documents (which share topic
     * slices in the synthetic corpus) map to the same shard, giving
     * shards distinct term profiles as in selective-search corpora.
     */
    Topical,
};

/** Name for reports. */
const char *partitionPolicyName(PartitionPolicy policy);

/**
 * Assign every document of a corpus to one of @p numShards shards.
 *
 * @return One DocId list per shard; every document appears exactly
 *         once; no shard is empty (guaranteed for numDocs >= shards).
 */
std::vector<std::vector<DocId>> partitionCorpus(const Corpus &corpus,
                                                ShardId numShards,
                                                PartitionPolicy policy,
                                                uint64_t seed);

} // namespace cottage

#endif // COTTAGE_SHARD_PARTITIONER_H
