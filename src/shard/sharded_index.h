/**
 * @file
 * The sharded collection: global statistics plus one inverted index
 * and one term-statistics store per ISN. This is the static data the
 * distributed engine serves from; the engine layer adds queues,
 * frequencies and policies on top.
 */

#ifndef COTTAGE_SHARD_SHARDED_INDEX_H
#define COTTAGE_SHARD_SHARDED_INDEX_H

#include <memory>
#include <vector>

#include "index/inverted_index.h"
#include "index/term_stats.h"
#include "shard/partitioner.h"
#include "text/corpus.h"

namespace cottage {

/** Construction parameters for a sharded index. */
struct ShardedIndexConfig
{
    /** Number of ISNs (the paper uses 16). */
    ShardId numShards = 16;

    /** How documents map to shards. */
    PartitionPolicy partition = PartitionPolicy::Random;

    /** Seed for the Random partitioner. */
    uint64_t seed = 1;

    /** Result depth K served by the engine (paper: 10). */
    std::size_t topK = 10;

    /** Ranking parameters shared by every shard. */
    Bm25Params bm25;

    /** Postings per block in every shard's block-max skip layer. */
    uint32_t blockSize = 128;
};

/** Immutable sharded index over a corpus. */
class ShardedIndex
{
  public:
    ShardedIndex(const Corpus &corpus, const ShardedIndexConfig &config);

    ShardId numShards() const { return static_cast<ShardId>(shards_.size()); }
    const ShardedIndexConfig &config() const { return config_; }
    const CollectionStats &collectionStats() const { return *stats_; }
    std::size_t topK() const { return config_.topK; }

    /** One shard's inverted index. */
    const InvertedIndex &shard(ShardId id) const;

    /** One shard's indexing-time term statistics. */
    const TermStatsStore &termStats(ShardId id) const;

    /** Global DocIds assigned to a shard. */
    const std::vector<DocId> &shardDocs(ShardId id) const;

    /** Shard that owns a global document. */
    ShardId shardOf(DocId doc) const;

  private:
    ShardedIndexConfig config_;
    std::shared_ptr<const CollectionStats> stats_;
    std::vector<std::vector<DocId>> docAssignment_;
    std::vector<std::unique_ptr<InvertedIndex>> shards_;
    std::vector<std::unique_ptr<TermStatsStore>> termStats_;
    std::vector<ShardId> ownerOf_;
};

} // namespace cottage

#endif // COTTAGE_SHARD_SHARDED_INDEX_H
