#include "shard/partitioner.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"
#include "util/rng.h"

namespace cottage {

const char *
partitionPolicyName(PartitionPolicy policy)
{
    switch (policy) {
      case PartitionPolicy::RoundRobin: return "round-robin";
      case PartitionPolicy::Random: return "random";
      case PartitionPolicy::Topical: return "topical";
    }
    return "?";
}

std::vector<std::vector<DocId>>
partitionCorpus(const Corpus &corpus, ShardId numShards,
                PartitionPolicy policy, uint64_t seed)
{
    COTTAGE_CHECK_MSG(numShards >= 1, "need at least one shard");
    COTTAGE_CHECK_MSG(corpus.numDocs() >= numShards,
                      "fewer documents than shards");

    const uint32_t numDocs = corpus.numDocs();
    std::vector<std::vector<DocId>> shards(numShards);
    for (auto &shard : shards)
        shard.reserve(numDocs / numShards + 1);

    switch (policy) {
      case PartitionPolicy::RoundRobin:
        for (DocId d = 0; d < numDocs; ++d)
            shards[d % numShards].push_back(d);
        break;

      case PartitionPolicy::Random: {
        Rng rng(seed);
        // Guarantee non-empty shards by seeding one doc each, then
        // spreading the rest uniformly.
        std::vector<DocId> docs(numDocs);
        for (DocId d = 0; d < numDocs; ++d)
            docs[d] = d;
        rng.shuffle(docs);
        for (ShardId s = 0; s < numShards; ++s)
            shards[s].push_back(docs[s]);
        for (uint32_t i = numShards; i < numDocs; ++i) {
            const auto s = static_cast<ShardId>(
                rng.uniformInt(0, static_cast<int64_t>(numShards) - 1));
            shards[s].push_back(docs[i]);
        }
        // Restore ascending DocId order within each shard so posting
        // construction stays in document order.
        for (auto &shard : shards)
            std::sort(shard.begin(), shard.end(), std::less<DocId>());
        break;
      }

      case PartitionPolicy::Topical:
        // Contiguous blocks: documents generated near each other share
        // topic slices more often than distant ones.
        for (DocId d = 0; d < numDocs; ++d) {
            const auto s = static_cast<ShardId>(
                (static_cast<uint64_t>(d) * numShards) / numDocs);
            shards[s].push_back(d);
        }
        break;
    }

    for (const auto &shard : shards)
        COTTAGE_CHECK(!shard.empty());
    return shards;
}

} // namespace cottage
