#include "shard/sharded_index.h"

#include "util/logging.h"

namespace cottage {

ShardedIndex::ShardedIndex(const Corpus &corpus,
                           const ShardedIndexConfig &config)
    : config_(config),
      stats_(std::make_shared<CollectionStats>(corpus))
{
    docAssignment_ = partitionCorpus(corpus, config.numShards,
                                     config.partition, config.seed);
    shards_.reserve(config.numShards);
    termStats_.reserve(config.numShards);
    ownerOf_.assign(corpus.numDocs(), 0);
    for (ShardId s = 0; s < config.numShards; ++s) {
        shards_.push_back(std::make_unique<InvertedIndex>(
            corpus, docAssignment_[s], stats_, config.bm25,
            config.blockSize));
        termStats_.push_back(
            std::make_unique<TermStatsStore>(*shards_.back(), config.topK));
        for (DocId doc : docAssignment_[s])
            ownerOf_[doc] = s;
    }
}

const InvertedIndex &
ShardedIndex::shard(ShardId id) const
{
    COTTAGE_CHECK(id < shards_.size());
    return *shards_[id];
}

const TermStatsStore &
ShardedIndex::termStats(ShardId id) const
{
    COTTAGE_CHECK(id < termStats_.size());
    return *termStats_[id];
}

const std::vector<DocId> &
ShardedIndex::shardDocs(ShardId id) const
{
    COTTAGE_CHECK(id < docAssignment_.size());
    return docAssignment_[id];
}

ShardId
ShardedIndex::shardOf(DocId doc) const
{
    COTTAGE_CHECK(doc < ownerOf_.size());
    return ownerOf_[doc];
}

} // namespace cottage
