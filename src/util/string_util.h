/**
 * @file
 * Small string helpers shared by trace parsing, CLI handling and the
 * table printers. Nothing here is clever; it exists so the rest of the
 * code never hand-rolls tokenization.
 */

#ifndef COTTAGE_UTIL_STRING_UTIL_H
#define COTTAGE_UTIL_STRING_UTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace cottage {

/** Split on a single character; empty fields are kept. */
std::vector<std::string> split(std::string_view text, char delimiter);

/**
 * Split on runs of whitespace; empty fields are dropped. This is the
 * query tokenizer's backbone.
 */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Join parts with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view separator);

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view text);

/** ASCII lowercase copy. */
std::string toLower(std::string_view text);

/** True if text begins with prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Escape a string for inclusion inside a JSON string literal (RFC 8259):
 * backslash, double quote and control characters below 0x20 are escaped;
 * everything else passes through byte-for-byte. Shared by the run-summary
 * JSON emitter and the JSONL trace writer so hostile policy/trace names
 * can never produce invalid JSON.
 */
std::string jsonEscape(std::string_view text);

/** jsonEscape wrapped in double quotes: a complete JSON string token. */
std::string jsonQuote(std::string_view text);

} // namespace cottage

#endif // COTTAGE_UTIL_STRING_UTIL_H
