#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace cottage {

namespace {

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : cachedNormal_(0.0), hasCachedNormal_(false)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    // xoshiro256** by Blackman & Vigna.
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

Rng
Rng::split()
{
    return Rng(next());
}

double
Rng::uniform()
{
    // 53 random bits into the mantissa: uniform on [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    COTTAGE_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    COTTAGE_CHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 must be strictly positive.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    COTTAGE_CHECK(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

int64_t
Rng::poisson(double mean)
{
    COTTAGE_CHECK(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        const double threshold = std::exp(-mean);
        int64_t count = 0;
        double product = uniform();
        while (product > threshold) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation with continuity correction for large means;
    // accurate enough for arrival batching at the rates we simulate.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    COTTAGE_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        COTTAGE_CHECK(w >= 0.0);
        total += w;
    }
    COTTAGE_CHECK_MSG(total > 0.0, "discrete() needs a positive weight sum");
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return weights.size() - 1; // numeric slack: fall to the last bucket
}

} // namespace cottage
