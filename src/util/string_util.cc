#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace cottage {

std::vector<std::string>
split(std::string_view text, char delimiter)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delimiter, start);
        if (pos == std::string_view::npos) {
            parts.emplace_back(text.substr(start));
            return parts;
        }
        parts.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> parts;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        const std::size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        if (i > start)
            parts.emplace_back(text.substr(start, i - start));
    }
    return parts;
}

std::string
join(const std::vector<std::string> &parts, std::string_view separator)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += separator;
        out += parts[i];
    }
    return out;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

std::string
jsonQuote(std::string_view text)
{
    return "\"" + jsonEscape(text) + "\"";
}

} // namespace cottage
