#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cottage {

ZipfSampler::ZipfSampler(uint64_t n, double s)
    : n_(n), s_(s)
{
    COTTAGE_CHECK_MSG(n >= 1, "ZipfSampler needs n >= 1");
    COTTAGE_CHECK_MSG(s > 0.0, "ZipfSampler needs s > 0");
    hX1_ = h(1.5) - 1.0;
    hN_ = h(static_cast<double>(n) + 0.5);
    sDiv_ = 2.0 - hInverse(h(2.5) - std::pow(2.0, -s_));
    normalizer_ = 0.0;
    for (uint64_t k = 1; k <= n_; ++k)
        normalizer_ += std::pow(static_cast<double>(k), -s_);
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-s: the "H function" of rejection-inversion.
    if (s_ == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double
ZipfSampler::hInverse(double x) const
{
    if (s_ == 1.0)
        return std::exp(x);
    const double t = std::max(-1.0, x * (1.0 - s_));
    return std::pow(1.0 + t, 1.0 / (1.0 - s_));
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 1;
    // Rejection-inversion (Hörmann & Derflinger 1996).
    while (true) {
        const double u = hN_ + rng.uniform() * (hX1_ - hN_);
        const double x = hInverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        k = std::clamp<uint64_t>(k, 1, n_);
        const double kd = static_cast<double>(k);
        if (kd - x <= sDiv_ ||
            u >= h(kd + 0.5) - std::pow(kd, -s_)) {
            return k;
        }
    }
}

double
ZipfSampler::pmf(uint64_t rank) const
{
    COTTAGE_CHECK(rank >= 1 && rank <= n_);
    return std::pow(static_cast<double>(rank), -s_) / normalizer_;
}

} // namespace cottage
