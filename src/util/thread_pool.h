/**
 * @file
 * Work-stealing thread pool for the embarrassingly parallel loops of
 * the reproduction: per-shard evaluator fan-out, ground-truth
 * construction, trace replay and training-set building.
 *
 * Design notes:
 *  - Per-thread deques: a worker pushes and pops its own queue LIFO
 *    (cache-warm) and steals FIFO from siblings when it runs dry.
 *  - Waiting helps: parallelFor() and waitFor() execute queued tasks
 *    while they block, so nested submission (a pool task that itself
 *    calls parallelFor) can never deadlock.
 *  - Determinism contract: the pool schedules *execution*, never
 *    *results*. Every parallel loop in this codebase writes to a
 *    dedicated slot indexed by its loop variable and merges the slots
 *    sequentially in a fixed order afterwards, so the output is
 *    bit-identical to the single-threaded run (see DESIGN.md,
 *    "Threading model").
 *  - A thread count of 1 means strictly inline execution on the
 *    calling thread: no workers are spawned and submit()/parallelFor()
 *    run their work immediately. `--threads=1` is therefore the
 *    sequential baseline the determinism tests compare against.
 */

#ifndef COTTAGE_UTIL_THREAD_POOL_H
#define COTTAGE_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace cottage {

/** Work-stealing task pool; see the file comment for the contract. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 picks defaultThreads(). A count
     *        of 1 spawns no workers and executes everything inline.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured parallelism (1 means inline execution). */
    unsigned threads() const { return threads_; }

    /**
     * Schedule a nullary callable; the future carries its result or
     * exception. On a single-thread pool the callable runs inline and
     * the returned future is already ready.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        if (threads_ <= 1)
            (*task)();
        else
            post([task] { (*task)(); });
        return future;
    }

    /**
     * Run body(i) for every i in [begin, end), distributed over the
     * pool in contiguous chunks. Blocks until every index ran; the
     * calling thread participates (and helps drain unrelated queued
     * tasks while it waits, making nested calls safe). If bodies
     * throw, the exception of the lowest-indexed failing chunk is
     * rethrown — deterministically, regardless of completion order.
     *
     * The iteration-to-result mapping is the caller's job: write
     * results to slot i and merge sequentially afterwards.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /**
     * Block on a future while helping execute queued tasks, so a pool
     * task may wait on work it submitted without deadlocking the pool.
     */
    template <typename T>
    T
    waitFor(std::future<T> future)
    {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!tryRunOne())
                std::this_thread::yield();
        }
        return future.get();
    }

    /** Pop-or-steal one queued task and run it; false if none found. */
    bool tryRunOne();

    /**
     * The process-wide pool every parallel loop in the codebase uses.
     * Built on first use with defaultThreads() workers.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool (the `--threads` knob). Must be called
     * while no tasks are in flight; the old pool is joined first.
     * 0 restores defaultThreads().
     */
    static void setGlobalThreads(unsigned threads);

    /**
     * Default worker count: the COTTAGE_THREADS environment variable
     * if set, else std::thread::hardware_concurrency(), at least 1.
     */
    static unsigned defaultThreads();

  private:
    using Task = std::function<void()>;

    /**
     * One worker's deque; owner pops back, thieves take front. The
     * deque is the one genuinely cross-thread structure in the pool,
     * so it carries a compiler-checked guard (DESIGN.md §5f): any
     * access outside the queue mutex fails the -Werror=thread-safety
     * CI cell.
     */
    struct Queue
    {
        Mutex mutex;
        std::deque<Task> tasks COTTAGE_GUARDED_BY(mutex);
    };

    void post(Task task);
    bool popOwn(std::size_t self, Task &task);
    bool stealFrom(std::size_t victim, Task &task);
    void workerLoop(std::size_t self);

    unsigned threads_;
    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleepMutex_;
    std::condition_variable wake_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

} // namespace cottage

#endif // COTTAGE_UTIL_THREAD_POOL_H
