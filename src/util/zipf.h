/**
 * @file
 * Zipf-distributed sampling over ranks 1..n.
 *
 * Term frequencies in natural-language corpora follow a Zipf law; the
 * synthetic corpus and query-trace generators rely on this sampler to
 * reproduce the heavy-tailed posting-list lengths and query costs that
 * drive the latency variation studied in the paper (Fig. 2).
 *
 * Uses the rejection-inversion method of Hörmann & Derflinger (1996),
 * which is O(1) per sample and exact for any exponent s > 0 (s != 1 is
 * handled together with s == 1 via the usual H-function limits).
 */

#ifndef COTTAGE_UTIL_ZIPF_H
#define COTTAGE_UTIL_ZIPF_H

#include <cstdint>

#include "util/rng.h"

namespace cottage {

/**
 * Sampler for P(rank = k) proportional to 1 / k^s, k in [1, n].
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of ranks (must be >= 1).
     * @param s Zipf exponent (must be > 0).
     */
    ZipfSampler(uint64_t n, double s);

    /** Draw one rank in [1, n]. */
    uint64_t sample(Rng &rng) const;

    /** Probability mass of a given rank (normalized). */
    double pmf(uint64_t rank) const;

    uint64_t n() const { return n_; }
    double exponent() const { return s_; }

  private:
    double h(double x) const;
    double hInverse(double x) const;

    uint64_t n_;
    double s_;
    double hX1_;
    double hN_;
    double sDiv_;
    double normalizer_; // generalized harmonic number H_{n,s}
};

} // namespace cottage

#endif // COTTAGE_UTIL_ZIPF_H
