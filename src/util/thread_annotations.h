/**
 * @file
 * Clang thread-safety annotations + the two capability types the tree
 * locks with (DESIGN.md §5f).
 *
 * The macros expand to clang's `-Wthread-safety` attributes when the
 * compiler supports them and to nothing elsewhere, so annotating a
 * class costs zero bytes and zero cycles on gcc builds while the
 * dedicated CI cell (clang, `-Werror=thread-safety`) proves the lock
 * discipline at compile time.
 *
 * Two capability types cover every concurrency pattern in the tree:
 *
 *  - `Mutex` / `MutexLock`: a real `std::mutex` wrapped so the
 *    analysis can see acquire/release. Used where state is genuinely
 *    shared between threads (ThreadPool's work deques, the global
 *    pool singleton).
 *
 *  - `SerialGate` / `SerialLock`: a zero-cost capability modeling
 *    *external serialization*. The serving loop, the metrics registry
 *    and the tracer sink are single-threaded by the determinism
 *    contract (DESIGN.md §5b/§5d) — there is nothing to lock at
 *    runtime, but their members are still annotated GUARDED_BY the
 *    gate so any new code path that touches them without entering a
 *    gated section fails the thread-safety build instead of becoming
 *    a latent data race the moment someone parallelizes the caller.
 *    Acquire/release compile to nothing; the value is purely static.
 */

#ifndef COTTAGE_UTIL_THREAD_ANNOTATIONS_H
#define COTTAGE_UTIL_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__)
#define COTTAGE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COTTAGE_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability (names it in diagnostics). */
#define COTTAGE_CAPABILITY(x) COTTAGE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose ctor acquires and dtor releases. */
#define COTTAGE_SCOPED_CAPABILITY COTTAGE_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define COTTAGE_GUARDED_BY(x) COTTAGE_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) guarded by the capability. */
#define COTTAGE_PT_GUARDED_BY(x) COTTAGE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capability held on entry (and keeps it). */
#define COTTAGE_REQUIRES(...) \
    COTTAGE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define COTTAGE_ACQUIRE(...) \
    COTTAGE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define COTTAGE_RELEASE(...) \
    COTTAGE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function must NOT hold the capability on entry (deadlock guard). */
#define COTTAGE_EXCLUDES(...) \
    COTTAGE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define COTTAGE_RETURN_CAPABILITY(x) \
    COTTAGE_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; must carry a justification comment at the use site. */
#define COTTAGE_NO_THREAD_SAFETY_ANALYSIS \
    COTTAGE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cottage {

/**
 * std::mutex wrapped as an annotated capability, so clang's analysis
 * tracks what each lock protects. Exposes the native handle for
 * condition-variable waits (which the analysis does not model; the
 * waiting code must not touch guarded state under the native lock).
 */
class COTTAGE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() COTTAGE_ACQUIRE() { mutex_.lock(); }
    void unlock() COTTAGE_RELEASE() { mutex_.unlock(); }

    /** Underlying std::mutex, for std::condition_variable waits. */
    std::mutex &native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/** RAII lock over Mutex, visible to the thread-safety analysis. */
class COTTAGE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) COTTAGE_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() COTTAGE_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Zero-cost capability for externally serialized state: classes the
 * determinism contract confines to one thread at a time (LRU caches,
 * MetricsRegistry, the QueryTracer sink) guard their members with a
 * SerialGate instead of a real lock. enter()/exit() compile to
 * nothing — the gate exists so `-Wthread-safety` statically rejects
 * any member access outside a gated section.
 */
class COTTAGE_CAPABILITY("serial") SerialGate
{
  public:
    SerialGate() = default;

    // Copying guarded state does not copy the capability: the copy is
    // a fresh object with its own (unheld) gate, so value types like
    // LruCache stay copyable.
    SerialGate(const SerialGate &) {}
    SerialGate &operator=(const SerialGate &) { return *this; }

    void enter() COTTAGE_ACQUIRE() {}
    void exit() COTTAGE_RELEASE() {}
};

/** RAII section over a SerialGate (runtime no-op, statically checked). */
class COTTAGE_SCOPED_CAPABILITY SerialLock
{
  public:
    explicit SerialLock(SerialGate &gate) COTTAGE_ACQUIRE(gate)
        : gate_(gate)
    {
        gate_.enter();
    }
    ~SerialLock() COTTAGE_RELEASE() { gate_.exit(); }

    SerialLock(const SerialLock &) = delete;
    SerialLock &operator=(const SerialLock &) = delete;

  private:
    SerialGate &gate_;
};

} // namespace cottage

#endif // COTTAGE_UTIL_THREAD_ANNOTATIONS_H
