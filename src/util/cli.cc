#include "util/cli.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace cottage {

CliFlags::CliFlags(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (!startsWith(token, "--")) {
            positional_.push_back(token);
            continue;
        }
        token = token.substr(2);
        const std::size_t eq = token.find('=');
        if (eq != std::string::npos)
            flags_[token.substr(0, eq)] = token.substr(eq + 1);
        else
            flags_[token] = "true";
    }
}

bool
CliFlags::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliFlags::getString(const std::string &name, const std::string &fallback) const
{
    const auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

int64_t
CliFlags::getInt(const std::string &name, int64_t fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        fatal("flag --" + name + " expects an integer, got '" + it->second +
              "'");
    return value;
}

double
CliFlags::getDouble(const std::string &name, double fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        fatal("flag --" + name + " expects a number, got '" + it->second +
              "'");
    return value;
}

bool
CliFlags::getBool(const std::string &name, bool fallback) const
{
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    const std::string value = toLower(it->second);
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    fatal("flag --" + name + " expects a boolean, got '" + it->second + "'");
}

void
cliError(const std::string &message, const std::string &usage)
{
    std::fprintf(stderr, "error: %s\n", message.c_str());
    if (!usage.empty())
        std::fprintf(stderr, "usage: %s\n", usage.c_str());
    std::exit(2);
}

int64_t
getIntAtLeast(const CliFlags &flags, const std::string &name,
              int64_t fallback, int64_t minimum)
{
    const int64_t value = flags.getInt(name, fallback);
    if (flags.has(name) && value < minimum)
        cliError("flag --" + name + " must be >= " +
                     std::to_string(minimum) + ", got " +
                     std::to_string(value),
                 "--" + name + "=N with N >= " + std::to_string(minimum));
    return value;
}

double
getPositiveDouble(const CliFlags &flags, const std::string &name,
                  double fallback)
{
    const double value = flags.getDouble(name, fallback);
    if (flags.has(name) && !(value > 0.0))
        cliError("flag --" + name + " must be strictly positive, got " +
                     std::to_string(value),
                 "--" + name + "=X with X > 0");
    return value;
}

} // namespace cottage
