/**
 * @file
 * Minimal command-line flag parsing for the example applications and
 * bench harnesses. Supports "--key=value" and boolean "--flag" forms
 * (the "--key value" form is intentionally not supported: it is
 * ambiguous against positional arguments), with typed accessors and
 * defaults. Unknown positional arguments are collected in order.
 */

#ifndef COTTAGE_UTIL_CLI_H
#define COTTAGE_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cottage {

/** Parsed command line. */
class CliFlags
{
  public:
    CliFlags() = default;

    /**
     * Parse argv. A token "--name=value" becomes a key/value flag; a
     * bare "--name" becomes a boolean flag with value "true". Other
     * tokens become positional arguments.
     */
    CliFlags(int argc, const char *const *argv);

    /** True if the flag appeared on the command line. */
    bool has(const std::string &name) const;

    /** String value, or fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer value, or fallback when absent. Fatal on parse failure. */
    int64_t getInt(const std::string &name, int64_t fallback) const;

    /** Double value, or fallback when absent. Fatal on parse failure. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Boolean value; "--name", "--name=true/1/yes" are true,
     * "--name=false/0/no" is false. Fatal on anything else.
     */
    bool getBool(const std::string &name, bool fallback) const;

    /** Positional (non-flag) arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** All flags, for echoing a run's configuration. */
    const std::map<std::string, std::string> &flags() const { return flags_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

/**
 * Report a command-line usage error and exit with status 2 (the
 * conventional "bad invocation" code, distinct from a run failure).
 * For operator mistakes on flag VALUES — a non-positive core count, a
 * zero qps scale — where an assertion abort (with its core dump and
 * stack trace) would be hostile to a human who just typo'd a flag.
 * @p usage, when non-empty, is printed after the error as a hint
 * (e.g. "--isn-cores=N with N >= 1").
 */
[[noreturn]] void cliError(const std::string &message,
                           const std::string &usage = "");

/**
 * Fetch an integer flag and cliError() unless it is >= @p minimum.
 * The fallback is NOT validated: callers pass compiled-in defaults.
 */
int64_t getIntAtLeast(const CliFlags &flags, const std::string &name,
                      int64_t fallback, int64_t minimum);

/** Fetch a double flag and cliError() unless it is strictly positive. */
double getPositiveDouble(const CliFlags &flags, const std::string &name,
                         double fallback);

} // namespace cottage

#endif // COTTAGE_UTIL_CLI_H
