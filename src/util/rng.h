/**
 * @file
 * Deterministic random number generation for the whole project.
 *
 * Every stochastic component (corpus generation, query traces, arrival
 * processes, NN initialization) draws from an Rng seeded explicitly, so
 * every experiment is exactly reproducible from its printed seed.
 *
 * The engine is xoshiro256**, seeded through splitmix64 as its authors
 * recommend. It is small, fast, and has no global state.
 */

#ifndef COTTAGE_UTIL_RNG_H
#define COTTAGE_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace cottage {

/**
 * A seedable, copyable random number generator with the distribution
 * helpers this project needs. Not thread-safe; give each thread (or each
 * logical component) its own instance, forked via split().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /**
     * Derive an independent generator from this one. Advances this
     * generator's state once. Useful for giving subcomponents their own
     * streams without correlated output.
     */
    Rng split();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate (lambda > 0). */
    double exponential(double rate);

    /** Lognormal: exp(normal(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Poisson-distributed count with the given mean (Knuth / PTRS). */
    int64_t poisson(double mean);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index in [0, weights.size()) proportionally to the given
     * non-negative weights. Requires a positive total weight.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j =
                static_cast<std::size_t>(uniformInt(0, (int64_t)i - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

  private:
    uint64_t state_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace cottage

#endif // COTTAGE_UTIL_RNG_H
