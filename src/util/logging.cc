#include "util/logging.h"

#include <cstdio>
#include <iostream>

namespace cottage {

namespace {

LogLevel globalLevel = LogLevel::Info;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (level < globalLevel)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), message.c_str());
}

void
logDebug(const std::string &message)
{
    logMessage(LogLevel::Debug, message);
}

void
logInfo(const std::string &message)
{
    logMessage(LogLevel::Info, message);
}

void
logWarn(const std::string &message)
{
    logMessage(LogLevel::Warn, message);
}

void
logError(const std::string &message)
{
    logMessage(LogLevel::Error, message);
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "[FATAL] %s\n", message.c_str());
    std::exit(1);
}

void
checkFailed(const char *file, int line, const char *expr,
            const std::string &message)
{
    std::fprintf(stderr, "[PANIC] %s:%d: check failed: %s%s%s\n", file, line,
                 expr, message.empty() ? "" : " -- ", message.c_str());
    std::abort();
}

} // namespace cottage
