/**
 * @file
 * Lightweight logging and error-checking utilities used across the
 * Cottage codebase.
 *
 * Two severities of failure are distinguished, following simulator
 * conventions (gem5's panic/fatal split):
 *   - COTTAGE_CHECK / checkFailed: internal invariant violation (a bug in
 *     this library). Aborts.
 *   - cottage::fatal: user error (bad configuration, invalid argument).
 *     Exits with status 1.
 */

#ifndef COTTAGE_UTIL_LOGGING_H
#define COTTAGE_UTIL_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace cottage {

/** Log severity levels, in increasing order of importance. */
enum class LogLevel {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/**
 * Set the global minimum level for log output. Messages below this
 * level are suppressed. Defaults to Info.
 */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/**
 * Emit one log line to stderr with a severity tag.
 *
 * @param level Severity of the message.
 * @param message Pre-formatted message body.
 */
void logMessage(LogLevel level, const std::string &message);

/** Convenience wrappers around logMessage. */
void logDebug(const std::string &message);
void logInfo(const std::string &message);
void logWarn(const std::string &message);
void logError(const std::string &message);

/**
 * Terminate the process due to a user-level error (bad configuration or
 * invalid arguments), printing the message to stderr. Never returns.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Terminate the process due to an internal invariant violation (a bug),
 * printing file/line context. Never returns; calls std::abort so a core
 * dump or debugger trap is possible.
 */
[[noreturn]] void checkFailed(const char *file, int line, const char *expr,
                              const std::string &message);

} // namespace cottage

/**
 * Assert an internal invariant. Active in all build types: the cost of
 * the checks in this codebase is negligible next to search work, and
 * silent corruption in a simulator is far worse than a branch.
 */
#define COTTAGE_CHECK(expr)                                                  \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::cottage::checkFailed(__FILE__, __LINE__, #expr, "");           \
        }                                                                    \
    } while (0)

/** COTTAGE_CHECK with an explanatory message (streamed). */
#define COTTAGE_CHECK_MSG(expr, msg)                                         \
    do {                                                                     \
        if (!(expr)) {                                                       \
            std::ostringstream oss_;                                         \
            oss_ << msg;                                                     \
            ::cottage::checkFailed(__FILE__, __LINE__, #expr, oss_.str());   \
        }                                                                    \
    } while (0)

#endif // COTTAGE_UTIL_LOGGING_H
